#!/bin/sh
# Runs every figure/table harness at full Table 3 scale and stores the
# output under experiments/. Pass --quick to run the reduced configuration.
set -u
ARGS="${1:-}"
cd "$(dirname "$0")/.."
BINS="table1_comparison table3_config table_hw_overhead fig03_access_patterns \
fig04_microbench fig08_stall_breakdown table4_benchmarks fig17_mshr_failures \
fig19_stall_reduction fig20_l2_miss_rate fig18_walk_latency fig07_latency_breakdown \
fig16_overall_speedup fig21_iso_area fig26_distributor_policy fig25_large_page \
fig24_intlb_capacity fig22_l2tlb_latency fig23_pt_latency fig06_prior_plus_ptws \
fig05_ptw_scaling fig15_area_tradeoff fig12_ptw_mshr_scaling fig09_timeline ext_pwb_scheduling ablation_pw_warp"
for b in $BINS; do
  echo "=== running $b $ARGS ==="
  cargo run --release -q -p swgpu-bench --bin "$b" -- $ARGS \
      > "experiments/$b.txt" 2>"experiments/$b.log" || echo "FAILED: $b"
  echo "=== $b done ==="
done
echo ALL-DONE
