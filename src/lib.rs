//! Workspace-level helpers shared by the integration tests and examples
//! of the SoftWalker reproduction.
//!
//! The real functionality lives in the `swgpu-*` substrate crates and the
//! `softwalker` core crate; see the README for the crate map. This crate
//! only re-exports the pieces examples need and provides a compact
//! human-readable run summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use softwalker::{DistributorPolicy, PwWarpConfig, PwWarpUnit, SwWalkRequest};
pub use swgpu_sim::{
    GpuConfig, GpuSimulator, SharingPolicy, SimStats, TenantConfig, TenantStats, TenantsConfig,
    TranslationMode,
};
pub use swgpu_sm::InstrSource;
pub use swgpu_types::{Asid, FaultPlan, MmConfig, MmEvictPolicy, PageSize};
pub use swgpu_workloads::{by_abbr, irregular, regular, table4, Workload, WorkloadParams};

/// Formats the run metrics examples care about as a short multi-line
/// block.
///
/// # Example
///
/// ```
/// use softwalker_repro::{summary, SimStats};
/// let text = summary("demo", &SimStats::default());
/// assert!(text.contains("demo"));
/// ```
pub fn summary(label: &str, s: &SimStats) -> String {
    format!(
        "{label}:\n  cycles            {}\n  instructions      {} (IPC {:.3})\n  L2 TLB MPKI       {:.1}\n  page walks        {} (avg queue {:.0} cyc, avg access {:.0} cyc, queue share {:.0}%)\n  MSHR failures     {}\n  stall cycles      {} ({:.0}% of scheduler cycles)\n  DRAM utilization  {:.1}%",
        s.cycles,
        s.instructions,
        s.ipc(),
        s.l2_tlb_mpki(),
        s.walk.translations,
        s.walk.avg_queue(),
        s.walk.avg_access(),
        s.walk.queue_fraction() * 100.0,
        s.l2_mshr_failure_events,
        s.stall_cycles(),
        s.sm.stall_fraction() * 100.0,
        s.dram_utilization * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_metrics() {
        let s = SimStats::default();
        let text = summary("x", &s);
        for needle in ["cycles", "MPKI", "page walks", "DRAM"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
