//! Property tests on the TLB array: LRU behaviour, pending-state
//! isolation, and agreement with a reference model.

use proptest::prelude::*;
use std::collections::HashMap;
use swgpu_tlb::{ReplPolicy, Tlb, TlbConfig};
use swgpu_types::{Pfn, Vpn};

/// A reference "infinite TLB": a plain map. The real TLB may evict, so
/// the invariant is one-sided — every real hit must agree with the map,
/// and a real hit can never occur for an uninserted VPN.
#[derive(Default)]
struct RefTlb {
    map: HashMap<u64, u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hits_always_agree_with_reference(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
        assoc in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        // assoc ∈ {1,2,4,8} all divide 16, giving a power-of-two set count.
        let mut tlb = Tlb::new(TlbConfig {
            name: "prop".into(),
            entries: 16,
            assoc,
            repl: ReplPolicy::Lru,
        });
        let mut reference = RefTlb::default();
        for (vpn, is_fill) in ops {
            if is_fill {
                let pfn = vpn + 1000;
                tlb.fill(Vpn::new(vpn), Pfn::new(pfn));
                reference.map.insert(vpn, pfn);
            } else if let Some(pfn) = tlb.lookup(Vpn::new(vpn)) {
                // A hit must agree with the reference and must have been
                // inserted at some point.
                prop_assert_eq!(Some(&pfn.value()), reference.map.get(&vpn));
            }
        }
    }

    #[test]
    fn valid_entries_never_exceed_capacity(
        vpns in prop::collection::vec(0u64..256, 1..300),
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            name: "cap".into(),
            entries: 32,
            assoc: 4,
            repl: ReplPolicy::Lru,
        });
        for v in vpns {
            tlb.fill(Vpn::new(v), Pfn::new(v));
            prop_assert!(tlb.valid_entries() <= 32);
        }
    }

    #[test]
    fn pending_and_valid_counts_are_consistent(
        ops in prop::collection::vec((0u64..32, 0u8..3), 1..200),
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            name: "mix".into(),
            entries: 16,
            assoc: 4,
            repl: ReplPolicy::Lru,
        });
        let mut outstanding: Vec<u64> = Vec::new();
        for (vpn, op) in ops {
            match op {
                0 => {
                    tlb.fill(Vpn::new(vpn), Pfn::new(vpn));
                }
                1 => {
                    if tlb.reserve_pending(Vpn::new(vpn)) {
                        outstanding.push(vpn);
                    }
                }
                _ => {
                    if let Some(pos) = outstanding.iter().position(|&v| v == vpn) {
                        let cleared = tlb.clear_pending_and_fill(Vpn::new(vpn), Pfn::new(vpn));
                        prop_assert!(cleared >= 1);
                        // Remove every occurrence — clear resolves all
                        // tag-matching ways.
                        outstanding.retain(|&v| v != vpn);
                        let _ = pos;
                    }
                }
            }
            prop_assert_eq!(tlb.pending_entries(), outstanding.len());
            prop_assert!(tlb.valid_entries() + tlb.pending_entries() <= 16);
        }
    }

    #[test]
    fn recently_used_entries_survive_thrash(
        victims in prop::collection::vec(0u64..1024, 16..64),
    ) {
        // Fully-associative 32-entry TLB: an entry touched every iteration
        // must never be evicted by LRU.
        let mut tlb = Tlb::new(TlbConfig {
            name: "lru".into(),
            entries: 32,
            assoc: 32,
            repl: ReplPolicy::Lru,
        });
        let hot = Vpn::new(1 << 40);
        tlb.fill(hot, Pfn::new(7));
        for v in victims {
            prop_assert_eq!(tlb.lookup(hot), Some(Pfn::new(7)), "hot entry evicted");
            tlb.fill(Vpn::new(v), Pfn::new(v));
        }
        prop_assert_eq!(tlb.lookup(hot), Some(Pfn::new(7)));
    }

    /// Set uniqueness under arbitrary interleavings of every mutating
    /// operation, on both replacement policies: a VPN never has more
    /// than one Valid way, and a Valid way never coexists with a
    /// Pending way of the same tag (the duplicate-tag fill hazard).
    /// Multiple Pending ways for one tag are legal — that is the In-TLB
    /// merge path.
    #[test]
    fn set_uniqueness_under_arbitrary_interleavings(
        ops in prop::collection::vec((0u64..32, 0u8..6), 1..300),
        dead_block in any::<bool>(),
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            name: "uniq".into(),
            entries: 16,
            assoc: 4,
            repl: if dead_block { ReplPolicy::DeadBlock } else { ReplPolicy::Lru },
        });
        for (vpn, op) in ops {
            let v = Vpn::new(vpn);
            match op {
                0 => {
                    tlb.fill(v, Pfn::new(vpn));
                }
                1 => {
                    tlb.fill_prefetched(v, Pfn::new(vpn));
                }
                2 => {
                    tlb.reserve_pending(v);
                }
                3 => {
                    tlb.clear_pending_and_fill(v, Pfn::new(vpn));
                }
                4 => {
                    tlb.invalidate(v);
                }
                _ => tlb.flush(),
            }
            for u in 0..32u64 {
                let (valid, pending) = tlb.tag_population(Vpn::new(u));
                prop_assert!(valid <= 1, "vpn {u}: {valid} valid ways");
                prop_assert!(
                    valid == 0 || pending == 0,
                    "vpn {u}: valid and pending ways coexist ({valid}/{pending})"
                );
            }
        }
    }
}
