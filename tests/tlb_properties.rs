//! Property tests on the TLB array: LRU behaviour, pending-state
//! isolation, ASID tag isolation, and agreement with a reference model.

use proptest::prelude::*;
use std::collections::HashMap;
use swgpu_tlb::{ReplPolicy, Tlb, TlbConfig};
use swgpu_types::{Asid, Pfn, Vpn};

/// A reference "infinite TLB": a plain map. The real TLB may evict, so
/// the invariant is one-sided — every real hit must agree with the map,
/// and a real hit can never occur for an uninserted VPN.
#[derive(Default)]
struct RefTlb {
    map: HashMap<(u16, u64), u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hits_always_agree_with_reference(
        ops in prop::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..200),
        assoc in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        // assoc ∈ {1,2,4,8} all divide 16, giving a power-of-two set count.
        let mut tlb = Tlb::new(TlbConfig {
            name: "prop".into(),
            entries: 16,
            assoc,
            repl: ReplPolicy::Lru,
        });
        let mut reference = RefTlb::default();
        for (vpn, second_asid, is_fill) in ops {
            // Two tenants fill colliding VPN ranges: a hit must agree
            // with the *issuing* tenant's mapping, never the other's.
            let asid = Asid::new(u16::from(second_asid));
            if is_fill {
                let pfn = vpn + 1000 + u64::from(second_asid) * 500_000;
                tlb.fill(asid, Vpn::new(vpn), Pfn::new(pfn));
                reference.map.insert((asid.value(), vpn), pfn);
            } else if let Some(pfn) = tlb.lookup(asid, Vpn::new(vpn)) {
                // A hit must agree with the reference and must have been
                // inserted at some point.
                prop_assert_eq!(Some(&pfn.value()), reference.map.get(&(asid.value(), vpn)));
            }
        }
    }

    #[test]
    fn valid_entries_never_exceed_capacity(
        vpns in prop::collection::vec(0u64..256, 1..300),
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            name: "cap".into(),
            entries: 32,
            assoc: 4,
            repl: ReplPolicy::Lru,
        });
        for v in vpns {
            tlb.fill(Asid::ZERO, Vpn::new(v), Pfn::new(v));
            prop_assert!(tlb.valid_entries() <= 32);
        }
    }

    #[test]
    fn pending_and_valid_counts_are_consistent(
        ops in prop::collection::vec((0u64..32, 0u8..3), 1..200),
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            name: "mix".into(),
            entries: 16,
            assoc: 4,
            repl: ReplPolicy::Lru,
        });
        let mut outstanding: Vec<u64> = Vec::new();
        for (vpn, op) in ops {
            match op {
                0 => {
                    tlb.fill(Asid::ZERO, Vpn::new(vpn), Pfn::new(vpn));
                }
                1 => {
                    if tlb.reserve_pending(Asid::ZERO, Vpn::new(vpn)) {
                        outstanding.push(vpn);
                    }
                }
                _ => {
                    if let Some(pos) = outstanding.iter().position(|&v| v == vpn) {
                        let cleared =
                            tlb.clear_pending_and_fill(Asid::ZERO, Vpn::new(vpn), Pfn::new(vpn));
                        prop_assert!(cleared >= 1);
                        // Remove every occurrence — clear resolves all
                        // tag-matching ways.
                        outstanding.retain(|&v| v != vpn);
                        let _ = pos;
                    }
                }
            }
            prop_assert_eq!(tlb.pending_entries(), outstanding.len());
            prop_assert!(tlb.valid_entries() + tlb.pending_entries() <= 16);
        }
    }

    #[test]
    fn recently_used_entries_survive_thrash(
        victims in prop::collection::vec(0u64..1024, 16..64),
    ) {
        // Fully-associative 32-entry TLB: an entry touched every iteration
        // must never be evicted by LRU.
        let mut tlb = Tlb::new(TlbConfig {
            name: "lru".into(),
            entries: 32,
            assoc: 32,
            repl: ReplPolicy::Lru,
        });
        let hot = Vpn::new(1 << 40);
        tlb.fill(Asid::ZERO, hot, Pfn::new(7));
        for v in victims {
            prop_assert_eq!(tlb.lookup(Asid::ZERO, hot), Some(Pfn::new(7)), "hot entry evicted");
            tlb.fill(Asid::ZERO, Vpn::new(v), Pfn::new(v));
        }
        prop_assert_eq!(tlb.lookup(Asid::ZERO, hot), Some(Pfn::new(7)));
    }

    /// Set uniqueness under arbitrary interleavings of every mutating
    /// operation, on both replacement policies, with TWO tenants whose
    /// VPN ranges fully collide: a (ASID, VPN) pair never has more than
    /// one Valid way, and a Valid way never coexists with a Pending way
    /// of the same tag (the duplicate-tag fill hazard). Multiple Pending
    /// ways for one tag are legal — that is the In-TLB merge path. A
    /// per-ASID flush must never disturb the other tenant's invariants.
    #[test]
    fn set_uniqueness_under_arbitrary_interleavings(
        ops in prop::collection::vec((0u64..32, any::<bool>(), 0u8..7), 1..300),
        dead_block in any::<bool>(),
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            name: "uniq".into(),
            entries: 16,
            assoc: 4,
            repl: if dead_block { ReplPolicy::DeadBlock } else { ReplPolicy::Lru },
        });
        for (vpn, second_asid, op) in ops {
            let v = Vpn::new(vpn);
            let asid = Asid::new(u16::from(second_asid));
            match op {
                0 => {
                    tlb.fill(asid, v, Pfn::new(vpn));
                }
                1 => {
                    tlb.fill_prefetched(asid, v, Pfn::new(vpn));
                }
                2 => {
                    tlb.reserve_pending(asid, v);
                }
                3 => {
                    tlb.clear_pending_and_fill(asid, v, Pfn::new(vpn));
                }
                4 => {
                    tlb.invalidate(asid, v);
                }
                5 => {
                    tlb.flush_asid(asid);
                }
                _ => tlb.flush(),
            }
            for a in 0..2u16 {
                for u in 0..32u64 {
                    let (valid, pending) = tlb.tag_population(Asid::new(a), Vpn::new(u));
                    prop_assert!(valid <= 1, "asid {a} vpn {u}: {valid} valid ways");
                    prop_assert!(
                        valid == 0 || pending == 0,
                        "asid {a} vpn {u}: valid and pending ways coexist ({valid}/{pending})"
                    );
                }
            }
        }
    }

    /// Cross-ASID isolation: operations issued under one ASID must never
    /// hit, clear, or invalidate the other ASID's colliding-VPN entries.
    #[test]
    fn asid_tags_isolate_colliding_vpns(
        vpns in prop::collection::vec(0u64..16, 1..64),
    ) {
        let a0 = Asid::ZERO;
        let a1 = Asid::new(1);
        let mut tlb = Tlb::new(TlbConfig {
            name: "iso".into(),
            entries: 64,
            assoc: 4,
            repl: ReplPolicy::Lru,
        });
        for &v in &vpns {
            tlb.fill(a0, Vpn::new(v), Pfn::new(v + 100));
        }
        // Same VPNs under the other ASID miss, and invalidating them
        // under the other ASID removes nothing.
        for &v in &vpns {
            prop_assert_eq!(tlb.lookup(a1, Vpn::new(v)), None);
            prop_assert_eq!(tlb.invalidate(a1, Vpn::new(v)), 0);
            prop_assert_eq!(tlb.lookup(a0, Vpn::new(v)), Some(Pfn::new(v + 100)));
        }
        // A full flush of the second tenant leaves the first intact.
        tlb.flush_asid(a1);
        for &v in &vpns {
            prop_assert_eq!(tlb.lookup(a0, Vpn::new(v)), Some(Pfn::new(v + 100)));
        }
        tlb.flush_asid(a0);
        for &v in &vpns {
            prop_assert_eq!(tlb.lookup(a0, Vpn::new(v)), None);
        }
    }
}

/// Regression: a *prefetched* fill issued on behalf of one tenant must
/// install under that tenant's tag only — the other tenant's colliding
/// VPN keeps missing, and invalidating under the other tenant's ASID
/// touches nothing.
#[test]
fn prefetched_fills_are_tenant_private() {
    let a0 = Asid::ZERO;
    let a1 = Asid::new(1);
    let mut tlb = Tlb::new(TlbConfig {
        name: "pf-priv".into(),
        entries: 16,
        assoc: 4,
        repl: ReplPolicy::Lru,
    });
    for v in 0..8u64 {
        tlb.fill_prefetched(a1, Vpn::new(v), Pfn::new(v + 500));
    }
    for v in 0..8u64 {
        assert_eq!(
            tlb.lookup(a0, Vpn::new(v)),
            None,
            "vpn {v}: tenant 0 hit tenant 1's prefetched fill"
        );
        assert_eq!(tlb.invalidate(a0, Vpn::new(v)), 0);
        assert_eq!(tlb.lookup(a1, Vpn::new(v)), Some(Pfn::new(v + 500)));
    }
}
