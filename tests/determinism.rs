//! The simulator must be fully deterministic: identical configurations
//! and workloads produce bit-identical statistics.

use softwalker_repro::{
    by_abbr, GpuConfig, GpuSimulator, SimStats, TranslationMode, WorkloadParams,
};

fn run_once(mode: TranslationMode) -> SimStats {
    let cfg = GpuConfig {
        sms: 6,
        max_warps: 8,
        mode,
        ..GpuConfig::default()
    };
    let spec = by_abbr("bfs").unwrap();
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: 3,
        footprint_percent: 50,
        page_size: cfg.page_size,
    });
    GpuSimulator::new(cfg, Box::new(wl)).run()
}

fn assert_identical(a: &SimStats, b: &SimStats) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.walk.translations, b.walk.translations);
    assert_eq!(a.walk.queue_cycles, b.walk.queue_cycles);
    assert_eq!(a.walk.access_cycles, b.walk.access_cycles);
    assert_eq!(a.l2_mshr_failure_events, b.l2_mshr_failure_events);
    assert_eq!(a.fresh_l2_misses, b.fresh_l2_misses);
    assert_eq!(a.sm, b.sm);
    assert_eq!(a.l2_tlb, b.l2_tlb);
    assert_eq!(a.l2d, b.l2d);
    assert_eq!(a.dram, b.dram);
}

#[test]
fn baseline_is_deterministic() {
    let a = run_once(TranslationMode::HardwarePtw);
    let b = run_once(TranslationMode::HardwarePtw);
    assert_identical(&a, &b);
}

#[test]
fn softwalker_is_deterministic() {
    let a = run_once(TranslationMode::SoftWalker { in_tlb_mshr: true });
    let b = run_once(TranslationMode::SoftWalker { in_tlb_mshr: true });
    assert_identical(&a, &b);
}

#[test]
fn hybrid_is_deterministic() {
    let a = run_once(TranslationMode::Hybrid { in_tlb_mshr: true });
    let b = run_once(TranslationMode::Hybrid { in_tlb_mshr: true });
    assert_identical(&a, &b);
}
