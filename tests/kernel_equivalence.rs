//! Event-kernel ⇔ dense-loop equivalence.
//!
//! The simulator's event-scheduled kernel ([`GpuSimulator::run`]) jumps
//! the clock across quiescent stretches; the dense reference mode
//! ([`GpuSimulator::run_dense`]) executes every cycle. The two must
//! produce **byte-identical** statistics JSON on every benchmark × mode —
//! any divergence means a component advertised its next event too late
//! (missed work) or mutated state on a cycle the schedule skipped.
//!
//! Two layers:
//! * a fixed sweep over all Table 4 benchmarks × all translation modes;
//! * a property test over random (workload, mode, scale, fault plan)
//!   cells, including armed fault injection — the watchdog / backoff /
//!   driver-replay machinery is the hardest thing to schedule correctly.

use proptest::prelude::*;
use softwalker_repro::{
    by_abbr, table4, FaultPlan, GpuConfig, GpuSimulator, InstrSource, MmConfig, SharingPolicy,
    SimStats, TenantsConfig, TranslationMode, WorkloadParams,
};

const ALL_MODES: [TranslationMode; 7] = [
    TranslationMode::HardwarePtw,
    TranslationMode::HashedPtw,
    TranslationMode::IdealPtw,
    TranslationMode::SoftWalker { in_tlb_mshr: true },
    TranslationMode::SoftWalker { in_tlb_mshr: false },
    TranslationMode::Hybrid { in_tlb_mshr: true },
    TranslationMode::Hybrid { in_tlb_mshr: false },
];

struct Cell {
    abbr: &'static str,
    mode: TranslationMode,
    sms: usize,
    warps: usize,
    instrs: u32,
    footprint_percent: u64,
    plan: FaultPlan,
}

fn build(cell: &Cell) -> GpuSimulator {
    let mut cfg = GpuConfig::quick_test();
    cfg.sms = cell.sms;
    cfg.max_warps = cell.warps;
    cfg.mode = cell.mode;
    cfg.fault_plan = cell.plan.clone();
    let spec = by_abbr(cell.abbr).expect("known benchmark");
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: cell.instrs,
        footprint_percent: cell.footprint_percent,
        page_size: cfg.page_size,
    });
    GpuSimulator::new(cfg, Box::new(wl))
}

/// Runs the cell on both kernels and checks byte equality plus the
/// schedule-accounting invariant. Returns the event-kernel stats.
fn assert_equivalent(cell: &Cell) -> SimStats {
    let event = build(cell).run();
    let dense = build(cell).run_dense();
    assert_eq!(
        event.to_json(),
        dense.to_json(),
        "{} / {:?}: event kernel diverged from dense reference",
        cell.abbr,
        cell.mode
    );
    assert!(
        !event.timed_out,
        "{} / {:?}: equivalence cell must drain",
        cell.abbr, cell.mode
    );
    // Every cycle is either executed or skipped; cycle 0 is always
    // executed, so the two counters tile [0, cycles] exactly.
    assert_eq!(
        event.kernel_steps + event.kernel_cycles_skipped,
        event.cycles + 1,
        "{} / {:?}: schedule accounting does not tile the run",
        cell.abbr,
        cell.mode
    );
    event
}

#[test]
fn every_benchmark_and_mode_is_byte_identical() {
    let mut total_skipped = 0u64;
    for spec in table4() {
        for mode in ALL_MODES {
            let s = assert_equivalent(&Cell {
                abbr: spec.abbr,
                mode,
                sms: 2,
                warps: 4,
                instrs: 2,
                footprint_percent: 10,
                plan: FaultPlan::default(),
            });
            total_skipped += s.kernel_cycles_skipped;
        }
    }
    // The sweep as a whole must actually exercise cycle-skipping: the
    // 80-cycle L2 TLB hops and 160-cycle DRAM waits leave wide gaps.
    assert!(
        total_skipped > 0,
        "event kernel never skipped a cycle across the whole sweep"
    );
}

#[test]
fn fault_recovery_cells_are_byte_identical() {
    // Armed watchdogs, backoff retries and driver replays schedule the
    // sparsest wakes in the system; sweep them on every walker kind.
    let plan = FaultPlan {
        seed: 0xe7e7,
        pte_corrupt_rate: 0.05,
        mem_drop_rate: 0.05,
        mem_delay_rate: 0.05,
        stuck_thread_rate: 0.02,
        ..FaultPlan::default()
    };
    for mode in [
        TranslationMode::HardwarePtw,
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        TranslationMode::Hybrid { in_tlb_mshr: true },
    ] {
        let s = assert_equivalent(&Cell {
            abbr: "gups",
            mode,
            sms: 4,
            warps: 8,
            instrs: 3,
            footprint_percent: 20,
            plan: plan.clone(),
        });
        assert!(
            s.fault.injected_total() > 0,
            "{mode:?}: storm cell must actually inject faults"
        );
    }
}

#[test]
fn demand_paged_cells_are_byte_identical() {
    // Demand paging schedules the sparsest wakes of all: a cold page
    // table means every first touch detours through the driver queue
    // (fill latency, then a replayed walk), and a tight budget adds
    // eviction + re-fault cycles on top. Swept on every walker kind the
    // manager supports (HashedPtw is rejected by validate(): the FS-HPT
    // table has no incremental map path).
    for budget in [0u64, 64] {
        for mode in [
            TranslationMode::HardwarePtw,
            TranslationMode::IdealPtw,
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            TranslationMode::SoftWalker { in_tlb_mshr: false },
            TranslationMode::Hybrid { in_tlb_mshr: true },
        ] {
            let make = || {
                let mut cfg = GpuConfig::quick_test();
                cfg.mode = mode;
                cfg.mm = MmConfig {
                    resident_page_budget: budget,
                    ..MmConfig::demand_paged()
                };
                let spec = by_abbr("gups").expect("known benchmark");
                let wl = spec.build(WorkloadParams {
                    sms: cfg.sms,
                    warps_per_sm: cfg.max_warps,
                    mem_instrs_per_warp: 3,
                    footprint_percent: 20,
                    page_size: cfg.page_size,
                });
                GpuSimulator::new(cfg, Box::new(wl))
            };
            let event = make().run();
            let dense = make().run_dense();
            assert_eq!(
                event.to_json(),
                dense.to_json(),
                "{mode:?} budget {budget}: demand-paged event kernel diverged"
            );
            assert!(!event.timed_out, "{mode:?} budget {budget}: must drain");
            assert!(
                event.mm.major_faults > 0,
                "{mode:?} budget {budget}: cold page table must fault"
            );
            assert_eq!(
                event.mm.major_faults, event.mm.major_replays,
                "{mode:?} budget {budget}: fault conservation"
            );
            if budget > 0 {
                assert!(
                    event.mm.evictions > 0,
                    "{mode:?}: budget {budget} must force eviction"
                );
            }
        }
    }
}

#[test]
fn faulted_demand_paged_cells_are_byte_identical() {
    // The data-path fault machinery schedules everything the kernel can
    // get wrong at once: fill watchdogs at exponential-backoff deadlines,
    // delayed fill replays, re-queued (stalled) driver requests, and
    // refills after checksum-triggered quarantines. All of it is
    // port-driven, so the event kernel must reproduce the dense
    // reference bit for bit under a full storm.
    let plan = FaultPlan {
        seed: 0xfee1_dead,
        fill_drop_rate: 0.10,
        fill_delay_rate: 0.05,
        fill_duplicate_rate: 0.05,
        fill_corrupt_rate: 0.05,
        shootdown_drop_rate: 0.10,
        driver_stuck_rate: 0.05,
        ..FaultPlan::default()
    };
    for mode in [
        TranslationMode::HardwarePtw,
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        TranslationMode::Hybrid { in_tlb_mshr: true },
    ] {
        let make = || {
            let mut cfg = GpuConfig::quick_test();
            cfg.mode = mode;
            cfg.fault_plan = plan.clone();
            cfg.mm = MmConfig {
                resident_page_budget: 64,
                ..MmConfig::demand_paged()
            };
            let spec = by_abbr("gups").expect("known benchmark");
            let wl = spec.build(WorkloadParams {
                sms: cfg.sms,
                warps_per_sm: cfg.max_warps,
                mem_instrs_per_warp: 3,
                footprint_percent: 20,
                page_size: cfg.page_size,
            });
            GpuSimulator::new(cfg, Box::new(wl))
        };
        let event = make().run();
        let dense = make().run_dense();
        assert_eq!(
            event.to_json(),
            dense.to_json(),
            "{mode:?}: fill-storm event kernel diverged from dense reference"
        );
        assert!(!event.timed_out, "{mode:?}: fill-storm cell must drain");
        assert!(
            event.mm_fault.injected_conserved() > 0,
            "{mode:?}: fill-storm cell must actually inject"
        );
    }
}

#[test]
fn observability_cells_are_byte_identical() {
    // Obs-on runs wake at sample boundaries between events; those extra
    // steps must stay no-ops for simulation state.
    for mode in [
        TranslationMode::HardwarePtw,
        TranslationMode::SoftWalker { in_tlb_mshr: true },
    ] {
        let make = || {
            let mut cfg = GpuConfig::quick_test();
            cfg.mode = mode;
            cfg.obs = swgpu_obs::ObsConfig {
                sample_interval: 64,
                ..swgpu_obs::ObsConfig::enabled()
            };
            let spec = by_abbr("gups").expect("known benchmark");
            let wl = spec.build(WorkloadParams {
                sms: cfg.sms,
                warps_per_sm: cfg.max_warps,
                mem_instrs_per_warp: 3,
                footprint_percent: 20,
                page_size: cfg.page_size,
            });
            GpuSimulator::new(cfg, Box::new(wl))
        };
        let event = make().run();
        let dense = make().run_dense();
        assert_eq!(
            event.to_json(),
            dense.to_json(),
            "{mode:?}: obs-armed event kernel diverged"
        );
        let occ = |s: &SimStats| {
            s.obs
                .as_deref()
                .expect("obs armed")
                .time_series("softpwb_occupancy")
                .expect("series")
                .total_pushed()
        };
        assert_eq!(
            occ(&event),
            occ(&dense),
            "{mode:?}: gap-aware sampling changed the sample count"
        );
    }
}

/// Builds a two-tenant simulator over the given sharing policy; the
/// tenant mix (one irregular, one regular, per Table 4) splits the SMs
/// evenly.
fn two_tenant_sim(policy: SharingPolicy) -> GpuSimulator {
    let mut cfg = GpuConfig::quick_test();
    cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
    let mut layout = TenantsConfig::pair("gups", "2dc", cfg.sms);
    layout.policy = policy;
    cfg.tenants = Some(layout.clone());
    let pairs: Vec<(Box<dyn InstrSource>, u64)> = layout
        .tenants
        .iter()
        .map(|t| {
            let spec = by_abbr(&t.workload).expect("known benchmark");
            let wl = spec.build(WorkloadParams {
                sms: t.sms,
                warps_per_sm: cfg.max_warps,
                mem_instrs_per_warp: 2,
                footprint_percent: 10,
                page_size: cfg.page_size,
            });
            let fp = wl.footprint_bytes();
            (Box::new(wl) as Box<dyn InstrSource>, fp)
        })
        .collect();
    GpuSimulator::new_multi_tenant(cfg, pairs)
}

#[test]
fn single_tenant_stats_remain_byte_transparent() {
    // `tenants: None` must be invisible end to end: no tenant keys in
    // the stats JSON, no tenant block in the Display rendering, and the
    // usual dense ⇔ event byte identity. (The config side is pinned
    // separately by the golden fingerprint test.)
    let cell = Cell {
        abbr: "gups",
        mode: TranslationMode::SoftWalker { in_tlb_mshr: true },
        sms: 2,
        warps: 4,
        instrs: 2,
        footprint_percent: 10,
        plan: FaultPlan::default(),
    };
    let s = assert_equivalent(&cell);
    let json = s.to_json();
    assert!(
        !json.contains("tenant"),
        "single-tenant JSON must carry no tenant keys"
    );
    assert!(!format!("{s}").contains("tenants:"));
    assert!(s.tenants.is_empty());
}

#[test]
fn two_tenant_cells_are_byte_identical_and_deterministic() {
    for policy in [
        SharingPolicy::Partitioned,
        SharingPolicy::Shared {
            max_inflight_walks: 8,
        },
    ] {
        let event = two_tenant_sim(policy).run();
        let dense = two_tenant_sim(policy).run_dense();
        assert_eq!(
            event.to_json(),
            dense.to_json(),
            "{policy:?}: two-tenant event kernel diverged from dense reference"
        );
        // Re-running the identical construction must be bit-for-bit
        // reproducible — the multi-tenant machinery draws from the same
        // seeded streams regardless of host conditions.
        let again = two_tenant_sim(policy).run();
        assert_eq!(
            event.to_json(),
            again.to_json(),
            "{policy:?}: run not deterministic"
        );
        assert!(!event.timed_out);
        assert_eq!(event.tenants.len(), 2);
        // The tenant block survives a JSON round trip.
        let parsed = SimStats::from_json(&event.to_json()).expect("round trip");
        assert_eq!(parsed.tenants, event.tenants);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn random_cells_are_byte_identical(
        bench in prop::sample::select(vec!["gups", "bfs", "spmv", "gemm", "2dc", "xsb"]),
        mode_idx in 0usize..ALL_MODES.len(),
        instrs in 2u32..4,
        footprint_percent in prop::sample::select(vec![10u64, 20, 50]),
        faulty in any::<bool>(),
        seed in 1u64..1_000_000,
    ) {
        let plan = if faulty {
            FaultPlan {
                seed,
                pte_corrupt_rate: 0.03,
                mem_drop_rate: 0.03,
                mem_delay_rate: 0.03,
                stuck_thread_rate: 0.01,
                ..FaultPlan::default()
            }
        } else {
            FaultPlan::default()
        };
        assert_equivalent(&Cell {
            abbr: bench,
            mode: ALL_MODES[mode_idx],
            sms: 2,
            warps: 6,
            instrs,
            footprint_percent,
            plan,
        });
    }
}
