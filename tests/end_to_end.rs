//! Cross-crate end-to-end tests: the paper's qualitative results must
//! hold on small configurations.

use softwalker_repro::{
    by_abbr, GpuConfig, GpuSimulator, SimStats, TranslationMode, WorkloadParams,
};

fn run(abbr: &str, mode: TranslationMode, tweak: impl FnOnce(&mut GpuConfig)) -> SimStats {
    let mut cfg = GpuConfig {
        sms: 12,
        max_warps: 12,
        mode,
        max_cycles: 5_000_000,
        ..GpuConfig::default()
    };
    tweak(&mut cfg);
    let spec = by_abbr(abbr).expect("registry benchmark");
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: 3,
        footprint_percent: 100,
        page_size: cfg.page_size,
    });
    let s = GpuSimulator::new(cfg, Box::new(wl)).run();
    assert!(!s.timed_out, "{abbr} run hit the cycle cap");
    s
}

#[test]
fn same_work_across_all_modes() {
    let modes = [
        TranslationMode::HardwarePtw,
        TranslationMode::HashedPtw,
        TranslationMode::IdealPtw,
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        TranslationMode::SoftWalker { in_tlb_mshr: false },
        TranslationMode::Hybrid { in_tlb_mshr: true },
    ];
    let mut instr_counts = Vec::new();
    for m in modes {
        let s = run("xsb", m, |_| {});
        assert_eq!(s.faults, 0, "{m:?} faulted on a fully mapped workload");
        assert_eq!(s.sm.xlat_faults, 0);
        instr_counts.push(s.instructions);
    }
    assert!(
        instr_counts.windows(2).all(|w| w[0] == w[1]),
        "all modes must execute identical work: {instr_counts:?}"
    );
}

#[test]
fn queueing_dominates_baseline_walks_for_irregular() {
    let s = run("gups", TranslationMode::HardwarePtw, |_| {});
    assert!(
        s.walk.queue_fraction() > 0.8,
        "queue fraction {:.2} should dominate at 32 PTWs",
        s.walk.queue_fraction()
    );
}

#[test]
fn softwalker_ordering_matches_figure_16() {
    let base = run("gups", TranslationMode::HardwarePtw, |_| {});
    let sw_no = run(
        "gups",
        TranslationMode::SoftWalker { in_tlb_mshr: false },
        |_| {},
    );
    let sw = run(
        "gups",
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        |_| {},
    );
    let ideal = run("gups", TranslationMode::IdealPtw, |_| {});
    let x_no = sw_no.speedup_over(&base);
    let x_sw = sw.speedup_over(&base);
    let x_ideal = ideal.speedup_over(&base);
    assert!(x_no > 1.2, "SW w/o In-TLB should already win: {x_no:.2}");
    assert!(
        x_sw > x_no,
        "In-TLB MSHR must add speedup: {x_sw:.2} vs {x_no:.2}"
    );
    assert!(
        x_ideal >= x_sw * 0.9,
        "ideal ({x_ideal:.2}) should be at least near SoftWalker ({x_sw:.2})"
    );
}

#[test]
fn softwalker_reduces_walk_latency_sharply() {
    let base = run("nw", TranslationMode::HardwarePtw, |_| {});
    let sw = run(
        "nw",
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        |_| {},
    );
    let reduction = 1.0 - sw.walk.avg_total() / base.walk.avg_total();
    assert!(
        reduction > 0.5,
        "walk latency should drop sharply (paper: 72.8%), got {:.0}%",
        reduction * 100.0
    );
}

#[test]
fn softwalker_reduces_stalls_on_irregular() {
    let base = run("sssp", TranslationMode::HardwarePtw, |_| {});
    let sw = run(
        "sssp",
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        |_| {},
    );
    assert!(
        sw.stall_reduction_vs(&base) > 0.3,
        "stall reduction {:.2}",
        sw.stall_reduction_vs(&base)
    );
}

#[test]
fn regular_apps_barely_affected_by_softwalker() {
    let base = run("2dc", TranslationMode::HardwarePtw, |_| {});
    let sw = run(
        "2dc",
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        |_| {},
    );
    let slowdown = base.speedup_over(&sw); // >1 means SW is slower
    assert!(
        slowdown < 1.25,
        "regular-app slowdown should stay modest (paper ≤ ~11%), got {slowdown:.2}x"
    );
    // And hybrid mode must stay close to the baseline (the paper's §5.4
    // claim): hardware walkers absorb the common case, software only the
    // bursts.
    let hy = run("2dc", TranslationMode::Hybrid { in_tlb_mshr: true }, |_| {});
    assert!(hy.hw_walks > 0, "hybrid must use hardware walkers");
    let hybrid_slowdown = base.speedup_over(&hy);
    assert!(
        hybrid_slowdown < 1.15,
        "hybrid should track the baseline for regular apps, got {hybrid_slowdown:.2}x"
    );
}

#[test]
fn larger_l2_tlb_latency_degrades_gently() {
    let base = run("xsb", TranslationMode::HardwarePtw, |_| {});
    let fast = run(
        "xsb",
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        |c| {
            c.l2_tlb_latency = 40;
        },
    );
    let slow = run(
        "xsb",
        TranslationMode::SoftWalker { in_tlb_mshr: true },
        |c| {
            c.l2_tlb_latency = 200;
        },
    );
    let x_fast = fast.speedup_over(&base);
    let x_slow = slow.speedup_over(&base);
    assert!(x_fast >= x_slow, "{x_fast:.2} vs {x_slow:.2}");
    // At this reduced scale the queues are shallower than the paper's
    // 46-SM machine, so communication latency weighs relatively more
    // (the paper's full-scale ratio is 2.07/2.31 ≈ 0.90); the invariant
    // is a gentle decline with a still-substantial win at 200 cycles.
    assert!(
        x_slow > x_fast * 0.4 && x_slow > 1.5,
        "even at 200 cycles the win must persist: fast {x_fast:.2}x slow {x_slow:.2}x"
    );
}

#[test]
fn large_pages_reduce_walk_pressure() {
    let small = run("gups", TranslationMode::HardwarePtw, |_| {});
    let large = run("gups", TranslationMode::HardwarePtw, |c| {
        *c = std::mem::take(c).with_large_pages();
        c.sms = 12;
        c.max_warps = 12;
    });
    assert!(
        large.walk.translations < small.walk.translations,
        "2MB pages must cut walk count: {} vs {}",
        large.walk.translations,
        small.walk.translations
    );
}

#[test]
fn mpki_separates_irregular_from_regular() {
    let irr = run("gups", TranslationMode::HardwarePtw, |_| {});
    let reg = run("gemm", TranslationMode::HardwarePtw, |_| {});
    assert!(
        irr.l2_tlb_mpki() > 20.0 * reg.l2_tlb_mpki().max(0.01),
        "irregular MPKI {:.1} vs regular {:.3}",
        irr.l2_tlb_mpki(),
        reg.l2_tlb_mpki()
    );
}
