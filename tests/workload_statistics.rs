//! Statistical checks on the synthetic workload generators: the paper's
//! benchmark classification must be an emergent property of the address
//! streams, not an assertion.

use std::collections::BTreeSet;
use swgpu_types::{PageSize, SmId, WarpId};
use swgpu_workloads::{irregular, regular, table4, WorkloadClass, WorkloadParams};

fn params() -> WorkloadParams {
    WorkloadParams {
        sms: 4,
        warps_per_sm: 8,
        mem_instrs_per_warp: 32,
        footprint_percent: 100,
        page_size: PageSize::Size64K,
    }
}

/// Average distinct pages touched per warp load, sampled over several
/// warps — the quantity that drives TLB pressure.
fn avg_pages_per_load(spec: &swgpu_workloads::BenchmarkSpec) -> f64 {
    let wl = spec.build(params());
    let page = PageSize::Size64K;
    let mut total_pages = 0usize;
    let mut loads = 0usize;
    for smi in 0..2u16 {
        for wpi in 0..4u16 {
            for step in 0..16u64 {
                let addrs = wl.lane_addrs(SmId::new(smi), WarpId::new(wpi), step);
                let pages: BTreeSet<u64> = addrs.iter().map(|a| a.value() / page.bytes()).collect();
                total_pages += pages.len();
                loads += 1;
            }
        }
    }
    total_pages as f64 / loads as f64
}

#[test]
fn irregular_loads_touch_many_pages_regular_few() {
    for spec in table4() {
        let avg = avg_pages_per_load(&spec);
        match spec.class {
            WorkloadClass::Irregular => assert!(
                avg > 2.5,
                "{}: irregular benchmark only touches {avg:.1} pages/load",
                spec.abbr
            ),
            WorkloadClass::Regular => assert!(
                avg < 1.5,
                "{}: regular benchmark touches {avg:.1} pages/load",
                spec.abbr
            ),
        }
    }
}

#[test]
fn every_irregular_stream_exceeds_l2_tlb_reach() {
    // Sweeping the stream must visit more distinct pages than the 1024
    // L2 TLB entries can hold — otherwise the benchmark cannot pressure
    // the translation system (the Table 4 design requirement).
    for spec in irregular() {
        let wl = spec.build(params());
        let page = PageSize::Size64K;
        let mut pages = BTreeSet::new();
        for smi in 0..4u16 {
            for wpi in 0..8u16 {
                for step in 0..32u64 {
                    for a in wl.lane_addrs(SmId::new(smi), WarpId::new(wpi), step) {
                        pages.insert(a.value() / page.bytes());
                    }
                }
            }
        }
        // st2d and nw sweep structured fronts: they accumulate reach over
        // the whole kernel rather than instantly; everything else must
        // overflow the TLB within this short sample.
        let threshold = match spec.abbr {
            "st2d" | "nw" => 256,
            _ => 1024,
        };
        assert!(
            pages.len() > threshold,
            "{}: only {} distinct pages sampled",
            spec.abbr,
            pages.len()
        );
    }
}

#[test]
fn regular_streams_reuse_pages_within_an_sm() {
    // CTA tiling: within one SM, consecutive warp loads should hit the
    // same page most of the time (that is what keeps regular apps' L1
    // TLB hit rates high).
    for spec in regular() {
        let wl = spec.build(params());
        let page = PageSize::Size64K;
        let mut pages = BTreeSet::new();
        let mut loads = 0;
        for wpi in 0..8u16 {
            for step in 0..8u64 {
                for a in wl.lane_addrs(SmId::new(0), WarpId::new(wpi), step) {
                    pages.insert(a.value() / page.bytes());
                }
                loads += 1;
            }
        }
        assert!(
            pages.len() * 8 < loads,
            "{}: {} pages across {} loads — not tiled",
            spec.abbr,
            pages.len(),
            loads
        );
    }
}

#[test]
fn footprints_match_table4() {
    for spec in table4() {
        let wl = spec.build(WorkloadParams {
            footprint_percent: 100,
            ..params()
        });
        assert_eq!(
            wl.footprint_bytes(),
            spec.footprint_mb * 1024 * 1024,
            "{}",
            spec.abbr
        );
    }
}
