//! Property tests: the walk engines conserve requests — every request
//! enqueued on the hardware subsystem or a PW Warp completes exactly
//! once, with the correct translation, under arbitrary memory-latency
//! interleavings.

use proptest::prelude::*;
use softwalker::{PwWarpConfig, PwWarpUnit, SwWalkRequest};
use std::collections::BTreeMap;
use swgpu_mem::PhysMem;
use swgpu_pt::{AddressSpace, PageWalkCache};
use swgpu_ptw::{PtwConfig, PtwSubsystem, TableRef, WalkContext, WalkRequest};
use swgpu_types::{Asid, Cycle, DelayQueue, IdGen, MemReqId, PageSize, Pfn, Vpn};

fn build_space(pages: u64) -> (PhysMem, AddressSpace) {
    let mut mem = PhysMem::new();
    let mut space = AddressSpace::new(PageSize::Size64K, &mut mem);
    space.map_region(swgpu_types::VirtAddr::new(0), pages * 64 * 1024, &mut mem);
    (mem, space)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hardware subsystem: N requests with pseudo-random per-read
    /// latencies all complete exactly once with correct results, for any
    /// walker-pool size.
    #[test]
    fn ptw_subsystem_conserves_requests(
        vpns in prop::collection::vec(0u64..512, 1..40),
        walkers in 1usize..8,
        nha in any::<bool>(),
        lat_seed in 0u64..1000,
    ) {
        let (mem, space) = build_space(512);
        let expected: BTreeMap<u64, Pfn> = space.mappings().map(|(v, p)| (v.value(), p)).collect();
        let mut sub = PtwSubsystem::new(PtwConfig {
            walkers,
            pwb_entries: 4096,
            ..PtwConfig { nha, ..PtwConfig::default() }
        });
        let mut pwc = PageWalkCache::new(32);
        pwc.set_root(Asid::ZERO, space.radix().root());
        let mut ids = IdGen::new();
        for &v in &vpns {
            prop_assert!(sub.enqueue(WalkRequest::new(Vpn::new(v), Cycle::ZERO)));
        }
        let mut now = Cycle::ZERO;
        let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
        let mut results: Vec<(u64, Option<Pfn>)> = Vec::new();
        for i in 0..2_000_000u64 {
            {
                let mut ctx = WalkContext {
                    mem: &mem,
                    pwc: &mut pwc,
                    table: TableRef::Radix { root: space.radix().root() },
                };
                sub.tick(now, &mut ctx, &mut ids);
                while let Some(id) = inflight.pop_ready(now) {
                    sub.on_mem_response(id, now, &mut ctx, &mut ids);
                }
            }
            while let Some(req) = sub.pop_mem_request() {
                let lat = 1 + (lat_seed.wrapping_mul(i + 7) % 97);
                inflight.push(now + lat, req.id);
            }
            while let Some(c) = sub.pop_completion() {
                for r in c.results {
                    results.push((r.vpn.value(), r.pfn));
                }
            }
            if sub.is_idle() && inflight.is_empty() {
                break;
            }
            now = now.next();
        }
        prop_assert_eq!(results.len(), vpns.len(), "every request completes once");
        for (v, pfn) in results {
            prop_assert_eq!(pfn, expected.get(&v).copied(), "vpn {}", v);
        }
    }

    /// PW Warp unit: same conservation property for the software walker.
    #[test]
    fn pw_warp_conserves_requests(
        vpns in prop::collection::vec(0u64..512, 1..32),
        threads in 1usize..8,
        lat_seed in 0u64..1000,
    ) {
        let (mem, space) = build_space(512);
        let expected: BTreeMap<u64, Pfn> = space.mappings().map(|(v, p)| (v.value(), p)).collect();
        let mut unit = PwWarpUnit::new(PwWarpConfig {
            threads,
            softpwb_entries: vpns.len().max(1),
            ..PwWarpConfig::default()
        });
        let mut pwc = PageWalkCache::new(32);
        pwc.set_root(Asid::ZERO, space.radix().root());
        let mut ids = IdGen::new();
        for &v in &vpns {
            let start = pwc.lookup(Asid::ZERO, Vpn::new(v));
            prop_assert!(unit.accept(
                Cycle::ZERO,
                SwWalkRequest::new(Vpn::new(v), Cycle::ZERO, Cycle::ZERO, start.level, start.node_base),
            ));
        }
        let mut now = Cycle::ZERO;
        let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
        let mut results: Vec<(u64, Option<Pfn>)> = Vec::new();
        for i in 0..2_000_000u64 {
            unit.tick(now, &mut ids);
            while let Some(req) = unit.pop_mem_request() {
                let lat = 1 + (lat_seed.wrapping_mul(i + 13) % 97);
                inflight.push(now + lat, req.id);
            }
            while let Some(id) = inflight.pop_ready(now) {
                unit.on_mem_response(id, now, &mem, &mut pwc);
            }
            while let Some(c) = unit.pop_completion() {
                results.push((c.vpn.value(), c.pfn));
            }
            if unit.is_idle() && inflight.is_empty() {
                break;
            }
            now = now.next();
        }
        prop_assert_eq!(results.len(), vpns.len());
        for (v, pfn) in results {
            prop_assert_eq!(pfn, expected.get(&v).copied(), "vpn {}", v);
        }
        prop_assert_eq!(unit.stats().walks_completed as usize, vpns.len());
    }
}
