//! End-to-end properties of the deterministic fault-injection pipeline:
//!
//! * a zero-rate [`FaultPlan`] is a byte-level no-op (the seed alone must
//!   not perturb a run or add stats keys);
//! * an armed plan is reproducible — same seed, same schedule, same
//!   stats;
//! * **conservation** — every injected fault is either recovered in
//!   place (watchdog + retry) or escalated through the fault-buffer /
//!   driver-replay path; none leak to the UVM far-fault path and none
//!   are simply lost;
//! * **data-path conservation** — the same contract for the demand-paging
//!   fill pipeline: every dropped / duplicated / corrupted fill, lost
//!   shootdown and stalled driver request is recovered, escalated, or
//!   resolved by retiring the failing frame — and every corrupted fill
//!   payload is caught by the end-to-end checksum before any consumer
//!   trusts the frame.

use proptest::prelude::*;
use softwalker_repro::{
    by_abbr, FaultPlan, GpuConfig, GpuSimulator, MmConfig, SimStats, TranslationMode,
    WorkloadParams,
};

fn run_once(mode: TranslationMode, plan: FaultPlan) -> SimStats {
    let cfg = GpuConfig {
        sms: 4,
        max_warps: 8,
        mode,
        fault_plan: plan,
        ..GpuConfig::default()
    };
    let spec = by_abbr("gups").unwrap();
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: 3,
        footprint_percent: 20,
        page_size: cfg.page_size,
    });
    GpuSimulator::new(cfg, Box::new(wl)).run()
}

const MODES: [TranslationMode; 3] = [
    TranslationMode::HardwarePtw,
    TranslationMode::SoftWalker { in_tlb_mshr: true },
    TranslationMode::Hybrid { in_tlb_mshr: true },
];

#[test]
fn silent_corruption_storm_is_always_detected() {
    // A valid-but-wrong PTE (PFN bits flipped, valid bit intact) cannot
    // fail a walk on its own — only the parity nibble check at leaf
    // decode can catch it. Under a pure ValidButWrong storm every
    // injection must be detected; a shortfall means some walk consumed a
    // wrong translation silently.
    let plan = FaultPlan {
        seed: 0xbad,
        pte_silent_corrupt_rate: 0.10,
        ..FaultPlan::default()
    };
    for mode in MODES {
        let s = run_once(mode, plan.clone());
        assert!(!s.timed_out, "{mode:?}: storm run timed out");
        let f = &s.fault;
        assert!(
            f.injected_silent_corruptions > 0,
            "{mode:?}: storm injected nothing"
        );
        assert_eq!(
            f.detected_silent_corruptions, f.injected_silent_corruptions,
            "{mode:?}: a silent corruption slipped past the parity check"
        );
        assert_eq!(
            f.injected_total(),
            f.recovered_injections + f.escalated_injections,
            "{mode:?}: detected corruption left the conservation ledger"
        );
        assert_eq!(s.faults, 0, "{mode:?}: corruption leaked to UVM");
    }
}

#[test]
fn zero_rate_plan_is_a_byte_level_no_op() {
    for mode in MODES {
        let baseline = run_once(mode, FaultPlan::default());
        let seeded = run_once(
            mode,
            FaultPlan {
                seed: 0x5eed,
                ..FaultPlan::default()
            },
        );
        assert_eq!(
            baseline.to_json(),
            seeded.to_json(),
            "{mode:?}: a disarmed plan's seed leaked into the simulation"
        );
        assert!(
            !seeded.to_json().contains("fault_"),
            "{mode:?}: inert runs must not emit fault keys"
        );
    }
}

#[test]
fn armed_runs_reproduce_bit_identically() {
    let plan = FaultPlan {
        seed: 0xf00d,
        pte_corrupt_rate: 0.05,
        pte_silent_corrupt_rate: 0.05,
        mem_drop_rate: 0.05,
        mem_delay_rate: 0.05,
        stuck_thread_rate: 0.02,
        ..FaultPlan::default()
    };
    for mode in MODES {
        let a = run_once(mode, plan.clone());
        let b = run_once(mode, plan.clone());
        assert_eq!(a.to_json(), b.to_json(), "{mode:?}: same seed diverged");
        assert!(
            a.fault.injected_total() > 0,
            "{mode:?}: storm injected nothing"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For arbitrary (bounded) rates and seeds, on every walker
    /// configuration: the run drains, every injected fault is recovered
    /// or escalated, and no injected fault surfaces as a page fault.
    #[test]
    fn every_injected_fault_is_recovered_or_escalated(
        seed in 0u64..1_000_000,
        // Two independent per-mille rates packed into one draw (the
        // vendored proptest caps strategy tuples at six entries).
        corrupt_both_pm in 0u32..3600,
        drop_pm in 0u32..60,
        delay_pm in 0u32..60,
        stuck_pm in 0u32..25,
        mode_idx in 0usize..3,
    ) {
        let (corrupt_pm, silent_pm) = (corrupt_both_pm / 60, corrupt_both_pm % 60);
        let plan = FaultPlan {
            seed,
            pte_corrupt_rate: f64::from(corrupt_pm) / 1000.0,
            pte_silent_corrupt_rate: f64::from(silent_pm) / 1000.0,
            mem_drop_rate: f64::from(drop_pm) / 1000.0,
            mem_delay_rate: f64::from(delay_pm) / 1000.0,
            stuck_thread_rate: f64::from(stuck_pm) / 1000.0,
            ..FaultPlan::default()
        };
        let stats = run_once(MODES[mode_idx], plan);
        prop_assert!(!stats.timed_out, "run under injection timed out");
        let f = &stats.fault;
        prop_assert_eq!(
            f.injected_total(),
            f.recovered_injections + f.escalated_injections,
            "lost an injected fault: {:?}",
            f
        );
        prop_assert_eq!(
            f.detected_silent_corruptions, f.injected_silent_corruptions,
            "silent corruption consumed undetected: {:?}", f
        );
        prop_assert_eq!(f.unrecoverable_faults, 0, "driver replay failed: {:?}", f);
        prop_assert_eq!(stats.faults, 0, "injected fault leaked to UVM: {:?}", f);
        prop_assert_eq!(
            f.fault_replays, f.fault_escalations,
            "escalation without replay: {:?}", f
        );
    }

    /// Demand-paging storm: for arbitrary armed fill-pipeline sites,
    /// rates, seeds, budgets and walker kinds, the run drains, the
    /// data-path ledger balances (injected = recovered + escalated +
    /// retired), every corrupted payload is detected by the checksum,
    /// and the whole thing reproduces bit-identically.
    #[test]
    fn every_injected_fill_fault_is_recovered_escalated_or_retired(
        seed in 0u64..1_000_000,
        // Bits 0..5 arm drop / delay / duplicate / corrupt / shootdown /
        // driver-stall, all at the same per-mille rate (the vendored
        // proptest caps strategy tuples at six entries).
        sites in 1u8..64,
        rate_pm in 5u32..120,
        budget in prop::sample::select(vec![0u64, 64]),
        mode_idx in 0usize..3,
    ) {
        let rate = f64::from(rate_pm) / 1000.0;
        let on = |bit: u8| if sites & bit != 0 { rate } else { 0.0 };
        let plan = FaultPlan {
            seed,
            fill_drop_rate: on(1),
            fill_delay_rate: on(2),
            fill_duplicate_rate: on(4),
            fill_corrupt_rate: on(8),
            shootdown_drop_rate: on(16),
            driver_stuck_rate: on(32),
            ..FaultPlan::default()
        };
        let run = || {
            let mut cfg = GpuConfig::quick_test();
            cfg.mode = MODES[mode_idx];
            cfg.fault_plan = plan.clone();
            cfg.mm = MmConfig {
                resident_page_budget: budget,
                ..MmConfig::demand_paged()
            };
            let spec = by_abbr("gups").unwrap();
            let wl = spec.build(WorkloadParams {
                sms: cfg.sms,
                warps_per_sm: cfg.max_warps,
                mem_instrs_per_warp: 3,
                footprint_percent: 20,
                page_size: cfg.page_size,
            });
            GpuSimulator::new(cfg, Box::new(wl)).run()
        };
        let stats = run();
        prop_assert!(!stats.timed_out, "fill storm timed out");
        let f = &stats.mm_fault;
        prop_assert_eq!(
            f.injected_conserved(),
            f.recovered_fills + f.escalated_fills + f.retired_fills,
            "lost a data-path injection: {:?}",
            f
        );
        prop_assert_eq!(
            f.detected_corruptions, f.injected_fill_corruptions,
            "a corrupted fill payload slipped past the checksum: {:?}", f
        );
        prop_assert_eq!(stats.faults, 0, "fill fault leaked to UVM: {:?}", f);
        prop_assert_eq!(
            stats.sm.xlat_faults, 0,
            "fill fault surfaced as a translation fault: {:?}", f
        );
        prop_assert_eq!(stats.to_json(), run().to_json(), "same fill storm diverged");
    }
}
