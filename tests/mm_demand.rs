//! End-to-end properties of the demand-paged memory manager:
//!
//! * **first-touch accounting** — with no eviction pressure, the major
//!   fault count equals the number of distinct pages the workload
//!   touches (each page faults exactly once), and that count is a
//!   property of the workload, not of the walker configuration;
//! * **transparent coalescing** — promotion is pure bookkeeping: a run
//!   with coalescing on retires the same instructions in the same
//!   cycles as one with it off, differing only in the `mm_coalesces_*`
//!   counters;
//! * **eviction round-trips** — an oversubscribed run still drains and
//!   retires the same work, paying for it with re-faults;
//! * **determinism** — same cell, same stats bytes, across page sizes,
//!   budgets, fault seeds and frame scrambling (proptest), and across
//!   runner worker-pool widths (`--jobs 1` vs `--jobs 4`).

use proptest::prelude::*;
use softwalker_repro::{
    by_abbr, FaultPlan, GpuConfig, GpuSimulator, MmConfig, MmEvictPolicy, PageSize, SimStats,
    TranslationMode, WorkloadParams,
};

struct MmCell {
    abbr: &'static str,
    mode: TranslationMode,
    page_size: PageSize,
    footprint_percent: u64,
    budget: u64,
    coalesce: bool,
    scrambled: bool,
    evict: MmEvictPolicy,
    plan: FaultPlan,
}

impl MmCell {
    fn new(abbr: &'static str, mode: TranslationMode) -> Self {
        Self {
            abbr,
            mode,
            page_size: GpuConfig::default().page_size,
            footprint_percent: 20,
            budget: 0,
            coalesce: true,
            scrambled: false,
            evict: MmEvictPolicy::default(),
            plan: FaultPlan::default(),
        }
    }

    fn run(&self) -> SimStats {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = self.mode;
        cfg.page_size = self.page_size;
        cfg.scrambled_frames = self.scrambled;
        cfg.fault_plan = self.plan.clone();
        cfg.mm = MmConfig {
            resident_page_budget: self.budget,
            coalesce: self.coalesce,
            evict: self.evict,
            ..MmConfig::demand_paged()
        };
        let spec = by_abbr(self.abbr).expect("known benchmark");
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 3,
            footprint_percent: self.footprint_percent,
            page_size: cfg.page_size,
        });
        let stats = GpuSimulator::new(cfg, Box::new(wl)).run();
        assert!(
            !stats.timed_out,
            "{} / {:?}: timed out",
            self.abbr, self.mode
        );
        stats
    }
}

#[test]
fn first_touch_faults_equal_touched_pages() {
    for abbr in ["gups", "bfs", "spmv", "gemm", "2dc"] {
        // With an unbounded budget nothing is ever evicted, so the peak
        // resident count IS the distinct-page count of the workload —
        // and conservation says each of those pages faulted exactly once.
        let hw = MmCell::new(abbr, TranslationMode::HardwarePtw).run();
        assert!(hw.mm.major_faults > 0, "{abbr}: nothing faulted");
        assert_eq!(
            hw.mm.major_faults, hw.mm.resident_peak,
            "{abbr}: a touched page faulted more than once (or never)"
        );
        assert_eq!(hw.mm.major_faults, hw.mm.major_replays, "{abbr}");
        assert_eq!(hw.mm.evictions, 0, "{abbr}: unbounded budget evicted");
        assert_eq!(hw.faults, 0, "{abbr}: major fault leaked to UVM");
        // The touched-page set is a workload property: software walkers
        // must fault the exact same pages.
        let sw = MmCell::new(abbr, TranslationMode::SoftWalker { in_tlb_mshr: true }).run();
        assert_eq!(
            hw.mm.major_faults, sw.mm.major_faults,
            "{abbr}: fault count depends on the walker kind"
        );
        assert!(
            sw.mm.sw_fill_replays > 0,
            "{abbr}: software fills must run on PW Warps"
        );
    }
}

/// The coalescing recipe: one SM touching a streaming footprint of 4 KB
/// pages in ascending order, so frames are handed out contiguously.
fn coalescing_cell(coalesce: bool) -> SimStats {
    let mut cfg = GpuConfig::quick_test();
    cfg.sms = 1;
    cfg.max_warps = 8;
    cfg.page_size = PageSize::Size4K;
    cfg.scrambled_frames = false;
    cfg.mm = MmConfig {
        coalesce,
        ..MmConfig::demand_paged()
    };
    let spec = by_abbr("2dc").expect("known benchmark");
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: 96,
        footprint_percent: 100,
        page_size: cfg.page_size,
    });
    GpuSimulator::new(cfg, Box::new(wl)).run()
}

#[test]
fn coalescing_is_pure_bookkeeping() {
    let on = coalescing_cell(true);
    let off = coalescing_cell(false);
    assert!(on.mm.coalesces_64k > 0, "recipe must coalesce");
    assert_eq!(off.mm.coalesces_64k + off.mm.coalesces_2m, 0);
    // Promotion never moves data or rewrites PTEs, so everything the
    // simulation can observe — timing, translations, fault behaviour —
    // is identical with the knob on or off.
    assert_eq!(on.cycles, off.cycles, "coalescing changed timing");
    assert_eq!(on.instructions, off.instructions);
    assert_eq!(on.walk.translations, off.walk.translations);
    assert_eq!(on.mm.major_faults, off.mm.major_faults);
    assert_eq!(on.mm.evictions, off.mm.evictions);
    assert_eq!(on.faults, off.faults);
}

#[test]
fn oversubscribed_run_retires_the_same_work() {
    let unbounded = MmCell::new("gups", TranslationMode::SoftWalker { in_tlb_mshr: true }).run();
    let mut oversub = MmCell::new("gups", TranslationMode::SoftWalker { in_tlb_mshr: true });
    oversub.budget = 64;
    let oversub = oversub.run();
    // Eviction costs re-faults, never correctness: the same instructions
    // retire, and every extra fault is a round-trip through the driver.
    assert_eq!(unbounded.instructions, oversub.instructions);
    assert!(oversub.mm.evictions > 0, "budget 64 must evict");
    assert!(oversub.mm.resident_peak <= 64);
    assert!(
        oversub.mm.major_faults > unbounded.mm.major_faults,
        "re-touched evicted pages must re-fault"
    );
    assert_eq!(oversub.mm.major_faults, oversub.mm.major_replays);
    assert_eq!(oversub.faults, 0);
}

#[test]
fn shootdown_invalidates_every_matching_way_exactly_once() {
    use swgpu_tlb::{L2MissOutcome, L2TlbComplex, ReplPolicy, Tlb, TlbConfig, TlbMshrConfig};
    use swgpu_types::{Asid, Pfn, Vpn};
    // The eviction shootdown path trusts `invalidate` to report how many
    // Valid ways it dropped. With the duplicate-tag fill hazard fixed,
    // set uniqueness caps that at one: a resident translation is
    // invalidated exactly once, a second shootdown finds nothing, and a
    // never-cached page reports zero.
    let mut l2: L2TlbComplex<u32> = L2TlbComplex::new(
        TlbConfig {
            name: "shootdown".into(),
            entries: 64,
            assoc: 4,
            repl: ReplPolicy::Lru,
        },
        TlbMshrConfig {
            entries: 4,
            max_merges: 4,
        },
        8,
    );
    for v in 0..16u64 {
        assert!(matches!(
            l2.access(Asid::ZERO, Vpn::new(v), 0),
            L2MissOutcome::MissNewWalk
        ));
        let _ = l2.complete_walk(Asid::ZERO, Vpn::new(v), Pfn::new(v + 100));
    }
    for v in 0..16u64 {
        assert_eq!(
            l2.invalidate(Asid::ZERO, Vpn::new(v)),
            1,
            "vpn {v}: resident page"
        );
        assert_eq!(
            l2.invalidate(Asid::ZERO, Vpn::new(v)),
            0,
            "vpn {v}: stale second way"
        );
    }
    assert_eq!(
        l2.invalidate(Asid::ZERO, Vpn::new(999)),
        0,
        "never-cached page"
    );
    // Re-filling an already-valid VPN (the hazard's other face) must
    // reuse the way in place rather than install a twin — so the
    // shootdown count stays exactly one afterwards.
    let mut tlb = Tlb::new(TlbConfig {
        name: "refill".into(),
        entries: 8,
        assoc: 4,
        repl: ReplPolicy::Lru,
    });
    tlb.fill(Asid::ZERO, Vpn::new(3), Pfn::new(7));
    tlb.fill(Asid::ZERO, Vpn::new(3), Pfn::new(8));
    assert_eq!(
        tlb.invalidate(Asid::ZERO, Vpn::new(3)),
        1,
        "refill installed a twin way"
    );
}

#[test]
fn explicit_fifo_eviction_is_the_default_cycle_for_cycle() {
    // FIFO is the default policy: spelling it out must not perturb a
    // single stats byte, and must not move the config fingerprint (the
    // prebuilt sweep cache stays valid). LRU is a genuinely different
    // machine and must re-key the cache.
    let mut dflt = MmCell::new("gups", TranslationMode::SoftWalker { in_tlb_mshr: true });
    dflt.budget = 64;
    let mut fifo = MmCell::new("gups", TranslationMode::SoftWalker { in_tlb_mshr: true });
    fifo.budget = 64;
    fifo.evict = MmEvictPolicy::Fifo;
    assert_eq!(
        dflt.run().to_json(),
        fifo.run().to_json(),
        "explicit FIFO diverged from the default policy"
    );
    let mut base = GpuConfig::quick_test();
    base.mm = MmConfig::demand_paged();
    let mut named_fifo = base.clone();
    named_fifo.mm.evict = MmEvictPolicy::Fifo;
    assert_eq!(
        base.fingerprint(),
        named_fifo.fingerprint(),
        "naming the default eviction policy re-keyed the cache"
    );
    let mut lru = base.clone();
    lru.mm.evict = MmEvictPolicy::Lru;
    assert_ne!(
        base.fingerprint(),
        lru.fingerprint(),
        "LRU eviction must participate in the fingerprint"
    );
}

#[test]
fn lru_eviction_drains_and_conserves() {
    let make = || {
        let mut cell = MmCell::new("gups", TranslationMode::SoftWalker { in_tlb_mshr: true });
        cell.budget = 64;
        cell.evict = MmEvictPolicy::Lru;
        cell
    };
    let lru = make().run();
    // The clock hand changes *which* page goes, never the paging
    // contract: the budget holds, every fault is replayed, nothing
    // leaks to the UVM path, and the same instructions retire.
    assert!(lru.mm.evictions > 0, "budget 64 must evict under LRU");
    assert!(lru.mm.resident_peak <= 64);
    assert_eq!(lru.mm.major_faults, lru.mm.major_replays);
    assert_eq!(lru.faults, 0);
    let mut fifo = MmCell::new("gups", TranslationMode::SoftWalker { in_tlb_mshr: true });
    fifo.budget = 64;
    assert_eq!(
        lru.instructions,
        fifo.run().instructions,
        "eviction policy changed the retired work"
    );
    assert_eq!(
        lru.to_json(),
        make().run().to_json(),
        "LRU run is not deterministic"
    );
}

/// The data-path fault recipe shared by the `--jobs` width and
/// dense ⇔ event equivalence tests: every fill-pipeline site armed.
fn data_storm_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xfee1_dead,
        fill_drop_rate: 0.10,
        fill_delay_rate: 0.05,
        fill_duplicate_rate: 0.05,
        fill_corrupt_rate: 0.05,
        shootdown_drop_rate: 0.10,
        driver_stuck_rate: 0.05,
        ..FaultPlan::default()
    }
}

#[test]
fn runner_jobs_width_does_not_change_faulted_results() {
    // Fault-storm cells under demand paging are the most
    // schedule-sensitive thing the runner executes (watchdogs, backoff
    // retries, delayed replays): a worker-pool race would show here
    // first.
    use swgpu_bench::{Cell, Runner, Scale, SystemConfig};
    let spec = by_abbr("gups").expect("known benchmark");
    let cells: Vec<Cell> = [
        SystemConfig::Baseline,
        SystemConfig::SoftWalker,
        SystemConfig::Hybrid,
    ]
    .into_iter()
    .map(|sys| {
        let mut cfg = sys.build(Scale::Quick);
        cfg.mm = MmConfig {
            resident_page_budget: 64,
            ..MmConfig::demand_paged()
        };
        cfg.fault_plan = data_storm_plan();
        Cell::bench_scaled(&spec, cfg, 20)
    })
    .collect();
    let serial = Runner::new(1, None, false).run_cells(&cells);
    let parallel = Runner::new(4, None, false).run_cells(&cells);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "worker-pool width changed a faulted demand-paged result"
        );
        let f = &a.mm_fault;
        assert!(f.injected_conserved() > 0, "storm cell injected nothing");
        assert_eq!(
            f.injected_conserved(),
            f.recovered_fills + f.escalated_fills + f.retired_fills,
            "data-path conservation violated: {f:?}"
        );
    }
}

#[test]
fn runner_jobs_width_does_not_change_results() {
    use swgpu_bench::{Cell, Runner, Scale, SystemConfig};
    let spec = by_abbr("gups").expect("known benchmark");
    let cells: Vec<Cell> = [
        SystemConfig::Baseline,
        SystemConfig::SoftWalker,
        SystemConfig::Hybrid,
    ]
    .into_iter()
    .map(|sys| {
        let mut cfg = sys.build(Scale::Quick);
        cfg.mm = MmConfig {
            resident_page_budget: 256,
            ..MmConfig::demand_paged()
        };
        Cell::bench_scaled(&spec, cfg, 20)
    })
    .collect();
    let serial = Runner::new(1, None, false).run_cells(&cells);
    let parallel = Runner::new(4, None, false).run_cells(&cells);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "worker-pool width changed a demand-paged result"
        );
        assert!(a.mm.major_faults > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same cell twice — across page sizes, budgets, frame scrambling
    /// and fault seeds — must produce byte-identical stats JSON.
    #[test]
    fn demand_paged_runs_are_deterministic(
        abbr in prop::sample::select(vec!["gups", "gemm", "2dc"]),
        // Bit 0: 4 KB pages, bit 1: scrambled frames, bit 2: coalescing.
        knobs in 0u8..8,
        budget in prop::sample::select(vec![0u64, 32, 128]),
        seed in 1u64..1_000_000,
        faulty in any::<bool>(),
    ) {
        let (page_4k, scrambled, coalesce) =
            (knobs & 1 != 0, knobs & 2 != 0, knobs & 4 != 0);
        let mut cell = MmCell::new(abbr, TranslationMode::SoftWalker { in_tlb_mshr: true });
        // 4 KB pages multiply the page count 16x; shrink the footprint
        // so the proptest stays fast.
        if page_4k {
            cell.page_size = PageSize::Size4K;
            cell.footprint_percent = 10;
        }
        cell.budget = budget;
        cell.scrambled = scrambled;
        cell.coalesce = coalesce;
        if faulty {
            cell.plan = FaultPlan {
                seed,
                pte_corrupt_rate: 0.02,
                pte_silent_corrupt_rate: 0.02,
                mem_drop_rate: 0.02,
                ..FaultPlan::default()
            };
        }
        let a = cell.run();
        let b = cell.run();
        prop_assert_eq!(a.to_json(), b.to_json(), "same cell diverged");
        prop_assert!(a.mm.major_faults > 0);
        prop_assert_eq!(a.mm.major_faults, a.mm.major_replays);
    }
}
