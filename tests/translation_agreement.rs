//! Property tests: every translation mechanism in the repository — the
//! functional radix walk, the hashed page table, the timed hardware
//! walker and the software PW Warp — must agree on every mapping.

use proptest::prelude::*;
use softwalker::{PwWarpConfig, PwWarpUnit, SwWalkRequest};
use swgpu_mem::PhysMem;
use swgpu_pt::{AddressSpace, PageWalkCache};
use swgpu_ptw::{PtwConfig, PtwSubsystem, TableRef, WalkContext, WalkRequest};
use swgpu_types::{Asid, Cycle, DelayQueue, IdGen, MemReqId, PageSize, Pfn, Vpn};

/// Builds an address space with `n` pages mapped at scattered VPNs.
fn build_space(vpns: &[u64]) -> (PhysMem, AddressSpace, Vec<(Vpn, Pfn)>) {
    let mut mem = PhysMem::new();
    let mut space = AddressSpace::new_scrambled(PageSize::Size64K, &mut mem);
    let mut pairs = Vec::new();
    for &v in vpns {
        let vpn = Vpn::new(v);
        let pfn = space.map_page(vpn, &mut mem);
        pairs.push((vpn, pfn));
    }
    (mem, space, pairs)
}

/// Walks `vpn` through the timed hardware subsystem, returning its result.
fn hw_walk(space: &AddressSpace, mem: &PhysMem, vpn: Vpn) -> Option<Pfn> {
    let mut sub = PtwSubsystem::new(PtwConfig::default());
    let mut pwc = PageWalkCache::new(32);
    pwc.set_root(Asid::ZERO, space.radix().root());
    let mut ids = IdGen::new();
    sub.enqueue(WalkRequest::new(vpn, Cycle::ZERO));
    let mut now = Cycle::ZERO;
    let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
    for _ in 0..100_000 {
        {
            let mut ctx = WalkContext {
                mem,
                pwc: &mut pwc,
                table: TableRef::Radix {
                    root: space.radix().root(),
                },
            };
            sub.tick(now, &mut ctx, &mut ids);
            while let Some(id) = inflight.pop_ready(now) {
                sub.on_mem_response(id, now, &mut ctx, &mut ids);
            }
        }
        while let Some(req) = sub.pop_mem_request() {
            inflight.push(now + 20, req.id);
        }
        if let Some(c) = sub.pop_completion() {
            return c.results[0].pfn;
        }
        now = now.next();
    }
    panic!("hardware walk did not complete");
}

/// Walks `vpn` on a PW Warp, returning its result.
fn sw_walk(space: &AddressSpace, mem: &PhysMem, vpn: Vpn) -> Option<Pfn> {
    let mut unit = PwWarpUnit::new(PwWarpConfig::default());
    let mut pwc = PageWalkCache::new(32);
    pwc.set_root(Asid::ZERO, space.radix().root());
    let mut ids = IdGen::new();
    let start = pwc.lookup(Asid::ZERO, vpn);
    unit.accept(
        Cycle::ZERO,
        SwWalkRequest::new(vpn, Cycle::ZERO, Cycle::ZERO, start.level, start.node_base),
    );
    let mut now = Cycle::ZERO;
    let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
    for _ in 0..100_000 {
        unit.tick(now, &mut ids);
        while let Some(req) = unit.pop_mem_request() {
            inflight.push(now + 20, req.id);
        }
        while let Some(id) = inflight.pop_ready(now) {
            unit.on_mem_response(id, now, mem, &mut pwc);
        }
        if let Some(c) = unit.pop_completion() {
            return c.pfn;
        }
        now = now.next();
    }
    panic!("software walk did not complete");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_walkers_agree_on_mapped_pages(
        vpns in prop::collection::btree_set(0u64..(1 << 20), 1..24)
    ) {
        let vpns: Vec<u64> = vpns.into_iter().collect();
        let (mut mem, mut space, pairs) = build_space(&vpns);
        let hashed = space.build_hashed(&mut mem);
        for (vpn, pfn) in pairs {
            prop_assert_eq!(space.radix().translate(vpn, &mem), Some(pfn));
            prop_assert_eq!(hashed.lookup(vpn, &mem).0, Some(pfn));
            prop_assert_eq!(hw_walk(&space, &mem, vpn), Some(pfn));
            prop_assert_eq!(sw_walk(&space, &mem, vpn), Some(pfn));
        }
    }

    #[test]
    fn all_walkers_agree_on_unmapped_pages(
        vpns in prop::collection::btree_set(0u64..(1 << 20), 1..12),
        probe in (1u64 << 20)..(1 << 24)
    ) {
        let vpns: Vec<u64> = vpns.into_iter().collect();
        let (mut mem, mut space, _) = build_space(&vpns);
        let hashed = space.build_hashed(&mut mem);
        let vpn = Vpn::new(probe);
        prop_assert_eq!(space.radix().translate(vpn, &mem), None);
        prop_assert_eq!(hashed.lookup(vpn, &mem).0, None);
        prop_assert_eq!(hw_walk(&space, &mem, vpn), None);
        prop_assert_eq!(sw_walk(&space, &mem, vpn), None);
    }

    #[test]
    fn page_offsets_survive_translation(
        vpn in 0u64..(1 << 20),
        offset in 0u64..(64 * 1024)
    ) {
        let (mem, space, _) = build_space(&[vpn]);
        let page = PageSize::Size64K;
        let va = swgpu_types::VirtAddr::new(vpn * page.bytes() + offset);
        let pa = space.translate(va, &mem).expect("mapped");
        prop_assert_eq!(pa.value() % page.bytes(), offset);
    }
}
