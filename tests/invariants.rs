//! Property tests on structural invariants: the MSHR paths never lose or
//! duplicate a waiter, the In-TLB MSHR respects its budgets, and the
//! cache/DRAM pipeline conserves requests.

use proptest::prelude::*;
use swgpu_mem::{AccessKind, Cache, CacheConfig, Dram, DramConfig, MemReq};
use swgpu_tlb::{L2MissOutcome, L2TlbComplex, ReplPolicy, TlbConfig, TlbMshrConfig};
use swgpu_types::{Asid, Cycle, MemReqId, Pfn, PhysAddr, Vpn};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every accepted miss is released exactly once, no matter how
    /// requests interleave between the dedicated MSHRs and the In-TLB
    /// overflow.
    #[test]
    fn l2_complex_conserves_waiters(
        vpns in prop::collection::vec(0u64..64, 1..200),
        mshr_entries in 1usize..8,
        in_tlb_max in prop::sample::select(vec![0usize, 4, 16, 64]),
    ) {
        let mut l2: L2TlbComplex<u64> = L2TlbComplex::new(
            TlbConfig { name: "t".into(), entries: 64, assoc: 4, repl: ReplPolicy::Lru },
            TlbMshrConfig { entries: mshr_entries, max_merges: 4 },
            in_tlb_max,
        );
        let mut accepted = std::collections::HashMap::<u64, Vec<u64>>::new();
        let mut next_walks = Vec::new();
        for (tag, &v) in vpns.iter().enumerate() {
            match l2.access(Asid::ZERO, Vpn::new(v), tag as u64) {
                L2MissOutcome::Hit(_) => {}
                L2MissOutcome::MissNewWalk => {
                    accepted.entry(v).or_default().push(tag as u64);
                    next_walks.push(v);
                }
                L2MissOutcome::MissMerged => {
                    accepted.entry(v).or_default().push(tag as u64);
                }
                L2MissOutcome::MshrFailure => {}
            }
        }
        // Complete every launched walk; collect released waiters.
        let mut released = std::collections::HashMap::<u64, Vec<u64>>::new();
        for v in next_walks {
            let waiters = l2.complete_walk(Asid::ZERO, Vpn::new(v), Pfn::new(v + 1000));
            released.entry(v).or_default().extend(waiters);
        }
        prop_assert_eq!(accepted, released);
        prop_assert_eq!(l2.pending_in_tlb(), 0);
        prop_assert_eq!(l2.walks_in_flight(), 0);
    }

    /// The In-TLB overflow never exceeds its configured budget or the
    /// per-set capacity.
    #[test]
    fn in_tlb_budget_is_never_exceeded(
        vpns in prop::collection::vec(0u64..256, 1..300),
        in_tlb_max in prop::sample::select(vec![1usize, 3, 7, 32]),
    ) {
        let mut l2: L2TlbComplex<u32> = L2TlbComplex::new(
            TlbConfig { name: "t".into(), entries: 64, assoc: 4, repl: ReplPolicy::Lru },
            TlbMshrConfig { entries: 2, max_merges: 2 },
            in_tlb_max,
        );
        for (i, &v) in vpns.iter().enumerate() {
            let _ = l2.access(Asid::ZERO, Vpn::new(v), i as u32);
            prop_assert!(l2.pending_in_tlb() <= in_tlb_max);
        }
    }

    /// The cache answers exactly the requests it accepted — hits plus
    /// filled misses plus merges — and every fill it emits matches an
    /// outstanding MSHR.
    #[test]
    fn cache_conserves_requests(addrs in prop::collection::vec(0u64..4096, 1..300)) {
        let mut cache = Cache::new(CacheConfig {
            name: "t".into(),
            size_bytes: 4 * 128 * 2,
            assoc: 2,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 2,
            mshr_entries: 8,
            mshr_max_merges: 4,
        });
        let mut accepted = 0u64;
        let mut now = Cycle::ZERO;
        let mut responses = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            let req = MemReq::new(MemReqId(i as u64), PhysAddr::new(a & !3), AccessKind::Data);
            if cache.access(now, req).accepted() {
                accepted += 1;
            }
            // Service fills and drain responses aggressively.
            now += 3;
            while let Some(fill) = cache.pop_fill_request(now) {
                cache.complete_fill(now, fill);
            }
            while cache.pop_response(now).is_some() {
                responses += 1;
            }
        }
        // Final drain.
        now += 10;
        while let Some(fill) = cache.pop_fill_request(now) {
            cache.complete_fill(now, fill);
        }
        while cache.pop_response(now).is_some() {
            responses += 1;
        }
        prop_assert_eq!(accepted, responses);
        prop_assert!(cache.is_idle());
    }

    /// DRAM completes every request exactly once, in bounded time.
    #[test]
    fn dram_completes_everything(addrs in prop::collection::vec(0u64..65536, 1..200)) {
        let mut dram = Dram::new(DramConfig::default());
        let mut last_done = Cycle::ZERO;
        for (i, &a) in addrs.iter().enumerate() {
            let done = dram.access(
                Cycle::ZERO,
                MemReq::new(MemReqId(i as u64), PhysAddr::new(a), AccessKind::Data),
            );
            last_done = last_done.max(done);
        }
        let mut completed = 0;
        for c in 0..=last_done.value() {
            while dram.pop_complete(Cycle::new(c)).is_some() {
                completed += 1;
            }
        }
        prop_assert_eq!(completed, addrs.len());
        prop_assert!(dram.is_idle());
    }
}
