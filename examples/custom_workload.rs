//! Bring your own kernel: implement [`swgpu_sm::InstrSource`] to feed the
//! simulator a custom instruction stream — here, a pointer-chasing linked
//! list traversal, a pattern even harsher on the translation system than
//! the Table 4 suite (no two consecutive accesses share a page, and
//! accesses within a warp serialize).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use softwalker_repro::{summary, GpuConfig, GpuSimulator, TranslationMode};
use swgpu_sm::{InstrSource, WarpInstr};
use swgpu_types::{SmId, VirtAddr, WarpId};

/// A deterministic hash, used to scatter the "list nodes" across pages.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Each warp chases its own linked list: every load depends on the
/// previous one (modelled by a 1-instruction stream of single loads), and
/// every node lives on a different page.
struct PointerChase {
    footprint: u64,
    hops_per_warp: u32,
    progress: std::collections::HashMap<(SmId, WarpId), u32>,
}

impl InstrSource for PointerChase {
    fn next_instr(&mut self, sm: SmId, warp: WarpId) -> Option<WarpInstr> {
        let hop = self.progress.entry((sm, warp)).or_insert(0);
        if *hop >= self.hops_per_warp {
            return None;
        }
        *hop += 1;
        let seed = (sm.index() as u64) << 32 | (warp.index() as u64) << 16 | u64::from(*hop);
        // All 32 lanes follow 32 parallel lists — each lane's next node is
        // on its own page.
        let addrs = (0..32u64)
            .map(|lane| VirtAddr::new((mix(seed ^ (lane << 48)) % self.footprint) & !7))
            .collect();
        Some(WarpInstr::Load { addrs })
    }
}

fn main() {
    let footprint = 512 * 1024 * 1024;
    for (label, mode) in [
        ("baseline", TranslationMode::HardwarePtw),
        (
            "SoftWalker",
            TranslationMode::SoftWalker { in_tlb_mshr: true },
        ),
    ] {
        let cfg = GpuConfig {
            sms: 8,
            max_warps: 8,
            mode,
            ..GpuConfig::default()
        };
        let workload = PointerChase {
            footprint,
            hops_per_warp: 6,
            progress: Default::default(),
        };
        let stats = GpuSimulator::new_with_footprint(cfg, Box::new(workload), footprint).run();
        println!("{}\n", summary(&format!("pointer chase / {label}"), &stats));
    }
    println!(
        "Pointer chasing gives SoftWalker its best case: every hop is a TLB miss,\n\
         so walk throughput — not memory bandwidth — bounds progress."
    );
}
