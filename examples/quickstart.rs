//! Quickstart: run one irregular benchmark (GUPS) on the baseline GPU and
//! on SoftWalker, and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use softwalker_repro::{
    by_abbr, summary, GpuConfig, GpuSimulator, TranslationMode, WorkloadParams,
};

fn main() {
    // A reduced GPU (16 SMs) so the example finishes in seconds; drop the
    // overrides for the full Table 3 machine.
    let base_cfg = GpuConfig {
        sms: 16,
        max_warps: 16,
        ..GpuConfig::default()
    };

    let spec = by_abbr("gups").expect("gups is in the Table 4 registry");
    println!(
        "benchmark: {} ({} MB footprint, paper MPKI {:.0})\n",
        spec.name, spec.footprint_mb, spec.paper_mpki
    );

    let mut results = Vec::new();
    for (label, mode) in [
        ("baseline (32 hardware PTWs)", TranslationMode::HardwarePtw),
        (
            "SoftWalker (PW Warps + In-TLB MSHR)",
            TranslationMode::SoftWalker { in_tlb_mshr: true },
        ),
    ] {
        let cfg = GpuConfig {
            mode,
            ..base_cfg.clone()
        };
        let workload = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 4,
            footprint_percent: 100,
            page_size: cfg.page_size,
        });
        let stats = GpuSimulator::new(cfg, Box::new(workload)).run();
        println!("{}\n", summary(label, &stats));
        results.push(stats);
    }

    let speedup = results[1].speedup_over(&results[0]);
    println!("SoftWalker speedup over baseline: {speedup:.2}x");
    println!(
        "(the paper reports 2.24x on average across all 20 benchmarks, 3.94x for irregular ones)"
    );
}
