//! Graph analytics scenario: the workload class the paper's introduction
//! motivates. Runs a BFS-style frontier traversal under every translation
//! design the paper compares — baseline, NHA coalescing, FS-HPT,
//! SoftWalker (± In-TLB MSHR) and the hardware/software hybrid — and
//! prints the walk-latency decomposition that explains the ranking.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use softwalker_repro::{
    by_abbr, GpuConfig, GpuSimulator, SimStats, TranslationMode, WorkloadParams,
};

fn run(mode_label: &str, tweak: impl FnOnce(&mut GpuConfig)) -> (String, SimStats) {
    let mut cfg = GpuConfig {
        sms: 16,
        max_warps: 16,
        ..GpuConfig::default()
    };
    tweak(&mut cfg);
    let spec = by_abbr("bfs").expect("bfs is in the registry");
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: 4,
        footprint_percent: 100,
        page_size: cfg.page_size,
    });
    (
        mode_label.to_string(),
        GpuSimulator::new(cfg, Box::new(wl)).run(),
    )
}

fn main() {
    println!("bfs frontier traversal (1.4 GB graph, 64 KB pages)\n");
    let runs = vec![
        run("baseline 32 PTWs", |_| {}),
        run("NHA coalescing", |c| c.ptw.nha = true),
        run("FS-HPT hashed table", |c| {
            c.mode = TranslationMode::HashedPtw;
        }),
        run("SoftWalker w/o In-TLB", |c| {
            c.mode = TranslationMode::SoftWalker { in_tlb_mshr: false };
        }),
        run("SoftWalker", |c| {
            c.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
        }),
        run("SW Hybrid", |c| {
            c.mode = TranslationMode::Hybrid { in_tlb_mshr: true };
        }),
    ];

    let base_cycles = runs[0].1.cycles;
    println!(
        "{:<24} {:>9} {:>8} {:>12} {:>12} {:>12}",
        "design", "cycles", "speedup", "queue (cyc)", "access (cyc)", "MSHR fails"
    );
    for (label, s) in &runs {
        println!(
            "{:<24} {:>9} {:>7.2}x {:>12.0} {:>12.0} {:>12}",
            label,
            s.cycles,
            base_cycles as f64 / s.cycles as f64,
            s.walk.avg_queue(),
            s.walk.avg_access(),
            s.l2_mshr_failure_events,
        );
    }

    println!(
        "\nReading the table: the baseline's walk latency is almost all queueing \
         (limited walkers); NHA and FS-HPT trim work per walk but not walk \
         throughput; SoftWalker's ~{} concurrent software walkers eliminate the \
         queue, and the In-TLB MSHR lets enough misses be outstanding to feed them.",
        16 * 32
    );
}
