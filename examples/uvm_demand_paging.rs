//! UVM demand paging with SoftWalker (§5.5): a PW Warp that hits an
//! invalid PTE executes `FFB`, logging the fault for the UVM driver
//! exactly as a hardware walker would; the driver maps the page and the
//! translation is replayed.
//!
//! This example drives one PW Warp unit directly against a page table
//! with a hole, consumes the fault buffer as a UVM driver would, installs
//! the missing mapping, replays the walk and verifies the translation.
//!
//! ```sh
//! cargo run --release --example uvm_demand_paging
//! ```

use softwalker_repro::{PwWarpConfig, PwWarpUnit, SwWalkRequest};
use swgpu_mem::PhysMem;
use swgpu_pt::{AddressSpace, PageWalkCache};
use swgpu_types::{Asid, Cycle, DelayQueue, IdGen, MemReqId, PageSize, VirtAddr, Vpn};

/// Runs the unit until it drains, answering LDPT reads after 100 cycles.
fn drain(
    unit: &mut PwWarpUnit,
    mem: &PhysMem,
    pwc: &mut PageWalkCache,
    ids: &mut IdGen,
) -> Vec<softwalker::SwCompletion> {
    let mut now = Cycle::ZERO;
    let mut inflight: DelayQueue<MemReqId> = DelayQueue::new();
    let mut done = Vec::new();
    while !(unit.is_idle() && inflight.is_empty()) {
        unit.tick(now, ids);
        while let Some(req) = unit.pop_mem_request() {
            inflight.push(now + 100, req.id);
        }
        while let Some(id) = inflight.pop_ready(now) {
            unit.on_mem_response(id, now, mem, pwc);
        }
        while let Some(c) = unit.pop_completion() {
            done.push(c);
        }
        now = now.next();
    }
    done
}

fn main() {
    let mut mem = PhysMem::new();
    let mut space = AddressSpace::new(PageSize::Size64K, &mut mem);
    // Map 1 MB but leave everything above unmapped — the "cold" UVM pages.
    space.map_region(VirtAddr::new(0), 1024 * 1024, &mut mem);
    let mut pwc = PageWalkCache::new(32);
    pwc.set_root(Asid::ZERO, space.radix().root());
    let mut ids = IdGen::new();
    let mut unit = PwWarpUnit::new(PwWarpConfig::default());

    let cold_vpn = Vpn::new(512); // 32 MB in: not mapped yet
    println!("1. GPU kernel touches an unmapped page (vpn={cold_vpn})");

    let start = pwc.lookup(Asid::ZERO, cold_vpn);
    unit.accept(
        Cycle::ZERO,
        SwWalkRequest::new(
            cold_vpn,
            Cycle::ZERO,
            Cycle::ZERO,
            start.level,
            start.node_base,
        ),
    );
    let completions = drain(&mut unit, &mem, &mut pwc, &mut ids);
    assert_eq!(completions[0].pfn, None, "walk must fault");
    println!("2. PW Warp walk hits an invalid PTE and executes FFB");

    let faults = unit.drain_faults();
    assert_eq!(faults.len(), 1);
    println!(
        "3. UVM driver drains the fault buffer: vpn={} (faulting level {})",
        faults[0].vpn, faults[0].level
    );

    // The driver migrates the page and installs the PTE — identical to the
    // protocol used with hardware walkers (§5.5).
    let pfn = space.map_page(faults[0].vpn, &mut mem);
    println!("4. Driver maps the page to frame {pfn} and resumes the GPU");

    let start = pwc.lookup(Asid::ZERO, cold_vpn);
    unit.accept(
        Cycle::ZERO,
        SwWalkRequest::new(
            cold_vpn,
            Cycle::ZERO,
            Cycle::ZERO,
            start.level,
            start.node_base,
        ),
    );
    let replay = drain(&mut unit, &mem, &mut pwc, &mut ids);
    assert_eq!(replay[0].pfn, Some(pfn));
    println!(
        "5. Replayed walk translates vpn={} -> pfn={} via FL2T — demand paging complete",
        cold_vpn, pfn
    );
}
