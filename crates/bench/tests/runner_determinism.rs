//! Regression tests for the experiment runner's headline guarantees:
//!
//! 1. **Determinism under parallelism** — running the same cell matrix on
//!    one worker and on four workers yields byte-identical per-cell
//!    `SimStats::to_json` output.
//! 2. **Cache behaviour** — a second invocation over the same matrix
//!    resolves 100% from cache (in-process memo within a runner, on-disk
//!    artifacts across runners), with zero re-simulation.

use std::path::PathBuf;

use swgpu_bench::{Cell, Runner, Scale, SystemConfig};
use swgpu_workloads::by_abbr;

/// A fresh per-test scratch directory inside the workspace `target/`.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-artifacts")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Two benchmarks x two translation modes at quick scale — the smallest
/// matrix the acceptance criteria call for.
fn matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for abbr in ["bfs", "gemm"] {
        let spec = by_abbr(abbr).expect("known benchmark");
        for sys in [SystemConfig::Baseline, SystemConfig::SoftWalker] {
            cells.push(Cell::bench(&spec, sys.build(Scale::Quick)));
        }
    }
    cells
}

#[test]
fn results_are_byte_identical_across_jobs_1_and_4() {
    let cells = matrix();
    let serial = Runner::new(1, None, false).run_cells(&cells);
    let parallel = Runner::new(4, None, false).run_cells(&cells);
    assert_eq!(serial.len(), parallel.len());
    for ((s, p), cell) in serial.iter().zip(&parallel).zip(&cells) {
        assert_eq!(
            s.to_json(),
            p.to_json(),
            "cell {} diverged between --jobs 1 and --jobs 4",
            cell.key()
        );
    }
}

#[test]
fn second_invocation_is_all_memo_hits() {
    let cells = matrix();
    let runner = Runner::new(4, None, false);
    let first = runner.run_cells(&cells);
    assert_eq!(runner.counters().simulated as usize, cells.len());
    let second = runner.run_cells(&cells);
    let c = runner.counters();
    assert_eq!(c.simulated as usize, cells.len(), "nothing re-simulated");
    assert_eq!(c.memo_hits as usize, cells.len(), "100% memo hits");
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.to_json(), b.to_json());
    }
}

#[test]
fn disk_cache_round_trips_across_runners() {
    let dir = scratch("runner-disk");
    let cells = matrix();

    // First "binary": everything simulates and is persisted.
    let writer = Runner::new(4, Some(dir.clone()), false);
    let written = writer.run_cells(&cells);
    assert_eq!(writer.counters().simulated as usize, cells.len());

    // Second "binary" (fresh runner, same cache): 100% disk hits and
    // byte-identical stats — the fig16-then-fig18 baseline-reuse path.
    let reader = Runner::new(4, Some(dir.clone()), false);
    let reread = reader.run_cells(&cells);
    let c = reader.counters();
    assert_eq!(c.simulated, 0, "a cached cell must never re-simulate");
    assert_eq!(c.disk_hits as usize, cells.len(), "100% disk-cache hits");
    for (a, b) in written.iter().zip(&reread) {
        assert_eq!(a.to_json(), b.to_json(), "disk round-trip changed stats");
    }

    // --refresh ignores the cache and re-simulates.
    let refresher = Runner::new(4, Some(dir.clone()), true);
    refresher.run_cells(&cells);
    assert_eq!(refresher.counters().simulated as usize, cells.len());
    assert_eq!(refresher.counters().disk_hits, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_cells_disk_hit_with_traces_restored() {
    let dir = scratch("runner-trace");
    let spec = by_abbr("bfs").expect("known benchmark");
    let mut cfg = SystemConfig::Baseline.build(Scale::Quick);
    cfg.walk_trace_cap = 64;
    let cell = Cell::bench(&spec, cfg.clone());

    let first = Runner::new(2, Some(dir.clone()), false);
    let stats = first.run_cells(std::slice::from_ref(&cell));
    assert!(
        !stats[0].walk_trace.records().is_empty(),
        "the trace cap must produce records"
    );

    // A fresh runner serves the artifact from disk — schema v2 persists
    // the walk-trace payload — with zero re-simulation and the exact
    // records restored.
    let second = Runner::new(2, Some(dir.clone()), false);
    let again = second.run_cells(std::slice::from_ref(&cell));
    assert_eq!(second.counters().simulated, 0, "0 simulated on re-run");
    assert_eq!(second.counters().disk_hits, 1);
    assert_eq!(
        again[0].walk_trace.records(),
        stats[0].walk_trace.records(),
        "restored trace must match the live one"
    );
    assert_eq!(again[0].to_json(), stats[0].to_json());

    // The cached artifact only serves the cap it was recorded with: a
    // different cap is a different config fingerprint (hence key), so it
    // simulates fresh rather than serving mismatched traces.
    let mut other = cfg.clone();
    other.walk_trace_cap = 32;
    let other_cell = Cell::bench(&spec, other);
    let third = Runner::new(2, Some(dir.clone()), false);
    let other_stats = third.run_cells(std::slice::from_ref(&other_cell));
    assert_eq!(third.counters().simulated, 1);
    assert!(other_stats[0].walk_trace.records().len() <= 32);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_cells_are_deterministic_across_job_counts() {
    let cells: Vec<Cell> = swgpu_bench::runner::fig09_cells(Scale::Quick)
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    let serial = Runner::new(1, None, false).run_cells(&cells);
    let parallel = Runner::new(4, None, false).run_cells(&cells);
    for ((s, p), cell) in serial.iter().zip(&parallel).zip(&cells) {
        assert_eq!(
            s.to_json(),
            p.to_json(),
            "cell {} diverged between --jobs 1 and --jobs 4",
            cell.key()
        );
        assert_eq!(
            s.walk_trace.records(),
            p.walk_trace.records(),
            "cell {} traces diverged across job counts",
            cell.key()
        );
    }
}
