//! Zero-overhead guarantee of the observability layer:
//!
//! 1. **Obs off** (the default) — `SimStats::to_json` is byte-identical
//!    whether the binary was built with the obs crate linked or not (it
//!    always is; the guarantee is that the disabled path records nothing
//!    and perturbs nothing), across both translation modes and multiple
//!    benchmarks.
//! 2. **Obs on** — arming the layer changes *only* the attached report:
//!    `cycles` and every other simulation counter stay exactly the same,
//!    so a trace-enabled rerun of a figure is still the same experiment.

use swgpu_bench::{Cell, Runner, Scale, SystemConfig};
use swgpu_sim::ObsConfig;
use swgpu_workloads::by_abbr;

/// Two benchmarks x two translation modes at quick scale.
fn matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for abbr in ["bfs", "gemm"] {
        let spec = by_abbr(abbr).expect("known benchmark");
        for sys in [SystemConfig::Baseline, SystemConfig::SoftWalker] {
            cells.push(Cell::bench(&spec, sys.build(Scale::Quick)));
        }
    }
    cells
}

/// The same matrix with the observability layer armed on every cell.
fn observed_matrix() -> Vec<Cell> {
    matrix()
        .into_iter()
        .map(|mut c| {
            c.cfg.obs = ObsConfig::enabled();
            c
        })
        .collect()
}

#[test]
fn disabled_obs_attaches_nothing_and_stats_are_stable() {
    let cells = matrix();
    let a = Runner::new(1, None, false).run_cells(&cells);
    let b = Runner::new(2, None, false).run_cells(&cells);
    for ((x, y), cell) in a.iter().zip(&b).zip(&cells) {
        assert!(x.obs.is_none(), "obs-off run must not attach a report");
        assert_eq!(
            x.to_json(),
            y.to_json(),
            "obs-off stats diverged for cell {}",
            cell.key()
        );
    }
}

#[test]
fn enabling_obs_does_not_perturb_simulation_outcomes() {
    let plain = Runner::new(2, None, false).run_cells(&matrix());
    let observed = Runner::new(2, None, false).run_cells(&observed_matrix());
    for ((p, o), cell) in plain.iter().zip(&observed).zip(&matrix()) {
        assert_eq!(
            p.cycles,
            o.cycles,
            "observing changed cycle count for cell {}",
            cell.key()
        );
        // to_json excludes the obs payload by design, so byte-equality
        // here proves *every* serialized counter is untouched.
        assert_eq!(
            p.to_json(),
            o.to_json(),
            "observing changed simulation counters for cell {}",
            cell.key()
        );
        assert!(p.obs.is_none());
        let report = o.obs.as_deref().expect("observed run attaches a report");
        assert!(
            report.histogram("walk_total_cycles").is_some(),
            "report carries the walk latency histogram"
        );
        // The event kernel executes extra steps at obs sample boundaries
        // (so the gap-aware time series sees every interval), but the
        // schedule counters are derived from the event schedule alone —
        // arming obs must not move them.
        assert_eq!(
            p.kernel_steps,
            o.kernel_steps,
            "observing changed the executed-step count for cell {}",
            cell.key()
        );
        assert_eq!(
            p.kernel_cycles_skipped,
            o.kernel_cycles_skipped,
            "observing changed the skipped-cycle count for cell {}",
            cell.key()
        );
    }
}

#[test]
fn event_kernel_skips_cycles_on_every_matrix_cell() {
    // Not a tautology of the equality test above: these cells go through
    // the bench Runner (prebuilt memory images, artifact plumbing) and
    // still must exercise real cycle-skipping — 80-cycle L2 TLB hops and
    // DRAM round-trips dominate the quick-scale cells.
    let stats = Runner::new(2, None, false).run_cells(&matrix());
    for (s, cell) in stats.iter().zip(&matrix()) {
        assert!(
            s.kernel_cycles_skipped > 0,
            "event kernel never skipped on cell {}",
            cell.key()
        );
        assert_eq!(
            s.kernel_steps + s.kernel_cycles_skipped,
            s.cycles + 1,
            "schedule accounting does not tile cell {}",
            cell.key()
        );
    }
}
