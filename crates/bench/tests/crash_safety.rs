//! Crash-safety and fault-injection regression tests for the experiment
//! runner (the acceptance scenario of the robustness PR):
//!
//! 1. A batch containing a panicking cell **and** a corrupted disk-cache
//!    artifact still completes, reporting per-cell failures instead of
//!    aborting the whole run.
//! 2. Determinism survives fault injection: `--jobs 1` and `--jobs 4`
//!    produce byte-identical per-cell stats when every cell runs under an
//!    armed [`FaultPlan`], and every injected fault is accounted for.

use std::path::PathBuf;

use swgpu_bench::{Cell, CellWorkload, RunArtifact, Runner, Scale, SystemConfig};
use swgpu_types::FaultPlan;
use swgpu_workloads::by_abbr;

/// A fresh per-test scratch directory inside the workspace `target/`.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-artifacts")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn storm() -> FaultPlan {
    FaultPlan {
        seed: 0xdead_beef,
        pte_corrupt_rate: 0.05,
        mem_drop_rate: 0.05,
        mem_delay_rate: 0.05,
        stuck_thread_rate: 0.02,
        ..FaultPlan::default()
    }
}

/// Two benchmarks x two translation modes, every cell under the same
/// armed fault plan.
fn injected_matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for abbr in ["bfs", "gemm"] {
        let spec = by_abbr(abbr).expect("known benchmark");
        for sys in [SystemConfig::Baseline, SystemConfig::SoftWalker] {
            let mut cfg = sys.build(Scale::Quick);
            cfg.fault_plan = storm();
            cells.push(Cell::bench_scaled(&spec, cfg, 20));
        }
    }
    cells
}

#[test]
fn batch_with_panic_and_corrupt_artifact_completes() {
    let dir = scratch("crash-batch");

    // Seed the disk cache with one good cell, then corrupt its artifact
    // in place (simulating a crash before atomic writes existed).
    let spec = by_abbr("gups").expect("known benchmark");
    let corrupted = Cell::bench_scaled(&spec, SystemConfig::Baseline.build(Scale::Quick), 20);
    Runner::new(1, Some(dir.clone()), false).run_cells(std::slice::from_ref(&corrupted));
    let path = RunArtifact::path_in(&dir, &corrupted.key());
    let full = std::fs::read_to_string(&path).expect("seeded artifact");
    std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");

    // A cell whose workload cannot be rebuilt panics inside simulate().
    let poisoned = Cell {
        cfg: SystemConfig::Baseline.build(Scale::Quick),
        workload: CellWorkload::Bench {
            abbr: "no-such-benchmark".into(),
            footprint_percent: 20,
        },
    };
    let healthy = Cell::bench_scaled(&spec, SystemConfig::SoftWalker.build(Scale::Quick), 20);

    let batch = [corrupted.clone(), poisoned.clone(), healthy.clone()];
    let runner = Runner::new(2, Some(dir.clone()), false);
    let results = runner.run_cells_checked(&batch);

    assert_eq!(results.len(), 3, "every cell must get a verdict");
    assert!(results[0].is_ok(), "quarantined cell must re-simulate");
    let err = results[1].as_ref().expect_err("poisoned cell must fail");
    assert_eq!(err.key, poisoned.key());
    assert!(
        err.message.contains("no-such-benchmark"),
        "failure must carry the panic message, got {:?}",
        err.message
    );
    assert!(results[2].is_ok(), "a failure must not sink later cells");

    let c = runner.counters();
    assert_eq!(c.failed, 1, "exactly the poisoned cell failed");
    assert_eq!(c.quarantined, 1, "exactly the torn artifact quarantined");
    assert!(
        path.with_extension("json.corrupt").exists(),
        "corrupt artifact must be preserved for post-mortem"
    );

    // The quarantined cell was re-simulated and re-persisted: a fresh
    // runner serves it straight from disk.
    let reread = Runner::new(1, Some(dir.clone()), false);
    reread.run_cells(std::slice::from_ref(&corrupted));
    assert_eq!(reread.counters().disk_hits, 1);
    assert_eq!(reread.counters().simulated, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_injection_is_deterministic_across_jobs_1_and_4() {
    let cells = injected_matrix();
    let serial = Runner::new(1, None, false).run_cells(&cells);
    let parallel = Runner::new(4, None, false).run_cells(&cells);
    assert_eq!(serial.len(), parallel.len());
    for ((s, p), cell) in serial.iter().zip(&parallel).zip(&cells) {
        assert_eq!(
            s.to_json(),
            p.to_json(),
            "cell {} diverged between --jobs 1 and --jobs 4 under injection",
            cell.key()
        );
        // The storm actually fired and nothing leaked.
        let f = &s.fault;
        assert!(
            f.injected_total() > 0,
            "cell {} injected nothing",
            cell.key()
        );
        assert_eq!(
            f.injected_total(),
            f.recovered_injections + f.escalated_injections,
            "cell {} lost an injected fault",
            cell.key()
        );
        assert_eq!(f.unrecoverable_faults, 0);
        assert!(!s.timed_out);
    }
}
