//! Artifact schema-migration regression tests: old-schema, truncated,
//! and trace-cap-mismatched artifacts must all be *re-simulated* — never
//! surfaced as hard errors — and the schema-v7 trace/obs payloads must
//! make a repeat of the Figure 9 cell set (plain and observed) fully
//! cache-served.

use std::path::PathBuf;

use swgpu_bench::runner::{fig09_cells, fig09_cells_observed};
use swgpu_bench::{Cell, RunArtifact, Runner, Scale, SystemConfig};
use swgpu_workloads::by_abbr;

/// A fresh per-test scratch directory inside the workspace `target/`.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-artifacts")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn sample_cell() -> Cell {
    let spec = by_abbr("gemm").expect("known benchmark");
    Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick))
}

#[test]
fn old_schema_artifacts_are_resimulated_not_errors() {
    // Rewrites cover every prior generation: v6 (schema digit only —
    // the layout differs just by the multi-tenant stats keys), v5
    // (digit only — streaming-trace obs keys), v4 (digit only —
    // demand-paging / silent-corruption stats keys), v3 (digit only —
    // kernel counters), v2 (digit only, from before obs) and v1 (no
    // trace_cap / walk_trace fields either).
    for (tag, downgrade) in [
        ("migrate-v6", {
            fn v6(s: &str) -> String {
                s.replacen("\"schema\":7", "\"schema\":6", 1)
            }
            v6 as fn(&str) -> String
        }),
        ("migrate-v5", {
            fn v5(s: &str) -> String {
                s.replacen("\"schema\":7", "\"schema\":5", 1)
            }
            v5 as fn(&str) -> String
        }),
        ("migrate-v4", {
            fn v4(s: &str) -> String {
                s.replacen("\"schema\":7", "\"schema\":4", 1)
            }
            v4 as fn(&str) -> String
        }),
        ("migrate-v3", {
            fn v3(s: &str) -> String {
                s.replacen("\"schema\":7", "\"schema\":3", 1)
            }
            v3 as fn(&str) -> String
        }),
        ("migrate-v2", {
            fn v2(s: &str) -> String {
                s.replacen("\"schema\":7", "\"schema\":2", 1)
            }
            v2 as fn(&str) -> String
        }),
        ("migrate-v1", {
            fn v1(s: &str) -> String {
                s.replacen("\"schema\":7", "\"schema\":1", 1)
                    .replacen("\"trace_cap\":0,", "", 1)
            }
            v1 as fn(&str) -> String
        }),
    ] {
        let dir = scratch(tag);
        let cell = sample_cell();
        let key = cell.key();

        // Seed a valid v7 artifact, then rewrite it as an old-schema file.
        let writer = Runner::new(1, Some(dir.clone()), false);
        let stats = writer.get(&cell);
        let path = RunArtifact::path_in(&dir, &key);
        let current = std::fs::read_to_string(&path).unwrap();
        let old = downgrade(&current);
        assert_ne!(old, current, "downgrade must take effect ({tag})");
        std::fs::write(&path, old).unwrap();

        let reader = Runner::new(1, Some(dir.clone()), false);
        let again = reader.get(&cell);
        let c = reader.counters();
        assert_eq!(c.simulated, 1, "stale schema re-simulates ({tag})");
        assert_eq!(c.stale, 1, "{tag}");
        assert_eq!(c.quarantined, 0, "old schemas are not corruption ({tag})");
        assert_eq!(c.disk_hits, 0, "{tag}");
        assert_eq!(again.to_json(), stats.to_json());
        // The entry was silently upgraded in place: no *.corrupt files,
        // and the next runner disk-hits on the fresh v7 artifact.
        assert!(!path.with_extension("json.corrupt").exists());
        let upgraded = Runner::new(1, Some(dir.clone()), false);
        upgraded.get(&cell);
        assert_eq!(upgraded.counters().disk_hits, 1, "{tag}");

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_artifact_is_quarantined_and_resimulated() {
    let dir = scratch("migrate-truncated");
    // Use a trace-capped cell so the truncation can land inside the
    // walk-trace payload as well as the stats object.
    let (cell, _) = fig09_cells(Scale::Quick).swap_remove(0);
    let key = cell.key();

    let writer = Runner::new(1, Some(dir.clone()), false);
    let stats = writer.get(&cell);
    let path = RunArtifact::path_in(&dir, &key);
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() - full.len() / 4]).unwrap();

    let reader = Runner::new(1, Some(dir.clone()), false);
    let again = reader.get(&cell);
    let c = reader.counters();
    assert_eq!(c.simulated, 1);
    assert_eq!(c.quarantined, 1, "torn files are quarantined");
    assert_eq!(c.stale, 0);
    assert_eq!(again.to_json(), stats.to_json());
    assert!(path.with_extension("json.corrupt").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_cap_mismatched_artifact_is_resimulated() {
    let dir = scratch("migrate-capmismatch");
    let (cell, _) = fig09_cells(Scale::Quick).swap_remove(2);
    let cap = cell.cfg.walk_trace_cap;
    assert!(cap > 0, "fig09 cells are trace-capped");
    let key = cell.key();

    let writer = Runner::new(1, Some(dir.clone()), false);
    let stats = writer.get(&cell);
    let path = RunArtifact::path_in(&dir, &key);
    // Rewrite the stored cap: the file stays a perfectly parseable v7
    // artifact, but it no longer answers this cell's trace request.
    let json = std::fs::read_to_string(&path).unwrap();
    let mismatched = json.replacen(
        &format!("\"trace_cap\":{cap}"),
        &format!("\"trace_cap\":{}", cap / 2),
        1,
    );
    assert_ne!(json, mismatched, "cap rewrite must take effect");
    std::fs::write(&path, mismatched).unwrap();

    let reader = Runner::new(1, Some(dir.clone()), false);
    let again = reader.get(&cell);
    let c = reader.counters();
    assert_eq!(c.simulated, 1, "cap mismatch re-simulates");
    assert_eq!(c.stale, 1);
    assert_eq!(c.quarantined, 0, "a cap mismatch is not corruption");
    assert_eq!(again.to_json(), stats.to_json());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_stripped_artifact_for_observed_cell_is_resimulated() {
    let dir = scratch("migrate-obs-stripped");
    let (cell, _) = fig09_cells_observed(Scale::Quick).swap_remove(0);
    assert!(cell.cfg.obs.enabled, "observed fig09 cells arm obs");
    let key = cell.key();

    let writer = Runner::new(1, Some(dir.clone()), false);
    let stats = writer.get(&cell);
    assert!(stats.obs.is_some(), "observed run carries a report");
    let path = RunArtifact::path_in(&dir, &key);
    // Excise the obs payload: the file stays a parseable v7 artifact
    // (obs is optional) but no longer answers this observed cell.
    let json = std::fs::read_to_string(&path).unwrap();
    let start = json.find(",\"obs\":").expect("obs payload present");
    let stripped = format!("{}}}", &json[..start]);
    std::fs::write(&path, stripped).unwrap();

    let reader = Runner::new(1, Some(dir.clone()), false);
    let again = reader.get(&cell);
    let c = reader.counters();
    assert_eq!(c.simulated, 1, "missing obs payload re-simulates");
    assert_eq!(c.stale, 1);
    assert_eq!(c.quarantined, 0, "a stripped payload is not corruption");
    assert_eq!(again.to_json(), stats.to_json());
    assert_eq!(again.obs, stats.obs, "re-simulated report matches");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_run_of_observed_fig09_cells_simulates_nothing() {
    let dir = scratch("migrate-fig09-obs-rerun");
    let cells: Vec<Cell> = fig09_cells_observed(Scale::Quick)
        .into_iter()
        .map(|(c, _)| c)
        .collect();

    let first = Runner::new(2, Some(dir.clone()), false);
    let a = first.run_cells(&cells);
    assert_eq!(first.counters().simulated as usize, cells.len());

    // Re-running fig09_timeline --trace-out must serve every observed
    // cell from disk, round-tripping the full obs report.
    let second = Runner::new(2, Some(dir.clone()), false);
    let b = second.run_cells(&cells);
    let c = second.counters();
    assert_eq!(c.simulated, 0, "0 simulated cells on the second run");
    assert_eq!(c.disk_hits as usize, cells.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_json(), y.to_json());
        assert!(y.obs.is_some());
        assert_eq!(x.obs, y.obs, "obs report survives the disk round-trip");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_run_of_fig09_cells_simulates_nothing() {
    let dir = scratch("migrate-fig09-rerun");
    let cells: Vec<Cell> = fig09_cells(Scale::Quick)
        .into_iter()
        .map(|(c, _)| c)
        .collect();

    let first = Runner::new(2, Some(dir.clone()), false);
    let a = first.run_cells(&cells);
    assert_eq!(first.counters().simulated as usize, cells.len());

    // The acceptance criterion: a second invocation (fresh runner, same
    // cache — i.e. re-running the fig09_timeline binary) simulates zero
    // cells even though every cell requests walk traces.
    let second = Runner::new(2, Some(dir.clone()), false);
    let b = second.run_cells(&cells);
    let c = second.counters();
    assert_eq!(c.simulated, 0, "0 simulated cells on the second run");
    assert_eq!(c.disk_hits as usize, cells.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_json(), y.to_json());
        assert_eq!(x.walk_trace.records(), y.walk_trace.records());
    }

    std::fs::remove_dir_all(&dir).ok();
}
