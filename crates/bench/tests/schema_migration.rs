//! Artifact schema-migration regression tests: old-schema, truncated,
//! and trace-cap-mismatched artifacts must all be *re-simulated* — never
//! surfaced as hard errors — and the schema-v2 trace payload must make a
//! repeat of the Figure 9 (trace-capped) cell set fully cache-served.

use std::path::PathBuf;

use swgpu_bench::runner::fig09_cells;
use swgpu_bench::{Cell, RunArtifact, Runner, Scale, SystemConfig};
use swgpu_workloads::by_abbr;

/// A fresh per-test scratch directory inside the workspace `target/`.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-artifacts")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn sample_cell() -> Cell {
    let spec = by_abbr("gemm").expect("known benchmark");
    Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick))
}

#[test]
fn v1_artifact_is_resimulated_not_an_error() {
    let dir = scratch("migrate-v1");
    let cell = sample_cell();
    let key = cell.key();

    // Seed a valid v2 artifact, then rewrite it as a v1 file: the v1
    // schema had no trace_cap / walk_trace fields and schema:1.
    let writer = Runner::new(1, Some(dir.clone()), false);
    let stats = writer.get(&cell);
    let path = RunArtifact::path_in(&dir, &key);
    let v2 = std::fs::read_to_string(&path).unwrap();
    let v1 = v2
        .replacen("\"schema\":2", "\"schema\":1", 1)
        .replacen("\"trace_cap\":0,", "", 1);
    std::fs::write(&path, v1).unwrap();

    let reader = Runner::new(1, Some(dir.clone()), false);
    let again = reader.get(&cell);
    let c = reader.counters();
    assert_eq!(c.simulated, 1, "stale schema re-simulates");
    assert_eq!(c.stale, 1);
    assert_eq!(c.quarantined, 0, "old schemas are not corruption");
    assert_eq!(c.disk_hits, 0);
    assert_eq!(again.to_json(), stats.to_json());
    // The entry was silently upgraded in place: no *.corrupt files, and
    // the next runner disk-hits on the fresh v2 artifact.
    assert!(!path.with_extension("json.corrupt").exists());
    let upgraded = Runner::new(1, Some(dir.clone()), false);
    upgraded.get(&cell);
    assert_eq!(upgraded.counters().disk_hits, 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_v2_artifact_is_quarantined_and_resimulated() {
    let dir = scratch("migrate-truncated");
    // Use a trace-capped cell so the truncation can land inside the
    // walk-trace payload as well as the stats object.
    let (cell, _) = fig09_cells(Scale::Quick).swap_remove(0);
    let key = cell.key();

    let writer = Runner::new(1, Some(dir.clone()), false);
    let stats = writer.get(&cell);
    let path = RunArtifact::path_in(&dir, &key);
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() - full.len() / 4]).unwrap();

    let reader = Runner::new(1, Some(dir.clone()), false);
    let again = reader.get(&cell);
    let c = reader.counters();
    assert_eq!(c.simulated, 1);
    assert_eq!(c.quarantined, 1, "torn files are quarantined");
    assert_eq!(c.stale, 0);
    assert_eq!(again.to_json(), stats.to_json());
    assert!(path.with_extension("json.corrupt").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_cap_mismatched_v2_artifact_is_resimulated() {
    let dir = scratch("migrate-capmismatch");
    let (cell, _) = fig09_cells(Scale::Quick).swap_remove(2);
    let cap = cell.cfg.walk_trace_cap;
    assert!(cap > 0, "fig09 cells are trace-capped");
    let key = cell.key();

    let writer = Runner::new(1, Some(dir.clone()), false);
    let stats = writer.get(&cell);
    let path = RunArtifact::path_in(&dir, &key);
    // Rewrite the stored cap: the file stays a perfectly parseable v2
    // artifact, but it no longer answers this cell's trace request.
    let json = std::fs::read_to_string(&path).unwrap();
    let mismatched = json.replacen(
        &format!("\"trace_cap\":{cap}"),
        &format!("\"trace_cap\":{}", cap / 2),
        1,
    );
    assert_ne!(json, mismatched, "cap rewrite must take effect");
    std::fs::write(&path, mismatched).unwrap();

    let reader = Runner::new(1, Some(dir.clone()), false);
    let again = reader.get(&cell);
    let c = reader.counters();
    assert_eq!(c.simulated, 1, "cap mismatch re-simulates");
    assert_eq!(c.stale, 1);
    assert_eq!(c.quarantined, 0, "a cap mismatch is not corruption");
    assert_eq!(again.to_json(), stats.to_json());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_run_of_fig09_cells_simulates_nothing() {
    let dir = scratch("migrate-fig09-rerun");
    let cells: Vec<Cell> = fig09_cells(Scale::Quick)
        .into_iter()
        .map(|(c, _)| c)
        .collect();

    let first = Runner::new(2, Some(dir.clone()), false);
    let a = first.run_cells(&cells);
    assert_eq!(first.counters().simulated as usize, cells.len());

    // The acceptance criterion: a second invocation (fresh runner, same
    // cache — i.e. re-running the fig09_timeline binary) simulates zero
    // cells even though every cell requests walk traces.
    let second = Runner::new(2, Some(dir.clone()), false);
    let b = second.run_cells(&cells);
    let c = second.counters();
    assert_eq!(c.simulated, 0, "0 simulated cells on the second run");
    assert_eq!(c.disk_hits as usize, cells.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_json(), y.to_json());
        assert_eq!(x.walk_trace.records(), y.walk_trace.records());
    }

    std::fs::remove_dir_all(&dir).ok();
}
