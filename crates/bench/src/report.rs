//! Table formatting and summary statistics for the figure harnesses.

/// Geometric mean of a slice of positive values (the paper's averages for
/// speedups are geometric-mean-like "average speedup" numbers).
///
/// # Example
///
/// ```
/// let g = swgpu_bench::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple aligned-column table that also knows how to dump itself as
/// CSV — every harness prints one of these.
///
/// # Example
///
/// ```
/// let mut t = swgpu_bench::Table::new(vec!["bench".into(), "speedup".into()]);
/// t.row(vec!["gups".into(), "4.52".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("gups"));
/// assert!(t.to_csv().starts_with("bench,speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned human-readable table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (headers + rows). Cells containing commas, double
    /// quotes, or newlines are quoted per RFC 4180 (embedded quotes are
    /// doubled); plain cells pass through unquoted.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for line in std::iter::once(&self.headers).chain(&self.rows) {
            for (j, cell) in line.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&escape(cell));
            }
            out.push('\n');
        }
        out
    }

    /// Prints the table, optionally followed by its CSV form.
    pub fn print(&self, csv: bool) {
        println!("{}", self.render());
        if csv {
            println!("--- csv ---");
            println!("{}", self.to_csv());
        }
    }
}

/// Formats a speedup as `1.23x`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a".into(), "long_header".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "), "{:?}", lines[0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(vec!["x".into(), "y".into()]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_cells_per_rfc4180() {
        let mut t = Table::new(vec!["metric".into(), "value".into()]);
        t.row(vec!["queue, then access".into(), "95%".into()]);
        t.row(vec!["say \"hi\"".into(), "a\nb".into()]);
        assert_eq!(
            t.to_csv(),
            "metric,value\n\"queue, then access\",95%\n\"say \"\"hi\"\"\",\"a\nb\"\n"
        );
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_x(2.239), "2.24x");
        assert_eq!(fmt_pct(0.728), "72.8%");
    }
}
