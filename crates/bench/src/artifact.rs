//! On-disk JSON artifacts for completed simulation runs.
//!
//! Every cell the experiment runner executes is persisted under the run
//! cache directory (default `target/swgpu-runs/`) as one JSON file named
//! `<cell key>.json`. The file doubles as the cross-binary baseline
//! cache — running `fig16` then `fig18` re-simulates nothing — and as a
//! machine-readable artifact for external plotting/analysis tooling.
//!
//! Schema (version 7, flat except for the nested stats object and the
//! trailing walk-trace / observability payloads):
//!
//! ```json
//! {
//!   "schema": 7,
//!   "key": "bfs-fp100-a1b2c3d4e5f60718",
//!   "workload": "bfs-fp100",
//!   "config": "a1b2c3d4e5f60718",
//!   "trace_cap": 4096,
//!   "stats": { ...SimStats::to_json()... },
//!   "walk_trace": [[vpn, issued, started, completed, walker], ...],
//!   "obs": { ...swgpu_obs::ObsReport::to_json()... }
//! }
//! ```
//!
//! `config` is [`swgpu_sim::GpuConfig::fingerprint`]; `stats` round-trips
//! through [`swgpu_sim::SimStats::from_json`]. `trace_cap` records the
//! `GpuConfig::walk_trace_cap` the run used; `walk_trace` is the
//! [`swgpu_sim::WalkTrace`] payload and is present exactly when
//! `0 < trace_cap <= MAX_TRACE_RECORDS` (it stays at the top level —
//! after the stats — because the stats object must remain flat for its
//! comma-splitting parser). `obs` is the [`swgpu_sim::ObsReport`] of an
//! observability-enabled run and is present exactly when the run armed
//! [`swgpu_sim::ObsConfig`]; obs-off artifacts serialize byte-identically
//! to schema v2 modulo the version digit. Unknown top-level keys are
//! ignored on read so the schema can grow.
//!
//! Migration: artifacts with any other schema version (v6 from before
//! the multi-tenant address spaces' `tenant*` / `fairness_index` stats
//! keys, v5 from before the streaming trace pipeline's
//! `spans_dropped_by_kind` / `spans_flushed` obs keys, v4 from before
//! the demand-paged memory manager's `mm_*` / silent-corruption stats
//! keys, v3 from before the event-scheduled kernel's `kernel_steps` /
//! `kernel_cycles_skipped` stats counters, v2 from before the
//! observability layer, v1 from before persisted traces) probe as
//! [`LoadOutcome::Stale`] — the runner silently re-simulates and
//! overwrites them; they are *not* quarantined like corrupt files.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use swgpu_sim::{ObsReport, SimStats, WalkTrace};

/// Current artifact schema version. Readers report other versions as
/// stale (the runner then just re-simulates and overwrites).
pub const SCHEMA_VERSION: u32 = 7;

/// Upper bound on persisted walk-trace records. Runs configured with a
/// larger `walk_trace_cap` write their artifact *without* the payload, so
/// absurd caps cannot bloat the cache; such artifacts never satisfy a
/// trace-requesting cell and those cells simulate live, as they always
/// did before traces were persisted.
pub const MAX_TRACE_RECORDS: usize = 65_536;

/// One persisted run: identity plus the full statistics object.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// The runner's cache key (`<workload>-<config fingerprint>`).
    pub key: String,
    /// Human-readable workload component of the key.
    pub workload: String,
    /// The `GpuConfig::fingerprint` the run used.
    pub config: String,
    /// The simulation result.
    pub stats: SimStats,
}

impl RunArtifact {
    /// The walk-trace cap (`GpuConfig::walk_trace_cap`) the run used,
    /// taken from the stats' trace collector.
    pub fn trace_cap(&self) -> usize {
        self.stats.walk_trace.cap()
    }

    /// Whether the serialized form carries (or carried) the walk-trace
    /// payload: present exactly when `0 < trace_cap <= MAX_TRACE_RECORDS`.
    pub fn has_trace_payload(&self) -> bool {
        let cap = self.trace_cap();
        cap > 0 && cap <= MAX_TRACE_RECORDS
    }

    /// Whether the serialized form carries the observability payload:
    /// present exactly when the run attached an [`ObsReport`].
    pub fn has_obs_payload(&self) -> bool {
        self.stats.obs.is_some()
    }

    /// Whether the observability payload (if any) holds the *complete*
    /// span set. A run that streamed spans to an SWTB sink keeps only
    /// the staged tail in memory (`spans_flushed > 0`); persisting or
    /// serving such a report from the cache would silently hand later
    /// consumers a truncated timeline, so the runner treats incomplete
    /// payloads as uncacheable.
    pub fn obs_payload_complete(&self) -> bool {
        self.stats
            .obs
            .as_deref()
            .is_none_or(ObsReport::spans_complete)
    }

    /// Serializes the artifact (schema version 7). The walk-trace and
    /// observability payloads go last so the flat scalar fields and the
    /// flat stats object stay parseable by the simple extractors below.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"schema\":{},\"key\":\"{}\",\"workload\":\"{}\",\"config\":\"{}\",\
             \"trace_cap\":{},\"stats\":{}",
            SCHEMA_VERSION,
            self.key,
            self.workload,
            self.config,
            self.trace_cap(),
            self.stats.to_json()
        );
        if self.has_trace_payload() {
            json.push_str(",\"walk_trace\":");
            json.push_str(&self.stats.walk_trace.to_json());
        }
        if let Some(obs) = self.stats.obs.as_deref() {
            json.push_str(",\"obs\":");
            json.push_str(&obs.to_json());
        }
        json.push('}');
        json
    }

    /// Parses an artifact written by [`RunArtifact::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for malformed input or a
    /// schema version mismatch (use [`RunArtifact::probe`] to tell stale
    /// schemas apart from corruption).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let schema = extract_number(json, "schema")? as u32;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "artifact schema {schema} != supported {SCHEMA_VERSION}"
            ));
        }
        let stats_json = extract_object(json, "stats")?;
        let mut stats = SimStats::from_json(stats_json)?;
        let trace_cap = extract_number(json, "trace_cap")? as usize;
        if trace_cap > 0 && trace_cap <= MAX_TRACE_RECORDS {
            let payload = extract_array(json, "walk_trace")?;
            stats.walk_trace = WalkTrace::from_json(trace_cap, payload)?;
        } else {
            // No payload on disk: an empty collector with the recorded
            // cap preserves the cap for staleness checks.
            stats.walk_trace = WalkTrace::new(trace_cap);
        }
        if let Ok(obs_json) = extract_nested_object(json, "obs") {
            let report = ObsReport::from_json(obs_json)
                .ok_or_else(|| "malformed obs payload".to_string())?;
            stats.obs = Some(Box::new(report));
        }
        Ok(RunArtifact {
            key: extract_string(json, "key")?,
            workload: extract_string(json, "workload")?,
            config: extract_string(json, "config")?,
            stats,
        })
    }

    /// The artifact's path inside `dir`.
    pub fn path_in(dir: &Path, key: &str) -> PathBuf {
        dir.join(format!("{key}.json"))
    }

    /// Writes the artifact into `dir` (created on demand), atomically:
    /// a temporary file is renamed into place so concurrent runner
    /// processes never observe torn JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let final_path = Self::path_in(dir, &self.key);
        let tmp_path = dir.join(format!(".{}.{}.tmp", self.key, std::process::id()));
        fs::write(&tmp_path, self.to_json())?;
        fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }

    /// Loads the artifact for `key` from `dir`, returning `None` when it
    /// does not exist or fails to parse (the caller re-simulates).
    pub fn load_from(dir: &Path, key: &str) -> Option<Self> {
        match Self::probe(dir, key) {
            LoadOutcome::Loaded(a) => Some(*a),
            LoadOutcome::Missing | LoadOutcome::Stale(_) | LoadOutcome::Corrupt(_) => None,
        }
    }

    /// Probes the disk cache for `key`, distinguishing a missing entry
    /// from a stale (old-schema) one and from a present-but-unreadable
    /// one, so the caller can quarantine corrupt files instead of
    /// silently re-simulating over them forever while letting old-schema
    /// artifacts be rebuilt without drama.
    pub fn probe(dir: &Path, key: &str) -> LoadOutcome {
        let text = match fs::read_to_string(Self::path_in(dir, key)) {
            Ok(text) => text,
            Err(_) => return LoadOutcome::Missing,
        };
        // Check the schema version before attempting a full parse: an
        // artifact written by an older (or newer) binary is an expected
        // migration case, not corruption.
        if let Ok(schema) = extract_number(&text, "schema") {
            let schema = schema as u32;
            if schema != SCHEMA_VERSION {
                return LoadOutcome::Stale(format!(
                    "artifact schema {schema}, current {SCHEMA_VERSION}"
                ));
            }
        }
        match Self::from_json(&text) {
            // A key collision between different runs would silently serve
            // the wrong stats; treat mismatched content as corruption.
            Ok(a) if a.key == key => LoadOutcome::Loaded(Box::new(a)),
            Ok(a) => {
                LoadOutcome::Corrupt(format!("artifact claims key {:?}, expected {key:?}", a.key))
            }
            Err(e) => LoadOutcome::Corrupt(e),
        }
    }
}

/// Outcome of [`RunArtifact::probe`].
#[derive(Debug)]
pub enum LoadOutcome {
    /// No artifact on disk for this key.
    Missing,
    /// An intact artifact from a different schema version. The caller
    /// re-simulates and overwrites; no quarantine. Carries the versions.
    Stale(String),
    /// A file exists but cannot be trusted (parse failure or embedded-key
    /// mismatch). Carries the reason.
    Corrupt(String),
    /// The artifact parsed and matches the requested key (boxed to keep
    /// the enum small — `SimStats` is hundreds of bytes).
    Loaded(Box<RunArtifact>),
}

/// Extracts the raw text of `"name": <number>` from a flat JSON level.
fn extract_number(json: &str, name: &str) -> Result<f64, String> {
    let raw = extract_raw(json, name)?;
    raw.parse::<f64>()
        .map_err(|e| format!("bad number for {name:?}: {e}"))
}

/// Extracts `"name": "<string>"` (no escape support — keys and
/// fingerprints are `[A-Za-z0-9._x-]` only).
fn extract_string(json: &str, name: &str) -> Result<String, String> {
    let raw = extract_raw(json, name)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("{name:?} is not a string"))
}

/// Extracts the `{...}` object value of `"name"` (the object itself must
/// be flat, which holds for the stats payload).
fn extract_object<'j>(json: &'j str, name: &str) -> Result<&'j str, String> {
    let marker = format!("\"{name}\":");
    let at = json
        .find(&marker)
        .ok_or_else(|| format!("missing key {name:?}"))?;
    let rest = &json[at + marker.len()..];
    let open = rest
        .find('{')
        .ok_or_else(|| format!("{name:?} is not an object"))?;
    let close = rest[open..]
        .find('}')
        .ok_or_else(|| format!("unterminated object for {name:?}"))?;
    Ok(&rest[open..open + close + 1])
}

/// Extracts the `{...}` object value of `"name"`, matching braces to
/// arbitrary depth (the obs payload nests objects and arrays). Safe here
/// because no string value in the artifact schema contains a brace.
fn extract_nested_object<'j>(json: &'j str, name: &str) -> Result<&'j str, String> {
    let marker = format!("\"{name}\":");
    let at = json
        .find(&marker)
        .ok_or_else(|| format!("missing key {name:?}"))?;
    let rest = &json[at + marker.len()..];
    let open = rest
        .find('{')
        .ok_or_else(|| format!("{name:?} is not an object"))?;
    let mut depth = 0usize;
    for (i, b) in rest[open..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(&rest[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    Err(format!("unterminated object for {name:?}"))
}

/// Extracts the `[...]` array value of `"name"`, matching brackets to
/// arbitrary depth (the walk-trace payload is an array of arrays).
fn extract_array<'j>(json: &'j str, name: &str) -> Result<&'j str, String> {
    let marker = format!("\"{name}\":");
    let at = json
        .find(&marker)
        .ok_or_else(|| format!("missing key {name:?}"))?;
    let rest = &json[at + marker.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| format!("{name:?} is not an array"))?;
    let mut depth = 0usize;
    for (i, b) in rest[open..].bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(&rest[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    Err(format!("unterminated array for {name:?}"))
}

/// Extracts the raw (unparsed) scalar value text of `"name"`. Scalar
/// values in this schema (numbers, `[A-Za-z0-9._x-]` strings) never
/// contain `,` or `}`, so the value ends at the first of either.
fn extract_raw<'j>(json: &'j str, name: &str) -> Result<&'j str, String> {
    let marker = format!("\"{name}\":");
    let at = json
        .find(&marker)
        .ok_or_else(|| format!("missing key {name:?}"))?;
    let rest = &json[at + marker.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunArtifact {
        let mut stats = SimStats {
            cycles: 4242,
            instructions: 99,
            ..SimStats::default()
        };
        stats.walk.record(10, 20);
        RunArtifact {
            key: "bfs-fp100-0123456789abcdef".into(),
            workload: "bfs-fp100".into(),
            config: "0123456789abcdef".into(),
            stats,
        }
    }

    fn sample_with_trace(cap: usize) -> RunArtifact {
        use swgpu_sim::{WalkRecord, WalkerKind};
        use swgpu_types::{Cycle, Vpn};
        let mut a = sample();
        let records = vec![
            WalkRecord {
                vpn: Vpn::new(7),
                issued_at: Cycle::new(10),
                started_at: Cycle::new(110),
                completed_at: Cycle::new(310),
                walker: WalkerKind::Hardware,
            },
            WalkRecord {
                vpn: Vpn::new(9),
                issued_at: Cycle::new(20),
                started_at: Cycle::new(25),
                completed_at: Cycle::new(400),
                walker: WalkerKind::Software,
            },
        ];
        a.stats.walk_trace = WalkTrace::from_parts(cap, records);
        a
    }

    #[test]
    fn artifact_round_trips() {
        let a = sample();
        let parsed = RunArtifact::from_json(&a.to_json()).expect("parse");
        assert_eq!(parsed.key, a.key);
        assert_eq!(parsed.workload, a.workload);
        assert_eq!(parsed.config, a.config);
        assert_eq!(parsed.stats.to_json(), a.stats.to_json());
        assert_eq!(parsed.trace_cap(), 0);
        assert!(!parsed.has_trace_payload());
    }

    #[test]
    fn trace_payload_round_trips() {
        let a = sample_with_trace(4096);
        let json = a.to_json();
        assert!(json.contains("\"trace_cap\":4096"));
        assert!(json.contains("\"walk_trace\":[["));
        let parsed = RunArtifact::from_json(&json).expect("parse");
        assert_eq!(parsed.trace_cap(), 4096);
        assert_eq!(
            parsed.stats.walk_trace.records(),
            a.stats.walk_trace.records()
        );
        assert_eq!(parsed.to_json(), json, "round trip is byte-identical");
    }

    #[test]
    fn oversized_trace_cap_omits_payload() {
        let a = sample_with_trace(MAX_TRACE_RECORDS + 1);
        let json = a.to_json();
        assert!(!json.contains("walk_trace"), "{json}");
        let parsed = RunArtifact::from_json(&json).expect("parse");
        assert_eq!(parsed.trace_cap(), MAX_TRACE_RECORDS + 1);
        assert!(parsed.stats.walk_trace.is_empty());
        assert!(!parsed.has_trace_payload());
    }

    fn sample_with_obs() -> RunArtifact {
        use swgpu_obs::{Registry, SpanKind, SpanRecorder};
        let mut a = sample();
        let mut reg = Registry::new(128, 16);
        let h = reg.hist("walk_total_cycles");
        reg.observe(h, 30);
        let s = reg.series("softpwb_occupancy");
        reg.sample(s, 3);
        let mut rec = SpanRecorder::new(64);
        rec.instant(SpanKind::Dispatch, 0, 42, 7, 1);
        a.stats.obs = Some(Box::new(ObsReport::from_instruments(reg, rec)));
        a
    }

    #[test]
    fn obs_payload_round_trips() {
        let a = sample_with_obs();
        let json = a.to_json();
        assert!(json.contains(",\"obs\":{"));
        let parsed = RunArtifact::from_json(&json).expect("parse");
        assert!(parsed.has_obs_payload());
        assert_eq!(parsed.stats.obs, a.stats.obs);
        assert_eq!(parsed.to_json(), json, "round trip is byte-identical");
    }

    #[test]
    fn obs_off_artifact_matches_v2_layout() {
        // The acceptance bar for the schema bumps: an obs-off,
        // single-tenant artifact is byte-identical to what schema v2
        // wrote, modulo the version digit (v4/v5 added stats keys inside
        // the nested stats object, v6 added obs-payload keys, v7 added
        // tenant keys — all only for runs that arm the feature). Anything
        // else would invalidate every cached cell.
        let json = sample().to_json();
        assert!(!json.contains("\"obs\""));
        assert!(!json.contains("tenant"));
        assert!(json.starts_with("{\"schema\":7,\"key\":"));
    }

    #[test]
    fn tenant_stats_round_trip_through_artifact() {
        use swgpu_sim::TenantStats;
        let mut a = sample();
        a.stats.l2_tlb.shared_joins = 3;
        a.stats.tenants.push(TenantStats {
            instructions: 640,
            loads: 128,
            cycles: 4242,
            fresh_l2_misses: 40,
            walks: 33,
        });
        a.stats.tenants.push(TenantStats {
            instructions: 320,
            loads: 64,
            cycles: 4000,
            fresh_l2_misses: 80,
            walks: 61,
        });
        let json = a.to_json();
        assert!(json.contains("\"tenant_count\":2"));
        // The tenant keys are flat scalars, so the flat-stats extractor
        // must keep working on a multi-tenant artifact.
        let parsed = RunArtifact::from_json(&json).expect("parse");
        assert_eq!(parsed.stats.tenants, a.stats.tenants);
        assert_eq!(parsed.stats.l2_tlb.shared_joins, 3);
        assert_eq!(parsed.to_json(), json, "round trip is byte-identical");
    }

    #[test]
    fn streamed_obs_payload_is_flagged_incomplete() {
        let mut a = sample_with_obs();
        assert!(a.obs_payload_complete());
        a.stats.obs.as_mut().unwrap().spans_flushed = 12;
        assert!(!a.obs_payload_complete());
        // Obs-off artifacts are trivially complete.
        assert!(sample().obs_payload_complete());
    }

    #[test]
    fn trace_requesting_artifact_without_payload_is_rejected() {
        // An artifact claiming a payload-eligible cap but missing the
        // payload is torn/hand-edited: a parse error, not a default.
        let json = sample_with_trace(8).to_json();
        let stripped = json.split(",\"walk_trace\"").next().unwrap().to_string() + "}";
        assert!(RunArtifact::from_json(&stripped).is_err());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let bad = sample()
            .to_json()
            .replacen("\"schema\":7", "\"schema\":6", 1);
        assert!(RunArtifact::from_json(&bad).is_err());
    }

    #[test]
    fn extract_array_matches_nested_brackets() {
        let json = "{\"walk_trace\":[[1,2],[3,[4]]],\"after\":1}";
        assert_eq!(
            extract_array(json, "walk_trace").unwrap(),
            "[[1,2],[3,[4]]]"
        );
        assert!(extract_array(json, "missing").is_err());
        assert!(extract_array("{\"walk_trace\":[[1,2]", "walk_trace").is_err());
    }

    fn test_dir(tag: &str) -> std::path::PathBuf {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-artifacts")
            .join(format!("{tag}-{}", std::process::id()))
    }

    #[test]
    fn write_and_load_round_trip() {
        let dir = test_dir("round-trip");
        let a = sample();
        let path = a.write_to(&dir).expect("write");
        assert!(path.ends_with("bfs-fp100-0123456789abcdef.json"));
        let loaded = RunArtifact::load_from(&dir, &a.key).expect("load");
        assert_eq!(loaded.stats.cycles, 4242);
        // A different key misses.
        assert!(RunArtifact::load_from(&dir, "other-key").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_is_a_miss() {
        let dir = test_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(RunArtifact::path_in(&dir, "bad"), "{not json").unwrap();
        assert!(RunArtifact::load_from(&dir, "bad").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_distinguishes_missing_from_corrupt() {
        let dir = test_dir("probe");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            RunArtifact::probe(&dir, "absent"),
            LoadOutcome::Missing
        ));
        // A truncated write (e.g. the process died mid-write before the
        // atomic rename existed) must read as corrupt, not missing.
        let a = sample();
        let full = a.to_json();
        std::fs::write(RunArtifact::path_in(&dir, &a.key), &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            RunArtifact::probe(&dir, &a.key),
            LoadOutcome::Corrupt(_)
        ));
        // An artifact whose embedded key disagrees with its filename is
        // corrupt too (it would serve the wrong run's stats).
        a.write_to(&dir).expect("write");
        std::fs::rename(
            RunArtifact::path_in(&dir, &a.key),
            RunArtifact::path_in(&dir, "imposter"),
        )
        .unwrap();
        assert!(matches!(
            RunArtifact::probe(&dir, "imposter"),
            LoadOutcome::Corrupt(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_schema_probes_stale_not_corrupt() {
        let dir = test_dir("stale");
        std::fs::create_dir_all(&dir).unwrap();
        let a = sample();
        // Every older generation must migrate the same way: a v6
        // artifact (pre-multi-tenant), a v5 artifact
        // (pre-streaming-trace), a v4 artifact (pre-demand-paging), a v3
        // artifact (pre-kernel-counters), a v2 artifact
        // (pre-observability) and a v1 artifact (pre-trace).
        for old in [6u32, 5, 4, 3, 2, 1] {
            let stale = a
                .to_json()
                .replacen("\"schema\":7", &format!("\"schema\":{old}"), 1);
            std::fs::write(RunArtifact::path_in(&dir, &a.key), stale).unwrap();
            assert!(matches!(
                RunArtifact::probe(&dir, &a.key),
                LoadOutcome::Stale(_)
            ));
            assert!(RunArtifact::load_from(&dir, &a.key).is_none());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
