//! Figure 12: scaling PTWs only, L2 TLB MSHRs only, or both together —
//! for irregular apps at 64 KB and 2 MB pages, normalized to the
//! 32-PTW / 128-MSHR baseline.
//!
//! Paper headline (fraction of the ideal speedup reached at the largest
//! scale): 64 KB — PTWs-only 59.3%, MSHRs-only 30.4%; 2 MB — 83.4% and
//! 63.7%. Both must scale together.

use swgpu_bench::report::{fmt_pct, fmt_x};
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, Scale, SystemConfig, Table};
use swgpu_sim::GpuConfig;
use swgpu_workloads::{irregular, BenchmarkSpec};

fn cell(spec: &BenchmarkSpec, scale: Scale, sys: SystemConfig, large: bool) -> Cell {
    let mut cfg: GpuConfig = sys.build(scale);
    let pct = if large {
        cfg = cfg.with_large_pages();
        runner::LARGE_PAGE_FOOTPRINT_PERCENT
    } else {
        100
    };
    Cell::bench_scaled(spec, cfg, pct)
}

fn run(spec: &BenchmarkSpec, scale: Scale, sys: SystemConfig, large: bool) -> swgpu_sim::SimStats {
    swgpu_bench::Runner::global().get(&cell(spec, scale, sys, large))
}

/// Every system configuration one sub-figure sweeps.
fn systems(factors: &[usize]) -> Vec<SystemConfig> {
    let mut all = vec![SystemConfig::Baseline, SystemConfig::Ideal];
    for &f in factors {
        all.push(SystemConfig::ScaledPtw {
            walkers: 32 * f,
            scale_mshrs: false,
        });
        all.push(SystemConfig::ScaledMshr { entries: 128 * f });
        all.push(SystemConfig::ScaledPtw {
            walkers: 32 * f,
            scale_mshrs: true,
        });
    }
    all
}

fn main() {
    let h = parse_args();
    let factors = [2usize, 4, 8];

    let mut matrix = Vec::new();
    for large in [false, true] {
        for spec in irregular() {
            for sys in systems(&factors) {
                matrix.push(cell(&spec, h.scale, sys, large));
            }
        }
    }
    prefetch(&matrix);

    for large in [false, true] {
        let page = if large { "2MB" } else { "64KB" };
        let mut headers = vec!["strategy".to_string()];
        headers.extend(
            factors
                .iter()
                .map(|f| format!("x{f} (={} PTWs/{} MSHRs)", 32 * f, 128 * f)),
        );
        headers.push("% of ideal @max".into());
        let mut table = Table::new(headers);

        let specs = irregular();
        let mut base_cycles = Vec::new();
        let mut ideal_speedups = Vec::new();
        for spec in &specs {
            let b = run(spec, h.scale, SystemConfig::Baseline, large);
            let i = run(spec, h.scale, SystemConfig::Ideal, large);
            ideal_speedups.push(i.speedup_over(&b));
            base_cycles.push(b);
        }
        let ideal_geo = geomean(&ideal_speedups);

        for (name, make) in [
            (
                "PTWs",
                Box::new(|f: usize| SystemConfig::ScaledPtw {
                    walkers: 32 * f,
                    scale_mshrs: false,
                }) as Box<dyn Fn(usize) -> SystemConfig>,
            ),
            (
                "MSHRs",
                Box::new(|f: usize| SystemConfig::ScaledMshr { entries: 128 * f }),
            ),
            (
                "PTWs+MSHRs",
                Box::new(|f: usize| SystemConfig::ScaledPtw {
                    walkers: 32 * f,
                    scale_mshrs: true,
                }),
            ),
        ] {
            let mut cells = vec![name.to_string()];
            let mut last_geo = 1.0;
            for &f in &factors {
                let mut xs = Vec::new();
                for (spec, b) in specs.iter().zip(&base_cycles) {
                    let s = run(spec, h.scale, make(f), large);
                    xs.push(s.speedup_over(b));
                }
                last_geo = geomean(&xs);
                cells.push(fmt_x(last_geo));
            }
            // "% of ideal": how much of the ideal's gain the strategy
            // captured at the largest factor.
            let frac = ((last_geo - 1.0) / (ideal_geo - 1.0).max(1e-9)).clamp(0.0, 2.0);
            cells.push(fmt_pct(frac));
            table.row(cells);
        }
        table.row(vec![
            "Ideal".into(),
            String::new(),
            String::new(),
            fmt_x(ideal_geo),
            fmt_pct(1.0),
        ]);

        println!("Figure 12 ({page} pages) — scaling PTWs vs MSHRs vs both (irregular geomean)\n");
        table.print(h.csv);
        println!();
    }
    println!("(paper: 64KB — PTWs-only 59.3% of ideal, MSHRs-only 30.4%; 2MB — 83.4% / 63.7%)");
}
