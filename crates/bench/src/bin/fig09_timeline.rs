//! Figure 9: the paper's conceptual page-walk timeline, measured.
//!
//! The paper sketches three scenarios for a burst of concurrent walks —
//! ideal hardware (enough PTWs: latency = table access only), the real
//! baseline (32 PTWs: queueing dominates), and SoftWalker (no queueing,
//! slightly longer per-walk processing from instruction execution and
//! SM↔L2TLB communication — the "green boxes"). This harness runs the
//! same walk burst through all three configurations with lifecycle
//! tracing enabled and renders the measured timelines. The traces are
//! persisted in the schema-v3 run artifacts, so a repeat invocation
//! serves every cell from the disk cache and re-simulates nothing.
//!
//! With `--trace-out <dir>`, the cells additionally arm the
//! observability layer ([`swgpu_sim::ObsConfig`]) and each scenario's
//! span/counter report is exported as a Chrome trace-event JSON file
//! (`fig09-<scenario>.json`) loadable in <https://ui.perfetto.dev>.

use std::path::Path;

use swgpu_bench::runner::{fig09_cells, fig09_cells_observed};
use swgpu_bench::{parse_args, prefetch, Cell, Runner, Table};

/// Lowercases a scenario label into a filename slug (`Hardware PTW` →
/// `hardware-ptw`).
fn slugify(label: &str) -> String {
    let mut slug = String::with_capacity(label.len());
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            slug.push(ch.to_ascii_lowercase());
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    slug.trim_matches('-').to_string()
}

/// Exports one scenario's obs report as a validated Chrome trace JSON.
fn export_trace(dir: &Path, label: &str, stats: &swgpu_sim::SimStats) {
    let Some(report) = stats.obs.as_deref() else {
        eprintln!("warning: no obs report for {label}; trace skipped");
        return;
    };
    if report.spans_dropped > 0 {
        let breakdown: Vec<String> = report
            .dropped_by_kind()
            .map(|(kind, n)| format!("{} {}", n, kind.name()))
            .collect();
        eprintln!(
            "warning: span recorder for {label} overflowed ({} spans dropped: {}); \
             the exported trace is truncated — raise ObsConfig::max_spans or \
             stream with --trace-out to capture the full run",
            report.spans_dropped,
            breakdown.join(", ")
        );
    }
    let trace = swgpu_obs::to_chrome_trace(report);
    swgpu_obs::validate_json(&trace)
        .unwrap_or_else(|e| panic!("exported trace for {label} is not valid JSON: {e}"));
    let path = dir.join(format!("fig09-{}.json", slugify(label)));
    std::fs::write(&path, &trace).expect("write trace file");
    println!(
        "trace OK: {} ({} bytes, {} spans, {} histograms)",
        path.display(),
        trace.len(),
        report.spans.len(),
        report.histograms.len()
    );
}

/// Renders one walk as `....QQQQAAAA` (queueing then access), scaled.
fn lane(rec: &swgpu_sim::WalkRecord, origin: u64, scale: u64) -> String {
    let pre = (rec.issued_at.value() - origin) / scale;
    let q = rec.queue_cycles() / scale;
    let a = (rec.access_cycles() / scale).max(1);
    format!(
        "{}{}{}",
        " ".repeat(pre as usize),
        "#".repeat(q as usize),
        "=".repeat(a as usize)
    )
}

fn main() {
    let h = parse_args();
    let scenarios = if h.trace_out.is_some() {
        fig09_cells_observed(h.scale)
    } else {
        fig09_cells(h.scale)
    };
    let cells: Vec<Cell> = scenarios.iter().map(|(c, _)| c.clone()).collect();
    prefetch(&cells);
    let runs: Vec<(String, swgpu_sim::SimStats)> = scenarios
        .iter()
        .map(|(c, label)| (label.to_string(), Runner::global().get(c)))
        .collect();

    let mut summary = Table::new(vec![
        "scenario".into(),
        "walks".into(),
        "avg queue (cyc)".into(),
        "avg access (cyc)".into(),
        "last completion (cyc)".into(),
    ]);

    println!("Figure 9 — measured walk timelines ('#' = queueing, '=' = walk processing)");
    println!("(paper: ideal = access only; baseline = queueing dominates; SoftWalker =");
    println!(" no queueing, slightly longer processing from instructions + communication)\n");

    for (label, s) in &runs {
        let recs = s.walk_trace.records();
        let origin = recs.iter().map(|r| r.issued_at.value()).min().unwrap_or(0);
        let horizon = recs
            .iter()
            .map(|r| r.completed_at.value())
            .max()
            .unwrap_or(1)
            .saturating_sub(origin)
            .max(1);
        let scale = (horizon / 72).max(1);
        println!("--- {label} (1 char ≈ {scale} cycles) ---");
        // Sample walks evenly across the whole burst (completion order
        // would show only the lucky, un-queued ones).
        let mut all: Vec<_> = recs.iter().collect();
        all.sort_by_key(|r| r.issued_at);
        let stride = (all.len() / 12).max(1);
        for r in all.iter().step_by(stride).take(12) {
            println!("  {}", lane(r, origin, scale));
        }
        let last = recs
            .iter()
            .map(|r| r.completed_at.value())
            .max()
            .unwrap_or(0)
            .saturating_sub(origin);
        summary.row(vec![
            label.clone(),
            s.walk.translations.to_string(),
            format!("{:.0}", s.walk.avg_queue()),
            format!("{:.0}", s.walk.avg_access()),
            last.to_string(),
        ]);
        println!();
    }

    summary.print(h.csv);

    if let Some(dir) = &h.trace_out {
        std::fs::create_dir_all(dir).expect("create trace output dir");
        println!();
        for (label, s) in &runs {
            export_trace(dir, label, s);
        }
    }
}
