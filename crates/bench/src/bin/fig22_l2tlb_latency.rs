//! Figure 22: SoftWalker's sensitivity to the L2 TLB access latency
//! (which also prices the SM↔L2TLB communication its walks pay twice).
//!
//! Paper headline: speedup over the baseline falls gently from 2.31x at
//! 40 cycles to 2.07x at 200 cycles — still close to the 2.58x ideal,
//! because queueing (not communication) dominates baseline walk latency.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::table4;

fn main() {
    let h = parse_args();
    let latencies = [40u64, 80, 120, 160, 200];
    let mut headers = vec!["bench".to_string()];
    headers.extend(latencies.iter().map(|l| format!("{l}cyc")));
    let mut table = Table::new(headers);

    let mut matrix = Vec::new();
    for spec in table4() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for &lat in &latencies {
            let mut cfg = SystemConfig::SoftWalker.build(h.scale);
            cfg.l2_tlb_latency = lat;
            matrix.push(Cell::bench(&spec, cfg));
        }
    }
    prefetch(&matrix);

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); latencies.len()];
    for spec in table4() {
        // Baseline keeps the default 80-cycle L2 TLB.
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let mut cells = vec![spec.abbr.to_string()];
        for (i, &lat) in latencies.iter().enumerate() {
            let s = runner::run_with(&spec, SystemConfig::SoftWalker, h.scale, |mut c| {
                c.l2_tlb_latency = lat;
                c
            });
            let x = s.speedup_over(&base);
            cols[i].push(x);
            cells.push(fmt_x(x));
        }
        table.row(cells);
    }
    let mut avg = vec!["geomean".to_string()];
    for c in &cols {
        avg.push(fmt_x(geomean(c)));
    }
    table.row(avg);

    println!("Figure 22 — SoftWalker speedup vs L2 TLB access latency");
    println!("(paper: 2.31x @40cyc → 2.24x @80 → 2.07x @200; ideal 2.58x)\n");
    table.print(h.csv);
}
