//! Fault-injection smoke test: runs a small workload under an armed
//! [`FaultPlan`] on each walker configuration and verifies the recovery
//! pipeline end to end. Exits nonzero (for CI) if any run times out,
//! loses an injected fault, or leaks one to the UVM fault path.
//!
//! Usage: `fault_smoke [--seed N]`

use swgpu_bench::{Cell, Scale, SystemConfig};
use swgpu_sim::SimStats;
use swgpu_types::FaultPlan;
use swgpu_workloads::by_abbr;

fn plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        pte_corrupt_rate: 0.05,
        pte_silent_corrupt_rate: 0.05,
        mem_drop_rate: 0.05,
        mem_delay_rate: 0.05,
        stuck_thread_rate: 0.02,
        ..FaultPlan::default()
    }
}

fn check(label: &str, stats: &SimStats) -> Result<(), String> {
    if stats.timed_out {
        return Err(format!("{label}: run timed out under injection"));
    }
    let f = &stats.fault;
    if f.injected_total() == 0 {
        return Err(format!("{label}: storm rates injected nothing"));
    }
    if f.injected_total() != f.recovered_injections + f.escalated_injections {
        return Err(format!(
            "{label}: conservation violated — {} injected != {} recovered + {} escalated",
            f.injected_total(),
            f.recovered_injections,
            f.escalated_injections
        ));
    }
    if f.unrecoverable_faults != 0 || stats.faults != 0 {
        return Err(format!(
            "{label}: injected faults leaked to the UVM path ({} unrecoverable, {} page faults)",
            f.unrecoverable_faults, stats.faults
        ));
    }
    if f.fault_replays != f.fault_escalations {
        return Err(format!(
            "{label}: {} escalations but {} replays",
            f.fault_escalations, f.fault_replays
        ));
    }
    if f.injected_silent_corruptions == 0 {
        return Err(format!("{label}: silent-corruption storm injected nothing"));
    }
    if f.detected_silent_corruptions != f.injected_silent_corruptions {
        return Err(format!(
            "{label}: silent corruption slipped past the parity check — \
             {} injected but only {} detected (a wrong translation was consumed)",
            f.injected_silent_corruptions, f.detected_silent_corruptions
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xf00d);

    let spec = by_abbr("gups").expect("known benchmark");
    let mut failures = 0;
    for system in [
        SystemConfig::Baseline,
        SystemConfig::SoftWalker,
        SystemConfig::Hybrid,
    ] {
        let label = system.label();
        let mut cfg = system.build(Scale::Quick);
        cfg.fault_plan = plan(seed);
        let stats = Cell::bench_scaled(&spec, cfg, 20).simulate();
        match check(&label, &stats) {
            Ok(()) => {
                let f = &stats.fault;
                println!(
                    "[fault-smoke] {label}: ok — {} injected ({} recovered / {} escalated), \
                     {} silent corruptions all detected, {} watchdog timeouts, {} retries, \
                     {} replays",
                    f.injected_total(),
                    f.recovered_injections,
                    f.escalated_injections,
                    f.detected_silent_corruptions,
                    f.watchdog_timeouts,
                    f.walk_retries,
                    f.fault_replays
                );
            }
            Err(why) => {
                eprintln!("[fault-smoke] FAIL — {why}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("[fault-smoke] all walker configurations recovered (seed {seed:#x})");
}
