//! Figure 26: Request Distributor policy comparison — random, stall-aware
//! and round-robin dispatch of software walks.
//!
//! Paper headline: the policies are indistinguishable because irregular
//! apps stall so much that every SM has idle issue slots; the paper
//! therefore adopts the cheapest (round-robin).

use softwalker::DistributorPolicy;
use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::irregular;

fn main() {
    let h = parse_args();
    let policies = [
        ("RoundRobin", DistributorPolicy::RoundRobin),
        ("Random", DistributorPolicy::Random),
        ("StallAware", DistributorPolicy::StallAware),
    ];

    let mut matrix = Vec::new();
    for spec in irregular() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for (_, policy) in policies {
            let mut cfg = SystemConfig::SoftWalker.build(h.scale);
            cfg.distributor_policy = policy;
            matrix.push(Cell::bench(&spec, cfg));
        }
    }
    prefetch(&matrix);
    let mut headers = vec!["bench".to_string()];
    headers.extend(policies.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for spec in irregular() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let mut cells = vec![spec.abbr.to_string()];
        for (i, (_, policy)) in policies.iter().enumerate() {
            let s = runner::run_with(&spec, SystemConfig::SoftWalker, h.scale, |mut c| {
                c.distributor_policy = *policy;
                c
            });
            let x = s.speedup_over(&base);
            cols[i].push(x);
            cells.push(fmt_x(x));
        }
        table.row(cells);
    }
    let mut avg = vec!["geomean".to_string()];
    for c in &cols {
        avg.push(fmt_x(geomean(c)));
    }
    table.row(avg);

    println!("Figure 26 — distributor policy sensitivity (irregular set)");
    println!("(paper: no significant differences; round-robin adopted)\n");
    table.print(h.csv);
}
