//! Table 1: qualitative comparison with prior page-walk-mitigation work.
//!
//! Reproduced verbatim from the paper (it is a positioning table, not a
//! measurement); the harness exists so the full table/figure index is
//! runnable end to end.

use swgpu_bench::Table;

fn main() {
    let mut t = Table::new(vec![
        "technique".into(),
        "purpose".into(),
        "approach".into(),
        "flexibility".into(),
        "needs HW walker?".into(),
        "walk throughput".into(),
    ]);
    t.row(vec![
        "NHA [86]".into(),
        "reduce # page walks".into(),
        "coalescing".into(),
        "no".into(),
        "yes".into(),
        "~16x".into(),
    ]);
    t.row(vec![
        "PW scheduling [85]".into(),
        "reduce warp divergence".into(),
        "scheduling".into(),
        "no".into(),
        "yes".into(),
        "unchanged".into(),
    ]);
    t.row(vec![
        "FS-HPT [32]".into(),
        "remove pointer chasing".into(),
        "hashed page table".into(),
        "no".into(),
        "yes".into(),
        "unchanged".into(),
    ]);
    t.row(vec![
        "SoftWalker (ours)".into(),
        "increase walk throughput".into(),
        "software threads".into(),
        "yes (SW-based)".into(),
        "no".into(),
        "32 x (# SMs)".into(),
    ]);

    println!("Table 1 — comparison with prior work mitigating page walks\n");
    t.print(false);
    println!(
        "\nIn this reproduction: NHA = `PtwConfig::nha`, FS-HPT = `TranslationMode::HashedPtw`,\n\
         SoftWalker = `TranslationMode::SoftWalker`; walk throughput 32 threads x 46 SMs = 1472 concurrent walks."
    );
}
