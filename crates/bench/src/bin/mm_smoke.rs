//! Demand-paging smoke test: exercises the simulated driver/OS memory
//! manager end to end and exits nonzero (for CI) on any violation.
//!
//! Checks, in order:
//!
//! 1. **Fault conservation** — a demand-paged run of an irregular
//!    benchmark on each walker configuration first-touch-faults every
//!    page exactly once and replays every serviced fault
//!    (`major_faults == major_replays`), with nothing leaking to the UVM
//!    fault path and software modes executing the fills on PW Warps.
//! 2. **Oversubscription** — the same run under a tight resident-page
//!    budget evicts, stays under the budget, and still conserves faults
//!    (an evicted-then-retouched page is simply a fresh major fault).
//! 3. **Coalescing** — a single-SM streaming workload over 4 KB base
//!    pages touches pages in ascending order, so the manager's frame
//!    allocator produces a physically contiguous run and must coalesce
//!    at least one 64 KB group.
//! 4. **Prebuilt-mode caching** — with the manager disabled (the
//!    default), a rerun of the same cells through a cold runner serves
//!    everything from the disk cache and simulates nothing: the mm
//!    subsystem must not perturb prebuilt-mode fingerprints.
//!
//! Usage: `mm_smoke` (no flags; deterministic).

use swgpu_bench::{Cell, Runner, Scale, SystemConfig};
use swgpu_sim::{GpuConfig, GpuSimulator, SimStats};
use swgpu_types::{MmConfig, PageSize};
use swgpu_workloads::{by_abbr, WorkloadParams};

/// The walker configurations the conservation checks sweep.
const SYSTEMS: [SystemConfig; 3] = [
    SystemConfig::Baseline,
    SystemConfig::SoftWalker,
    SystemConfig::Hybrid,
];

/// Shared conservation assertions for any demand-paged run.
fn check_conservation(label: &str, stats: &SimStats) -> Result<(), String> {
    if stats.timed_out {
        return Err(format!("{label}: demand-paged run timed out"));
    }
    let m = &stats.mm;
    if m.major_faults == 0 {
        return Err(format!("{label}: no page was demand-faulted"));
    }
    if m.major_faults != m.major_replays {
        return Err(format!(
            "{label}: fault conservation violated — {} major faults but {} replays",
            m.major_faults, m.major_replays
        ));
    }
    if stats.faults != 0 {
        return Err(format!(
            "{label}: {} major faults leaked to the UVM fault path",
            stats.faults
        ));
    }
    Ok(())
}

/// Check 1: first-touch faulting conserves across walker configurations.
fn check_demand_paging() -> Result<(), String> {
    let spec = by_abbr("gups").expect("known benchmark");
    for system in SYSTEMS {
        let label = format!("{} demand-paged", system.label());
        let mut cfg = system.build(Scale::Quick);
        cfg.mm = MmConfig::demand_paged();
        let stats = Cell::bench_scaled(&spec, cfg.clone(), 20).simulate();
        check_conservation(&label, &stats)?;
        let software = cfg.mode.uses_software_walkers();
        if software && stats.mm.sw_fill_replays == 0 {
            return Err(format!(
                "{label}: software mode replayed no fill on a PW Warp"
            ));
        }
        println!(
            "[mm-smoke] {label}: ok — {} faults, {} replays ({} on PW Warps), peak {} resident",
            stats.mm.major_faults,
            stats.mm.major_replays,
            stats.mm.sw_fill_replays,
            stats.mm.resident_peak
        );
    }
    Ok(())
}

/// Check 2: a tight budget forces eviction without breaking conservation.
fn check_oversubscription() -> Result<(), String> {
    let budget = 64;
    let spec = by_abbr("gups").expect("known benchmark");
    let mut cfg = SystemConfig::SoftWalker.build(Scale::Quick);
    cfg.mm = MmConfig {
        resident_page_budget: budget,
        ..MmConfig::demand_paged()
    };
    let stats = Cell::bench_scaled(&spec, cfg, 20).simulate();
    check_conservation("oversubscribed", &stats)?;
    let m = &stats.mm;
    if m.evictions == 0 {
        return Err(format!(
            "oversubscribed: budget {budget} forced no eviction ({} faults)",
            m.major_faults
        ));
    }
    if m.resident_peak > budget {
        return Err(format!(
            "oversubscribed: resident peak {} exceeds the budget {budget}",
            m.resident_peak
        ));
    }
    println!(
        "[mm-smoke] oversubscribed: ok — {} faults, {} evictions, peak {} <= budget {budget}",
        m.major_faults, m.evictions, m.resident_peak
    );
    Ok(())
}

/// Check 3: an in-order single-SM streaming workload over 4 KB base
/// pages yields at least one transparent 64 KB coalesce.
fn check_coalescing() -> Result<(), String> {
    let spec = by_abbr("2dc").expect("known benchmark");
    let cfg = GpuConfig {
        sms: 1,
        max_warps: 8,
        page_size: PageSize::Size4K,
        scrambled_frames: false,
        mm: MmConfig::demand_paged(),
        ..GpuConfig::default()
    };
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: 96,
        footprint_percent: 100,
        page_size: cfg.page_size,
    });
    let footprint = wl.footprint_bytes();
    let stats = GpuSimulator::new_with_footprint(cfg, Box::new(wl), footprint).run();
    check_conservation("coalescing", &stats)?;
    let m = &stats.mm;
    if m.coalesces_64k == 0 {
        return Err(format!(
            "coalescing: sequential 4K touches produced no 64K group \
             ({} faults, {} splinters)",
            m.major_faults, m.splinters
        ));
    }
    println!(
        "[mm-smoke] coalescing: ok — {} faults coalesced into {} x 64K + {} x 2M groups",
        m.major_faults, m.coalesces_64k, m.coalesces_2m
    );
    Ok(())
}

/// Check 4: prebuilt-mode (mm disabled) cells are untouched — a rerun
/// through a cold runner is pure disk hits, zero simulations.
fn check_prebuilt_rerun() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("swgpu-mm-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("prebuilt-rerun: mkdir failed: {e}"))?;
    let spec = by_abbr("gemm").expect("known benchmark");
    let cells: Vec<Cell> = SYSTEMS
        .iter()
        .map(|s| Cell::bench(&spec, s.build(Scale::Quick)))
        .collect();
    let warm = Runner::new(2, Some(dir.clone()), false);
    warm.run_cells(&cells);
    let rerun = Runner::new(2, Some(dir.clone()), false);
    rerun.run_cells(&cells);
    let c = rerun.counters();
    std::fs::remove_dir_all(&dir).ok();
    if c.simulated != 0 || c.disk_hits != cells.len() as u64 {
        return Err(format!(
            "prebuilt-rerun: expected {} pure disk hits, got {} simulated / {} hits",
            cells.len(),
            c.simulated,
            c.disk_hits
        ));
    }
    println!(
        "[mm-smoke] prebuilt rerun: ok — {} cells served from cache, 0 re-simulated",
        c.disk_hits
    );
    Ok(())
}

type Check = fn() -> Result<(), String>;

fn main() {
    let checks: [(&str, Check); 4] = [
        ("demand paging", check_demand_paging),
        ("oversubscription", check_oversubscription),
        ("coalescing", check_coalescing),
        ("prebuilt rerun", check_prebuilt_rerun),
    ];
    let mut failures = 0;
    for (name, check) in checks {
        if let Err(why) = check() {
            eprintln!("[mm-smoke] FAIL ({name}) — {why}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("[mm-smoke] all demand-paging checks passed");
}
