//! `trace_tool`: inspect, validate and convert SWTB trace files.
//!
//! The streaming trace pipeline (`--trace-out <dir>` on the figure
//! harnesses) writes one compact binary `.swtb` file per obs-enabled
//! cell. This tool is the consumer side:
//!
//! ```text
//! trace_tool info <file.swtb>              # header + record inventory
//! trace_tool validate <file.swtb>...       # structural validation
//! trace_tool to-perfetto <file.swtb> [out] # Chrome trace-event JSON
//! trace_tool stats <file.swtb>             # counters + percentiles
//! ```
//!
//! `validate` accepts multiple files and exits nonzero if any fails;
//! `to-perfetto` writes to `<file>.json` next to the input when no
//! output path is given. All subcommands exit 1 on an unreadable or
//! structurally invalid trace.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use swgpu_obs::{read_trace, to_chrome_trace, validate_json, validate_trace, SwtbTrace};

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_tool <info|validate|to-perfetto|stats> <file.swtb> [args]\n\
         \n\
         info        <file.swtb>            print header and record inventory\n\
         validate    <file.swtb>...         structural validation (exit 1 on failure)\n\
         to-perfetto <file.swtb> [out.json] convert to Chrome trace-event JSON\n\
         stats       <file.swtb>            print counters and histogram percentiles"
    );
    ExitCode::FAILURE
}

fn load(path: &Path) -> Result<(Vec<u8>, SwtbTrace), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let trace = read_trace(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((bytes, trace))
}

fn info(path: &Path) -> Result<(), String> {
    let (bytes, t) = load(path)?;
    let r = &t.report;
    println!("file:         {} ({} bytes)", path.display(), bytes.len());
    println!("version:      {}", t.version);
    println!("fingerprint:  {}", t.fingerprint);
    println!("interval:     {} cycles", r.interval);
    println!(
        "records:      {} ({} span batches)",
        t.records, t.span_batches
    );
    println!(
        "ended:        {}",
        if t.ended { "yes" } else { "NO (truncated)" }
    );
    println!(
        "spans:        {} ({} flushed mid-run, {} dropped)",
        r.spans.len(),
        r.spans_flushed,
        r.spans_dropped
    );
    println!("counters:     {}", r.counters.len());
    println!("histograms:   {}", r.histograms.len());
    println!("series:       {}", r.series.len());
    Ok(())
}

fn validate(paths: &[PathBuf]) -> Result<(), String> {
    for path in paths {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let t = validate_trace(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "validate OK: {} ({} records, {} spans, {} dropped)",
            path.display(),
            t.records,
            t.report.spans.len(),
            t.report.spans_dropped
        );
    }
    Ok(())
}

fn to_perfetto(path: &Path, out: Option<PathBuf>) -> Result<(), String> {
    let (_, t) = load(path)?;
    let json = to_chrome_trace(&t.report);
    validate_json(&json)
        .map_err(|e| format!("{}: exported trace is not valid JSON: {e}", path.display()))?;
    let out = out.unwrap_or_else(|| path.with_extension("json"));
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "perfetto OK: {} ({} bytes, {} spans)",
        out.display(),
        json.len(),
        t.report.spans.len()
    );
    Ok(())
}

fn stats(path: &Path) -> Result<(), String> {
    let (_, t) = load(path)?;
    let r = &t.report;
    println!("counters:");
    for (name, v) in &r.counters {
        println!("  {name:<28} {v}");
    }
    println!("histograms (count / p50 / p99 / max):");
    for (name, h) in &r.histograms {
        println!(
            "  {name:<28} {} / {} / {} / {}",
            h.count(),
            h.percentile(50.0),
            h.percentile(99.0),
            h.max()
        );
    }
    println!("series (samples / last):");
    for (name, s) in &r.series {
        let window = s.samples();
        println!(
            "  {name:<28} {} / {}",
            s.total_pushed(),
            window.last().copied().unwrap_or(0)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(first)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let first = PathBuf::from(first);
    let result = match cmd.as_str() {
        "info" => info(&first),
        "validate" => validate(&args[1..].iter().map(PathBuf::from).collect::<Vec<_>>()),
        "to-perfetto" => to_perfetto(&first, args.get(2).map(PathBuf::from)),
        "stats" => stats(&first),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_tool: {e}");
            ExitCode::FAILURE
        }
    }
}
