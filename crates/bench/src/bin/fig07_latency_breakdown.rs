//! Figure 7: page-walk latency breakdown (queueing vs page-table access)
//! as the number of PTWs grows.
//!
//! Paper headline: at the 32-PTW baseline, queueing delay is 95% of total
//! walk latency for irregular applications.

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::irregular;

fn main() {
    let h = parse_args();
    let configs = [
        ("32PTW", SystemConfig::Baseline),
        (
            "128PTW",
            SystemConfig::ScaledPtw {
                walkers: 128,
                scale_mshrs: true,
            },
        ),
        (
            "512PTW",
            SystemConfig::ScaledPtw {
                walkers: 512,
                scale_mshrs: true,
            },
        ),
        ("Ideal", SystemConfig::Ideal),
    ];
    let mut table = Table::new(vec![
        "bench".into(),
        "config".into(),
        "avg queue (cyc)".into(),
        "avg access (cyc)".into(),
        "queue share".into(),
    ]);

    let mut q_tot = vec![0u64; configs.len()];
    let mut a_tot = vec![0u64; configs.len()];

    let matrix: Vec<Cell> = irregular()
        .iter()
        .flat_map(|spec| {
            configs
                .iter()
                .map(|(_, sys)| Cell::bench(spec, sys.build(h.scale)))
                .collect::<Vec<_>>()
        })
        .collect();
    prefetch(&matrix);

    for spec in irregular() {
        for (i, (label, sys)) in configs.iter().enumerate() {
            let s = runner::run(&spec, *sys, h.scale);
            table.row(vec![
                spec.abbr.to_string(),
                (*label).to_string(),
                format!("{:.0}", s.walk.avg_queue()),
                format!("{:.0}", s.walk.avg_access()),
                fmt_pct(s.walk.queue_fraction()),
            ]);
            q_tot[i] += s.walk.queue_cycles;
            a_tot[i] += s.walk.access_cycles;
        }
    }
    for (i, (label, _)) in configs.iter().enumerate() {
        let frac = q_tot[i] as f64 / (q_tot[i] + a_tot[i]).max(1) as f64;
        table.row(vec![
            "ALL-IRREGULAR".into(),
            (*label).to_string(),
            String::new(),
            String::new(),
            fmt_pct(frac),
        ]);
    }

    println!("Figure 7 — walk latency breakdown vs #PTWs (irregular set)");
    println!("(paper: queueing is 95% of walk latency at 32 PTWs and shrinks as PTWs scale)\n");
    table.print(h.csv);
}
