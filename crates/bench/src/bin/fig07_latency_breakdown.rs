//! Figure 7: page-walk latency breakdown (queueing vs page-table access)
//! as the number of PTWs grows.
//!
//! Paper headline: at the 32-PTW baseline, queueing delay is 95% of total
//! walk latency for irregular applications.
//!
//! A second, observability-backed section breaks the same story down by
//! *distribution*: per-walk queue vs access p50/p95/p99 at the baseline,
//! from the log2 histograms the obs layer embeds in schema-v3 artifacts.

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, Runner, SystemConfig, Table};
use swgpu_sim::{GpuConfig, ObsConfig};
use swgpu_workloads::irregular;

/// The baseline cell for `spec` with the observability layer armed, so
/// the run artifact carries per-walk queue/access latency histograms.
fn observed_baseline(spec: &swgpu_workloads::BenchmarkSpec, scale: swgpu_bench::Scale) -> Cell {
    let cfg = GpuConfig {
        obs: ObsConfig::enabled(),
        ..SystemConfig::Baseline.build(scale)
    };
    Cell::bench(spec, cfg)
}

fn main() {
    let h = parse_args();
    let configs = [
        ("32PTW", SystemConfig::Baseline),
        (
            "128PTW",
            SystemConfig::ScaledPtw {
                walkers: 128,
                scale_mshrs: true,
            },
        ),
        (
            "512PTW",
            SystemConfig::ScaledPtw {
                walkers: 512,
                scale_mshrs: true,
            },
        ),
        ("Ideal", SystemConfig::Ideal),
    ];
    let mut table = Table::new(vec![
        "bench".into(),
        "config".into(),
        "avg queue (cyc)".into(),
        "avg access (cyc)".into(),
        "queue share".into(),
    ]);

    let mut q_tot = vec![0u64; configs.len()];
    let mut a_tot = vec![0u64; configs.len()];

    let mut matrix: Vec<Cell> = irregular()
        .iter()
        .flat_map(|spec| {
            configs
                .iter()
                .map(|(_, sys)| Cell::bench(spec, sys.build(h.scale)))
                .collect::<Vec<_>>()
        })
        .collect();
    matrix.extend(irregular().iter().map(|s| observed_baseline(s, h.scale)));
    prefetch(&matrix);

    for spec in irregular() {
        for (i, (label, sys)) in configs.iter().enumerate() {
            let s = runner::run(&spec, *sys, h.scale);
            table.row(vec![
                spec.abbr.to_string(),
                (*label).to_string(),
                format!("{:.0}", s.walk.avg_queue()),
                format!("{:.0}", s.walk.avg_access()),
                fmt_pct(s.walk.queue_fraction()),
            ]);
            q_tot[i] += s.walk.queue_cycles;
            a_tot[i] += s.walk.access_cycles;
        }
    }
    for (i, (label, _)) in configs.iter().enumerate() {
        let frac = q_tot[i] as f64 / (q_tot[i] + a_tot[i]).max(1) as f64;
        table.row(vec![
            "ALL-IRREGULAR".into(),
            (*label).to_string(),
            String::new(),
            String::new(),
            fmt_pct(frac),
        ]);
    }

    println!("Figure 7 — walk latency breakdown vs #PTWs (irregular set)");
    println!("(paper: queueing is 95% of walk latency at 32 PTWs and shrinks as PTWs scale)\n");
    table.print(h.csv);

    // Distribution view at the 32-PTW baseline: queueing dominates at
    // every percentile, not just on average. Values are log2-bucket
    // upper bounds from the obs histograms in the run artifacts.
    println!("\nPer-walk latency distribution at 32 PTWs (obs histograms, log2 buckets)");
    let mut dist = Table::new(vec![
        "bench".into(),
        "queue p50".into(),
        "queue p95".into(),
        "queue p99".into(),
        "access p50".into(),
        "access p95".into(),
        "access p99".into(),
    ]);
    for spec in irregular() {
        let s = Runner::global().get(&observed_baseline(&spec, h.scale));
        let report = s.obs.as_deref().expect("obs armed");
        let queue = report.histogram("walk_queue_cycles").expect("queue hist");
        let access = report.histogram("walk_access_cycles").expect("access hist");
        dist.row(vec![
            spec.abbr.to_string(),
            queue.percentile(0.50).to_string(),
            queue.percentile(0.95).to_string(),
            queue.percentile(0.99).to_string(),
            access.percentile(0.50).to_string(),
            access.percentile(0.95).to_string(),
            access.percentile(0.99).to_string(),
        ]);
    }
    dist.print(h.csv);
}
