//! Figure 16: overall speedup of NHA, FS-HPT, SW w/o In-TLB MSHR,
//! SoftWalker, SW Hybrid and Ideal over the 32-PTW baseline, for all 20
//! benchmarks.
//!
//! Paper headline: NHA 1.22x, FS-HPT 1.13x, SW w/o In-TLB 1.63x,
//! SoftWalker 2.24x (3.94x irregular), Ideal 2.58x.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::{table4, WorkloadClass};

fn main() {
    let h = parse_args();
    let systems = [
        SystemConfig::Nha,
        SystemConfig::FsHpt,
        SystemConfig::SwNoInTlb,
        SystemConfig::SoftWalker,
        SystemConfig::Hybrid,
        SystemConfig::Ideal,
    ];

    let mut matrix = Vec::new();
    for spec in table4() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for sys in systems {
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
        }
    }
    prefetch(&matrix);

    let mut headers = vec!["bench".to_string(), "class".to_string()];
    headers.extend(systems.iter().map(|s| s.label()));
    let mut table = Table::new(headers);

    let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    let mut per_system_irr: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];

    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let mut cells = vec![spec.abbr.to_string(), format!("{:?}", spec.class)];
        for (i, sys) in systems.iter().enumerate() {
            let s = runner::run(&spec, *sys, h.scale);
            let x = s.speedup_over(&base);
            per_system[i].push(x);
            if spec.class == WorkloadClass::Irregular {
                per_system_irr[i].push(x);
            }
            cells.push(fmt_x(x));
        }
        table.row(cells);
    }

    let mut avg = vec!["geomean".to_string(), "all".to_string()];
    let mut avg_irr = vec!["geomean".to_string(), "irregular".to_string()];
    for i in 0..systems.len() {
        avg.push(fmt_x(geomean(&per_system[i])));
        avg_irr.push(fmt_x(geomean(&per_system_irr[i])));
    }
    table.row(avg);
    table.row(avg_irr);

    println!("Figure 16 — overall speedup over the 32-PTW baseline");
    println!(
        "(paper: NHA 1.22x | FS-HPT 1.13x | SW w/o In-TLB 1.63x | SoftWalker 2.24x, 3.94x irregular | Ideal 2.58x)\n"
    );
    table.print(h.csv);
}
