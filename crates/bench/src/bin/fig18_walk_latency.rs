//! Figure 18: normalized page-walk latency (queueing + access) of NHA,
//! FS-HPT and SoftWalker relative to the baseline.
//!
//! Paper headline: SoftWalker cuts total walk latency by 72.8% on average
//! (NHA −20%, FS-HPT −16%); regular apps see up to +18% from the added
//! SM↔L2TLB communication.
//!
//! Beyond the mean, an observability-backed tail-latency section reports
//! per-walk p50/p95/p99 for a few representative irregular benchmarks
//! under the baseline and SoftWalker, derived from the log2 latency
//! histograms the obs layer embeds in the schema-v3 run artifacts — every
//! walk is counted (no trace cap) and repeat runs serve the histograms
//! from the disk cache.

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, Runner, SystemConfig, Table};
use swgpu_sim::{GpuConfig, ObsConfig};
use swgpu_workloads::{by_abbr, table4, WorkloadClass};

/// Benchmarks sampled for the tail-latency section: the highest-MPKI
/// irregular gathers plus bfs (frontier locality) and spmv (set skew).
const TAIL_BENCHES: [&str; 4] = ["gups", "xsb", "bfs", "spmv"];

/// An observability-armed variant of a system's configuration for
/// `abbr`: the `walk_total_cycles` histogram covers *every* walk.
fn tail_cell(abbr: &str, sys: SystemConfig, scale: swgpu_bench::Scale) -> Cell {
    let spec = by_abbr(abbr).expect("known benchmark");
    let cfg = GpuConfig {
        obs: ObsConfig::enabled(),
        ..sys.build(scale)
    };
    Cell::bench(&spec, cfg)
}

fn main() {
    let h = parse_args();
    let systems = [
        SystemConfig::Nha,
        SystemConfig::FsHpt,
        SystemConfig::SoftWalker,
    ];

    let tail_systems = [SystemConfig::Baseline, SystemConfig::SoftWalker];
    let mut matrix = Vec::new();
    for spec in table4() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for sys in systems {
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
        }
    }
    for abbr in TAIL_BENCHES {
        for sys in tail_systems {
            matrix.push(tail_cell(abbr, sys, h.scale));
        }
    }
    prefetch(&matrix);

    let mut headers = vec![
        "bench".to_string(),
        "class".to_string(),
        "base walk (cyc)".into(),
    ];
    for s in &systems {
        headers.push(format!("{} norm", s.label()));
        headers.push(format!("{} queue-share", s.label()));
    }
    let mut table = Table::new(headers);

    let mut norm_sum = vec![Vec::new(); systems.len()];
    let mut norm_irr = vec![Vec::new(); systems.len()];

    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let base_lat = base.walk.avg_total();
        let mut cells = vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            format!("{base_lat:.0}"),
        ];
        for (i, sys) in systems.iter().enumerate() {
            let s = runner::run(&spec, *sys, h.scale);
            let norm = if base_lat > 0.0 {
                s.walk.avg_total() / base_lat
            } else {
                1.0
            };
            norm_sum[i].push(norm);
            if spec.class == WorkloadClass::Irregular {
                norm_irr[i].push(norm);
            }
            cells.push(format!("{norm:.2}"));
            cells.push(fmt_pct(s.walk.queue_fraction()));
        }
        table.row(cells);
    }

    println!("Figure 18 — normalized page-walk latency (1.0 = baseline)");
    println!("(paper: SoftWalker 0.27 avg [−72.8%], NHA 0.80, FS-HPT 0.84; regular up to 1.18)\n");
    table.print(h.csv);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    for (i, sys) in systems.iter().enumerate() {
        println!(
            "{}: mean normalized latency all={:.2} irregular={:.2}",
            sys.label(),
            mean(&norm_sum[i]),
            mean(&norm_irr[i]),
        );
    }

    // Tail latency from the obs latency histograms: queueing behind the
    // 32-PTW pool shows up as a fat tail the mean under-reports.
    // Percentiles are log2-bucket upper bounds (the obs histogram trades
    // exactness for O(1) memory over millions of walks).
    println!("\nWalk tail latency, per-walk cycles (obs histograms; all walks counted)");
    let mut tail = Table::new(vec![
        "bench".into(),
        "system".into(),
        "walks".into(),
        "p50".into(),
        "p95".into(),
        "p99".into(),
        "max".into(),
    ]);
    for abbr in TAIL_BENCHES {
        for sys in tail_systems {
            let cell = tail_cell(abbr, sys, h.scale);
            let s = Runner::global().get(&cell);
            let report = s.obs.as_deref().expect("obs armed on tail cells");
            let hist = report
                .histogram("walk_total_cycles")
                .expect("walk latency histogram present");
            tail.row(vec![
                abbr.to_string(),
                sys.label(),
                hist.count().to_string(),
                hist.percentile(0.50).to_string(),
                hist.percentile(0.95).to_string(),
                hist.percentile(0.99).to_string(),
                hist.max().to_string(),
            ]);
        }
    }
    tail.print(h.csv);
}
