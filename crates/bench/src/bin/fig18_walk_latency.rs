//! Figure 18: normalized page-walk latency (queueing + access) of NHA,
//! FS-HPT and SoftWalker relative to the baseline.
//!
//! Paper headline: SoftWalker cuts total walk latency by 72.8% on average
//! (NHA −20%, FS-HPT −16%); regular apps see up to +18% from the added
//! SM↔L2TLB communication.
//!
//! Beyond the mean, a trace-capped tail-latency section reports per-walk
//! p50/p95/p99 for a few representative irregular benchmarks under the
//! baseline and SoftWalker, from the persisted walk-trace payloads (so
//! repeat runs serve them from the disk cache).

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, Runner, SystemConfig, Table};
use swgpu_sim::GpuConfig;
use swgpu_workloads::{by_abbr, table4, WorkloadClass};

/// Benchmarks sampled for the tail-latency section: the highest-MPKI
/// irregular gathers plus bfs (frontier locality) and spmv (set skew).
const TAIL_BENCHES: [&str; 4] = ["gups", "xsb", "bfs", "spmv"];

/// Walks recorded per tail cell — enough for stable p99 digits.
const TAIL_TRACE_CAP: usize = 2048;

/// A trace-capped variant of a system's configuration for `abbr`.
fn tail_cell(abbr: &str, sys: SystemConfig, scale: swgpu_bench::Scale) -> Cell {
    let spec = by_abbr(abbr).expect("known benchmark");
    let cfg = GpuConfig {
        walk_trace_cap: TAIL_TRACE_CAP,
        ..sys.build(scale)
    };
    Cell::bench(&spec, cfg)
}

/// The `q`-th percentile (0..=100) of per-walk total latency.
fn percentile(sorted: &[u64], q: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * q / 100]
}

fn main() {
    let h = parse_args();
    let systems = [
        SystemConfig::Nha,
        SystemConfig::FsHpt,
        SystemConfig::SoftWalker,
    ];

    let tail_systems = [SystemConfig::Baseline, SystemConfig::SoftWalker];
    let mut matrix = Vec::new();
    for spec in table4() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for sys in systems {
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
        }
    }
    for abbr in TAIL_BENCHES {
        for sys in tail_systems {
            matrix.push(tail_cell(abbr, sys, h.scale));
        }
    }
    prefetch(&matrix);

    let mut headers = vec![
        "bench".to_string(),
        "class".to_string(),
        "base walk (cyc)".into(),
    ];
    for s in &systems {
        headers.push(format!("{} norm", s.label()));
        headers.push(format!("{} queue-share", s.label()));
    }
    let mut table = Table::new(headers);

    let mut norm_sum = vec![Vec::new(); systems.len()];
    let mut norm_irr = vec![Vec::new(); systems.len()];

    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let base_lat = base.walk.avg_total();
        let mut cells = vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            format!("{base_lat:.0}"),
        ];
        for (i, sys) in systems.iter().enumerate() {
            let s = runner::run(&spec, *sys, h.scale);
            let norm = if base_lat > 0.0 {
                s.walk.avg_total() / base_lat
            } else {
                1.0
            };
            norm_sum[i].push(norm);
            if spec.class == WorkloadClass::Irregular {
                norm_irr[i].push(norm);
            }
            cells.push(format!("{norm:.2}"));
            cells.push(fmt_pct(s.walk.queue_fraction()));
        }
        table.row(cells);
    }

    println!("Figure 18 — normalized page-walk latency (1.0 = baseline)");
    println!("(paper: SoftWalker 0.27 avg [−72.8%], NHA 0.80, FS-HPT 0.84; regular up to 1.18)\n");
    table.print(h.csv);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    for (i, sys) in systems.iter().enumerate() {
        println!(
            "{}: mean normalized latency all={:.2} irregular={:.2}",
            sys.label(),
            mean(&norm_sum[i]),
            mean(&norm_irr[i]),
        );
    }

    // Tail latency from the walk-trace payloads: queueing behind the
    // 32-PTW pool shows up as a fat tail the mean under-reports.
    println!("\nWalk tail latency, per-walk cycles (first {TAIL_TRACE_CAP} walks traced)");
    let mut tail = Table::new(vec![
        "bench".into(),
        "system".into(),
        "walks".into(),
        "p50".into(),
        "p95".into(),
        "p99".into(),
    ]);
    for abbr in TAIL_BENCHES {
        for sys in tail_systems {
            let cell = tail_cell(abbr, sys, h.scale);
            let s = Runner::global().get(&cell);
            let mut totals: Vec<u64> = s
                .walk_trace
                .records()
                .iter()
                .map(|r| r.total_cycles())
                .collect();
            totals.sort_unstable();
            tail.row(vec![
                abbr.to_string(),
                sys.label(),
                totals.len().to_string(),
                percentile(&totals, 50).to_string(),
                percentile(&totals, 95).to_string(),
                percentile(&totals, 99).to_string(),
            ]);
        }
    }
    tail.print(h.csv);
}
