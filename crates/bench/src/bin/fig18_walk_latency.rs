//! Figure 18: normalized page-walk latency (queueing + access) of NHA,
//! FS-HPT and SoftWalker relative to the baseline.
//!
//! Paper headline: SoftWalker cuts total walk latency by 72.8% on average
//! (NHA −20%, FS-HPT −16%); regular apps see up to +18% from the added
//! SM↔L2TLB communication.

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::{table4, WorkloadClass};

fn main() {
    let h = parse_args();
    let systems = [
        SystemConfig::Nha,
        SystemConfig::FsHpt,
        SystemConfig::SoftWalker,
    ];

    let mut matrix = Vec::new();
    for spec in table4() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for sys in systems {
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
        }
    }
    prefetch(&matrix);

    let mut headers = vec![
        "bench".to_string(),
        "class".to_string(),
        "base walk (cyc)".into(),
    ];
    for s in &systems {
        headers.push(format!("{} norm", s.label()));
        headers.push(format!("{} queue-share", s.label()));
    }
    let mut table = Table::new(headers);

    let mut norm_sum = vec![Vec::new(); systems.len()];
    let mut norm_irr = vec![Vec::new(); systems.len()];

    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let base_lat = base.walk.avg_total();
        let mut cells = vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            format!("{base_lat:.0}"),
        ];
        for (i, sys) in systems.iter().enumerate() {
            let s = runner::run(&spec, *sys, h.scale);
            let norm = if base_lat > 0.0 {
                s.walk.avg_total() / base_lat
            } else {
                1.0
            };
            norm_sum[i].push(norm);
            if spec.class == WorkloadClass::Irregular {
                norm_irr[i].push(norm);
            }
            cells.push(format!("{norm:.2}"));
            cells.push(fmt_pct(s.walk.queue_fraction()));
        }
        table.row(cells);
    }

    println!("Figure 18 — normalized page-walk latency (1.0 = baseline)");
    println!("(paper: SoftWalker 0.27 avg [−72.8%], NHA 0.80, FS-HPT 0.84; regular up to 1.18)\n");
    table.print(h.csv);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    for (i, sys) in systems.iter().enumerate() {
        println!(
            "{}: mean normalized latency all={:.2} irregular={:.2}",
            sys.label(),
            mean(&norm_sum[i]),
            mean(&norm_irr[i]),
        );
    }
}
