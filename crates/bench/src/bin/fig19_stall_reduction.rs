//! Figure 19: reduction of warp-scheduler stall cycles under SoftWalker
//! relative to the baseline.
//!
//! Paper headline: 71% average stall reduction for irregular apps;
//! regular apps can see up to +10% more stalls (negative reduction).

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::{table4, WorkloadClass};

fn main() {
    let h = parse_args();
    let matrix: Vec<Cell> = table4()
        .iter()
        .flat_map(|spec| {
            [SystemConfig::Baseline, SystemConfig::SoftWalker]
                .map(|sys| Cell::bench(spec, sys.build(h.scale)))
        })
        .collect();
    prefetch(&matrix);
    let mut table = Table::new(vec![
        "bench".into(),
        "class".into(),
        "baseline stalls".into(),
        "SoftWalker stalls".into(),
        "reduction".into(),
    ]);

    let mut irr = Vec::new();
    let mut reg = Vec::new();
    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let sw = runner::run(&spec, SystemConfig::SoftWalker, h.scale);
        let red = sw.stall_reduction_vs(&base);
        table.row(vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            base.stall_cycles().to_string(),
            sw.stall_cycles().to_string(),
            fmt_pct(red),
        ]);
        match spec.class {
            WorkloadClass::Irregular => irr.push(red),
            WorkloadClass::Regular => reg.push(red),
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("Figure 19 — stall-cycle reduction under SoftWalker");
    println!("(paper: irregular avg 71%; regular up to −10%)\n");
    table.print(h.csv);
    println!(
        "mean reduction: irregular {} | regular {}",
        fmt_pct(avg(&irr)),
        fmt_pct(avg(&reg))
    );
}
