//! Extension experiment: dead-entry-aware TLB replacement and
//! translation prefetch across Table 4.
//!
//! The paper's SoftWalker keeps the baseline LRU TLBs and leaves the
//! PW-Warp threads idle whenever the walk queue drains. This harness
//! sweeps every Table 4 benchmark over the two translation-policy knobs
//! the extension adds:
//!
//! * **replacement** — baseline LRU vs the dead-on-arrival sampling
//!   predictor (`ReplPolicy::DeadBlock`) on both TLB levels;
//! * **prefetch** — off vs the distributor peeking ahead in each warp's
//!   instruction stream and issuing translation prefetches into idle
//!   PW-Warp threads.
//!
//! Reported per benchmark: L2 TLB MPKI and IPC for the LRU baseline, the
//! MPKI under DeadBlock, and the speedup of each variant over the LRU /
//! no-prefetch SoftWalker, plus the prefetch ledger (issued / useful) of
//! the prefetching run. Irregular benchmarks — the paper's focus — have
//! the thrashing reuse pattern dead-entry prediction targets; regular
//! ones are the guardrail (the predictor must not wreck them).

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, Cell, Runner, SystemConfig, Table};
use swgpu_sim::{GpuConfig, PrefetchConfig};
use swgpu_tlb::ReplPolicy;
use swgpu_workloads::{table4, WorkloadClass};

/// The four policy corners of the sweep, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Lru,
    Dead,
    LruPf,
    DeadPf,
}

const VARIANTS: [Variant; 4] = [Variant::Lru, Variant::Dead, Variant::LruPf, Variant::DeadPf];

impl Variant {
    fn apply(self, mut cfg: GpuConfig) -> GpuConfig {
        if matches!(self, Variant::Dead | Variant::DeadPf) {
            cfg.l1_tlb.repl = ReplPolicy::DeadBlock;
            cfg.l2_tlb.repl = ReplPolicy::DeadBlock;
        }
        if matches!(self, Variant::LruPf | Variant::DeadPf) {
            cfg.prefetch = PrefetchConfig::enabled();
        }
        cfg
    }
}

fn main() {
    let h = parse_args();

    let matrix: Vec<Cell> = table4()
        .iter()
        .flat_map(|spec| {
            VARIANTS.map(|v| Cell::bench(spec, v.apply(SystemConfig::SoftWalker.build(h.scale))))
        })
        .collect();
    prefetch(&matrix);

    let mut table = Table::new(vec![
        "bench".into(),
        "class".into(),
        "MPKI (LRU)".into(),
        "MPKI (Dead)".into(),
        "IPC (LRU)".into(),
        "Dead".into(),
        "LRU+pf".into(),
        "Dead+pf".into(),
        "pf issued".into(),
        "pf useful".into(),
    ]);

    // Speedups over the LRU / no-prefetch corner, per variant.
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); VARIANTS.len()];
    let mut per_variant_irr: Vec<Vec<f64>> = vec![Vec::new(); VARIANTS.len()];

    for spec in table4() {
        let get = |v: Variant| {
            Runner::global().get(&Cell::bench(
                &spec,
                v.apply(SystemConfig::SoftWalker.build(h.scale)),
            ))
        };
        let base = get(Variant::Lru);
        let dead = get(Variant::Dead);
        let pf = get(Variant::DeadPf);
        let mut row = vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            format!("{:.2}", base.l2_tlb_mpki()),
            format!("{:.2}", dead.l2_tlb_mpki()),
            format!("{:.3}", base.ipc()),
        ];
        for (i, v) in VARIANTS.iter().enumerate() {
            let stats = get(*v);
            assert_eq!(
                stats.instructions, base.instructions,
                "{}: policy changed the retired work",
                spec.abbr
            );
            let x = stats.speedup_over(&base);
            per_variant[i].push(x);
            if spec.class == WorkloadClass::Irregular {
                per_variant_irr[i].push(x);
            }
            if *v != Variant::Lru {
                row.push(fmt_x(x));
            }
        }
        row.push(pf.prefetch_issued.to_string());
        row.push(pf.prefetch_useful.to_string());
        table.row(row);
    }

    let summary = |label: &str, per: &[Vec<f64>]| {
        let mut row = vec![
            "geomean".into(),
            label.into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ];
        for (i, _) in VARIANTS.iter().enumerate().skip(1) {
            row.push(fmt_x(geomean(&per[i])));
        }
        row.push("-".into());
        row.push("-".into());
        row
    };
    let all = summary("all", &per_variant);
    let irr = summary("irregular", &per_variant_irr);
    table.row(all);
    table.row(irr);

    println!("Extension — dead-entry replacement + translation prefetch (SoftWalker, Table 4)");
    println!("(speedups relative to the LRU / no-prefetch SoftWalker on the same benchmark)\n");
    table.print(h.csv);
}
