//! Data-path fault-injection smoke test: storms the demand-paging fill
//! pipeline end to end and exits nonzero (for CI) on any violation.
//!
//! Checks, in order:
//!
//! 1. **Conservation under storm** — with every fill-pipeline fault site
//!    armed (dropped / delayed / duplicated / corrupted fills, lost
//!    shootdowns, stalled driver service), each walker configuration
//!    drains and balances the data-path ledger: every
//!    recovery-requiring injection is recovered in place, escalated
//!    through the fault buffer, or resolved by retiring the frame — and
//!    every corrupted payload is caught by the end-to-end checksum.
//! 2. **Zero-rate transparency** — an armed-but-zero plan (seed set,
//!    all data rates 0.0) on a demand-paged cell is a byte-level no-op:
//!    identical stats JSON, no `mm_fault_*` / `data_*` keys emitted.
//! 3. **Frame retirement** — a high-corruption recipe with the retire
//!    threshold at 1 moves at least one repeatedly-failing physical
//!    frame onto the allocator's bad-frame list and still conserves.
//!
//! Usage: `mm_fault_smoke` (no flags; deterministic).

use swgpu_bench::{Cell, Scale, SystemConfig};
use swgpu_sim::SimStats;
use swgpu_types::{FaultPlan, MmConfig};
use swgpu_workloads::by_abbr;

/// The walker configurations the storm check sweeps.
const SYSTEMS: [SystemConfig; 3] = [
    SystemConfig::Baseline,
    SystemConfig::SoftWalker,
    SystemConfig::Hybrid,
];

/// Every fill-pipeline fault site armed at storm rates.
fn storm_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xfee1_dead,
        fill_drop_rate: 0.10,
        fill_delay_rate: 0.05,
        fill_duplicate_rate: 0.05,
        fill_corrupt_rate: 0.05,
        shootdown_drop_rate: 0.10,
        driver_stuck_rate: 0.05,
        ..FaultPlan::default()
    }
}

/// A demand-paged gups cell under `plan` with a tight resident budget.
fn run_cell(system: SystemConfig, plan: FaultPlan) -> SimStats {
    let spec = by_abbr("gups").expect("known benchmark");
    let mut cfg = system.build(Scale::Quick);
    cfg.fault_plan = plan;
    cfg.mm = MmConfig {
        resident_page_budget: 64,
        ..MmConfig::demand_paged()
    };
    Cell::bench_scaled(&spec, cfg, 20).simulate()
}

/// Shared ledger assertions for any armed data-path run.
fn check_ledger(label: &str, stats: &SimStats) -> Result<(), String> {
    if stats.timed_out {
        return Err(format!("{label}: fill storm timed out"));
    }
    let f = &stats.mm_fault;
    if f.injected_conserved() == 0 {
        return Err(format!("{label}: storm injected nothing"));
    }
    let resolved = f.recovered_fills + f.escalated_fills + f.retired_fills;
    if f.injected_conserved() != resolved {
        return Err(format!(
            "{label}: data-path conservation violated — {} injected but {} resolved ({f:?})",
            f.injected_conserved(),
            resolved
        ));
    }
    if f.detected_corruptions != f.injected_fill_corruptions {
        return Err(format!(
            "{label}: checksum missed a corruption — {} injected, {} detected",
            f.injected_fill_corruptions, f.detected_corruptions
        ));
    }
    if stats.faults != 0 {
        return Err(format!(
            "{label}: {} fill faults leaked to the UVM fault path",
            stats.faults
        ));
    }
    Ok(())
}

/// Check 1: the full storm conserves on every walker configuration.
fn check_storm_conservation() -> Result<(), String> {
    for system in SYSTEMS {
        let label = format!("{} fill storm", system.label());
        let stats = run_cell(system, storm_plan());
        check_ledger(&label, &stats)?;
        let f = &stats.mm_fault;
        if f.injected_fill_drops == 0 || f.fill_watchdog_timeouts == 0 {
            return Err(format!(
                "{label}: dropped fills must trip the watchdog \
                 ({} drops, {} timeouts)",
                f.injected_fill_drops, f.fill_watchdog_timeouts
            ));
        }
        println!(
            "[mm-fault-smoke] {label}: ok — {} injected \
             ({} recovered / {} escalated / {} retired), {} corruptions detected",
            f.injected_conserved(),
            f.recovered_fills,
            f.escalated_fills,
            f.retired_fills,
            f.detected_corruptions
        );
    }
    Ok(())
}

/// Check 2: an armed-but-zero plan is byte-identical to no plan at all.
fn check_zero_rate_transparency() -> Result<(), String> {
    let baseline = run_cell(SystemConfig::SoftWalker, FaultPlan::default());
    let armed = run_cell(
        SystemConfig::SoftWalker,
        FaultPlan {
            seed: 0x5eed,
            ..FaultPlan::default()
        },
    );
    if baseline.to_json() != armed.to_json() {
        return Err(
            "zero-rate: an armed-but-zero plan's seed perturbed a demand-paged run".to_string(),
        );
    }
    let json = armed.to_json();
    if json.contains("mm_fault_") || json.contains("data_") {
        return Err("zero-rate: inert run emitted data-path fault keys".to_string());
    }
    println!("[mm-fault-smoke] zero-rate: ok — armed-but-zero plan is a byte-level no-op");
    Ok(())
}

/// Check 3: a corruption-heavy recipe retires at least one frame.
fn check_frame_retirement() -> Result<(), String> {
    let stats = run_cell(
        SystemConfig::SoftWalker,
        FaultPlan {
            seed: 0xbad_f111,
            fill_corrupt_rate: 0.25,
            frame_retire_threshold: 1,
            ..FaultPlan::default()
        },
    );
    check_ledger("retirement", &stats)?;
    let f = &stats.mm_fault;
    if f.frames_retired == 0 {
        return Err(format!(
            "retirement: {} corruptions at threshold 1 retired no frame ({f:?})",
            f.detected_corruptions
        ));
    }
    println!(
        "[mm-fault-smoke] retirement: ok — {} corruptions detected, \
         {} frames on the bad-frame list",
        f.detected_corruptions, f.frames_retired
    );
    Ok(())
}

type Check = fn() -> Result<(), String>;

fn main() {
    let checks: [(&str, Check); 3] = [
        ("storm conservation", check_storm_conservation),
        ("zero-rate transparency", check_zero_rate_transparency),
        ("frame retirement", check_frame_retirement),
    ];
    let mut failures = 0;
    for (name, check) in checks {
        if let Err(why) = check() {
            eprintln!("[mm-fault-smoke] FAIL ({name}) — {why}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("[mm-fault-smoke] all data-path fault checks passed");
}
