//! Event-kernel smoke test: runs drain-heavy cells (long memory-latency
//! tails, sparse fault-recovery wakes) on both the event-scheduled
//! kernel and the dense reference loop, and verifies that
//!
//! 1. the two produce **byte-identical** statistics JSON,
//! 2. the schedule counters tile the run (`steps + skipped == cycles+1`),
//! 3. the event kernel actually skips cycles, with a floor on the
//!    skipped fraction — a regression that silently degrades the kernel
//!    to per-cycle ticking keeps equivalence but fails here.
//!
//! Exits nonzero (for CI) on any violation.

use swgpu_bench::{Cell, Scale, SystemConfig};
use swgpu_sim::SimStats;
use swgpu_types::FaultPlan;
use swgpu_workloads::by_abbr;

/// Minimum fraction of simulated cycles the event kernel must skip on
/// every smoke cell. The single-SM low-occupancy cells below are
/// dominated by 80-cycle L2 TLB hops and DRAM round-trips; observed
/// fractions sit between 0.60 and 0.79, so 0.25 leaves headroom
/// without tolerating a degenerate schedule.
const MIN_SKIPPED_FRACTION: f64 = 0.25;

/// A delay-heavy storm: long injected memory delays force the sparsest
/// wakes in the system (watchdog deadlines, retry backoff timers).
fn delay_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xd31a,
        mem_delay_rate: 0.10,
        stuck_thread_rate: 0.02,
        ..FaultPlan::default()
    }
}

fn check(label: &str, event: &SimStats, dense: &SimStats) -> Result<(), String> {
    if event.to_json() != dense.to_json() {
        return Err(format!(
            "{label}: event kernel diverged from dense reference"
        ));
    }
    if event.timed_out {
        return Err(format!("{label}: smoke cell must drain, but timed out"));
    }
    if event.kernel_steps + event.kernel_cycles_skipped != event.cycles + 1 {
        return Err(format!(
            "{label}: schedule accounting does not tile — {} steps + {} skipped != {} cycles + 1",
            event.kernel_steps, event.kernel_cycles_skipped, event.cycles
        ));
    }
    if event.kernel_cycles_skipped == 0 {
        return Err(format!("{label}: event kernel never skipped a cycle"));
    }
    let fraction = event.kernel_cycles_skipped as f64 / (event.cycles + 1) as f64;
    if fraction < MIN_SKIPPED_FRACTION {
        return Err(format!(
            "{label}: skipped fraction {fraction:.3} below floor {MIN_SKIPPED_FRACTION}"
        ));
    }
    Ok(())
}

fn main() {
    let mut failures = 0;
    let mut cells: Vec<(String, Cell)> = Vec::new();

    // Drain-heavy benchmark cells: one SM with a handful of warps, so
    // there is not enough parallelism to cover the 80-cycle L2 TLB hops
    // and DRAM round-trips — most of the run is quiescent waiting.
    for abbr in ["gups", "bfs"] {
        let spec = by_abbr(abbr).expect("known benchmark");
        for system in [
            SystemConfig::Baseline,
            SystemConfig::SoftWalker,
            SystemConfig::Hybrid,
        ] {
            let mut cfg = system.build(Scale::Quick);
            cfg.sms = 1;
            cfg.max_warps = 2;
            cells.push((
                format!("{abbr}/{}", system.label()),
                Cell::bench_scaled(&spec, cfg, 20),
            ));
        }
    }

    // A fault-delay cell per walker kind: injected delays and stuck
    // threads make recovery timers the only pending events for long
    // stretches.
    let spec = by_abbr("gups").expect("known benchmark");
    for system in [SystemConfig::Baseline, SystemConfig::SoftWalker] {
        let mut cfg = system.build(Scale::Quick);
        cfg.sms = 1;
        cfg.max_warps = 2;
        cfg.fault_plan = delay_plan();
        cells.push((
            format!("gups+delay/{}", system.label()),
            Cell::bench_scaled(&spec, cfg, 20),
        ));
    }

    for (label, cell) in &cells {
        let event = cell.simulate();
        let dense = cell.simulate_dense();
        match check(label, &event, &dense) {
            Ok(()) => {
                let fraction = event.kernel_cycles_skipped as f64 / (event.cycles + 1) as f64;
                println!(
                    "[kernel-smoke] {label}: ok — {} cycles, {} steps, {} skipped ({:.1}%)",
                    event.cycles,
                    event.kernel_steps,
                    event.kernel_cycles_skipped,
                    100.0 * fraction
                );
            }
            Err(why) => {
                eprintln!("[kernel-smoke] FAIL — {why}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
    println!(
        "[kernel-smoke] all {} cells byte-identical with the dense reference",
        cells.len()
    );
}
