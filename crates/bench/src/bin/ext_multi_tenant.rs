//! Extension experiment: multi-tenant address spaces over one GPU.
//!
//! The paper evaluates SoftWalker with a single address space owning the
//! whole machine. This harness co-schedules 2–8 Table 4 workloads as
//! concurrent tenants — each with its own ASID-keyed page table, TLB
//! tags, and SM slice — under both sharing policies the multi-tenant
//! extension supports:
//!
//! * **partitioned** — MIG-style static isolation: each tenant owns a
//!   disjoint window of L2 TLB ways and its walks dispatch only to its
//!   own SMs;
//! * **shared+QoS** — fully shared L2 TLB and walker pool, with a QoS
//!   cap bounding each tenant's concurrently in-flight walks so one
//!   irregular tenant cannot monopolize the walk bandwidth.
//!
//! Every mix pairs irregular with regular benchmarks (the interesting
//! case: the irregular tenant's walk storm is exactly what the QoS cap
//! and the way partition exist to contain). Reported per tenant: IPC
//! over the tenant's own active window, private L2 TLB MPKI, and
//! completed walks; per cell: Jain's fairness index over the tenant
//! IPCs (1.0 = perfectly even progress, 1/n = one tenant hogging the
//! machine).

use swgpu_bench::{parse_args, prefetch, Cell, Runner, Scale, SystemConfig, Table};
use swgpu_sim::{SharingPolicy, TenantConfig, TenantsConfig};

/// The tenant mixes the harness sweeps: 2, 4, and 8 concurrent tenants,
/// each mix half irregular, half regular (Table 4 classes).
fn mixes() -> Vec<Vec<&'static str>> {
    vec![
        vec!["gups", "2dc"],
        vec!["bfs", "gemm"],
        vec!["gups", "bfs", "2dc", "gemm"],
        vec!["gups", "bfs", "sssp", "spmv", "2dc", "gemm", "fft", "histo"],
    ]
}

/// Both sharing policies, labelled for the table.
fn policies() -> [(&'static str, SharingPolicy); 2] {
    [
        ("partitioned", SharingPolicy::Partitioned),
        (
            "shared+QoS",
            SharingPolicy::Shared {
                max_inflight_walks: 8,
            },
        ),
    ]
}

/// Builds the multi-tenant cell for one mix under one policy: the SMs
/// split evenly across the tenants (earlier tenants take the
/// remainder), every tenant at 10% footprint so even the 8-tenant mix
/// keeps a working set per SM slice comparable to the single-tenant
/// harnesses.
fn mix_cell(mix: &[&str], policy: SharingPolicy, scale: Scale) -> Cell {
    let mut cfg = SystemConfig::SoftWalker.build(scale);
    let n = mix.len();
    let base = cfg.sms / n;
    let rem = cfg.sms % n;
    let tenants = mix
        .iter()
        .enumerate()
        .map(|(i, abbr)| TenantConfig {
            workload: (*abbr).to_string(),
            sms: base + usize::from(i < rem),
        })
        .collect();
    cfg.tenants = Some(TenantsConfig {
        tenants,
        policy,
        sub_entry_sharing: false,
    });
    Cell::tenant_mix(cfg, 10)
}

fn main() {
    let h = parse_args();

    let mut matrix = Vec::new();
    for mix in mixes() {
        for (_, policy) in policies() {
            matrix.push(mix_cell(&mix, policy, h.scale));
        }
    }
    prefetch(&matrix);

    let mut table = Table::new(vec![
        "mix".into(),
        "policy".into(),
        "tenant".into(),
        "IPC".into(),
        "MPKI".into(),
        "walks".into(),
        "fairness".into(),
    ]);

    let mut fairness_by_policy = vec![Vec::new(); policies().len()];
    for mix in mixes() {
        let mix_label = mix.join("+");
        for (p, (policy_label, policy)) in policies().into_iter().enumerate() {
            let s = Runner::global().get(&mix_cell(&mix, policy, h.scale));
            assert_eq!(
                s.tenants.len(),
                mix.len(),
                "{mix_label}: tenant slice count"
            );
            assert_eq!(
                s.tenants.iter().map(|t| t.walks).sum::<u64>(),
                s.walk.translations,
                "{mix_label} / {policy_label}: per-tenant walk ledger leaked"
            );
            let fairness = s.fairness_index();
            fairness_by_policy[p].push(fairness);
            for (abbr, t) in mix.iter().zip(&s.tenants) {
                // Fairness is a per-cell metric; print it once per cell,
                // on the first tenant's row.
                let shown = if std::ptr::eq(t, &s.tenants[0]) {
                    format!("{fairness:.3}")
                } else {
                    "-".into()
                };
                table.row(vec![
                    mix_label.clone(),
                    policy_label.into(),
                    (*abbr).to_string(),
                    format!("{:.3}", t.ipc()),
                    format!("{:.1}", t.l2_tlb_mpki()),
                    t.walks.to_string(),
                    shown,
                ]);
            }
        }
    }

    println!("Extension — multi-tenant address spaces (2–8 concurrent Table 4 workloads)");
    println!("(per-tenant IPC/MPKI over each tenant's own window; fairness = Jain's index)\n");
    table.print(h.csv);
    for (p, (policy_label, _)) in policies().into_iter().enumerate() {
        let f = &fairness_by_policy[p];
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        println!(
            "{policy_label}: mean fairness {mean:.3} across {} mixes (min {:.3})",
            f.len(),
            f.iter().cloned().fold(f64::INFINITY, f64::min)
        );
    }
}
