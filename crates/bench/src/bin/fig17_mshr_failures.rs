//! Figure 17: reduction of L2 TLB MSHR failures when the In-TLB MSHR is
//! enabled (SoftWalker) relative to the 32-PTW baseline.
//!
//! Paper headline: In-TLB MSHR eliminates 95.3% of MSHR failures on
//! average; spmv only reaches ~65% because its misses pile into a few
//! L2 TLB sets.

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::irregular;

fn main() {
    let h = parse_args();
    let matrix: Vec<Cell> = irregular()
        .iter()
        .flat_map(|spec| {
            [SystemConfig::Baseline, SystemConfig::SoftWalker]
                .map(|sys| Cell::bench(spec, sys.build(h.scale)))
        })
        .collect();
    prefetch(&matrix);
    let mut table = Table::new(vec![
        "bench".into(),
        "baseline failures".into(),
        "SoftWalker failures".into(),
        "reduction".into(),
    ]);

    let mut reductions = Vec::new();
    for spec in irregular() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let sw = runner::run(&spec, SystemConfig::SoftWalker, h.scale);
        let b = base.l2_mshr_failure_events;
        let s = sw.l2_mshr_failure_events;
        let red = if b == 0 {
            0.0
        } else {
            1.0 - s as f64 / b as f64
        };
        if b > 0 {
            reductions.push(red);
        }
        table.row(vec![
            spec.abbr.to_string(),
            b.to_string(),
            s.to_string(),
            fmt_pct(red),
        ]);
    }

    println!("Figure 17 — L2 TLB MSHR failure reduction with In-TLB MSHR");
    println!("(paper: 95.3% average reduction; spmv ~65% due to per-set contention)\n");
    table.print(h.csv);
    let avg = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    println!(
        "mean reduction over benchmarks with failures: {}",
        fmt_pct(avg)
    );
}
