//! Figure 8: warp-scheduler cycle breakdown at the baseline — issued vs
//! memory-stall vs scoreboard-stall vs idle cycles.
//!
//! Paper headline: for irregular applications nearly 90% of scheduler
//! cycles are memory or scoreboard stalls.
//!
//! A second, observability-backed section ties the stalls to the walk
//! machinery: sampled PTW queue depth and L2-TLB MSHR occupancy
//! time-series plus the per-SM stall histogram, from the obs payloads in
//! the schema-v3 run artifacts.

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, Runner, SystemConfig, Table};
use swgpu_sim::{GpuConfig, ObsConfig};
use swgpu_workloads::{by_abbr, table4, WorkloadClass};

/// Benchmarks for the obs-backed section: two irregular, two regular.
const OBS_BENCHES: [&str; 4] = ["gups", "bfs", "gemm", "fft"];

/// The baseline cell for `abbr` with the observability layer armed.
fn observed_cell(abbr: &str, scale: swgpu_bench::Scale) -> Cell {
    let spec = by_abbr(abbr).expect("known benchmark");
    let cfg = GpuConfig {
        obs: ObsConfig::enabled(),
        ..SystemConfig::Baseline.build(scale)
    };
    Cell::bench(&spec, cfg)
}

/// Mean of a sampled time-series window (0 when empty).
fn series_mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

fn main() {
    let h = parse_args();
    let mut matrix: Vec<Cell> = table4()
        .iter()
        .map(|spec| Cell::bench(spec, SystemConfig::Baseline.build(h.scale)))
        .collect();
    matrix.extend(OBS_BENCHES.iter().map(|a| observed_cell(a, h.scale)));
    prefetch(&matrix);
    let mut table = Table::new(vec![
        "bench".into(),
        "class".into(),
        "issued".into(),
        "mem stall".into(),
        "scoreboard".into(),
        "idle".into(),
        "stalled total".into(),
    ]);

    let mut irr_stall = Vec::new();
    let mut reg_stall = Vec::new();

    for spec in table4() {
        let s = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let t = s.sm.total_cycles().max(1) as f64;
        let stalled = s.sm.stall_fraction();
        table.row(vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            fmt_pct(s.sm.issued_cycles as f64 / t),
            fmt_pct(s.sm.mem_stall_cycles as f64 / t),
            fmt_pct(s.sm.scoreboard_stall_cycles as f64 / t),
            fmt_pct(s.sm.idle_cycles as f64 / t),
            fmt_pct(stalled),
        ]);
        match spec.class {
            WorkloadClass::Irregular => irr_stall.push(stalled),
            WorkloadClass::Regular => reg_stall.push(stalled),
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("Figure 8 — warp scheduler cycle breakdown (baseline)");
    println!("(paper: ~90% of cycles are memory/scoreboard stalls for irregular apps)\n");
    table.print(h.csv);
    println!(
        "mean stalled fraction: irregular {} | regular {}",
        fmt_pct(avg(&irr_stall)),
        fmt_pct(avg(&reg_stall))
    );

    // Tie the stalls to the walk machinery: irregular apps keep the HW
    // PTW queue and L2-TLB MSHRs saturated while regular apps barely
    // touch them. Occupancies are means over the obs sampled windows;
    // per-SM stall p50/max come from the obs histogram.
    println!("\nWalk-machinery pressure at the baseline (obs time-series + histograms)");
    let mut obs_table = Table::new(vec![
        "bench".into(),
        "mean PTW queue depth".into(),
        "mean MSHR in-flight".into(),
        "SM stall p50 (cyc)".into(),
        "SM stall max (cyc)".into(),
    ]);
    for abbr in OBS_BENCHES {
        let s = Runner::global().get(&observed_cell(abbr, h.scale));
        let report = s.obs.as_deref().expect("obs armed");
        let pwb = report.time_series("hw_pwb_depth").expect("pwb series");
        let mshr = report
            .time_series("l2_mshr_dedicated")
            .expect("mshr series");
        let stall = report.histogram("sm_stall_cycles").expect("stall hist");
        obs_table.row(vec![
            abbr.to_string(),
            format!("{:.1}", series_mean(&pwb.samples())),
            format!("{:.1}", series_mean(&mshr.samples())),
            stall.percentile(0.50).to_string(),
            stall.max().to_string(),
        ]);
    }
    obs_table.print(h.csv);
}
