//! Figure 8: warp-scheduler cycle breakdown at the baseline — issued vs
//! memory-stall vs scoreboard-stall vs idle cycles.
//!
//! Paper headline: for irregular applications nearly 90% of scheduler
//! cycles are memory or scoreboard stalls.

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::{table4, WorkloadClass};

fn main() {
    let h = parse_args();
    let matrix: Vec<Cell> = table4()
        .iter()
        .map(|spec| Cell::bench(spec, SystemConfig::Baseline.build(h.scale)))
        .collect();
    prefetch(&matrix);
    let mut table = Table::new(vec![
        "bench".into(),
        "class".into(),
        "issued".into(),
        "mem stall".into(),
        "scoreboard".into(),
        "idle".into(),
        "stalled total".into(),
    ]);

    let mut irr_stall = Vec::new();
    let mut reg_stall = Vec::new();

    for spec in table4() {
        let s = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let t = s.sm.total_cycles().max(1) as f64;
        let stalled = s.sm.stall_fraction();
        table.row(vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            fmt_pct(s.sm.issued_cycles as f64 / t),
            fmt_pct(s.sm.mem_stall_cycles as f64 / t),
            fmt_pct(s.sm.scoreboard_stall_cycles as f64 / t),
            fmt_pct(s.sm.idle_cycles as f64 / t),
            fmt_pct(stalled),
        ]);
        match spec.class {
            WorkloadClass::Irregular => irr_stall.push(stalled),
            WorkloadClass::Regular => reg_stall.push(stalled),
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("Figure 8 — warp scheduler cycle breakdown (baseline)");
    println!("(paper: ~90% of cycles are memory/scoreboard stalls for irregular apps)\n");
    table.print(h.csv);
    println!(
        "mean stalled fraction: irregular {} | regular {}",
        fmt_pct(avg(&irr_stall)),
        fmt_pct(avg(&reg_stall))
    );
}
