//! Figure 24: SoftWalker speedup as the maximum number of In-TLB MSHR
//! entries grows from 0 (disabled) to 1024.
//!
//! Paper headline: average speedups of 1.63x / 1.88x / 2.04x / 2.12x /
//! 2.24x at 0/128/256/512/1024 entries. sy2k loses some L2 TLB hit rate
//! to pending-entry pollution; spmv stops improving past 128 because its
//! misses contend within a few sets.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::table4;

fn main() {
    let h = parse_args();
    let capacities = [0usize, 128, 256, 512, 1024];
    let mut headers = vec!["bench".to_string()];
    headers.extend(capacities.iter().map(|c| format!("InTLB={c}")));
    let mut table = Table::new(headers);

    let mut matrix = Vec::new();
    for spec in table4() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for &cap in &capacities {
            let sys = SystemConfig::SwWithCapacity { in_tlb_max: cap };
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
        }
    }
    prefetch(&matrix);

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); capacities.len()];
    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let mut cells = vec![spec.abbr.to_string()];
        for (i, &cap) in capacities.iter().enumerate() {
            let s = runner::run(
                &spec,
                SystemConfig::SwWithCapacity { in_tlb_max: cap },
                h.scale,
            );
            let x = s.speedup_over(&base);
            cols[i].push(x);
            cells.push(fmt_x(x));
        }
        table.row(cells);
    }
    let mut avg = vec!["geomean".to_string()];
    for c in &cols {
        avg.push(fmt_x(geomean(c)));
    }
    table.row(avg);

    println!("Figure 24 — SoftWalker speedup vs In-TLB MSHR capacity");
    println!("(paper: 1.63x/1.88x/2.04x/2.12x/2.24x at 0/128/256/512/1024)\n");
    table.print(h.csv);
}
