//! Multi-tenant smoke test: exercises the ASID-keyed translation stack
//! end to end and exits nonzero (for CI) on any violation.
//!
//! Checks, in order:
//!
//! 1. **Single-tenant transparency** — the default configuration's
//!    fingerprint still matches the golden pin (no cached single-tenant
//!    cell is invalidated), a tenant-free run emits no tenant stats
//!    keys, and arming a tenant layout re-keys the run cache.
//! 2. **Walk-conservation ledger** — on a two-tenant irregular+regular
//!    mix, under both sharing policies, every completed walk is charged
//!    to exactly one tenant: `Σ tenants[i].walks == walk.translations`,
//!    with both tenants actually progressing.
//! 3. **Fairness bounds** — Jain's index over the per-tenant IPCs lands
//!    in (0, 1] for both policies (1.0 exactly would mean perfectly
//!    equal rates; 0 would mean a starved tenant with the index
//!    degenerating).
//! 4. **Determinism** — the same mix simulated twice produces
//!    byte-identical stats JSON under both policies.
//!
//! Usage: `tenant_smoke` (no flags; deterministic).

use swgpu_bench::{Cell, Scale, SystemConfig};
use swgpu_sim::{GpuConfig, SharingPolicy, SimStats, TenantsConfig};

/// The golden default-config fingerprint pinned in `swgpu-sim`'s config
/// tests. Duplicated here on purpose: the smoke test guards the *run
/// cache* (artifacts keyed by this string survive the multi-tenant
/// changes), not the hashing scheme itself.
const GOLDEN_DEFAULT_FINGERPRINT: &str = "e2d406ba07f931c1";

/// The quick-scale SoftWalker base configuration every check starts
/// from.
fn base_cfg() -> GpuConfig {
    SystemConfig::SoftWalker.build(Scale::Quick)
}

/// A two-tenant irregular+regular mix (gups + 2dc, Table 4) over the
/// given sharing policy, SMs split evenly.
fn mix_cell(policy: SharingPolicy) -> Cell {
    let mut cfg = base_cfg();
    let mut layout = TenantsConfig::pair("gups", "2dc", cfg.sms);
    layout.policy = policy;
    cfg.tenants = Some(layout);
    Cell::tenant_mix(cfg, 10)
}

/// Both sharing policies, labelled for the failure messages.
fn policies() -> [(&'static str, SharingPolicy); 2] {
    [
        ("partitioned", SharingPolicy::Partitioned),
        (
            "shared+QoS",
            SharingPolicy::Shared {
                max_inflight_walks: 8,
            },
        ),
    ]
}

/// Check 1: single-tenant configs are untouched by the multi-tenant
/// machinery, and tenant layouts re-key the cache.
fn check_single_tenant_transparency() -> Result<(), String> {
    let default_fp = GpuConfig::default().fingerprint();
    if default_fp != GOLDEN_DEFAULT_FINGERPRINT {
        return Err(format!(
            "default fingerprint drifted: {default_fp} != {GOLDEN_DEFAULT_FINGERPRINT} \
             (every cached single-tenant artifact just got invalidated)"
        ));
    }
    let spec = swgpu_workloads::by_abbr("gups").expect("known benchmark");
    let single = Cell::bench(&spec, base_cfg()).simulate();
    let json = single.to_json();
    if json.contains("tenant") || json.contains("fairness") {
        return Err(format!(
            "single-tenant run emitted tenant stats keys: {json}"
        ));
    }
    if format!("{single}").contains("tenants:") {
        return Err("single-tenant Display rendering grew a tenant block".into());
    }
    for (name, policy) in policies() {
        let tenanted = mix_cell(policy);
        if tenanted.cfg.fingerprint() == base_cfg().fingerprint() {
            return Err(format!("{name}: a tenant layout must re-key the run cache"));
        }
    }
    println!(
        "[tenant-smoke] single-tenant transparency: ok — golden fingerprint \
         {GOLDEN_DEFAULT_FINGERPRINT} intact, no tenant keys emitted"
    );
    Ok(())
}

/// Check 2: the per-tenant walk ledger covers every completed walk.
fn check_walk_conservation() -> Result<(), String> {
    for (name, policy) in policies() {
        let s = mix_cell(policy).simulate();
        if s.timed_out {
            return Err(format!("{name}: two-tenant mix timed out"));
        }
        if s.tenants.len() != 2 {
            return Err(format!(
                "{name}: expected 2 tenant slices, got {}",
                s.tenants.len()
            ));
        }
        for (i, t) in s.tenants.iter().enumerate() {
            if t.instructions == 0 {
                return Err(format!("{name}: tenant {i} retired no instructions"));
            }
        }
        let charged: u64 = s.tenants.iter().map(|t| t.walks).sum();
        if charged != s.walk.translations {
            return Err(format!(
                "{name}: walk ledger leaked — {} walks completed but {} charged \
                 ({} / {} per tenant)",
                s.walk.translations, charged, s.tenants[0].walks, s.tenants[1].walks
            ));
        }
        println!(
            "[tenant-smoke] walk conservation ({name}): ok — {} walks, \
             {} / {} per tenant",
            s.walk.translations, s.tenants[0].walks, s.tenants[1].walks
        );
    }
    Ok(())
}

/// Check 3: the fairness index stays inside its mathematical bounds.
fn check_fairness_bounds() -> Result<(), String> {
    for (name, policy) in policies() {
        let s = mix_cell(policy).simulate();
        let f = s.fairness_index();
        if !(f > 0.0 && f <= 1.0) {
            return Err(format!("{name}: fairness index {f} outside (0, 1]"));
        }
        // Two active tenants: Jain's index is bounded below by 1/n.
        if f < 0.5 {
            return Err(format!(
                "{name}: fairness index {f:.3} below the two-tenant floor of 0.5 \
                 (IPCs {:.3} / {:.3})",
                s.tenants[0].ipc(),
                s.tenants[1].ipc()
            ));
        }
        println!(
            "[tenant-smoke] fairness bounds ({name}): ok — index {f:.3}, \
             IPCs {:.3} / {:.3}",
            s.tenants[0].ipc(),
            s.tenants[1].ipc()
        );
    }
    Ok(())
}

/// Check 4: the multi-tenant machine is bit-for-bit deterministic.
fn check_determinism() -> Result<(), String> {
    for (name, policy) in policies() {
        let a = mix_cell(policy).simulate();
        let b = mix_cell(policy).simulate();
        if a.to_json() != b.to_json() {
            return Err(format!("{name}: two-tenant run is not deterministic"));
        }
    }
    // The tenant block also survives a stats JSON round trip (what the
    // schema-7 artifacts persist).
    let s = mix_cell(SharingPolicy::Partitioned).simulate();
    let parsed = SimStats::from_json(&s.to_json())
        .map_err(|e| format!("tenant stats failed to round-trip: {e}"))?;
    if parsed.tenants != s.tenants {
        return Err("tenant slices changed across a JSON round trip".into());
    }
    println!("[tenant-smoke] determinism: ok — byte-identical reruns under both policies");
    Ok(())
}

type Check = fn() -> Result<(), String>;

fn main() {
    let checks: [(&str, Check); 4] = [
        (
            "single-tenant transparency",
            check_single_tenant_transparency,
        ),
        ("walk conservation", check_walk_conservation),
        ("fairness bounds", check_fairness_bounds),
        ("determinism", check_determinism),
    ];
    let mut failures = 0;
    for (name, check) in checks {
        if let Err(why) = check() {
            eprintln!("[tenant-smoke] FAIL ({name}) — {why}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("[tenant-smoke] all multi-tenant checks passed");
}
