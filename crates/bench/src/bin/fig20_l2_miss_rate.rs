//! Figure 20: L2 data cache miss rate, baseline vs SoftWalker — plus the
//! DRAM bandwidth utilization the accompanying discussion quotes.
//!
//! Paper headline: the extra page-walk traffic leaves the L2 miss rate
//! essentially unchanged, because the baseline leaves the memory system
//! underutilized (irregular apps use only ~6.7% of DRAM bandwidth).

use swgpu_bench::report::fmt_pct;
use swgpu_bench::{parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::{table4, WorkloadClass};

fn main() {
    let h = parse_args();
    let matrix: Vec<Cell> = table4()
        .iter()
        .flat_map(|spec| {
            [SystemConfig::Baseline, SystemConfig::SoftWalker]
                .map(|sys| Cell::bench(spec, sys.build(h.scale)))
        })
        .collect();
    prefetch(&matrix);
    let mut table = Table::new(vec![
        "bench".into(),
        "class".into(),
        "L2D miss (base)".into(),
        "L2D miss (SW)".into(),
        "delta".into(),
        "DRAM util (base)".into(),
        "DRAM util (SW)".into(),
    ]);

    let mut base_utils = Vec::new();
    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let sw = runner::run(&spec, SystemConfig::SoftWalker, h.scale);
        let mb = base.l2d.miss_rate();
        let ms = sw.l2d.miss_rate();
        table.row(vec![
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            fmt_pct(mb),
            fmt_pct(ms),
            format!("{:+.1}pp", (ms - mb) * 100.0),
            fmt_pct(base.dram_utilization),
            fmt_pct(sw.dram_utilization),
        ]);
        if spec.class == WorkloadClass::Irregular {
            base_utils.push(base.dram_utilization);
        }
    }

    println!("Figure 20 — L2 data cache miss rate (baseline vs SoftWalker)");
    println!("(paper: miss rate unchanged; baseline irregular DRAM utilization ~6.7%)\n");
    table.print(h.csv);
    let avg = base_utils.iter().sum::<f64>() / base_utils.len().max(1) as f64;
    println!(
        "mean baseline DRAM utilization (irregular): {}",
        fmt_pct(avg)
    );
}
