//! Figure 15: speedup versus relative area overhead for hardware PTW
//! scaling (various walker counts x PWB port counts) against SoftWalker.
//!
//! Paper headline: within the area budget where hardware manages 32–128
//! PTWs (speedups 1.1x–2.1x), SoftWalker delivers over 2.6x.

use swgpu_area::{relative_area, softwalker_relative_area, PtwAreaConfig};
use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, Scale, SystemConfig, Table};
use swgpu_workloads::{irregular, BenchmarkSpec};

fn cell(spec: &BenchmarkSpec, sys: SystemConfig, ports: usize, scale: Scale) -> Cell {
    let mut cfg = sys.build(scale);
    cfg.ptw.pwb_ports = ports;
    Cell::bench(spec, cfg)
}

fn speedup_geomean(sys: SystemConfig, ports: usize, scale: Scale, base_cycles: &[u64]) -> f64 {
    let mut xs = Vec::new();
    for (spec, &base) in irregular().iter().zip(base_cycles) {
        let s = runner::run_with(spec, sys, scale, |mut c| {
            c.ptw.pwb_ports = ports;
            c
        });
        xs.push(base as f64 / s.cycles.max(1) as f64);
    }
    geomean(&xs)
}

fn main() {
    let h = parse_args();
    let mut table = Table::new(vec![
        "config".into(),
        "PWB ports".into(),
        "relative area".into(),
        "speedup (geomean irregular)".into(),
    ]);

    let hw_points: Vec<(usize, usize)> = [32usize, 64, 128, 256]
        .iter()
        .flat_map(|&w| [1usize, 2, 4].iter().map(move |&p| (w, p)))
        .filter(|&(w, p)| !(w == 32 && p == 1))
        .collect();
    let mut matrix = Vec::new();
    for spec in irregular() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for &(walkers, ports) in &hw_points {
            let sys = SystemConfig::ScaledPtw {
                walkers,
                scale_mshrs: true,
            };
            matrix.push(cell(&spec, sys, ports, h.scale));
        }
        matrix.push(cell(&spec, SystemConfig::SoftWalker, 1, h.scale));
    }
    prefetch(&matrix);

    // Baselines once, reused for every configuration's speedup.
    let base_cycles: Vec<u64> = irregular()
        .iter()
        .map(|spec| runner::run(spec, SystemConfig::Baseline, h.scale).cycles)
        .collect();

    for &walkers in &[32usize, 64, 128, 256] {
        for &ports in &[1usize, 2, 4] {
            let area = relative_area(PtwAreaConfig::scaled(walkers, ports));
            let sys = SystemConfig::ScaledPtw {
                walkers,
                scale_mshrs: true,
            };
            let x = if walkers == 32 && ports == 1 {
                1.0
            } else {
                speedup_geomean(sys, ports, h.scale, &base_cycles)
            };
            table.row(vec![
                format!("{walkers}PTW"),
                ports.to_string(),
                format!("{area:.1}"),
                fmt_x(x),
            ]);
        }
    }

    let sw_area = softwalker_relative_area(h.scale.sms(), 1024);
    let sw_x = speedup_geomean(SystemConfig::SoftWalker, 1, h.scale, &base_cycles);
    table.row(vec![
        "SoftWalker".into(),
        "-".into(),
        format!("{sw_area:.1}"),
        fmt_x(sw_x),
    ]);

    println!("Figure 15 — speedup vs relative area (normalized to 32 PTWs, 1 PWB port)");
    println!("(paper: hardware reaches 1.1x-2.1x inside the 16-64x area box; SoftWalker exceeds 2.6x at lower area)\n");
    table.print(h.csv);
}
