//! Figure 3: page-granularity memory access patterns of two irregular
//! applications (nw, bfs) and one regular one (2dc), at 64 KB pages.
//!
//! The paper plots page index versus cycle from a real-GPU profile; we
//! emit the analogous (step, page-index) samples from the workload
//! generators plus summary statistics showing the same contrast: the
//! regular app walks a narrow contiguous band while the irregular apps
//! scatter across the whole footprint in a short window.

use std::collections::BTreeSet;
use swgpu_bench::{parse_args, Table};
use swgpu_types::{PageSize, SmId, WarpId};
use swgpu_workloads::{by_abbr, WorkloadParams};

fn main() {
    let h = parse_args();
    let page = PageSize::Size64K;
    let mut table = Table::new(vec![
        "bench".into(),
        "distinct pages / 64 accesses".into(),
        "page span (max-min)".into(),
        "footprint pages".into(),
        "classification".into(),
    ]);

    for abbr in ["nw", "bfs", "2dc"] {
        let spec = by_abbr(abbr).expect("known benchmark");
        let wl = spec.build(WorkloadParams {
            sms: 2,
            warps_per_sm: 2,
            mem_instrs_per_warp: 64,
            footprint_percent: 100,
            page_size: page,
        });
        let total_pages = wl.footprint_bytes() / page.bytes();
        let mut pages = BTreeSet::new();
        let mut samples: Vec<(u64, u64)> = Vec::new();
        for step in 0..64u64 {
            for a in wl.lane_addrs(SmId::new(0), WarpId::new(0), step) {
                let p = a.value() / page.bytes();
                pages.insert(p);
                samples.push((step, p));
            }
        }
        let span = pages.iter().max().unwrap_or(&0) - pages.iter().min().unwrap_or(&0);
        table.row(vec![
            abbr.to_string(),
            pages.len().to_string(),
            span.to_string(),
            total_pages.to_string(),
            format!("{:?}", spec.class),
        ]);
        if h.csv {
            println!("--- samples for {abbr} (step,page) ---");
            for (s, p) in samples.iter().step_by(8) {
                println!("{s},{p}");
            }
        }
    }

    println!("Figure 3 — access patterns at 64 KB page granularity");
    println!("(paper: nw/bfs scatter across a wide address range in a short window; 2dc sweeps a contiguous region)\n");
    table.print(false);
}
