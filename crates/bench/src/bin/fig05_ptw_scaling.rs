//! Figure 5: speedup when scaling hardware PTWs (with proportionally
//! larger L2 TLB MSHRs and PWB) from 32 to 1024, plus the ideal case.
//!
//! Paper headline: ideal averages 2.58x over the 32-PTW baseline (4.84x
//! for irregular apps); regular apps are satisfied by 32 PTWs while
//! irregular apps need 256–1024.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::{table4, WorkloadClass};

fn main() {
    let h = parse_args();
    let ptw_counts = [64usize, 128, 256, 512, 1024];

    let mut matrix = Vec::new();
    for spec in table4() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for &n in &ptw_counts {
            let sys = SystemConfig::ScaledPtw {
                walkers: n,
                scale_mshrs: true,
            };
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
        }
        matrix.push(Cell::bench(&spec, SystemConfig::Ideal.build(h.scale)));
    }
    prefetch(&matrix);

    let mut headers = vec!["bench".to_string(), "class".to_string()];
    headers.extend(ptw_counts.iter().map(|n| format!("{n}PTW")));
    headers.push("Ideal".into());
    let mut table = Table::new(headers);

    let cols = ptw_counts.len() + 1;
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); cols];
    let mut irr: Vec<Vec<f64>> = vec![Vec::new(); cols];

    for spec in table4() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let mut cells = vec![spec.abbr.to_string(), format!("{:?}", spec.class)];
        for (i, &n) in ptw_counts.iter().enumerate() {
            let s = runner::run(
                &spec,
                SystemConfig::ScaledPtw {
                    walkers: n,
                    scale_mshrs: true,
                },
                h.scale,
            );
            let x = s.speedup_over(&base);
            all[i].push(x);
            if spec.class == WorkloadClass::Irregular {
                irr[i].push(x);
            }
            cells.push(fmt_x(x));
        }
        let ideal = runner::run(&spec, SystemConfig::Ideal, h.scale);
        let x = ideal.speedup_over(&base);
        all[cols - 1].push(x);
        if spec.class == WorkloadClass::Irregular {
            irr[cols - 1].push(x);
        }
        cells.push(fmt_x(x));
        table.row(cells);
    }

    let mut avg = vec!["geomean".to_string(), "all".to_string()];
    let mut avg_irr = vec!["geomean".to_string(), "irregular".to_string()];
    for i in 0..cols {
        avg.push(fmt_x(geomean(&all[i])));
        avg_irr.push(fmt_x(geomean(&irr[i])));
    }
    table.row(avg);
    table.row(avg_irr);

    println!("Figure 5 — speedup scaling PTWs (MSHRs/PWB scaled along), vs 32 PTWs");
    println!("(paper: ideal avg 2.58x, irregular 4.84x; regular flat at 1.0x)\n");
    table.print(h.csv);
}
