//! Extension experiment: the cost of demand paging across Table 4.
//!
//! The paper's evaluation assumes a fully populated page table (our
//! prebuilt images). This harness re-runs every Table 4 benchmark with
//! the simulated driver/OS memory manager enabled — pages populated on
//! first touch, each first touch a major fault serviced after the
//! driver's fill latency — and reports the slowdown relative to the
//! prebuilt baseline for both the 32-PTW hardware baseline and
//! SoftWalker, plus the fault and coalescing behaviour the manager
//! observed. Irregular benchmarks touch far more pages per access, so
//! they both fault more and recover less of the fill cost.
//!
//! Overheads are cycles(prebuilt) / cycles(demand-paged): 1.00x means
//! demand paging was free, 0.50x means the run took twice as long.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, Cell, Runner, SystemConfig, Table};
use swgpu_types::MmConfig;
use swgpu_workloads::{table4, WorkloadClass};

fn main() {
    let h = parse_args();
    let systems = [SystemConfig::Baseline, SystemConfig::SoftWalker];

    let demand = |sys: SystemConfig| {
        let mut cfg = sys.build(h.scale);
        cfg.mm = MmConfig::demand_paged();
        cfg
    };

    let mut matrix = Vec::new();
    for spec in table4() {
        for sys in systems {
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
            matrix.push(Cell::bench(&spec, demand(sys)));
        }
    }
    prefetch(&matrix);

    let mut table = Table::new(vec![
        "bench".into(),
        "class".into(),
        "major faults".into(),
        "64K coal".into(),
        "2M coal".into(),
        "HW overhead".into(),
        "SW overhead".into(),
    ]);

    let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    let mut per_system_irr: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];

    for spec in table4() {
        let mut row = vec![spec.abbr.to_string(), format!("{:?}", spec.class)];
        let mut overheads = Vec::new();
        let mut faults = (0, 0, 0);
        for (i, sys) in systems.iter().enumerate() {
            let base = Runner::global().get(&Cell::bench(&spec, sys.build(h.scale)));
            let paged = Runner::global().get(&Cell::bench(&spec, demand(*sys)));
            assert_eq!(
                paged.mm.major_faults, paged.mm.major_replays,
                "{}: demand-paged run leaked a fault",
                spec.abbr
            );
            let x = paged.speedup_over(&base);
            per_system[i].push(x);
            if spec.class == WorkloadClass::Irregular {
                per_system_irr[i].push(x);
            }
            overheads.push(fmt_x(x));
            faults = (
                paged.mm.major_faults,
                paged.mm.coalesces_64k,
                paged.mm.coalesces_2m,
            );
        }
        row.push(faults.0.to_string());
        row.push(faults.1.to_string());
        row.push(faults.2.to_string());
        row.extend(overheads);
        table.row(row);
    }

    let mut avg = vec![
        "geomean".into(),
        "all".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ];
    let mut avg_irr = vec![
        "geomean".into(),
        "irregular".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ];
    for i in 0..systems.len() {
        avg.push(fmt_x(geomean(&per_system[i])));
        avg_irr.push(fmt_x(geomean(&per_system_irr[i])));
    }
    table.row(avg);
    table.row(avg_irr);

    println!("Extension — demand paging (first-touch fill) vs the prebuilt page table");
    println!("(overhead = prebuilt-relative speedup; < 1.00x means demand paging cost cycles)\n");
    table.print(h.csv);
}
