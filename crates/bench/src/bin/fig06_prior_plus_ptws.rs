//! Figure 6: page-walk contention persists under prior techniques —
//! scaling PTWs still pays off when (a) NHA coalescing or (b) 2 MB large
//! pages are applied, on the 10 footprint-scalable benchmarks.
//!
//! Paper headline: even with coalescing or large pages, growing the
//! walker pool keeps improving performance, so higher walk throughput is
//! complementary to prior work.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{
    geomean, parse_args, prefetch, runner, Cell, Runner, Scale, SystemConfig, Table,
};
use swgpu_workloads::{table4, BenchmarkSpec};

/// The (config, footprint%) cell for `walkers` PTWs under one of the two
/// prior techniques — must mirror `run_at` below exactly so the prefetch
/// warms the same cache keys.
fn cell_at(spec: &BenchmarkSpec, scale: Scale, walkers: usize, large_pages: bool) -> Cell {
    let mut cfg = SystemConfig::ScaledPtw {
        walkers,
        scale_mshrs: true,
    }
    .build(scale);
    let pct = if large_pages {
        cfg = cfg.with_large_pages();
        runner::LARGE_PAGE_FOOTPRINT_PERCENT
    } else {
        cfg.ptw.nha = true;
        100
    };
    Cell::bench_scaled(spec, cfg, pct)
}

fn main() {
    let h = parse_args();
    let ptws = [32usize, 128, 512];

    let mut matrix = Vec::new();
    for spec in table4().into_iter().filter(|b| b.scalable) {
        for large_pages in [false, true] {
            for &n in &ptws {
                matrix.push(cell_at(&spec, h.scale, n, large_pages));
            }
        }
    }
    prefetch(&matrix);

    for (title, large_pages) in [
        ("(a) with NHA coalescing", false),
        ("(b) with 2MB pages", true),
    ] {
        let mut headers = vec!["bench".to_string()];
        headers.extend(ptws.iter().map(|n| format!("{n}PTW")));
        let mut table = Table::new(headers);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); ptws.len()];

        for spec in table4().into_iter().filter(|b| b.scalable) {
            let base = Runner::global().get(&cell_at(&spec, h.scale, 32, large_pages));
            let mut cells = vec![spec.abbr.to_string()];
            for (i, &n) in ptws.iter().enumerate() {
                let s = if n == 32 {
                    base.clone()
                } else {
                    Runner::global().get(&cell_at(&spec, h.scale, n, large_pages))
                };
                let x = s.speedup_over(&base);
                cols[i].push(x);
                cells.push(fmt_x(x));
            }
            table.row(cells);
        }
        let mut avg = vec!["geomean".to_string()];
        for c in &cols {
            avg.push(fmt_x(geomean(c)));
        }
        table.row(avg);

        println!("Figure 6{title} — PTW scaling still helps (normalized to 32 PTWs under the same technique)\n");
        table.print(h.csv);
        println!();
    }
    println!("(paper: substantial gains from extra PTWs remain under both techniques)");
}
