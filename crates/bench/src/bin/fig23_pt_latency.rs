//! Figure 23: sensitivity to the per-level page-table access latency
//! (fixed at 50–400 cycles per level for both baseline and SoftWalker).
//!
//! Paper headline: SoftWalker's speedup grows with per-level latency —
//! 1.6x / 2.3x / 3.5x / 4.2x / 4.8x at 50/100/200/300/400 cycles — and
//! so does the queueing-delay reduction, because slower walks deepen the
//! baseline's queues.

use swgpu_bench::report::{fmt_pct, fmt_x};
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::irregular;

fn main() {
    let h = parse_args();
    let latencies = [50u64, 100, 200, 300, 400];
    let mut table = Table::new(vec![
        "per-level latency".into(),
        "speedup (geomean irregular)".into(),
        "queue-delay reduction".into(),
    ]);

    let mut matrix = Vec::new();
    for &lat in &latencies {
        for spec in irregular() {
            for sys in [SystemConfig::Baseline, SystemConfig::SoftWalker] {
                matrix.push(Cell::bench(
                    &spec,
                    sys.build(h.scale).with_fixed_walk_latency(lat),
                ));
            }
        }
    }
    prefetch(&matrix);

    for &lat in &latencies {
        let mut speedups = Vec::new();
        let mut q_base = 0u64;
        let mut q_sw = 0u64;
        for spec in irregular() {
            let base = runner::run_with(&spec, SystemConfig::Baseline, h.scale, |c| {
                c.with_fixed_walk_latency(lat)
            });
            let sw = runner::run_with(&spec, SystemConfig::SoftWalker, h.scale, |c| {
                c.with_fixed_walk_latency(lat)
            });
            speedups.push(sw.speedup_over(&base));
            q_base += base.walk.queue_cycles;
            q_sw += sw.walk.queue_cycles;
        }
        let red = 1.0 - q_sw as f64 / q_base.max(1) as f64;
        table.row(vec![
            format!("{lat} cyc"),
            fmt_x(geomean(&speedups)),
            fmt_pct(red),
        ]);
    }

    println!("Figure 23 — impact of per-level page-table access latency (irregular set)");
    println!("(paper: 1.6x/2.3x/3.5x/4.2x/4.8x at 50/100/200/300/400 cycles)\n");
    table.print(h.csv);
}
