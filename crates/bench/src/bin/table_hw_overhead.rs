//! §5.2 hardware overhead accounting: SoftWalker's per-SM storage and the
//! In-TLB MSHR's pending bits, as the paper reports them.

use swgpu_area::{
    cam_area, controller_bitmap_bits, in_tlb_pending_bits, ptw_subsystem_area, relative_area,
    softwalker_bits_per_sm, softwalker_relative_area, PtwAreaConfig,
};
use swgpu_bench::Table;

fn main() {
    let mut t = Table::new(vec!["item".into(), "value".into(), "paper".into()]);
    t.row(vec![
        "PW Warp context per SM".into(),
        format!("{} bits", softwalker_bits_per_sm()),
        "1470 bits (64 + 126 + 8x160)".into(),
    ]);
    t.row(vec![
        "SoftPWB status bitmap per SM".into(),
        format!("{} bits", controller_bitmap_bits(32)),
        "64 bits (2 per thread)".into(),
    ]);
    t.row(vec![
        "In-TLB MSHR pending bits".into(),
        format!("{} bits", in_tlb_pending_bits(1024)),
        "1024 bits (1 per L2 TLB entry)".into(),
    ]);
    t.row(vec![
        "In-TLB control logic".into(),
        "small fixed allowance in the area model".into(),
        "0.0061 mm^2 @28nm (vs 628.4 mm^2 GA102)".into(),
    ]);
    t.row(vec![
        "Baseline walk subsystem area (a.u.)".into(),
        format!("{:.0}", ptw_subsystem_area(PtwAreaConfig::baseline())),
        "normalization point of Fig. 15".into(),
    ]);
    t.row(vec![
        "192 walkers, 18-port PWB (rel. area)".into(),
        format!("{:.1}x", relative_area(PtwAreaConfig::scaled(192, 18))),
        "3.9% of chip area [50] — prohibitive".into(),
    ]);
    t.row(vec![
        "SoftWalker GPU (rel. area)".into(),
        format!("{:.2}x", softwalker_relative_area(46, 1024)),
        "negligible vs walker scaling".into(),
    ]);
    t.row(vec![
        "PWB CAM, 1 -> 4 ports (area ratio)".into(),
        format!("{:.1}x", cam_area(128, 96, 4) / cam_area(128, 96, 1)),
        "super-linear port scaling".into(),
    ]);

    println!("§5.2 — hardware overhead of SoftWalker and In-TLB MSHR\n");
    t.print(false);
}
