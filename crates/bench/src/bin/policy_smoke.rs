//! Translation-policy smoke test: exercises the dead-entry replacement
//! and translation-prefetch extension end to end and exits nonzero (for
//! CI) on any violation.
//!
//! Checks, in order:
//!
//! 1. **Default transparency** — spelling out the default policy knobs
//!    (`ReplPolicy::Lru`, prefetch off) is a byte-level no-op: identical
//!    stats JSON, identical config fingerprint (the prebuilt sweep cache
//!    stays valid), and no `tlb_dead_fills` / `prefetch_*` keys emitted.
//!    Non-default knobs must re-key the cache.
//! 2. **Dead-entry floor** — on an irregular smoke cell the sampling
//!    predictor must earn its keep: L2 TLB MPKI at least 1% under the
//!    LRU baseline, some fills predicted dead, and the same instructions
//!    retired.
//! 3. **Prefetch conservation** — every issued prefetch is accounted
//!    for: `issued == useful + late + evicted + in_flight`, with a
//!    nonzero ledger on the smoke cell, and the run is deterministic
//!    (same cell twice, same stats bytes).
//!
//! Usage: `policy_smoke` (no flags; deterministic).

use swgpu_bench::{Cell, Scale, SystemConfig};
use swgpu_sim::{GpuConfig, PrefetchConfig, SimStats};
use swgpu_tlb::ReplPolicy;
use swgpu_workloads::by_abbr;

/// The quick-scale SoftWalker cell the checks run on, with `tweak`
/// applied to the configuration.
fn run_cell(abbr: &str, tweak: impl FnOnce(&mut GpuConfig)) -> SimStats {
    let spec = by_abbr(abbr).expect("known benchmark");
    let mut cfg = SystemConfig::SoftWalker.build(Scale::Quick);
    tweak(&mut cfg);
    Cell::bench(&spec, cfg).simulate()
}

fn dead_block(cfg: &mut GpuConfig) {
    cfg.l1_tlb.repl = ReplPolicy::DeadBlock;
    cfg.l2_tlb.repl = ReplPolicy::DeadBlock;
}

/// Check 1: explicit defaults are byte-identical and fingerprint-stable;
/// non-default knobs re-key.
fn check_default_transparency() -> Result<(), String> {
    let base_cfg = SystemConfig::SoftWalker.build(Scale::Quick);
    let mut explicit = base_cfg.clone();
    explicit.l1_tlb.repl = ReplPolicy::Lru;
    explicit.l2_tlb.repl = ReplPolicy::Lru;
    explicit.prefetch = PrefetchConfig::default();
    if base_cfg.fingerprint() != explicit.fingerprint() {
        return Err("naming the default policies re-keyed the run cache".into());
    }
    let base = run_cell("gups", |_| {});
    let named = run_cell("gups", |cfg| {
        cfg.l1_tlb.repl = ReplPolicy::Lru;
        cfg.l2_tlb.repl = ReplPolicy::Lru;
        cfg.prefetch = PrefetchConfig::default();
    });
    if base.to_json() != named.to_json() {
        return Err("explicit LRU / prefetch-off diverged from the default run".into());
    }
    let json = base.to_json();
    if json.contains("tlb_dead_fills") || json.contains("prefetch_") {
        return Err("default-policy run emitted policy stats keys".into());
    }
    let mut dead = base_cfg.clone();
    dead_block(&mut dead);
    if dead.fingerprint() == base_cfg.fingerprint() {
        return Err("DeadBlock replacement must re-key the run cache".into());
    }
    let mut pf = base_cfg.clone();
    pf.prefetch = PrefetchConfig::enabled();
    if pf.fingerprint() == base_cfg.fingerprint() {
        return Err("enabling prefetch must re-key the run cache".into());
    }
    println!("[policy-smoke] default transparency: ok — explicit defaults are a byte-level no-op");
    Ok(())
}

/// Check 2: the dead-entry predictor beats LRU on an irregular cell.
fn check_dead_entry_floor() -> Result<(), String> {
    // sssp at quick scale thrashes the L2 TLB hard enough that the
    // sampling predictor reliably clears this floor (~5% under LRU when
    // the extension landed; 1% keeps headroom for config drift).
    let lru = run_cell("sssp", |_| {});
    let dead = run_cell("sssp", dead_block);
    if dead.instructions != lru.instructions {
        return Err(format!(
            "replacement policy changed the retired work ({} vs {})",
            dead.instructions, lru.instructions
        ));
    }
    if dead.tlb_dead_fills == 0 {
        return Err("DeadBlock run predicted no fill dead".into());
    }
    let (l, d) = (lru.l2_tlb_mpki(), dead.l2_tlb_mpki());
    if d > l * 0.99 {
        return Err(format!(
            "dead-entry floor missed: {d:.2} MPKI under DeadBlock vs {l:.2} under LRU"
        ));
    }
    println!(
        "[policy-smoke] dead-entry floor: ok — MPKI {l:.2} (LRU) -> {d:.2} (DeadBlock), \
         {} dead fills",
        dead.tlb_dead_fills
    );
    Ok(())
}

/// Check 3: the prefetch ledger balances and the run is deterministic.
fn check_prefetch_conservation() -> Result<(), String> {
    let enable = |cfg: &mut GpuConfig| cfg.prefetch = PrefetchConfig::enabled();
    let a = run_cell("gups", enable);
    let b = run_cell("gups", enable);
    if a.to_json() != b.to_json() {
        return Err("prefetching run is not deterministic".into());
    }
    if a.prefetch_issued == 0 {
        return Err("smoke cell issued no prefetches".into());
    }
    let resolved = a.prefetch_useful + a.prefetch_late + a.prefetch_evicted + a.prefetch_in_flight;
    if a.prefetch_issued != resolved {
        return Err(format!(
            "prefetch conservation violated — {} issued but {} accounted \
             ({} useful / {} late / {} evicted / {} in flight)",
            a.prefetch_issued,
            resolved,
            a.prefetch_useful,
            a.prefetch_late,
            a.prefetch_evicted,
            a.prefetch_in_flight
        ));
    }
    println!(
        "[policy-smoke] prefetch conservation: ok — {} issued \
         ({} useful / {} late / {} evicted / {} in flight)",
        a.prefetch_issued,
        a.prefetch_useful,
        a.prefetch_late,
        a.prefetch_evicted,
        a.prefetch_in_flight
    );
    Ok(())
}

type Check = fn() -> Result<(), String>;

fn main() {
    let checks: [(&str, Check); 3] = [
        ("default transparency", check_default_transparency),
        ("dead-entry floor", check_dead_entry_floor),
        ("prefetch conservation", check_prefetch_conservation),
    ];
    let mut failures = 0;
    for (name, check) in checks {
        if let Err(why) = check() {
            eprintln!("[policy-smoke] FAIL ({name}) — {why}");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("[policy-smoke] all translation-policy checks passed");
}
