//! Figure 25: SoftWalker speedup over the baseline when both use 2 MB
//! pages, for the 10 benchmarks whose footprints scale beyond the 2 MB
//! L2 TLB coverage (2 GB).
//!
//! Paper headline: 7 of 10 apps still speed up — sssp 1.26x, nw 1.18x,
//! gesv 2.29x, and xsb/spmv/gups keep large 5.1x/4.5x/7.0x gains.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::table4;

fn main() {
    let h = parse_args();
    let mut table = Table::new(vec![
        "bench".into(),
        "footprint (xTable4)".into(),
        "speedup (2MB pages)".into(),
    ]);

    let matrix: Vec<Cell> = table4()
        .iter()
        .filter(|b| b.scalable)
        .flat_map(|spec| {
            [SystemConfig::Baseline, SystemConfig::SoftWalker].map(|sys| {
                Cell::bench_scaled(
                    spec,
                    sys.build(h.scale).with_large_pages(),
                    runner::LARGE_PAGE_FOOTPRINT_PERCENT,
                )
            })
        })
        .collect();
    prefetch(&matrix);

    let mut speedups = Vec::new();
    for spec in table4().into_iter().filter(|b| b.scalable) {
        let base_cfg = SystemConfig::Baseline.build(h.scale).with_large_pages();
        let sw_cfg = SystemConfig::SoftWalker.build(h.scale).with_large_pages();
        let pct = runner::LARGE_PAGE_FOOTPRINT_PERCENT;
        let base = runner::run_config(&spec, base_cfg, pct);
        let sw = runner::run_config(&spec, sw_cfg, pct);
        let x = sw.speedup_over(&base);
        speedups.push(x);
        table.row(vec![
            spec.abbr.to_string(),
            format!("{}x", pct / 100),
            fmt_x(x),
        ]);
    }

    println!("Figure 25 — SoftWalker speedup with 2 MB pages (scaled footprints)");
    println!("(paper: 7/10 apps improve; xsb 5.1x, spmv 4.5x, gups 7.0x)\n");
    table.print(h.csv);
    println!("geomean: {}", fmt_x(geomean(&speedups)));
}
