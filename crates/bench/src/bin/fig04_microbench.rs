//! Figure 4: average memory access latency as the number of concurrent
//! page walks grows — the paper's real-GPU (NVIDIA A2000) contention
//! microbenchmark, replayed on the simulated baseline.
//!
//! Paper headline: latency grows roughly linearly with concurrency once
//! the walkers saturate; at 256 concurrent walks it is ~4x the
//! single-walk latency.

use swgpu_bench::{parse_args, prefetch, Cell, Runner, Table};
use swgpu_sim::GpuConfig;

fn main() {
    let h = parse_args();
    let accesses_per_warp: u32 = 16;
    let concurrency = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut table = Table::new(vec![
        "concurrent walks".into(),
        "avg access latency (cyc)".into(),
        "vs 1 walk".into(),
    ]);

    let cell_at = |concurrent: usize| {
        let cfg = GpuConfig {
            sms: 32.min(concurrent.max(1)),
            max_warps: concurrent.div_ceil(32.min(concurrent.max(1))).max(1),
            ..GpuConfig::default()
        };
        let warps_per_sm = cfg.max_warps;
        Cell::micro(
            cfg,
            concurrent,
            warps_per_sm,
            accesses_per_warp,
            4 * 1024 * 1024 * 1024,
        )
    };
    let cells: Vec<Cell> = concurrency.iter().map(|&c| cell_at(c)).collect();
    prefetch(&cells);

    let mut first = None;
    for (cell, &concurrent) in cells.iter().zip(&concurrency) {
        let stats = Runner::global().get(cell);
        // Each single-lane warp issues its accesses serially, so per-access
        // latency is total runtime divided by the per-warp access count.
        let latency = stats.cycles as f64 / f64::from(accesses_per_warp);
        let base = *first.get_or_insert(latency);
        table.row(vec![
            concurrent.to_string(),
            format!("{latency:.0}"),
            format!("{:.2}x", latency / base),
        ]);
    }

    println!("Figure 4 — memory access latency vs concurrent page walks (32-PTW baseline)");
    println!("(paper: ~4x latency at 256 concurrent walks on an A2000)\n");
    table.print(h.csv);
}
