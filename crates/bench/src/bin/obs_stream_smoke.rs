//! `obs_stream_smoke`: end-to-end exercise of the streaming trace
//! pipeline, run by `ci/check.sh`.
//!
//! Simulates a Figure 18-style full-detail cell (gups × SoftWalker,
//! every walk observed) with a deliberately tiny span staging buffer and
//! an SWTB file sink attached, then asserts the bounded-memory
//! contract end to end:
//!
//! * the staging buffer overflows mid-run (spans are flushed, not
//!   hoarded) yet `spans_dropped == 0` — a sink-backed recorder never
//!   drops;
//! * the written SWTB file reads back as a structurally valid trace
//!   whose reconstructed report carries the complete span set;
//! * the reconstructed report's Perfetto export passes JSON
//!   self-validation.
//!
//! Usage: `obs_stream_smoke <output-dir> [--quick]`. Exits nonzero (via
//! panic) on any violated invariant; prints `stream smoke OK: <path>`
//! on success.

use swgpu_bench::runner::swtb_path;
use swgpu_bench::{parse_args, Cell, Scale, SystemConfig};
use swgpu_sim::{GpuConfig, ObsConfig};
use swgpu_workloads::by_abbr;

/// Staging-buffer size: small enough that a quick-scale gups run
/// overflows it many times over, so the flush path is genuinely
/// exercised rather than everything riding in the final staged tail.
const STAGING_SPANS: usize = 4096;

fn main() {
    let h = parse_args();
    let dir = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with('-'))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("obs-stream-smoke"));
    std::fs::create_dir_all(&dir).expect("create output dir");

    let spec = by_abbr("gups").expect("known benchmark");
    let cfg = GpuConfig {
        obs: ObsConfig {
            span_capacity: STAGING_SPANS,
            ..ObsConfig::enabled()
        },
        ..SystemConfig::SoftWalker.build(h.scale)
    };
    let cell = Cell::bench(&spec, cfg);
    let key = cell.key();
    let path = swtb_path(&dir, &key);

    let mut sim = cell.build_simulator();
    let file = std::fs::File::create(&path).expect("create SWTB file");
    assert!(
        sim.attach_trace_sink(Box::new(std::io::BufWriter::new(file))),
        "obs-enabled cell must accept a trace sink"
    );
    let stats = sim.run();
    assert!(!stats.timed_out, "smoke cell must retire");

    let report = stats.obs.as_deref().expect("obs report");
    assert_eq!(
        report.spans_dropped, 0,
        "a sink-backed staging buffer must never drop spans"
    );
    assert!(
        report.spans_flushed > 0,
        "the {STAGING_SPANS}-span staging buffer must overflow mid-run"
    );

    let bytes = std::fs::read(&path).expect("read SWTB file back");
    let trace =
        swgpu_obs::validate_trace(&bytes).unwrap_or_else(|e| panic!("SWTB validation failed: {e}"));
    assert_eq!(trace.fingerprint, cell.cfg.fingerprint());
    assert!(trace.span_batches > 1, "spans must stream incrementally");
    assert_eq!(trace.report.spans_dropped, 0);
    assert_eq!(
        trace.report.spans.len() as u64,
        report.spans_flushed + report.spans.len() as u64,
        "the file must reconstruct the complete span set"
    );

    let perfetto = swgpu_obs::to_chrome_trace(&trace.report);
    swgpu_obs::validate_json(&perfetto)
        .unwrap_or_else(|e| panic!("Perfetto export is not valid JSON: {e}"));

    let scale_label = match h.scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };
    println!(
        "stream smoke OK: {} ({} bytes, {} spans reconstructed, {} flushed, {} batches, {scale_label} scale)",
        path.display(),
        bytes.len(),
        trace.report.spans.len(),
        report.spans_flushed,
        trace.span_batches
    );
}
