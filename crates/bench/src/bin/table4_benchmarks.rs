//! Table 4: the benchmark suite — footprints, measured L2 TLB MPKI and
//! the irregular/regular classification.
//!
//! Our MPKI comes from the synthetic generators, so the check is the
//! *regime*, not the digits: irregular apps land orders of magnitude
//! above regular ones, matching the paper's classification boundary
//! (required PTWs > 32).

use swgpu_bench::{parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::table4;

fn main() {
    let h = parse_args();
    let matrix: Vec<Cell> = table4()
        .iter()
        .map(|spec| Cell::bench(spec, SystemConfig::Baseline.build(h.scale)))
        .collect();
    prefetch(&matrix);
    let mut table = Table::new(vec![
        "name".into(),
        "abbr".into(),
        "class".into(),
        "footprint (MB)".into(),
        "paper MPKI".into(),
        "measured MPKI".into(),
        "paper req. PTWs".into(),
        "L1 TLB hit".into(),
        "L2 TLB hit".into(),
    ]);

    for spec in table4() {
        let s = runner::run(&spec, SystemConfig::Baseline, h.scale);
        table.row(vec![
            spec.name.to_string(),
            spec.abbr.to_string(),
            format!("{:?}", spec.class),
            spec.footprint_mb.to_string(),
            format!("{:.2}", spec.paper_mpki),
            format!("{:.2}", s.l2_tlb_mpki()),
            spec.paper_required_ptws.to_string(),
            format!("{:.1}%", s.l1_tlb.hit_rate() * 100.0),
            format!("{:.1}%", s.l2_tlb.hit_rate() * 100.0),
        ]);
    }

    println!("Table 4 — benchmarks (paper values vs this reproduction's synthetic streams)");
    println!("(check: irregular MPKI >> regular MPKI; regular apps hit the TLBs)\n");
    table.print(h.csv);
}
