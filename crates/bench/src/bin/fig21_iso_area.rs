//! Figure 21: SoftWalker vs an iso-area hardware baseline (128 PTWs),
//! each with and without the In-TLB MSHR, normalized to 32 PTWs.
//!
//! Paper headlines: SoftWalker beats 128 PTWs by ~18.5% on irregular
//! workloads; bolting In-TLB MSHRs onto under-provisioned walker pools
//! does not help (and hurts gc/xsb/bfs/sy2k) because pending translations
//! pollute the L2 TLB while walkers, not MSHRs, are the bottleneck.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::irregular;

fn main() {
    let h = parse_args();
    let systems = [
        SystemConfig::HwWithInTlb { walkers: 32 },
        SystemConfig::ScaledPtw {
            walkers: 128,
            scale_mshrs: false,
        },
        SystemConfig::HwWithInTlb { walkers: 128 },
        SystemConfig::SwNoInTlb,
        SystemConfig::SoftWalker,
    ];
    let labels = [
        "32PTW+InTLB",
        "128PTW",
        "128PTW+InTLB",
        "SW w/o InTLB",
        "SoftWalker",
    ];
    let mut headers = vec!["bench".to_string()];
    headers.extend(labels.iter().map(|s| s.to_string()));
    let mut table = Table::new(headers);

    let mut matrix = Vec::new();
    for spec in irregular() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for sys in systems {
            matrix.push(Cell::bench(&spec, sys.build(h.scale)));
        }
    }
    prefetch(&matrix);

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for spec in irregular() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let mut cells = vec![spec.abbr.to_string()];
        for (i, sys) in systems.iter().enumerate() {
            let s = runner::run(&spec, *sys, h.scale);
            let x = s.speedup_over(&base);
            cols[i].push(x);
            cells.push(fmt_x(x));
        }
        table.row(cells);
    }
    let mut avg = vec!["geomean".to_string()];
    for c in &cols {
        avg.push(fmt_x(geomean(c)));
    }
    table.row(avg);

    println!("Figure 21 — iso-area comparison (irregular set, vs 32 PTWs)");
    println!("(paper: SoftWalker ≈ 128PTW x 1.185; In-TLB on small pools does not help)\n");
    table.print(h.csv);
}
