//! Ablation: PW Warp design choices.
//!
//! Sweeps the three knobs the paper fixes by construction, to show *why*
//! its choices are sufficient:
//!
//! 1. **Walk threads / SoftPWB entries per SM** (paper: 32/32) — speedup
//!    saturates once per-SM concurrency covers the per-SM miss demand.
//! 2. **Instruction overhead** of the Figure 14 routine — the per-walk
//!    execution cost barely matters because queueing, not execution,
//!    dominated the baseline (Key Insight 3).
//! 3. **Distributor dispatch rate** — one or two dispatches per cycle
//!    suffice to feed every SM.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_workloads::irregular;

/// A 4-benchmark representative subset keeps the sweeps affordable.
fn subset() -> Vec<swgpu_workloads::BenchmarkSpec> {
    irregular()
        .into_iter()
        .filter(|s| ["gups", "xsb", "bfs", "spmv"].contains(&s.abbr))
        .collect()
}

fn geo_speedup(
    h: &swgpu_bench::Harness,
    base_cycles: &[u64],
    tweak: impl Fn(&mut swgpu_sim::GpuConfig) + Copy,
) -> f64 {
    let mut xs = Vec::new();
    for (spec, &base) in subset().iter().zip(base_cycles) {
        let s = runner::run_with(spec, SystemConfig::SoftWalker, h.scale, |mut c| {
            tweak(&mut c);
            c
        });
        xs.push(base as f64 / s.cycles.max(1) as f64);
    }
    geomean(&xs)
}

type ConfigTweak = Box<dyn Fn(&mut swgpu_sim::GpuConfig)>;

/// Every SoftWalker configuration the three sweeps visit, as prefetch
/// cells (mirrors the `geo_speedup` calls in `main`).
fn sweep_cells(h: &swgpu_bench::Harness) -> Vec<Cell> {
    let mut tweaks: Vec<ConfigTweak> = Vec::new();
    for threads in [4usize, 8, 16, 32, 64] {
        tweaks.push(Box::new(move |c| {
            c.pw_warp.threads = threads;
            c.pw_warp.softpwb_entries = threads;
        }));
    }
    for (setup, per_level) in [(1u32, 1u32), (6, 3), (12, 6), (24, 12), (48, 24)] {
        tweaks.push(Box::new(move |c| {
            c.pw_warp.setup_instrs = setup;
            c.pw_warp.per_level_instrs = per_level;
        }));
    }
    for rate in [1usize, 2, 4, 8] {
        tweaks.push(Box::new(move |c| c.dispatches_per_cycle = rate));
    }

    let mut matrix = Vec::new();
    for spec in subset() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        for tweak in &tweaks {
            let mut cfg = SystemConfig::SoftWalker.build(h.scale);
            tweak(&mut cfg);
            matrix.push(Cell::bench(&spec, cfg));
        }
    }
    matrix
}

fn main() {
    let h = parse_args();
    prefetch(&sweep_cells(&h));

    let base_cycles: Vec<u64> = subset()
        .iter()
        .map(|spec| runner::run(spec, SystemConfig::Baseline, h.scale).cycles)
        .collect();

    let mut t1 = Table::new(vec!["PW threads / SoftPWB".into(), "speedup".into()]);
    for threads in [4usize, 8, 16, 32, 64] {
        let x = geo_speedup(&h, &base_cycles, |c| {
            c.pw_warp.threads = threads;
            c.pw_warp.softpwb_entries = threads;
        });
        t1.row(vec![threads.to_string(), fmt_x(x)]);
    }

    let mut t2 = Table::new(vec!["setup/per-level instrs".into(), "speedup".into()]);
    for (setup, per_level) in [(1u32, 1u32), (6, 3), (12, 6), (24, 12), (48, 24)] {
        let x = geo_speedup(&h, &base_cycles, |c| {
            c.pw_warp.setup_instrs = setup;
            c.pw_warp.per_level_instrs = per_level;
        });
        t2.row(vec![format!("{setup}/{per_level}"), fmt_x(x)]);
    }

    let mut t3 = Table::new(vec!["dispatches/cycle".into(), "speedup".into()]);
    for rate in [1usize, 2, 4, 8] {
        let x = geo_speedup(&h, &base_cycles, |c| c.dispatches_per_cycle = rate);
        t3.row(vec![rate.to_string(), fmt_x(x)]);
    }

    println!("Ablation 1 — PW threads per SM (paper fixes 32):\n");
    t1.print(h.csv);
    println!(
        "\nAblation 2 — walk-routine instruction overhead (paper's routine ≈ 6 setup + 3/level):\n"
    );
    t2.print(h.csv);
    println!("\nAblation 3 — Request Distributor dispatch rate:\n");
    t3.print(h.csv);
    println!("\n(speedups are geomeans over gups/xsb/bfs/spmv vs the 32-PTW baseline)");
}
