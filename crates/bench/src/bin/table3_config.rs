//! Table 3: the experimental setup — pretty-prints the default
//! configuration so it can be diffed against the paper's table.

use swgpu_bench::Table;
use swgpu_sim::GpuConfig;

fn main() {
    let c = GpuConfig::default();
    let mut t = Table::new(vec!["component".into(), "parameter".into()]);
    t.row(vec!["# of SMs".into(), format!("{} SMs", c.sms)]);
    t.row(vec![
        "Clock frequency".into(),
        "1500 MHz (all latencies in core cycles)".into(),
    ]);
    t.row(vec![
        "Max # of warps".into(),
        format!("{} warps per SM", c.max_warps),
    ]);
    t.row(vec![
        "L1 TLB (per SM)".into(),
        format!(
            "{} entries, {} page, {} cycles, fully-associative, {} MSHR entries, {} merges",
            c.l1_tlb.entries,
            c.page_size,
            c.l1_tlb_latency,
            c.l1_mshr.entries,
            c.l1_mshr.max_merges
        ),
    ]);
    t.row(vec![
        "L2 TLB (shared)".into(),
        format!(
            "{} entries, {} page, {} cycles, {}-way, {} MSHR entries, {} merges",
            c.l2_tlb.entries,
            c.page_size,
            c.l2_tlb_latency,
            c.l2_tlb.assoc,
            c.l2_mshr.entries,
            c.l2_mshr.max_merges
        ),
    ]);
    t.row(vec![
        "L1D cache".into(),
        format!(
            "{} KB per SM, {} cycles, {}B line ({}B sector)",
            c.l1d.size_bytes / 1024,
            c.l1d.hit_latency,
            c.l1d.line_bytes,
            c.l1d.sector_bytes
        ),
    ]);
    t.row(vec![
        "L2D cache".into(),
        format!(
            "{} MB, {} cycles, {}B line ({}B sector)",
            c.l2d.size_bytes / (1024 * 1024),
            c.l2d.hit_latency,
            c.l2d.line_bytes,
            c.l2d.sector_bytes
        ),
    ]);
    t.row(vec![
        "Memory".into(),
        format!(
            "GDDR6-like, {} channels, ~448 GB/s aggregate, {}+{} cycle latency",
            c.dram.channels, c.dram.service_cycles, c.dram.latency
        ),
    ]);
    t.row(vec![
        "Page table".into(),
        "four-level radix page table".into(),
    ]);
    t.row(vec![
        "Page walk cache".into(),
        format!("{} entries, fully-associative", c.pwc_entries),
    ]);
    t.row(vec![
        "Page table walker".into(),
        format!("{} page table walkers", c.ptw.walkers),
    ]);
    t.row(vec![
        "SoftWalker".into(),
        format!(
            "{} page walk threads per SM, {} SoftPWB entries per SM, {} L2 TLB MSHR entries ({} merges), up to {} entry In-TLB MSHR",
            c.pw_warp.threads,
            c.pw_warp.softpwb_entries,
            c.l2_mshr.entries,
            c.l2_mshr.max_merges,
            c.in_tlb_max
        ),
    ]);

    println!("Table 3 — experimental setup (GpuConfig::default())\n");
    t.print(false);
}
