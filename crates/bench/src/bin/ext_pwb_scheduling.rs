//! Extension: the page-walk-scheduling baseline (Shin et al. \[85\],
//! Table 1 in the paper) — warp-aware PWB dequeue order versus FIFO, and
//! versus SoftWalker.
//!
//! The paper argues (Table 1) that scheduling reduces warp divergence
//! stalls but "cannot resolve the fundamental cause of page table walk
//! contentions" — walk *throughput* is unchanged. This harness verifies
//! exactly that: warp-shortest-first scheduling moves single-digit
//! percentages while SoftWalker moves multiples.

use swgpu_bench::report::fmt_x;
use swgpu_bench::{geomean, parse_args, prefetch, runner, Cell, SystemConfig, Table};
use swgpu_ptw::PwbPolicy;
use swgpu_workloads::irregular;

fn main() {
    let h = parse_args();
    let mut matrix = Vec::new();
    for spec in irregular() {
        matrix.push(Cell::bench(&spec, SystemConfig::Baseline.build(h.scale)));
        let mut sched_cfg = SystemConfig::Baseline.build(h.scale);
        sched_cfg.ptw.pwb_policy = PwbPolicy::WarpShortestFirst;
        matrix.push(Cell::bench(&spec, sched_cfg));
        matrix.push(Cell::bench(&spec, SystemConfig::SoftWalker.build(h.scale)));
    }
    prefetch(&matrix);

    let mut table = Table::new(vec![
        "bench".into(),
        "PW-sched [85]".into(),
        "SoftWalker".into(),
    ]);

    let mut sched = Vec::new();
    let mut sw = Vec::new();
    for spec in irregular() {
        let base = runner::run(&spec, SystemConfig::Baseline, h.scale);
        let s_sched = runner::run_with(&spec, SystemConfig::Baseline, h.scale, |mut c| {
            c.ptw.pwb_policy = PwbPolicy::WarpShortestFirst;
            c
        });
        let s_sw = runner::run(&spec, SystemConfig::SoftWalker, h.scale);
        let x_sched = s_sched.speedup_over(&base);
        let x_sw = s_sw.speedup_over(&base);
        sched.push(x_sched);
        sw.push(x_sw);
        table.row(vec![spec.abbr.to_string(), fmt_x(x_sched), fmt_x(x_sw)]);
    }
    table.row(vec![
        "geomean".into(),
        fmt_x(geomean(&sched)),
        fmt_x(geomean(&sw)),
    ]);

    println!("Extension — page-walk scheduling [85] vs SoftWalker (irregular set, vs baseline)");
    println!("(Table 1's claim: scheduling leaves walk throughput unchanged, so its gains are marginal)\n");
    table.print(h.csv);
}
