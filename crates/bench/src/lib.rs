//! Experiment harness reproducing every table and figure of the
//! SoftWalker paper.
//!
//! Each figure/table has its own binary under `src/bin/` (see DESIGN.md's
//! per-experiment index); they share the runners and reporting helpers in
//! this library. Every binary prints the series the paper reports plus the
//! paper's headline number for side-by-side comparison, and accepts:
//!
//! * `--quick` — a reduced configuration (16 SMs) for fast iteration;
//! * `--csv` — machine-readable output after the human-readable table.
//!
//! Criterion microbenchmarks for the core data structures live under
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod report;
pub mod runner;

pub use artifact::{LoadOutcome, RunArtifact};
pub use report::{geomean, Table};
pub use runner::{
    parse_args, prefetch, Cell, CellError, CellWorkload, Harness, Runner, RunnerCounters, Scale,
    SystemConfig,
};
