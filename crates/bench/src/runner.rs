//! The shared experiment runner for the figure harnesses.
//!
//! Every figure/table binary executes its `(GpuConfig, workload)` cells
//! through one process-wide [`Runner`], which provides:
//!
//! * **Parallelism** — [`Runner::run_cells`] executes cells on a
//!   `std::thread::scope` worker pool sized by `--jobs N` (default: all
//!   available cores). Binaries declare their full cell matrix up front
//!   via [`prefetch`], then format results through the (now warm) cache.
//! * **Memoization** — completed runs are cached in-process *and* on disk
//!   under `target/swgpu-runs/` (override with `SWGPU_RUN_CACHE`, or the
//!   coarser `SWGPU_RUNS_DIR` for per-checkout/per-CI-shard roots), keyed
//!   by workload identity + [`GpuConfig::fingerprint`]. Running `fig16`
//!   then `fig18` repeats no baseline simulation. `--refresh` ignores and
//!   rewrites disk entries; `--no-cache` disables the disk cache.
//! * **Artifacts & observability** — each simulated cell is persisted as
//!   a JSON [`crate::artifact::RunArtifact`] (schema v3, including any
//!   bounded walk-trace payload and the [`swgpu_sim::ObsReport`] of
//!   obs-enabled cells, so trace- and obs-requesting cells are cacheable
//!   too) and reported with a progress line; batch summaries include the
//!   cache-hit split, and every invocation writes a `manifest.json` next
//!   to the artifacts recording per-cell outcome, wall time, pool
//!   utilization, the cell's `spans_dropped` count (nonzero when the
//!   span recorder overflowed, i.e. the cell's trace is truncated), and
//!   — for multi-tenant cells — the per-tenant metric slices (IPC,
//!   MPKI, walks) plus the cell's Jain fairness index.
//!   `--trace-out <dir>` asks a harness to export Perfetto traces of its
//!   obs-enabled cells into `<dir>`; exports built from a truncated
//!   recorder warn on stderr.
//! * **Shared page-table prebuilds** — cells whose workloads share a
//!   footprint reuse one deterministic pre-built memory image
//!   ([`swgpu_sim::PrebuiltMemory`]) instead of re-mapping every page per
//!   cell. Demand-paged cells (`cfg.mm.enabled`) bypass the store: their
//!   page table starts empty and fills on first touch.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::artifact::{LoadOutcome, RunArtifact};
use swgpu_sim::{
    GpuConfig, GpuSimulator, ObsReport, PrebuiltMemory, RunProgress, SimStats, TranslationMode,
};
use swgpu_sm::InstrSource;
use swgpu_types::PageSize;
use swgpu_workloads::{by_abbr, microbench, BenchmarkSpec, WorkloadParams};

/// Run sizing: the full Table 3 machine, or a reduced one for iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 46 SMs x 48 warps, 6 memory instructions per warp.
    Full,
    /// 16 SMs x 16 warps, 4 memory instructions per warp.
    Quick,
}

impl Scale {
    /// SMs simulated.
    pub fn sms(self) -> usize {
        match self {
            Scale::Full => 46,
            Scale::Quick => 16,
        }
    }

    /// Warps per SM.
    pub fn warps(self) -> usize {
        match self {
            Scale::Full => 48,
            Scale::Quick => 16,
        }
    }

    /// Memory instructions per warp.
    pub fn mem_instrs(self) -> u32 {
        match self {
            Scale::Full => 6,
            Scale::Quick => 4,
        }
    }
}

/// CLI options shared by every harness binary.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Run sizing.
    pub scale: Scale,
    /// Emit CSV after the table.
    pub csv: bool,
    /// Worker threads for the experiment runner (`--jobs N`; default
    /// available parallelism).
    pub jobs: usize,
    /// Ignore existing disk-cache entries and rewrite them (`--refresh`).
    pub refresh: bool,
    /// Disable the on-disk run cache entirely (`--no-cache`).
    pub no_cache: bool,
    /// Directory to export Perfetto traces of obs-enabled cells into
    /// (`--trace-out <dir>`). Harnesses without an obs story ignore it.
    pub trace_out: Option<PathBuf>,
}

/// Parses the common harness flags (unknown flags are ignored so
/// binaries can add their own): `--quick`, `--csv`, `--jobs N`,
/// `--refresh`, `--no-cache`, `--trace-out <dir>`.
pub fn parse_args() -> Harness {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list(args: impl Iterator<Item = String>) -> Harness {
    let args: Vec<String> = args.collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
            .or_else(|| {
                let prefixed = format!("{flag}=");
                args.iter()
                    .find_map(|a| a.strip_prefix(&prefixed).map(str::to_string))
            })
    };
    let jobs = flag_value("--jobs")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(default_jobs);
    Harness {
        scale: if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        },
        csv: args.iter().any(|a| a == "--csv"),
        jobs: jobs.max(1),
        refresh: args.iter().any(|a| a == "--refresh"),
        no_cache: args.iter().any(|a| a == "--no-cache"),
        trace_out: flag_value("--trace-out").map(PathBuf::from),
    }
}

/// Default worker count: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One of the named system configurations the paper compares. Everything
/// is derived from the Table 3 default plus the mode-specific deltas the
/// evaluation section describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemConfig {
    /// 32 hardware PTWs (the normalization baseline).
    Baseline,
    /// Baseline plus NHA page-walk coalescing \[86\].
    Nha,
    /// Baseline walkers over the FS-HPT hashed page table \[32\].
    FsHpt,
    /// Hardware PTWs scaled to `n` (PWB and, when `scale_mshrs`, the L2
    /// MSHRs scale along — the paper's Figure 5 methodology).
    ScaledPtw {
        /// Walker count.
        walkers: usize,
        /// Scale the L2 TLB MSHRs proportionally.
        scale_mshrs: bool,
    },
    /// Baseline walkers with the L2 MSHR file scaled to `entries`
    /// (Figure 12's "MSHRs" series).
    ScaledMshr {
        /// Dedicated L2 TLB MSHR entries.
        entries: usize,
    },
    /// SoftWalker without the In-TLB MSHR.
    SwNoInTlb,
    /// Full SoftWalker (In-TLB MSHR capacity from the config, 1024
    /// default).
    SoftWalker,
    /// SoftWalker with a specific In-TLB capacity (Figure 24).
    SwWithCapacity {
        /// Maximum L2 TLB entries usable as MSHRs.
        in_tlb_max: usize,
    },
    /// The hybrid hardware+software design (§5.4).
    Hybrid,
    /// Ideal PTWs with ideal MSHRs.
    Ideal,
    /// Hardware walkers plus In-TLB MSHR (Figure 21's ablation).
    HwWithInTlb {
        /// Walker count.
        walkers: usize,
    },
}

impl SystemConfig {
    /// Short label used in table headers.
    pub fn label(self) -> String {
        match self {
            SystemConfig::Baseline => "Baseline".into(),
            SystemConfig::Nha => "NHA".into(),
            SystemConfig::FsHpt => "FS-HPT".into(),
            SystemConfig::ScaledPtw { walkers, .. } => format!("{walkers}PTW"),
            SystemConfig::ScaledMshr { entries } => format!("{entries}MSHR"),
            SystemConfig::SwNoInTlb => "SW w/o InTLB".into(),
            SystemConfig::SoftWalker => "SoftWalker".into(),
            SystemConfig::SwWithCapacity { in_tlb_max } => format!("SW({in_tlb_max})"),
            SystemConfig::Hybrid => "SW Hybrid".into(),
            SystemConfig::Ideal => "Ideal".into(),
            SystemConfig::HwWithInTlb { walkers } => format!("{walkers}PTW+InTLB"),
        }
    }

    /// Builds the simulator configuration for this system at `scale`.
    pub fn build(self, scale: Scale) -> GpuConfig {
        let mut cfg = GpuConfig {
            sms: scale.sms(),
            max_warps: scale.warps(),
            ..GpuConfig::default()
        };
        match self {
            SystemConfig::Baseline => {}
            SystemConfig::Nha => cfg.ptw.nha = true,
            SystemConfig::FsHpt => cfg.mode = TranslationMode::HashedPtw,
            SystemConfig::ScaledPtw {
                walkers,
                scale_mshrs,
            } => {
                cfg = cfg.with_ptws(walkers, scale_mshrs);
            }
            SystemConfig::ScaledMshr { entries } => {
                cfg.l2_mshr.entries = entries;
            }
            SystemConfig::SwNoInTlb => {
                cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: false };
            }
            SystemConfig::SoftWalker => {
                cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
            }
            SystemConfig::SwWithCapacity { in_tlb_max: 0 } => {
                // Zero capacity means "no In-TLB MSHR at all": identical
                // to SwNoInTlb, rather than silently clamping to 1 entry
                // (which would simulate a different — and misleading —
                // one-entry design point).
                cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: false };
            }
            SystemConfig::SwWithCapacity { in_tlb_max } => {
                cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
                cfg.in_tlb_max = in_tlb_max;
            }
            SystemConfig::Hybrid => {
                cfg.mode = TranslationMode::Hybrid { in_tlb_mshr: true };
            }
            SystemConfig::Ideal => {
                cfg = cfg.ideal();
            }
            SystemConfig::HwWithInTlb { walkers } => {
                cfg = cfg.with_ptws(walkers, false);
                cfg.force_in_tlb = true;
            }
        }
        cfg
    }
}

/// The workload half of an experiment cell. Closure-free by design: a
/// workload must be *keyable* (for the run cache) and *rebuildable on a
/// worker thread*, neither of which a `FnOnce` tweak can provide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellWorkload {
    /// A Table 4 benchmark, with its footprint scaled to
    /// `footprint_percent`% of the Table 4 size (100 = as published).
    Bench {
        /// The benchmark abbreviation (`by_abbr` key, e.g. `"bfs"`).
        abbr: String,
        /// Footprint scale in percent (Figures 6/25 sweep this).
        footprint_percent: u64,
    },
    /// The Figure 4/9 synthetic walk-contention microbenchmark.
    Micro {
        /// Concurrent single-lane walker warps.
        concurrent: usize,
        /// Warps packed per SM.
        warps_per_sm: usize,
        /// Accesses each warp issues.
        accesses_per_warp: u32,
        /// Virtual footprint the accesses stride across.
        footprint_bytes: u64,
    },
    /// A multi-tenant mix: one Table 4 benchmark per tenant, bound to
    /// the SM slices of the cell's `cfg.tenants` layout. The sharing
    /// policy and SM split live in the config (and hence in the
    /// fingerprint half of the cache key); the abbreviations ride here
    /// so the workload half of the key stays human-readable.
    TenantMix {
        /// Per-tenant benchmark abbreviations, in ASID order. Must match
        /// the `workload` tags of the config's tenant layout.
        abbrs: Vec<String>,
        /// Footprint scale in percent, applied to every tenant.
        footprint_percent: u64,
    },
}

impl CellWorkload {
    /// A stable, filesystem-safe identity string for this workload.
    pub fn key(&self) -> String {
        match self {
            CellWorkload::Bench {
                abbr,
                footprint_percent,
            } => format!("{abbr}-fp{footprint_percent}"),
            CellWorkload::Micro {
                concurrent,
                warps_per_sm,
                accesses_per_warp,
                footprint_bytes,
            } => format!(
                "micro-c{concurrent}-w{warps_per_sm}-a{accesses_per_warp}-f{footprint_bytes}"
            ),
            CellWorkload::TenantMix {
                abbrs,
                footprint_percent,
            } => format!("mt-{}-fp{footprint_percent}", abbrs.join("+")),
        }
    }
}

/// One experiment cell: a complete simulator configuration plus the
/// workload identity to drive through it. Cells are the unit of
/// scheduling, memoization, and artifact persistence.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The full simulator configuration (fingerprinted for the cache key).
    pub cfg: GpuConfig,
    /// The workload to run.
    pub workload: CellWorkload,
}

impl Cell {
    /// A benchmark cell at the published (100%) footprint.
    pub fn bench(spec: &BenchmarkSpec, cfg: GpuConfig) -> Self {
        Self::bench_scaled(spec, cfg, 100)
    }

    /// A benchmark cell with a scaled footprint.
    pub fn bench_scaled(spec: &BenchmarkSpec, cfg: GpuConfig, footprint_percent: u64) -> Self {
        Cell {
            cfg,
            workload: CellWorkload::Bench {
                abbr: spec.abbr.to_string(),
                footprint_percent,
            },
        }
    }

    /// A microbenchmark cell (page size comes from `cfg`).
    pub fn micro(
        cfg: GpuConfig,
        concurrent: usize,
        warps_per_sm: usize,
        accesses_per_warp: u32,
        footprint_bytes: u64,
    ) -> Self {
        Cell {
            cfg,
            workload: CellWorkload::Micro {
                concurrent,
                warps_per_sm,
                accesses_per_warp,
                footprint_bytes,
            },
        }
    }

    /// A multi-tenant cell: the tenant mix is read off `cfg.tenants`
    /// (one Table 4 benchmark per tenant, bound to its SM slice), with
    /// every tenant's footprint scaled to `footprint_percent`%.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.tenants` is `None` — a single-tenant config has
    /// no mix to bind.
    pub fn tenant_mix(cfg: GpuConfig, footprint_percent: u64) -> Self {
        let layout = cfg
            .tenants
            .as_ref()
            .expect("Cell::tenant_mix requires cfg.tenants");
        let abbrs = layout.tenants.iter().map(|t| t.workload.clone()).collect();
        Cell {
            cfg,
            workload: CellWorkload::TenantMix {
                abbrs,
                footprint_percent,
            },
        }
    }

    /// The cell's cache key: `<workload key>-<config fingerprint>`.
    pub fn key(&self) -> String {
        format!("{}-{}", self.workload.key(), self.cfg.fingerprint())
    }

    /// Builds the instruction source for this cell and reports the
    /// footprint it needs mapped. The footprint is what the runner keys
    /// its shared page-table prebuild store on.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark abbreviation.
    fn build_source(&self) -> (Box<dyn InstrSource>, u64) {
        let cfg = &self.cfg;
        match &self.workload {
            CellWorkload::Bench {
                abbr,
                footprint_percent,
            } => {
                let spec = by_abbr(abbr)
                    .unwrap_or_else(|| panic!("unknown benchmark abbreviation {abbr:?}"));
                let wl = spec.build(WorkloadParams {
                    sms: cfg.sms,
                    warps_per_sm: cfg.max_warps,
                    mem_instrs_per_warp: match cfg.sms {
                        0..=16 => Scale::Quick.mem_instrs(),
                        _ => Scale::Full.mem_instrs(),
                    },
                    footprint_percent: *footprint_percent,
                    page_size: cfg.page_size,
                });
                let footprint = wl.footprint_bytes();
                (Box::new(wl), footprint)
            }
            CellWorkload::Micro {
                concurrent,
                warps_per_sm,
                accesses_per_warp,
                footprint_bytes,
            } => {
                let wl = microbench(
                    *concurrent,
                    *warps_per_sm,
                    *accesses_per_warp,
                    *footprint_bytes,
                    cfg.page_size,
                );
                let footprint = wl.footprint_bytes();
                (Box::new(wl), footprint)
            }
            CellWorkload::TenantMix { .. } => {
                unreachable!("multi-tenant cells build via Cell::build_simulator")
            }
        }
    }

    /// Builds the per-tenant `(source, footprint)` pairs of a
    /// [`CellWorkload::TenantMix`] cell: each tenant's benchmark is sized
    /// to its own SM slice, so the mix's streams interleave exactly as
    /// the tenant layout assigns them.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark abbreviation or when the cell's
    /// config carries no tenant layout.
    fn build_tenant_sources(&self, footprint_percent: u64) -> Vec<(Box<dyn InstrSource>, u64)> {
        let cfg = &self.cfg;
        let layout = cfg
            .tenants
            .as_ref()
            .expect("TenantMix cell without cfg.tenants");
        layout
            .tenants
            .iter()
            .map(|t| {
                let spec = by_abbr(&t.workload)
                    .unwrap_or_else(|| panic!("unknown benchmark abbreviation {:?}", t.workload));
                let wl = spec.build(WorkloadParams {
                    sms: t.sms,
                    warps_per_sm: cfg.max_warps,
                    mem_instrs_per_warp: match cfg.sms {
                        0..=16 => Scale::Quick.mem_instrs(),
                        _ => Scale::Full.mem_instrs(),
                    },
                    footprint_percent,
                    page_size: cfg.page_size,
                });
                let footprint = wl.footprint_bytes();
                (Box::new(wl) as Box<dyn InstrSource>, footprint)
            })
            .collect()
    }

    /// Builds the ready-to-run simulator for this cell (no caching, no
    /// shared prebuild store). Public so trace tooling (e.g. the
    /// `obs_stream_smoke` binary) can attach an SWTB sink or progress
    /// hook before running.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark abbreviation.
    pub fn build_simulator(&self) -> GpuSimulator {
        if let CellWorkload::TenantMix {
            footprint_percent, ..
        } = &self.workload
        {
            let pairs = self.build_tenant_sources(*footprint_percent);
            return GpuSimulator::new_multi_tenant(self.cfg.clone(), pairs);
        }
        let (source, footprint) = self.build_source();
        GpuSimulator::new_with_footprint(self.cfg.clone(), source, footprint)
    }

    /// Runs the simulation for this cell (no caching — see [`Runner`]).
    pub fn simulate(&self) -> SimStats {
        self.build_simulator().run()
    }

    /// Runs the cell on the dense reference kernel, executing every
    /// cycle instead of jumping between scheduled events. Produces
    /// byte-identical [`SimStats`] to [`Cell::simulate`]; exists so CI
    /// can cross-check the two kernels on real bench cells.
    pub fn simulate_dense(&self) -> SimStats {
        self.build_simulator().run_dense()
    }
}

/// Where the runner resolved a cell's result from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Fresh simulation this process.
    Simulated,
    /// In-process memo hit.
    Memo,
    /// On-disk artifact hit (possibly written by another binary).
    Disk,
}

impl CellSource {
    fn label(self) -> &'static str {
        match self {
            CellSource::Simulated => "sim",
            CellSource::Memo => "memo",
            CellSource::Disk => "cache",
        }
    }
}

/// Cache-hit accounting for a [`Runner`] (cumulative per process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerCounters {
    /// Cells actually simulated.
    pub simulated: u64,
    /// Cells served from the in-process memo.
    pub memo_hits: u64,
    /// Cells served from on-disk artifacts.
    pub disk_hits: u64,
    /// Cells whose simulation panicked (caught; the batch continued).
    /// Counted only after the automatic retry also failed.
    pub failed: u64,
    /// Cells whose first simulation attempt panicked and were retried
    /// once with a fresh simulation (the retry itself may still fail).
    pub retried: u64,
    /// Corrupt disk artifacts set aside (renamed `*.json.corrupt*`) and
    /// re-simulated.
    pub quarantined: u64,
    /// Quarantines that found an earlier quarantine file already in
    /// place and had to pick a suffixed name instead of clobbering it.
    pub quarantine_collisions: u64,
    /// Intact artifacts skipped for schema or trace-cap reasons (silently
    /// re-simulated and overwritten; never quarantined).
    pub stale: u64,
    /// Page-table images built for the shared prebuild store.
    pub pt_prebuilds: u64,
    /// Simulations that reused a prebuilt page-table image.
    pub pt_prebuild_hits: u64,
}

impl RunnerCounters {
    /// Total successful cell resolutions.
    pub fn total(&self) -> u64 {
        self.simulated + self.memo_hits + self.disk_hits
    }
}

/// A cell whose simulation panicked. The runner catches the panic so one
/// diverging configuration cannot take down a whole batch (and with it
/// the results of every healthy cell).
#[derive(Debug, Clone)]
pub struct CellError {
    /// The failing cell's cache key.
    pub key: String,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.key, self.message)
    }
}

impl std::error::Error for CellError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One finished cell in the manifest, in completion order.
#[derive(Debug)]
struct CellRecord {
    /// The cell's cache key.
    key: String,
    /// Outcome label (`sim` / `memo` / `cache` / `FAILED`).
    outcome: &'static str,
    /// Wall milliseconds the cell spent resolving.
    wall_ms: u128,
    /// The cell's observability span-drop count (0 for obs-off cells;
    /// nonzero means the recorder hit its capacity and the cell's span
    /// set — hence any Perfetto export of it — is truncated).
    spans_dropped: u64,
    /// Pre-rendered JSON object breaking the drops out per span kind
    /// (`{}` when nothing dropped).
    dropped_by_kind: String,
    /// How many times the cell's panicked simulation was retried.
    retries: u64,
    /// Pre-rendered JSON array of per-tenant metric slices (`[]` for
    /// single-tenant cells): one `{asid, ipc, mpki, instructions,
    /// walks}` object per tenant, in ASID order.
    tenants: String,
    /// Jain's fairness index over the cell's per-tenant IPCs (1.0 for
    /// single-tenant cells — nothing to be unfair about).
    fairness: f64,
}

/// Live progress of a cell mid-simulation: cycles simulated, spans
/// flushed to its SWTB sink, trace bytes written, and the wall-clock
/// heartbeat (UNIX epoch milliseconds of the last update).
type InFlight = (u64, u64, u64, u128);

/// Per-invocation observability of the runner itself: everything the
/// `manifest.json` written next to the artifacts records.
#[derive(Debug, Default)]
struct ManifestState {
    /// Batches executed so far this invocation.
    batches: u64,
    /// Wall-clock milliseconds spent inside batches.
    wall_ms: u128,
    /// Summed per-cell wall milliseconds (the pool's busy time).
    busy_ms: u128,
    /// Available pool capacity: Σ workers × batch wall milliseconds.
    capacity_ms: u128,
    /// Per-cell records in completion order.
    cells: Vec<CellRecord>,
    /// Streaming cells currently simulating, updated from their progress
    /// hooks and removed on completion.
    in_flight: BTreeMap<String, InFlight>,
    /// Last live (mid-batch) manifest write, for throttling.
    last_live_write: Option<Instant>,
}

/// Streaming cells report progress at this cycle granularity.
const PROGRESS_EVERY_CYCLES: u64 = 8192;

/// Minimum wall-clock spacing between live (mid-batch) manifest rewrites.
const LIVE_MANIFEST_PERIOD: Duration = Duration::from_millis(250);

/// Milliseconds since the UNIX epoch, for manifest heartbeats.
fn epoch_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis())
}

/// Renders a run's per-tenant metric slices as a JSON array (`[]` for
/// single-tenant runs, keeping the manifest schema uniform).
fn tenants_json(stats: &SimStats) -> String {
    if stats.tenants.is_empty() {
        return "[]".to_string();
    }
    let slices: Vec<String> = stats
        .tenants
        .iter()
        .enumerate()
        .map(|(asid, t)| {
            format!(
                "{{\"asid\":{asid},\"ipc\":{:.4},\"mpki\":{:.2},\
                 \"instructions\":{},\"walks\":{}}}",
                t.ipc(),
                t.l2_tlb_mpki(),
                t.instructions,
                t.walks
            )
        })
        .collect();
    format!("[{}]", slices.join(","))
}

/// Renders a report's nonzero per-kind drop counts as a JSON object.
fn drops_by_kind_json(report: &ObsReport) -> String {
    let mut out = String::from("{");
    for (i, (kind, n)) in report.dropped_by_kind().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{n}", kind.name()));
    }
    out.push('}');
    out
}

/// The SWTB trace path for a cell key inside a `--trace-out` directory.
pub fn swtb_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.swtb"))
}

/// The shared experiment runner: a worker pool over a two-level
/// (in-process + on-disk) run cache. See the module docs for the
/// behaviour summary.
pub struct Runner {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    stream_dir: Option<PathBuf>,
    refresh: bool,
    memo: Mutex<HashMap<String, SimStats>>,
    // Shared page-table prebuild store: one built memory image per
    // distinct (page bytes, scrambling, footprint bytes); cells sharing a
    // footprint clone the image instead of re-mapping every page.
    prebuilds: Mutex<HashMap<(u64, bool, u64), std::sync::Arc<PrebuiltMemory>>>,
    counters: Mutex<RunnerCounters>,
    // Arc so streaming cells' progress hooks (which outlive the borrow
    // of `self`) can update the live manifest from worker threads.
    manifest: Arc<Mutex<ManifestState>>,
}

impl Runner {
    /// Builds a runner. `cache_dir: None` disables the disk cache;
    /// `refresh` ignores (and overwrites) existing disk entries.
    pub fn new(jobs: usize, cache_dir: Option<PathBuf>, refresh: bool) -> Self {
        Runner {
            jobs: jobs.max(1),
            cache_dir,
            stream_dir: None,
            refresh,
            memo: Mutex::new(HashMap::new()),
            prebuilds: Mutex::new(HashMap::new()),
            counters: Mutex::new(RunnerCounters::default()),
            manifest: Arc::new(Mutex::new(ManifestState::default())),
        }
    }

    /// Streams every obs-enabled simulated cell's spans and metrics into
    /// `<dir>/<key>.swtb` while it runs (bounded-memory export: the
    /// in-process recorder becomes a small staging buffer that never
    /// drops). Cache- and memo-served obs cells get their file
    /// synthesized from the cached report, so the directory is complete
    /// either way.
    pub fn with_stream_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.stream_dir = dir;
        self
    }

    /// Builds a runner from parsed harness flags. `--trace-out` doubles
    /// as the SWTB stream directory.
    pub fn from_harness(h: &Harness) -> Self {
        let dir = (!h.no_cache).then(default_cache_dir);
        Self::new(h.jobs, dir, h.refresh).with_stream_dir(h.trace_out.clone())
    }

    /// The process-wide runner every figure binary shares, configured
    /// from the command line on first use.
    pub fn global() -> &'static Runner {
        static GLOBAL: OnceLock<Runner> = OnceLock::new();
        GLOBAL.get_or_init(|| Runner::from_harness(&parse_args()))
    }

    /// Cache-hit accounting so far.
    pub fn counters(&self) -> RunnerCounters {
        *self.counters.lock().unwrap()
    }

    /// Resolves one cell: memo, then disk, then simulation. The result is
    /// memoized and (for fresh simulations) persisted as an artifact.
    pub fn get(&self, cell: &Cell) -> SimStats {
        self.resolve(cell).0
    }

    fn resolve(&self, cell: &Cell) -> (SimStats, CellSource) {
        let key = cell.key();
        if let Some(stats) = self.memo.lock().unwrap().get(&key).cloned() {
            self.counters.lock().unwrap().memo_hits += 1;
            self.ensure_swtb(cell, &stats);
            return (stats, CellSource::Memo);
        }
        if !self.refresh {
            if let Some(dir) = &self.cache_dir {
                match RunArtifact::probe(dir, &key) {
                    LoadOutcome::Loaded(artifact) if self.artifact_serves(cell, &artifact) => {
                        self.counters.lock().unwrap().disk_hits += 1;
                        self.memo
                            .lock()
                            .unwrap()
                            .insert(key, artifact.stats.clone());
                        self.ensure_swtb(cell, &artifact.stats);
                        return (artifact.stats, CellSource::Disk);
                    }
                    LoadOutcome::Loaded(_) | LoadOutcome::Stale(_) => {
                        // An intact artifact from another schema version,
                        // or one whose stored trace cap does not match
                        // what this cell asked for: silently re-simulate
                        // and overwrite. Not corruption, no quarantine.
                        self.counters.lock().unwrap().stale += 1;
                    }
                    LoadOutcome::Corrupt(why) => {
                        // Set the unreadable file aside (it may still be
                        // useful for a post-mortem) and fall through to a
                        // fresh simulation, which rewrites the entry.
                        self.quarantine(dir, &key, &why);
                    }
                    LoadOutcome::Missing => {}
                }
            }
        }
        let stats = self.simulate_cell(cell);
        if let Some(dir) = &self.cache_dir {
            let artifact = RunArtifact {
                key: key.clone(),
                workload: cell.workload.key(),
                config: cell.cfg.fingerprint(),
                stats: stats.clone(),
            };
            if !artifact.obs_payload_complete() {
                // A streamed cell's spans went to its SWTB file; the
                // in-memory report holds only the staged tail. Persisting
                // it would serve a truncated timeline from the cache, so
                // streamed cells re-simulate instead.
            } else if let Err(e) = artifact.write_to(dir) {
                eprintln!("[runner] warning: failed to write artifact {key}: {e}");
            }
        }
        self.counters.lock().unwrap().simulated += 1;
        self.memo.lock().unwrap().insert(key, stats.clone());
        (stats, CellSource::Simulated)
    }

    /// Whether a loaded artifact can satisfy `cell`'s request. The trace
    /// cap must match exactly, and a trace-requesting cell additionally
    /// needs the payload to actually have been persisted (caps above
    /// [`crate::artifact::MAX_TRACE_RECORDS`] are written without one).
    /// Likewise the obs payload must be present exactly when the cell
    /// arms observability (the fingerprint already separates obs-on from
    /// obs-off keys; this guards hand-copied or torn artifacts), and it
    /// must hold the complete span set — a hand-copied artifact of a
    /// streamed run carries only the staged tail and cannot answer for
    /// the full timeline.
    fn artifact_serves(&self, cell: &Cell, artifact: &RunArtifact) -> bool {
        artifact.trace_cap() == cell.cfg.walk_trace_cap
            && (cell.cfg.walk_trace_cap == 0 || artifact.has_trace_payload())
            && artifact.has_obs_payload() == cell.cfg.obs.enabled
            && artifact.obs_payload_complete()
    }

    /// Synthesizes the `<stream dir>/<key>.swtb` file for a cache- or
    /// memo-served obs cell whose file is missing, from the complete
    /// in-memory report, so a `--trace-out` directory covers every cell
    /// regardless of where its result came from.
    fn ensure_swtb(&self, cell: &Cell, stats: &SimStats) {
        let Some(dir) = &self.stream_dir else { return };
        let Some(obs) = stats.obs.as_deref() else {
            return;
        };
        if !obs.spans_complete() {
            return;
        }
        let key = cell.key();
        let path = swtb_path(dir, &key);
        if path.exists() {
            return;
        }
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            let tmp = dir.join(format!(".{key}.{}.swtb.tmp", std::process::id()));
            let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            swgpu_obs::write_report(&mut w, &cell.cfg.fingerprint(), obs)?;
            std::io::Write::flush(&mut w)?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!("[runner] warning: failed to synthesize SWTB trace {key}: {e}");
        }
    }

    /// Renames a corrupt artifact out of the cache without clobbering any
    /// earlier quarantine of the same key: `<key>.json.corrupt`, then
    /// `.corrupt.1`, `.corrupt.2`, ...
    fn quarantine(&self, dir: &std::path::Path, key: &str, why: &str) {
        let path = RunArtifact::path_in(dir, key);
        let mut quarantine = path.with_extension("json.corrupt");
        let mut suffix = 0u32;
        while quarantine.exists() {
            suffix += 1;
            quarantine = path.with_extension(format!("json.corrupt.{suffix}"));
        }
        {
            let mut c = self.counters.lock().unwrap();
            c.quarantined += 1;
            if suffix > 0 {
                c.quarantine_collisions += 1;
            }
        }
        eprintln!("[runner] warning: quarantining corrupt artifact {key}: {why}");
        if let Err(e) = std::fs::rename(&path, &quarantine) {
            eprintln!("[runner] warning: quarantine rename failed: {e}");
        }
    }

    /// Simulates a cell through the shared page-table prebuild store.
    /// Demand-paged cells (`cfg.mm.enabled`) bypass the store entirely:
    /// they start from an *empty* page table and populate it on first
    /// touch, so a prebuilt image would be built only to be thrown away
    /// (and would pollute the store with images no other cell reuses).
    /// With a stream directory configured, obs-enabled cells get an SWTB
    /// file sink and a live-manifest progress hook attached first.
    fn simulate_cell(&self, cell: &Cell) -> SimStats {
        // Multi-tenant cells bypass the store too: each tenant maps its
        // own address space (or one shared one under sub-entry sharing),
        // which `GpuSimulator::new_multi_tenant` builds itself.
        let mut sim = if cell.cfg.mm.enabled || cell.cfg.tenants.is_some() {
            cell.build_simulator()
        } else {
            let (source, footprint) = cell.build_source();
            let prebuilt = self.prebuilt(cell.cfg.page_size, cell.cfg.scrambled_frames, footprint);
            GpuSimulator::new_with_prebuilt(cell.cfg.clone(), source, prebuilt)
        };
        let key = cell.key();
        let streamed = self.attach_stream(&mut sim, cell, &key);
        let stats = sim.run();
        if streamed {
            self.manifest.lock().unwrap().in_flight.remove(&key);
        }
        stats
    }

    /// Attaches the SWTB file sink and live-progress hook for a
    /// streaming cell. Returns whether streaming was armed (requires a
    /// stream directory, an obs-enabled cell, and a creatable file).
    fn attach_stream(&self, sim: &mut GpuSimulator, cell: &Cell, key: &str) -> bool {
        let Some(dir) = &self.stream_dir else {
            return false;
        };
        if !cell.cfg.obs.enabled {
            return false;
        }
        let path = swtb_path(dir, key);
        let file = match std::fs::create_dir_all(dir).and_then(|()| std::fs::File::create(&path)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("[runner] warning: cannot open SWTB trace {key}: {e}");
                return false;
            }
        };
        if !sim.attach_trace_sink(Box::new(std::io::BufWriter::new(file))) {
            std::fs::remove_file(&path).ok();
            return false;
        }
        let manifest = Arc::clone(&self.manifest);
        let mkey = key.to_string();
        let manifest_dir = self.cache_dir.clone();
        let jobs = self.jobs;
        sim.set_progress_hook(
            PROGRESS_EVERY_CYCLES,
            Box::new(move |p: RunProgress| {
                let mut m = manifest.lock().unwrap();
                m.in_flight.insert(
                    mkey.clone(),
                    (p.cycles, p.spans_flushed, p.trace_bytes, epoch_ms()),
                );
                let due = m
                    .last_live_write
                    .is_none_or(|t| t.elapsed() >= LIVE_MANIFEST_PERIOD);
                if due {
                    m.last_live_write = Some(Instant::now());
                    if let Some(dir) = &manifest_dir {
                        write_manifest_file(dir, jobs, &m);
                    }
                }
            }),
        );
        true
    }

    /// Fetches (or builds) the shared memory image for a footprint. The
    /// image is built outside the store lock; a racing worker may build
    /// the same image redundantly, but both count as builds and the store
    /// keeps exactly one.
    fn prebuilt(&self, page: PageSize, scrambled: bool, footprint: u64) -> PrebuiltMemory {
        let key = (page.bytes(), scrambled, footprint);
        if let Some(img) = self.prebuilds.lock().unwrap().get(&key) {
            let img = std::sync::Arc::clone(img);
            self.counters.lock().unwrap().pt_prebuild_hits += 1;
            return (*img).clone();
        }
        let img = std::sync::Arc::new(PrebuiltMemory::build(page, scrambled, footprint));
        self.counters.lock().unwrap().pt_prebuilds += 1;
        let img = match self.prebuilds.lock().unwrap().entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => std::sync::Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(v) => std::sync::Arc::clone(v.insert(img)),
        };
        (*img).clone()
    }

    /// Resolves one cell, converting a panicking simulation into a
    /// [`CellError`] instead of unwinding into the caller. Neither cache
    /// lock is held while the simulation runs, so a caught panic cannot
    /// poison the runner.
    pub fn get_checked(&self, cell: &Cell) -> Result<SimStats, CellError> {
        self.resolve_checked(cell).map(|(stats, _)| stats)
    }

    fn resolve_checked(&self, cell: &Cell) -> Result<(SimStats, CellSource), CellError> {
        self.resolve_with_retry(cell).0
    }

    /// Resolves a cell, retrying a panicked resolution once with a fresh
    /// attempt before giving up: a cell that tripped over transient state
    /// (e.g. a corrupt artifact racing its quarantine) deserves a second
    /// chance, while a deterministically-panicking cell fails on the
    /// retry exactly as it would have on the first attempt. Returns the
    /// retry count (0 or 1) for the manifest. No cache state is written
    /// by a panicked attempt, so the retry simulates from scratch.
    fn resolve_with_retry(&self, cell: &Cell) -> (Result<(SimStats, CellSource), CellError>, u64) {
        let key = cell.key();
        let attempt = || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.resolve(cell))).map_err(
                |payload| CellError {
                    key: key.clone(),
                    message: panic_message(payload),
                },
            )
        };
        match attempt() {
            Ok(ok) => (Ok(ok), 0),
            Err(first) => {
                eprintln!("[runner] warning: {first}; retrying once with a fresh simulation");
                self.counters.lock().unwrap().retried += 1;
                match attempt() {
                    Ok(ok) => (Ok(ok), 1),
                    Err(second) => {
                        self.counters.lock().unwrap().failed += 1;
                        (Err(second), 1)
                    }
                }
            }
        }
    }

    /// Executes a batch of cells on the worker pool and returns their
    /// stats in input order. Cells sharing a key (e.g. one baseline
    /// compared against many systems) are resolved once.
    ///
    /// # Panics
    ///
    /// Panics — after the whole batch has finished, so every healthy
    /// cell's artifact is on disk — if any cell's simulation panicked.
    /// Callers that want to handle per-cell failures use
    /// [`Runner::run_cells_checked`].
    pub fn run_cells(&self, cells: &[Cell]) -> Vec<SimStats> {
        let results = self.run_cells_checked(cells);
        let mut seen = std::collections::HashSet::new();
        let failures: Vec<&CellError> = results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .filter(|e| seen.insert(e.key.clone()))
            .collect();
        assert!(
            failures.is_empty(),
            "{} cell(s) failed:\n{}",
            failures.len(),
            failures
                .iter()
                .map(|e| format!("  {e}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        results
            .into_iter()
            .map(|r| r.expect("checked above"))
            .collect()
    }

    /// Executes a batch of cells on the worker pool, mapping each input
    /// cell to `Ok(stats)` or the [`CellError`] describing its panic. A
    /// crashing cell never aborts the batch: every other cell still
    /// simulates, reports, and persists its artifact.
    pub fn run_cells_checked(&self, cells: &[Cell]) -> Vec<Result<SimStats, CellError>> {
        let mut keys = Vec::with_capacity(cells.len());
        let mut unique: Vec<&Cell> = Vec::new();
        {
            let mut seen: HashMap<String, ()> = HashMap::new();
            for cell in cells {
                let key = cell.key();
                if seen.insert(key.clone(), ()).is_none() {
                    unique.push(cell);
                }
                keys.push(key);
            }
        }
        let total = unique.len();
        let workers = self.jobs.min(total.max(1));
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let batch_start = Instant::now();
        let results: Mutex<HashMap<String, Result<SimStats, CellError>>> =
            Mutex::new(HashMap::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let cell = unique[i];
                    let cell_start = Instant::now();
                    let (outcome, retries) = self.resolve_with_retry(cell);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    let label = match &outcome {
                        Ok((_, source)) => source.label(),
                        Err(_) => "FAILED",
                    };
                    eprintln!(
                        "[runner] {finished}/{total} {} ({label}, {:.2}s)",
                        cell.key(),
                        cell_start.elapsed().as_secs_f64()
                    );
                    {
                        let wall = cell_start.elapsed().as_millis();
                        let report = outcome
                            .as_ref()
                            .ok()
                            .and_then(|(stats, _)| stats.obs.as_deref());
                        let stats = outcome.as_ref().ok().map(|(stats, _)| stats);
                        let mut m = self.manifest.lock().unwrap();
                        m.busy_ms += wall;
                        m.cells.push(CellRecord {
                            key: cell.key(),
                            outcome: label,
                            wall_ms: wall,
                            spans_dropped: report.map_or(0, |r| r.spans_dropped),
                            dropped_by_kind: report
                                .map_or_else(|| "{}".to_string(), drops_by_kind_json),
                            retries,
                            tenants: stats.map_or_else(|| "[]".to_string(), tenants_json),
                            fairness: stats.map_or(1.0, |s| s.fairness_index()),
                        });
                    }
                    results
                        .lock()
                        .unwrap()
                        .insert(cell.key(), outcome.map(|(stats, _)| stats));
                });
            }
        });
        let c = self.counters();
        eprintln!(
            "[runner] batch of {} cells ({} unique) in {:.2}s on {} worker(s); totals: {} simulated, {} memo hits, {} disk hits, {} failed, {} retried, {} quarantined, {} stale, {} pt prebuilds ({} reused)",
            cells.len(),
            total,
            batch_start.elapsed().as_secs_f64(),
            workers,
            c.simulated,
            c.memo_hits,
            c.disk_hits,
            c.failed,
            c.retried,
            c.quarantined,
            c.stale,
            c.pt_prebuilds,
            c.pt_prebuild_hits
        );
        {
            let wall = batch_start.elapsed().as_millis();
            let mut m = self.manifest.lock().unwrap();
            m.batches += 1;
            m.wall_ms += wall;
            m.capacity_ms += wall * workers as u128;
        }
        self.write_manifest();
        let results = results.into_inner().unwrap();
        keys.iter().map(|k| results[k].clone()).collect()
    }

    /// Writes the invocation's `manifest.json` next to the artifacts.
    /// Rewritten after every batch — and, throttled, from streaming
    /// cells' progress hooks mid-batch — so the file always reflects the
    /// whole invocation so far, live. Skipped when the disk cache is
    /// off. Purely observational — nothing reads it back.
    fn write_manifest(&self) {
        let Some(dir) = &self.cache_dir else { return };
        let m = self.manifest.lock().unwrap();
        write_manifest_file(dir, self.jobs, &m);
    }
}

/// Serializes and atomically writes (tmp + rename) a `manifest.json`:
/// per-cell key/outcome/wall-time/span-drop records, worker-pool
/// utilization, and the live `in_flight` progress of streaming cells
/// still simulating (cycles, spans flushed, trace bytes, heartbeat).
fn write_manifest_file(dir: &Path, jobs: usize, m: &ManifestState) {
    let utilization = if m.capacity_ms == 0 {
        0.0
    } else {
        m.busy_ms as f64 / m.capacity_ms as f64
    };
    let cells: Vec<String> = m
        .cells
        .iter()
        .map(|c| {
            format!(
                "{{\"key\":\"{}\",\"outcome\":\"{}\",\"wall_ms\":{},\
                 \"spans_dropped\":{},\"spans_dropped_by_kind\":{},\"cell_retries\":{},\
                 \"tenants\":{},\"fairness\":{:.4}}}",
                c.key,
                c.outcome,
                c.wall_ms,
                c.spans_dropped,
                c.dropped_by_kind,
                c.retries,
                c.tenants,
                c.fairness
            )
        })
        .collect();
    let in_flight: Vec<String> = m
        .in_flight
        .iter()
        .map(|(key, (cycles, flushed, bytes, heartbeat))| {
            format!(
                "{{\"key\":\"{key}\",\"cycles\":{cycles},\"spans_flushed\":{flushed},\
                 \"trace_bytes\":{bytes},\"heartbeat_ms\":{heartbeat}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\"jobs\":{jobs},\"batches\":{},\"wall_ms\":{},\"busy_ms\":{},\
         \"pool_utilization\":{:.4},\"in_flight\":[{}],\"cells\":[{}]}}",
        m.batches,
        m.wall_ms,
        m.busy_ms,
        utilization,
        in_flight.join(","),
        cells.join(",")
    );
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".manifest.{}.tmp", std::process::id()));
        std::fs::write(&tmp, &json)?;
        std::fs::rename(&tmp, dir.join("manifest.json"))
    };
    if let Err(e) = write() {
        eprintln!("[runner] warning: failed to write manifest.json: {e}");
    }
}

/// The on-disk run cache directory: `$SWGPU_RUN_CACHE` when set, else
/// `$SWGPU_RUNS_DIR` (the coarser root CI shards and multi-checkout
/// setups point at scratch space), else the workspace's
/// `target/swgpu-runs/` (anchored to the source tree, not the working
/// directory, so every binary shares one cache).
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("SWGPU_RUN_CACHE")
        .or_else(|| std::env::var_os("SWGPU_RUNS_DIR"))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/swgpu-runs")
        })
}

/// Warms the global runner's cache for `cells` in parallel. Binaries
/// declare their full cell matrix up front, prefetch it, then keep their
/// (serial) formatting loops — every subsequent [`run`]/[`run_with`]/
/// [`run_config`] call hits the memo.
pub fn prefetch(cells: &[Cell]) {
    Runner::global().run_cells(cells);
}

/// Runs one benchmark under one system configuration.
pub fn run(spec: &BenchmarkSpec, system: SystemConfig, scale: Scale) -> SimStats {
    run_with(spec, system, scale, |c| c)
}

/// Runs one benchmark under one system configuration, letting the caller
/// tweak the configuration (latency sweeps, page size, footprint scale).
/// The tweaked configuration is fingerprinted, so every distinct tweak is
/// a distinct cache cell.
pub fn run_with(
    spec: &BenchmarkSpec,
    system: SystemConfig,
    scale: Scale,
    tweak: impl FnOnce(GpuConfig) -> GpuConfig,
) -> SimStats {
    let cfg = tweak(system.build(scale));
    run_config(spec, cfg, 100)
}

/// Runs one benchmark under an explicit configuration with a footprint
/// percentage (Figures 6/25 scale footprints).
pub fn run_config(spec: &BenchmarkSpec, cfg: GpuConfig, footprint_percent: u64) -> SimStats {
    Runner::global().get(&Cell::bench_scaled(spec, cfg, footprint_percent))
}

/// The Figure 9 timeline cell set: one trace-capped microbenchmark cell
/// per sketched scenario (ideal hardware, the 32-PTW baseline, and
/// SoftWalker), labelled as the figure labels them. Shared between the
/// `fig09_timeline` binary and the cache tests that pin trace-cell
/// caching behaviour. All three cells share one footprint, so the
/// runner's page-table prebuild store builds exactly one image for the
/// whole set.
pub fn fig09_cells(scale: Scale) -> Vec<(Cell, &'static str)> {
    let (sms, warps, trace_cap, concurrent, accesses, footprint): (_, _, _, _, u32, u64) =
        match scale {
            // A burst of 512 concurrent single-lane walkers, each walking
            // fresh pages — deep enough to saturate 32 PTWs, the shape of
            // the paper's Figure 9 sketch.
            Scale::Full => (16, 32, 4096, 512, 4, 8 * 1024 * 1024 * 1024),
            Scale::Quick => (8, 16, 1024, 128, 4, 1024 * 1024 * 1024),
        };
    [
        (TranslationMode::IdealPtw, "ideal HW (enough PTWs)"),
        (TranslationMode::HardwarePtw, "baseline (32 PTWs)"),
        (
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            "SoftWalker",
        ),
    ]
    .into_iter()
    .map(|(mode, label)| {
        let cfg = GpuConfig {
            sms,
            max_warps: warps,
            mode,
            walk_trace_cap: trace_cap,
            ..GpuConfig::default()
        };
        (
            Cell::micro(cfg, concurrent, warps, accesses, footprint),
            label,
        )
    })
    .collect()
}

/// The Figure 9 cell set with the observability layer armed on every
/// cell: full walk-lifecycle spans, occupancy time-series and latency
/// histograms ride along in the schema-v3 artifacts, ready for Perfetto
/// export. Obs-enabled cells fingerprint differently from the plain
/// [`fig09_cells`], so the two sets cache side by side.
pub fn fig09_cells_observed(scale: Scale) -> Vec<(Cell, &'static str)> {
    fig09_cells(scale)
        .into_iter()
        .map(|(mut cell, label)| {
            cell.cfg.obs = swgpu_sim::ObsConfig {
                sample_interval: 256,
                ..swgpu_sim::ObsConfig::enabled()
            };
            (cell, label)
        })
        .collect()
}

/// The footprint multiplier used when running with 2 MB pages: the paper
/// expands the 10 scalable benchmarks beyond the 2 GB L2-TLB coverage
/// (Figures 6b/25). x32 pushes even the smallest scalable footprint
/// (192 MB) well past coverage (6 GB = 3072 pages vs 1024 TLB entries)
/// while staying cheap to map in the sparse simulated memory.
pub const LARGE_PAGE_FOOTPRINT_PERCENT: u64 = 3200;

/// Convenience: the 64 KB-page L2 TLB reach of the Table 3 GPU (1024
/// entries x 64 KB).
pub fn l2_tlb_reach_bytes(page: PageSize) -> u64 {
    1024 * page.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_workloads::by_abbr;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            SystemConfig::Baseline.label(),
            SystemConfig::Nha.label(),
            SystemConfig::FsHpt.label(),
            SystemConfig::SoftWalker.label(),
            SystemConfig::SwNoInTlb.label(),
            SystemConfig::Hybrid.label(),
            SystemConfig::Ideal.label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn build_applies_mode_deltas() {
        let sw = SystemConfig::SoftWalker.build(Scale::Quick);
        assert!(sw.mode.uses_software_walkers());
        let nha = SystemConfig::Nha.build(Scale::Quick);
        assert!(nha.ptw.nha);
        let scaled = SystemConfig::ScaledPtw {
            walkers: 256,
            scale_mshrs: true,
        }
        .build(Scale::Quick);
        assert_eq!(scaled.ptw.walkers, 256);
        assert_eq!(scaled.l2_mshr.entries, 1024);
    }

    #[test]
    fn quick_run_completes() {
        let spec = by_abbr("gemm").unwrap();
        let s = run(&spec, SystemConfig::Baseline, Scale::Quick);
        assert!(!s.timed_out);
        assert!(s.instructions > 0);
    }

    #[test]
    fn parse_jobs_flag_forms() {
        let parse = |args: &[&str]| parse_arg_list(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--jobs", "3"]).jobs, 3);
        assert_eq!(parse(&["--jobs=5", "--quick"]).jobs, 5);
        assert_eq!(parse(&["--jobs", "0"]).jobs, 1, "jobs is clamped to >= 1");
        let h = parse(&["--quick", "--csv", "--refresh", "--no-cache"]);
        assert_eq!(h.scale, Scale::Quick);
        assert!(h.csv && h.refresh && h.no_cache);
        assert_eq!(h.jobs, default_jobs());
    }

    #[test]
    fn cell_keys_are_stable_and_distinct() {
        let spec = by_abbr("bfs").unwrap();
        let cfg = SystemConfig::Baseline.build(Scale::Quick);
        let a = Cell::bench(&spec, cfg.clone());
        let b = Cell::bench(&spec, cfg.clone());
        assert_eq!(a.key(), b.key(), "same cell, same key");
        assert!(a.key().starts_with("bfs-fp100-"));
        let sw = Cell::bench(&spec, SystemConfig::SoftWalker.build(Scale::Quick));
        assert_ne!(a.key(), sw.key(), "different config, different key");
        let scaled = Cell::bench_scaled(&spec, cfg.clone(), 200);
        assert_ne!(a.key(), scaled.key(), "different footprint, different key");
        let micro = Cell::micro(cfg, 4, 4, 4, 1 << 20);
        assert!(micro.key().starts_with("micro-c4-w4-a4-f1048576-"));
    }

    fn test_cache_dir(tag: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-runner-cache")
            .join(format!("{tag}-{}", std::process::id()))
    }

    #[test]
    fn truncated_disk_artifact_is_quarantined_and_resimulated() {
        let dir = test_cache_dir("truncated");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = by_abbr("gemm").unwrap();
        let cell = Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick));
        let key = cell.key();
        // Seed the cache with a good artifact, then truncate it in place
        // (as if a pre-atomic-write process had died mid-write).
        let seeder = Runner::new(1, Some(dir.clone()), false);
        let stats = seeder.get(&cell);
        let path = RunArtifact::path_in(&dir, &key);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        // A fresh runner (cold memo) must treat it as a miss, quarantine
        // the file, re-simulate, and rewrite a readable artifact.
        let runner = Runner::new(1, Some(dir.clone()), false);
        let again = runner.get(&cell);
        assert_eq!(again.to_json(), stats.to_json());
        assert_eq!(runner.counters().quarantined, 1);
        assert_eq!(runner.counters().simulated, 1);
        assert_eq!(runner.counters().disk_hits, 0);
        assert!(path.with_extension("json.corrupt").exists());
        assert!(RunArtifact::load_from(&dir, &key).is_some(), "rewritten");
        // The quarantined copy does not shadow the fresh artifact.
        let reread = Runner::new(1, Some(dir.clone()), false);
        reread.get(&cell);
        assert_eq!(reread.counters().disk_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_cell_fails_without_aborting_the_batch() {
        let spec = by_abbr("gemm").unwrap();
        let good = Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick));
        let mut bad = good.clone();
        bad.workload = CellWorkload::Bench {
            abbr: "no-such-benchmark".into(),
            footprint_percent: 100,
        };
        let runner = Runner::new(2, None, false);
        let results = runner.run_cells_checked(&[good.clone(), bad, good.clone()]);
        assert!(results[0].is_ok());
        let err = results[1].as_ref().expect_err("bad cell must fail");
        assert!(err.message.contains("no-such-benchmark"), "{err}");
        assert!(results[2].is_ok(), "healthy cells still resolve");
        assert_eq!(runner.counters().failed, 1);
        assert_eq!(runner.counters().simulated, 1);
        // The runner stays usable after a caught panic (no poisoned locks).
        assert!(runner.get_checked(&good).is_ok());
    }

    #[test]
    fn panicked_cell_is_retried_once_and_manifest_records_it() {
        let dir = test_cache_dir("cell-retries");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = by_abbr("gemm").unwrap();
        let good = Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick));
        let mut bad = good.clone();
        bad.workload = CellWorkload::Bench {
            abbr: "still-missing".into(),
            footprint_percent: 100,
        };
        let runner = Runner::new(1, Some(dir.clone()), false);
        let results = runner.run_cells_checked(&[bad, good]);
        assert!(results[0].is_err(), "deterministic panic fails both tries");
        assert!(results[1].is_ok());
        // Exactly one retry was spent on the bad cell before it failed.
        assert_eq!(runner.counters().retried, 1);
        assert_eq!(runner.counters().failed, 1);
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(
            manifest.contains("\"cell_retries\":1"),
            "manifest must record the bad cell's retry: {manifest}"
        );
        assert!(
            manifest.contains("\"cell_retries\":0"),
            "manifest must record the clean cell's zero retries: {manifest}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_cells_panics_after_finishing_the_batch() {
        let spec = by_abbr("gemm").unwrap();
        let good = Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick));
        let mut bad = good.clone();
        bad.workload = CellWorkload::Bench {
            abbr: "missing".into(),
            footprint_percent: 100,
        };
        let runner = Runner::new(1, None, false);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.run_cells(&[bad, good.clone()])
        }));
        assert!(outcome.is_err(), "legacy API must still fail loudly");
        // ...but only after the healthy cell completed.
        assert_eq!(runner.counters().simulated, 1);
        assert_eq!(runner.counters().failed, 1);
    }

    #[test]
    fn sw_with_zero_capacity_is_sw_no_intlb() {
        let zero = SystemConfig::SwWithCapacity { in_tlb_max: 0 }.build(Scale::Quick);
        let none = SystemConfig::SwNoInTlb.build(Scale::Quick);
        assert_eq!(
            zero.mode,
            TranslationMode::SoftWalker { in_tlb_mshr: false }
        );
        assert_eq!(
            zero.fingerprint(),
            none.fingerprint(),
            "zero capacity must be the same design point as SwNoInTlb"
        );
        // Both validate (no silent clamp hiding an in_tlb_max of 0).
        zero.validate();
        // The non-zero path keeps the requested capacity with the
        // mechanism on.
        let eight = SystemConfig::SwWithCapacity { in_tlb_max: 8 }.build(Scale::Quick);
        assert_eq!(
            eight.mode,
            TranslationMode::SoftWalker { in_tlb_mshr: true }
        );
        assert_eq!(eight.in_tlb_max, 8);
        eight.validate();
    }

    #[test]
    fn repeated_corruption_quarantines_without_clobbering() {
        let dir = test_cache_dir("requarantine");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = by_abbr("gemm").unwrap();
        let cell = Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick));
        let key = cell.key();
        let path = RunArtifact::path_in(&dir, &key);
        for round in 0..3u32 {
            let runner = Runner::new(1, Some(dir.clone()), false);
            runner.get(&cell);
            // Corrupt the freshly written artifact for the next round.
            let full = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &full[..full.len() / 2 + round as usize]).unwrap();
        }
        let runner = Runner::new(1, Some(dir.clone()), false);
        runner.get(&cell);
        // All three corrupted generations survive side by side.
        assert!(path.with_extension("json.corrupt").exists());
        assert!(path.with_extension("json.corrupt.1").exists());
        assert!(path.with_extension("json.corrupt.2").exists());
        assert_eq!(runner.counters().quarantined, 1);
        assert_eq!(runner.counters().quarantine_collisions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cells_sharing_a_footprint_share_one_prebuild() {
        let runner = Runner::new(1, None, false);
        let cells: Vec<Cell> = fig09_cells(Scale::Quick)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        assert_eq!(cells.len(), 3);
        runner.run_cells(&cells);
        let c = runner.counters();
        assert_eq!(c.simulated, 3);
        assert_eq!(c.pt_prebuilds, 1, "one image for the shared footprint");
        assert_eq!(c.pt_prebuild_hits, 2, "the other two cells reuse it");
    }

    #[test]
    fn prebuilt_simulation_matches_fresh_simulation() {
        let (cell, _) = &fig09_cells(Scale::Quick)[1];
        let fresh = cell.simulate();
        let runner = Runner::new(1, None, false);
        let via_store = runner.get(cell);
        assert_eq!(fresh.to_json(), via_store.to_json());
        assert_eq!(
            fresh.walk_trace.records(),
            via_store.walk_trace.records(),
            "prebuilt path must be bit-identical, traces included"
        );
    }

    #[test]
    fn mm_cells_bypass_the_prebuild_store() {
        let spec = by_abbr("gemm").unwrap();
        let mut cfg = SystemConfig::Baseline.build(Scale::Quick);
        cfg.mm = swgpu_types::MmConfig::demand_paged();
        let cell = Cell::bench(&spec, cfg);
        let runner = Runner::new(1, None, false);
        let stats = runner.get(&cell);
        let c = runner.counters();
        assert_eq!(c.simulated, 1);
        assert_eq!(c.pt_prebuilds, 0, "demand paging never builds an image");
        assert_eq!(c.pt_prebuild_hits, 0);
        assert!(stats.mm.major_faults > 0, "first touches must fault");
        assert_eq!(stats.mm.major_faults, stats.mm.major_replays);
    }

    #[test]
    fn manifest_records_per_cell_span_drops() {
        let dir = test_cache_dir("spans-dropped");
        std::fs::create_dir_all(&dir).unwrap();
        // An obs-enabled cell with a one-span recorder: everything past
        // the first span is dropped, so the manifest must say so.
        let (mut cell, _) = fig09_cells_observed(Scale::Quick).swap_remove(1);
        cell.cfg.obs.span_capacity = 1;
        let runner = Runner::new(1, Some(dir.clone()), false);
        let stats = runner.run_cells(std::slice::from_ref(&cell));
        let report = stats[0].obs.as_deref().expect("obs report");
        let dropped = report.spans_dropped;
        assert!(dropped > 0, "the one-span recorder must overflow");
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(
            manifest.contains(&format!("\"spans_dropped\":{dropped}")),
            "manifest must carry the cell's drop count: {manifest}"
        );
        // The drops are also broken out per span kind, and the breakdown
        // sums back to the total.
        let by_kind = drops_by_kind_json(report);
        assert_ne!(by_kind, "{}", "dropped spans must attribute to kinds");
        assert_eq!(
            report.dropped_by_kind().map(|(_, n)| n).sum::<u64>(),
            dropped
        );
        assert!(
            manifest.contains(&format!("\"spans_dropped_by_kind\":{by_kind}")),
            "manifest must carry the per-kind breakdown: {manifest}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_cell_never_drops_and_is_not_cached() {
        let dir = test_cache_dir("stream-no-drop");
        let trace_dir = dir.join("traces");
        std::fs::create_dir_all(&dir).unwrap();
        // The same tiny staging buffer that overflows (and drops) above —
        // but with a stream sink attached it must flush instead of drop.
        let (mut cell, _) = fig09_cells_observed(Scale::Quick).swap_remove(1);
        cell.cfg.obs.span_capacity = 1;
        let runner =
            Runner::new(1, Some(dir.clone()), false).with_stream_dir(Some(trace_dir.clone()));
        let stats = runner.run_cells(std::slice::from_ref(&cell));
        let report = stats[0].obs.as_deref().expect("obs report");
        assert_eq!(report.spans_dropped, 0, "a streaming staging never drops");
        assert!(report.spans_flushed > 0, "the tiny buffer forced flushes");
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"spans_dropped\":0"), "{manifest}");
        // The SWTB file reconstructs the full run.
        let bytes = std::fs::read(swtb_path(&trace_dir, &cell.key())).unwrap();
        let trace = swgpu_obs::validate_trace(&bytes).expect("valid SWTB");
        assert_eq!(trace.fingerprint, cell.cfg.fingerprint());
        assert_eq!(trace.report.spans_dropped, 0);
        assert_eq!(
            trace.report.spans.len() as u64,
            report.spans_flushed + report.spans.len() as u64
        );
        // The in-memory report is incomplete (spans live in the file), so
        // no artifact is persisted and a fresh runner re-simulates.
        assert!(RunArtifact::load_from(&dir, &cell.key()).is_none());
        let again = Runner::new(1, Some(dir.clone()), false);
        again.get(&cell);
        assert_eq!(again.counters().simulated, 1);
        assert_eq!(again.counters().disk_hits, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_obs_cell_synthesizes_its_swtb_file() {
        let dir = test_cache_dir("stream-synth");
        let trace_dir = dir.join("traces");
        std::fs::create_dir_all(&dir).unwrap();
        // A roomy recorder: the run completes in memory, caches normally,
        // and a later streaming invocation synthesizes the file from the
        // cached report instead of re-simulating.
        let (cell, _) = fig09_cells_observed(Scale::Quick).swap_remove(0);
        let seeder = Runner::new(1, Some(dir.clone()), false);
        let stats = seeder.get(&cell);
        let streaming =
            Runner::new(1, Some(dir.clone()), false).with_stream_dir(Some(trace_dir.clone()));
        let again = streaming.get(&cell);
        assert_eq!(streaming.counters().disk_hits, 1);
        assert_eq!(streaming.counters().simulated, 0);
        assert_eq!(again.to_json(), stats.to_json());
        let bytes = std::fs::read(swtb_path(&trace_dir, &cell.key())).unwrap();
        let trace = swgpu_obs::validate_trace(&bytes).expect("valid SWTB");
        let report = stats.obs.as_deref().unwrap();
        assert_eq!(trace.report.spans, report.spans);
        assert_eq!(trace.report.counters, report.counters);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_bytes_are_identical_across_job_counts() {
        // `--jobs 1` vs `--jobs 4`: flush points depend on simulated
        // content only, never on scheduling, so each cell's SWTB file is
        // byte-identical across pool widths.
        let cells: Vec<Cell> = fig09_cells_observed(Scale::Quick)
            .into_iter()
            .map(|(mut c, _)| {
                c.cfg.obs.span_capacity = 64;
                c
            })
            .collect();
        let dirs = [test_cache_dir("stream-j1"), test_cache_dir("stream-j4")];
        for (jobs, dir) in [1usize, 4].into_iter().zip(&dirs) {
            std::fs::remove_dir_all(dir).ok();
            let runner = Runner::new(jobs, None, false).with_stream_dir(Some(dir.clone()));
            runner.run_cells(&cells);
        }
        for cell in &cells {
            let a = std::fs::read(swtb_path(&dirs[0], &cell.key())).unwrap();
            let b = std::fs::read(swtb_path(&dirs[1], &cell.key())).unwrap();
            assert!(!a.is_empty());
            assert_eq!(a, b, "SWTB bytes must not depend on --jobs");
        }
        for dir in &dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn tenant_mix_cell_caches_and_manifests_per_tenant_metrics() {
        use swgpu_sim::{SharingPolicy, TenantsConfig};
        let dir = test_cache_dir("tenant-mix");
        std::fs::create_dir_all(&dir).unwrap();
        let mut cfg = SystemConfig::SoftWalker.build(Scale::Quick);
        let mut layout = TenantsConfig::pair("gups", "2dc", cfg.sms);
        layout.policy = SharingPolicy::Shared {
            max_inflight_walks: 8,
        };
        cfg.tenants = Some(layout);
        let cell = Cell::tenant_mix(cfg, 10);
        assert!(cell.key().starts_with("mt-gups+2dc-fp10-"));
        let runner = Runner::new(1, Some(dir.clone()), false);
        let stats = runner.run_cells(std::slice::from_ref(&cell));
        assert_eq!(stats[0].tenants.len(), 2, "two tenant metric slices");
        assert_eq!(
            stats[0].tenants.iter().map(|t| t.walks).sum::<u64>(),
            stats[0].walk.translations,
            "per-tenant walk ledger must cover every completed walk"
        );
        // The tenant cell bypasses the prebuild store (it maps its own
        // per-tenant spaces) but still caches and manifests normally.
        assert_eq!(runner.counters().pt_prebuilds, 0);
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(
            manifest.contains("\"tenants\":[{\"asid\":0,\"ipc\":"),
            "manifest must carry the per-tenant metric slices: {manifest}"
        );
        assert!(manifest.contains("\"fairness\":"), "{manifest}");
        // A fresh runner serves the cell from disk with the tenant block
        // intact (the schema-7 artifact round-trips it).
        let again = Runner::new(1, Some(dir.clone()), false);
        let cached = again.get(&cell);
        assert_eq!(again.counters().disk_hits, 1);
        assert_eq!(again.counters().simulated, 0);
        assert_eq!(cached.to_json(), stats[0].to_json());
        assert_eq!(cached.tenants, stats[0].tenants);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_tenant_manifest_records_stay_uniform() {
        // Single-tenant cells keep the manifest schema uniform: an empty
        // tenant array and a fairness of exactly 1.0, never absent keys.
        let dir = test_cache_dir("single-tenant-manifest");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = by_abbr("gemm").unwrap();
        let cell = Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick));
        let runner = Runner::new(1, Some(dir.clone()), false);
        runner.run_cells(std::slice::from_ref(&cell));
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(
            manifest.contains("\"tenants\":[],\"fairness\":1.0000"),
            "single-tenant cells must record an empty tenant slice: {manifest}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runner_dedups_and_memoizes() {
        let spec = by_abbr("gemm").unwrap();
        let cell = Cell::bench(&spec, SystemConfig::Baseline.build(Scale::Quick));
        let runner = Runner::new(2, None, false);
        // Four copies of the same cell: one simulation, in-batch dedup.
        let out = runner.run_cells(&vec![cell.clone(); 4]);
        assert_eq!(out.len(), 4);
        assert_eq!(runner.counters().simulated, 1);
        assert_eq!(runner.counters().memo_hits, 0);
        // A repeat batch is all memo hits.
        runner.run_cells(std::slice::from_ref(&cell));
        assert_eq!(runner.counters().simulated, 1);
        assert_eq!(runner.counters().memo_hits, 1);
        assert_eq!(out[0].to_json(), runner.get(&cell).to_json());
    }
}
