//! Shared simulation runners for the figure harnesses.

use swgpu_sim::{GpuConfig, GpuSimulator, SimStats, TranslationMode};
use swgpu_types::PageSize;
use swgpu_workloads::{BenchmarkSpec, WorkloadParams};

/// Run sizing: the full Table 3 machine, or a reduced one for iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 46 SMs x 48 warps, 6 memory instructions per warp.
    Full,
    /// 16 SMs x 16 warps, 4 memory instructions per warp.
    Quick,
}

impl Scale {
    /// SMs simulated.
    pub fn sms(self) -> usize {
        match self {
            Scale::Full => 46,
            Scale::Quick => 16,
        }
    }

    /// Warps per SM.
    pub fn warps(self) -> usize {
        match self {
            Scale::Full => 48,
            Scale::Quick => 16,
        }
    }

    /// Memory instructions per warp.
    pub fn mem_instrs(self) -> u32 {
        match self {
            Scale::Full => 6,
            Scale::Quick => 4,
        }
    }
}

/// CLI options shared by every harness binary.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Run sizing.
    pub scale: Scale,
    /// Emit CSV after the table.
    pub csv: bool,
}

/// Parses the common `--quick` / `--csv` flags (unknown flags are
/// ignored so binaries can add their own).
pub fn parse_args() -> Harness {
    let args: Vec<String> = std::env::args().collect();
    Harness {
        scale: if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        },
        csv: args.iter().any(|a| a == "--csv"),
    }
}

/// One of the named system configurations the paper compares. Everything
/// is derived from the Table 3 default plus the mode-specific deltas the
/// evaluation section describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemConfig {
    /// 32 hardware PTWs (the normalization baseline).
    Baseline,
    /// Baseline plus NHA page-walk coalescing \[86\].
    Nha,
    /// Baseline walkers over the FS-HPT hashed page table \[32\].
    FsHpt,
    /// Hardware PTWs scaled to `n` (PWB and, when `scale_mshrs`, the L2
    /// MSHRs scale along — the paper's Figure 5 methodology).
    ScaledPtw {
        /// Walker count.
        walkers: usize,
        /// Scale the L2 TLB MSHRs proportionally.
        scale_mshrs: bool,
    },
    /// Baseline walkers with the L2 MSHR file scaled to `entries`
    /// (Figure 12's "MSHRs" series).
    ScaledMshr {
        /// Dedicated L2 TLB MSHR entries.
        entries: usize,
    },
    /// SoftWalker without the In-TLB MSHR.
    SwNoInTlb,
    /// Full SoftWalker (In-TLB MSHR capacity from the config, 1024
    /// default).
    SoftWalker,
    /// SoftWalker with a specific In-TLB capacity (Figure 24).
    SwWithCapacity {
        /// Maximum L2 TLB entries usable as MSHRs.
        in_tlb_max: usize,
    },
    /// The hybrid hardware+software design (§5.4).
    Hybrid,
    /// Ideal PTWs with ideal MSHRs.
    Ideal,
    /// Hardware walkers plus In-TLB MSHR (Figure 21's ablation).
    HwWithInTlb {
        /// Walker count.
        walkers: usize,
    },
}

impl SystemConfig {
    /// Short label used in table headers.
    pub fn label(self) -> String {
        match self {
            SystemConfig::Baseline => "Baseline".into(),
            SystemConfig::Nha => "NHA".into(),
            SystemConfig::FsHpt => "FS-HPT".into(),
            SystemConfig::ScaledPtw { walkers, .. } => format!("{walkers}PTW"),
            SystemConfig::ScaledMshr { entries } => format!("{entries}MSHR"),
            SystemConfig::SwNoInTlb => "SW w/o InTLB".into(),
            SystemConfig::SoftWalker => "SoftWalker".into(),
            SystemConfig::SwWithCapacity { in_tlb_max } => format!("SW({in_tlb_max})"),
            SystemConfig::Hybrid => "SW Hybrid".into(),
            SystemConfig::Ideal => "Ideal".into(),
            SystemConfig::HwWithInTlb { walkers } => format!("{walkers}PTW+InTLB"),
        }
    }

    /// Builds the simulator configuration for this system at `scale`.
    pub fn build(self, scale: Scale) -> GpuConfig {
        let mut cfg = GpuConfig {
            sms: scale.sms(),
            max_warps: scale.warps(),
            ..GpuConfig::default()
        };
        match self {
            SystemConfig::Baseline => {}
            SystemConfig::Nha => cfg.ptw.nha = true,
            SystemConfig::FsHpt => cfg.mode = TranslationMode::HashedPtw,
            SystemConfig::ScaledPtw {
                walkers,
                scale_mshrs,
            } => {
                cfg = cfg.with_ptws(walkers, scale_mshrs);
            }
            SystemConfig::ScaledMshr { entries } => {
                cfg.l2_mshr.entries = entries;
            }
            SystemConfig::SwNoInTlb => {
                cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: false };
            }
            SystemConfig::SoftWalker => {
                cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
            }
            SystemConfig::SwWithCapacity { in_tlb_max } => {
                cfg.mode = TranslationMode::SoftWalker {
                    in_tlb_mshr: in_tlb_max > 0,
                };
                cfg.in_tlb_max = in_tlb_max.max(1);
            }
            SystemConfig::Hybrid => {
                cfg.mode = TranslationMode::Hybrid { in_tlb_mshr: true };
            }
            SystemConfig::Ideal => {
                cfg = cfg.ideal();
            }
            SystemConfig::HwWithInTlb { walkers } => {
                cfg = cfg.with_ptws(walkers, false);
                cfg.force_in_tlb = true;
            }
        }
        cfg
    }
}

/// Runs one benchmark under one system configuration.
pub fn run(spec: &BenchmarkSpec, system: SystemConfig, scale: Scale) -> SimStats {
    run_with(spec, system, scale, |c| c)
}

/// Runs one benchmark under one system configuration, letting the caller
/// tweak the configuration (latency sweeps, page size, footprint scale).
pub fn run_with(
    spec: &BenchmarkSpec,
    system: SystemConfig,
    scale: Scale,
    tweak: impl FnOnce(GpuConfig) -> GpuConfig,
) -> SimStats {
    let cfg = tweak(system.build(scale));
    run_config(spec, cfg, 100)
}

/// Runs one benchmark under an explicit configuration with a footprint
/// percentage (Figures 6/25 scale footprints).
pub fn run_config(spec: &BenchmarkSpec, cfg: GpuConfig, footprint_percent: u64) -> SimStats {
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: match cfg.sms {
            0..=16 => Scale::Quick.mem_instrs(),
            _ => Scale::Full.mem_instrs(),
        },
        footprint_percent,
        page_size: cfg.page_size,
    });
    GpuSimulator::new(cfg, Box::new(wl)).run()
}

/// The footprint multiplier used when running with 2 MB pages: the paper
/// expands the 10 scalable benchmarks beyond the 2 GB L2-TLB coverage
/// (Figures 6b/25). x32 pushes even the smallest scalable footprint
/// (192 MB) well past coverage (6 GB = 3072 pages vs 1024 TLB entries)
/// while staying cheap to map in the sparse simulated memory.
pub const LARGE_PAGE_FOOTPRINT_PERCENT: u64 = 3200;

/// Convenience: the 64 KB-page L2 TLB reach of the Table 3 GPU (1024
/// entries x 64 KB).
pub fn l2_tlb_reach_bytes(page: PageSize) -> u64 {
    1024 * page.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_workloads::by_abbr;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            SystemConfig::Baseline.label(),
            SystemConfig::Nha.label(),
            SystemConfig::FsHpt.label(),
            SystemConfig::SoftWalker.label(),
            SystemConfig::SwNoInTlb.label(),
            SystemConfig::Hybrid.label(),
            SystemConfig::Ideal.label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn build_applies_mode_deltas() {
        let sw = SystemConfig::SoftWalker.build(Scale::Quick);
        assert!(sw.mode.uses_software_walkers());
        let nha = SystemConfig::Nha.build(Scale::Quick);
        assert!(nha.ptw.nha);
        let scaled = SystemConfig::ScaledPtw {
            walkers: 256,
            scale_mshrs: true,
        }
        .build(Scale::Quick);
        assert_eq!(scaled.ptw.walkers, 256);
        assert_eq!(scaled.l2_mshr.entries, 1024);
    }

    #[test]
    fn quick_run_completes() {
        let spec = by_abbr("gemm").unwrap();
        let s = run(&spec, SystemConfig::Baseline, Scale::Quick);
        assert!(!s.timed_out);
        assert!(s.instructions > 0);
    }
}
