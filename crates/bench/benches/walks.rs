//! Criterion microbenchmarks for page-table structures: radix map/walk,
//! hashed insert/lookup and the page walk cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swgpu_mem::PhysMem;
use swgpu_pt::{AddressSpace, FrameAllocator, HashedPageTable, PageWalkCache, RadixPageTable};
use swgpu_types::{Asid, PageSize, Pfn, PhysAddr, VirtAddr, Vpn};

fn bench_radix(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix");
    g.bench_function("map", |b| {
        let mut mem = PhysMem::new();
        let mut alloc = FrameAllocator::new(PageSize::Size64K);
        let mut pt = RadixPageTable::new(&mut alloc, &mut mem);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pt.map(Vpn::new(i), Pfn::new(i), &mut alloc, &mut mem);
        });
    });
    g.bench_function("translate", |b| {
        let mut mem = PhysMem::new();
        let mut space = AddressSpace::new(PageSize::Size64K, &mut mem);
        space.map_region(VirtAddr::new(0), 64 * 1024 * 1024, &mut mem);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(space.radix().translate(Vpn::new(i), &mem))
        });
    });
    g.finish();
}

fn bench_hashed(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashed");
    g.bench_function("lookup", |b| {
        let mut mem = PhysMem::new();
        let mut alloc = FrameAllocator::new(PageSize::Size64K);
        let mut hpt = HashedPageTable::new(&mut alloc, 4096);
        for i in 0..4096u64 {
            hpt.insert(Vpn::new(i), Pfn::new(i), &mut mem).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(hpt.lookup(Vpn::new(i), &mem))
        });
    });
    g.finish();
}

fn bench_pwc(c: &mut Criterion) {
    c.bench_function("pwc_lookup_fill", |b| {
        let mut pwc = PageWalkCache::new(32);
        pwc.set_root(Asid::ZERO, PhysAddr::new(0x1000));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pwc.fill(Asid::ZERO, Vpn::new(i), 1, PhysAddr::new(i << 12));
            black_box(pwc.lookup(Asid::ZERO, Vpn::new(i)))
        });
    });
}

criterion_group!(benches, bench_radix, bench_hashed, bench_pwc);
criterion_main!(benches);
