//! Criterion end-to-end benchmark: simulated-cycles-per-second of the
//! full GPU under the baseline and SoftWalker modes on a small contended
//! workload. Guards whole-simulator throughput regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use swgpu_sim::{GpuConfig, GpuSimulator, TranslationMode};
use swgpu_workloads::{by_abbr, WorkloadParams};

fn run_once(mode: TranslationMode) -> u64 {
    let mut cfg = GpuConfig::quick_test();
    cfg.sms = 4;
    cfg.max_warps = 8;
    cfg.mode = mode;
    let spec = by_abbr("xsb").expect("known benchmark");
    let wl = spec.build(WorkloadParams {
        sms: cfg.sms,
        warps_per_sm: cfg.max_warps,
        mem_instrs_per_warp: 2,
        footprint_percent: 100,
        page_size: cfg.page_size,
    });
    GpuSimulator::new(cfg, Box::new(wl)).run().cycles
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("baseline_xsb_small", |b| {
        b.iter(|| run_once(TranslationMode::HardwarePtw))
    });
    g.bench_function("softwalker_xsb_small", |b| {
        b.iter(|| run_once(TranslationMode::SoftWalker { in_tlb_mshr: true }))
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
