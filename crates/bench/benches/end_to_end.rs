//! Criterion end-to-end benchmark: the full GPU under the baseline and
//! SoftWalker modes on a small contended workload, resolved through the
//! experiment runner's two-level cache (memo + disk artifacts), exactly
//! the way the figure binaries resolve their cells. Guards both
//! whole-simulator throughput and the cache's resolution overhead: on a
//! warm cache every iteration after the first is a memo/disk hit, and
//! the counters report printed at the end shows the split.
//!
//! A trace-capped SoftWalker variant exercises the schema-v2 walk-trace
//! payload path, which is cache-served like any other cell.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use swgpu_bench::runner::default_cache_dir;
use swgpu_bench::{Cell, Runner, Scale, SystemConfig};
use swgpu_sim::GpuConfig;
use swgpu_workloads::by_abbr;

/// One process-wide runner backed by the shared disk cache, so repeat
/// `cargo bench` invocations disk-hit instead of re-simulating.
fn runner() -> &'static Runner {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    RUNNER.get_or_init(|| Runner::new(1, Some(default_cache_dir()), false))
}

fn small_cell(sys: SystemConfig, trace_cap: usize) -> Cell {
    let spec = by_abbr("xsb").expect("known benchmark");
    let cfg = GpuConfig {
        sms: 4,
        max_warps: 8,
        walk_trace_cap: trace_cap,
        ..sys.build(Scale::Quick)
    };
    Cell::bench(&spec, cfg)
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("baseline_xsb_small", |b| {
        let cell = small_cell(SystemConfig::Baseline, 0);
        b.iter(|| runner().get(&cell).cycles)
    });
    g.bench_function("softwalker_xsb_small", |b| {
        let cell = small_cell(SystemConfig::SoftWalker, 0);
        b.iter(|| runner().get(&cell).cycles)
    });
    g.bench_function("softwalker_xsb_traced", |b| {
        let cell = small_cell(SystemConfig::SoftWalker, 256);
        b.iter(|| runner().get(&cell).walk_trace.records().len())
    });
    g.finish();
    let counters = runner().counters();
    eprintln!(
        "[end_to_end] cache split: {} simulated, {} memo hits, {} disk hits",
        counters.simulated, counters.memo_hits, counters.disk_hits
    );
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
