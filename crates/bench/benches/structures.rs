//! Criterion microbenchmarks for the core translation data structures:
//! TLB arrays, MSHR files, the In-TLB MSHR path, SoftPWB and the Request
//! Distributor. These guard the simulator's per-cycle costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use softwalker::{DistributorPolicy, RequestDistributor, SoftPwb, SwWalkRequest};
use swgpu_tlb::{L2TlbComplex, Tlb, TlbConfig, TlbMshr, TlbMshrConfig};
use swgpu_types::{Asid, Cycle, DelayQueue, Pfn, PhysAddr, Vpn};

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.bench_function("lookup_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::l2());
        for i in 0..1024u64 {
            tlb.fill(Asid::ZERO, Vpn::new(i), Pfn::new(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1024;
            black_box(tlb.lookup(Asid::ZERO, Vpn::new(i)))
        });
    });
    g.bench_function("lookup_miss", |b| {
        let mut tlb = Tlb::new(TlbConfig::l2());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tlb.lookup(Asid::ZERO, Vpn::new(i)))
        });
    });
    g.bench_function("fill_evict", |b| {
        let mut tlb = Tlb::new(TlbConfig::l2());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tlb.fill(Asid::ZERO, Vpn::new(i), Pfn::new(i)))
        });
    });
    g.finish();
}

fn bench_mshr(c: &mut Criterion) {
    let mut g = c.benchmark_group("mshr");
    g.bench_function("allocate_resolve", |b| {
        let mut m: TlbMshr<u32> = TlbMshr::new(TlbMshrConfig::l2());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.allocate(Asid::ZERO, Vpn::new(i), 0);
            black_box(m.resolve(Asid::ZERO, Vpn::new(i)))
        });
    });
    g.bench_function("in_tlb_overflow_cycle", |b| {
        let mut l2: L2TlbComplex<u32> = L2TlbComplex::new(
            TlbConfig::l2(),
            TlbMshrConfig {
                entries: 1,
                max_merges: 1,
            },
            1024,
        );
        l2.access(Asid::ZERO, Vpn::new(u64::MAX), 0); // pin the single dedicated MSHR
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            l2.access(Asid::ZERO, Vpn::new(i), 1);
            black_box(l2.complete_walk(Asid::ZERO, Vpn::new(i), Pfn::new(i)))
        });
    });
    g.finish();
}

fn bench_softpwb(c: &mut Criterion) {
    c.bench_function("softpwb_insert_take_complete", |b| {
        let mut pwb = SoftPwb::new(32);
        let req = SwWalkRequest::new(Vpn::new(1), Cycle::ZERO, Cycle::ZERO, 4, PhysAddr::new(0));
        b.iter(|| {
            let slot = pwb.insert(req, Cycle::ZERO).unwrap();
            let taken = pwb.take_valid().unwrap();
            pwb.complete(taken.0);
            black_box(slot)
        });
    });
}

fn bench_distributor(c: &mut Criterion) {
    c.bench_function("distributor_select_fill", |b| {
        let mut d = RequestDistributor::new(DistributorPolicy::RoundRobin, 46, 32);
        b.iter(|| {
            let sm = d.select_core(&[]).unwrap();
            d.on_fill(sm);
            black_box(sm)
        });
    });
}

fn bench_delay_queue(c: &mut Criterion) {
    c.bench_function("delay_queue_push_pop", |b| {
        let mut q: DelayQueue<u64> = DelayQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(Cycle::new(t), t);
            black_box(q.pop_ready(Cycle::new(t)))
        });
    });
}

criterion_group!(
    benches,
    bench_tlb,
    bench_mshr,
    bench_softpwb,
    bench_distributor,
    bench_delay_queue
);
criterion_main!(benches);
