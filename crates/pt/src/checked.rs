//! Fault-injected page-table entry reads.
//!
//! Every walker (hardware PTW pool and software PW Warps) decodes
//! page-table entries out of [`PhysMem`] once the timed memory access for
//! the entry completes. Routing that decode through [`read_pte_checked`]
//! gives the fault-injection layer a single choke point for *transient
//! PTE corruption*: with some probability the reader observes an invalid
//! entry instead of the real bytes. The corruption is transient — the
//! backing store is untouched — so re-reading the same address on retry
//! observes the true entry, which is exactly the recovery the watchdog /
//! bounded-retry machinery implements.
//!
//! Injected corruption always yields [`Pte::from_raw(0)`] (invalid),
//! never a garbage-but-valid pointer, so the page walk cache can never be
//! poisoned by an injected fault (PWC fills only happen on valid PDEs).

use swgpu_mem::PhysMem;
use swgpu_types::{Cycle, FaultInjector, PhysAddr, Pte, PteReadEvent, Vpn};

/// Reads the page-table entry at `addr`, optionally through a fault
/// injector. Returns the observed entry plus whether this particular read
/// was corrupted by injection.
///
/// With `inj == None` (or a zero corruption rate) this is exactly
/// `Pte::from_raw(mem.read_u64(addr))`.
pub fn read_pte_checked(
    mem: &PhysMem,
    addr: PhysAddr,
    inj: Option<(&mut FaultInjector, f64)>,
) -> (Pte, bool) {
    let real = Pte::from_raw(mem.read_u64(addr));
    if let Some((inj, rate)) = inj {
        // Only corrupt reads that would have succeeded: injecting on an
        // already-invalid entry would be indistinguishable from a real
        // fault and would break the conservation accounting.
        if real.is_valid() && inj.fire(rate) {
            inj.stats.injected_pte_corruptions += 1;
            return (Pte::from_raw(0), true);
        }
    }
    (real, false)
}

/// [`read_pte_checked`] with an optional observation sink: when `sink` is
/// `Some`, a cycle-stamped [`PteReadEvent`] recording the walk's VPN and
/// the radix `level` being decoded is appended before the read.
///
/// This is the per-PT-level choke point of the observability layer: both
/// walker implementations (the hardware PTW pool and the software PW
/// Warps) route every level's decode through here, so arming their sinks
/// yields a complete per-level event stream for a walk without touching
/// timing — the push is pure bookkeeping and the read is byte-identical
/// to the unobserved path. With `sink == None` this *is*
/// `read_pte_checked`.
pub fn read_pte_observed(
    mem: &PhysMem,
    addr: PhysAddr,
    inj: Option<(&mut FaultInjector, f64)>,
    vpn: Vpn,
    level: u8,
    now: Cycle,
    sink: Option<&mut Vec<PteReadEvent>>,
) -> (Pte, bool) {
    if let Some(sink) = sink {
        sink.push(PteReadEvent {
            vpn,
            level,
            at: now,
        });
    }
    read_pte_checked(mem, addr, inj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_types::fault::site;

    #[test]
    fn uninjected_read_is_transparent() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let (pte, corrupted) = read_pte_checked(&mem, PhysAddr::new(0x1000), None);
        assert!(pte.is_valid());
        assert!(!corrupted);
    }

    #[test]
    fn full_rate_corrupts_valid_entries_only() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let mut inj = FaultInjector::new(1, site::PTW_PTE);
        let (pte, corrupted) = read_pte_checked(&mem, PhysAddr::new(0x1000), Some((&mut inj, 1.0)));
        assert!(!pte.is_valid());
        assert!(corrupted);
        assert_eq!(inj.stats.injected_pte_corruptions, 1);

        // A genuinely-invalid entry is never "corrupted".
        let (pte, corrupted) = read_pte_checked(&mem, PhysAddr::new(0x2000), Some((&mut inj, 1.0)));
        assert!(!pte.is_valid());
        assert!(!corrupted);
        assert_eq!(inj.stats.injected_pte_corruptions, 1);
    }

    #[test]
    fn retry_after_corruption_sees_real_entry() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let mut inj = FaultInjector::new(1, site::PTW_PTE);
        let (_, corrupted) = read_pte_checked(&mem, PhysAddr::new(0x1000), Some((&mut inj, 1.0)));
        assert!(corrupted);
        let (pte, _) = read_pte_checked(&mem, PhysAddr::new(0x1000), None);
        assert!(pte.is_valid(), "corruption must be transient");
    }

    #[test]
    fn observed_read_records_event_and_matches_unobserved() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let mut sink = Vec::new();
        let (pte, corrupted) = read_pte_observed(
            &mem,
            PhysAddr::new(0x1000),
            None,
            Vpn::new(42),
            2,
            Cycle::new(7),
            Some(&mut sink),
        );
        let (plain, _) = read_pte_checked(&mem, PhysAddr::new(0x1000), None);
        assert_eq!(pte, plain, "observation must not perturb the read");
        assert!(!corrupted);
        assert_eq!(
            sink,
            vec![PteReadEvent {
                vpn: Vpn::new(42),
                level: 2,
                at: Cycle::new(7),
            }]
        );
    }
}
