//! Fault-injected page-table entry reads.
//!
//! Every walker (hardware PTW pool and software PW Warps) decodes
//! page-table entries out of [`PhysMem`] once the timed memory access for
//! the entry completes. Routing that decode through [`read_pte_checked`]
//! gives the fault-injection layer a single choke point for *transient
//! PTE corruption*: with some probability the reader observes a corrupted
//! entry instead of the real bytes. The corruption is transient — the
//! backing store is untouched — so re-reading the same address on retry
//! observes the true entry, which is exactly the recovery the watchdog /
//! bounded-retry machinery implements.
//!
//! Two corruption modes exist:
//!
//! * **Invalidating** (`pte_corrupt_rate`): the read observes
//!   [`Pte::from_raw(0)`] — trivially noticed, since the walk simply
//!   faults at that level.
//! * **ValidButWrong** (`pte_silent_corrupt_rate`): the read observes an
//!   entry with PFN bits flipped and the valid bit intact. Undetected,
//!   this would silently translate to the wrong frame. The decode
//!   verifies the entry's reserved parity nibble ([`Pte::parity_ok`]);
//!   the injector always flips two adjacent bits inside one PFN nibble,
//!   a pattern the XOR-fold parity is guaranteed to catch, so every
//!   injection is detected and handled exactly like an invalidating
//!   corruption (retry / escalate). The page walk cache can therefore
//!   never be poisoned by an injected fault — PWC fills only happen on
//!   valid, parity-consistent PDEs.

use swgpu_mem::PhysMem;
use swgpu_types::{Cycle, FaultInjector, PhysAddr, Pte, PteReadEvent, Vpn};

/// Fault-injection context for one PTE read: the site's injector plus the
/// invalidating and silent (valid-but-wrong) corruption rates.
pub type PteInjection<'a> = (&'a mut FaultInjector, f64, f64);

/// Flips two adjacent bits inside one nibble of the PFN field, leaving
/// the valid bit and the stored parity nibble untouched. The nibble is
/// chosen by the injector's stream; the fold of the flip mask is always
/// `0b11 != 0`, so [`Pte::parity_ok`] is guaranteed to fail on the result.
fn flip_pfn_bits(real: Pte, draw: u64) -> Pte {
    // The PFN field is 47 bits at shift 1; nibbles 0..12 keep the 2-bit
    // mask inside the field (4 * 11 + 1 = 45 < 47).
    let nibble = draw % 12;
    let mask = 0b11u64 << (4 * nibble);
    Pte::from_raw(real.raw() ^ (mask << 1))
}

/// Reads the page-table entry at `addr`, optionally through a fault
/// injector. Returns the observed entry plus whether this particular read
/// was corrupted by injection.
///
/// With `inj == None` (or zero corruption rates) this is exactly
/// `Pte::from_raw(mem.read_u64(addr))`.
pub fn read_pte_checked(
    mem: &PhysMem,
    addr: PhysAddr,
    inj: Option<PteInjection<'_>>,
) -> (Pte, bool) {
    let real = Pte::from_raw(mem.read_u64(addr));
    if let Some((inj, rate, silent_rate)) = inj {
        // Only corrupt reads that would have succeeded: injecting on an
        // already-invalid entry would be indistinguishable from a real
        // fault and would break the conservation accounting.
        if real.is_valid() && inj.fire(rate) {
            inj.stats.injected_pte_corruptions += 1;
            return (Pte::from_raw(0), true);
        }
        if real.is_valid() && inj.fire(silent_rate) {
            inj.stats.injected_silent_corruptions += 1;
            let observed = flip_pfn_bits(real, inj.draw_u64());
            debug_assert!(observed.is_valid(), "silent corruption must stay valid");
            if observed.parity_ok() {
                // Unreachable by construction (the flip pattern is
                // parity-covered), but if it ever were, the wrong
                // translation would be consumed — exactly the blind spot
                // the detected/injected invariant exists to expose.
                return (observed, true);
            }
            inj.stats.detected_silent_corruptions += 1;
            // Detected at decode: the reader discards the entry and
            // treats the read as faulted, feeding the same watchdog /
            // retry / escalation machinery as an invalidating corruption.
            return (Pte::from_raw(0), true);
        }
    }
    (real, false)
}

/// [`read_pte_checked`] with an optional observation sink: when `sink` is
/// `Some`, a cycle-stamped [`PteReadEvent`] recording the walk's VPN and
/// the radix `level` being decoded is appended before the read.
///
/// This is the per-PT-level choke point of the observability layer: both
/// walker implementations (the hardware PTW pool and the software PW
/// Warps) route every level's decode through here, so arming their sinks
/// yields a complete per-level event stream for a walk without touching
/// timing — the push is pure bookkeeping and the read is byte-identical
/// to the unobserved path. With `sink == None` this *is*
/// `read_pte_checked`.
pub fn read_pte_observed(
    mem: &PhysMem,
    addr: PhysAddr,
    inj: Option<PteInjection<'_>>,
    vpn: Vpn,
    level: u8,
    now: Cycle,
    sink: Option<&mut Vec<PteReadEvent>>,
) -> (Pte, bool) {
    if let Some(sink) = sink {
        sink.push(PteReadEvent {
            vpn,
            level,
            at: now,
        });
    }
    read_pte_checked(mem, addr, inj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_types::fault::site;

    #[test]
    fn uninjected_read_is_transparent() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let (pte, corrupted) = read_pte_checked(&mem, PhysAddr::new(0x1000), None);
        assert!(pte.is_valid());
        assert!(!corrupted);
    }

    #[test]
    fn full_rate_corrupts_valid_entries_only() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let mut inj = FaultInjector::new(1, site::PTW_PTE);
        let (pte, corrupted) =
            read_pte_checked(&mem, PhysAddr::new(0x1000), Some((&mut inj, 1.0, 0.0)));
        assert!(!pte.is_valid());
        assert!(corrupted);
        assert_eq!(inj.stats.injected_pte_corruptions, 1);

        // A genuinely-invalid entry is never "corrupted".
        let (pte, corrupted) =
            read_pte_checked(&mem, PhysAddr::new(0x2000), Some((&mut inj, 1.0, 0.0)));
        assert!(!pte.is_valid());
        assert!(!corrupted);
        assert_eq!(inj.stats.injected_pte_corruptions, 1);
    }

    #[test]
    fn retry_after_corruption_sees_real_entry() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let mut inj = FaultInjector::new(1, site::PTW_PTE);
        let (_, corrupted) =
            read_pte_checked(&mem, PhysAddr::new(0x1000), Some((&mut inj, 1.0, 0.0)));
        assert!(corrupted);
        let (pte, _) = read_pte_checked(&mem, PhysAddr::new(0x1000), None);
        assert!(pte.is_valid(), "corruption must be transient");
    }

    #[test]
    fn silent_corruption_is_always_detected() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(0x5a5a)).raw(),
        );
        let mut inj = FaultInjector::new(9, site::PTW_PTE);
        for _ in 0..256 {
            let (pte, corrupted) =
                read_pte_checked(&mem, PhysAddr::new(0x1000), Some((&mut inj, 0.0, 1.0)));
            assert!(corrupted);
            assert!(!pte.is_valid(), "detected corruption reads as faulted");
        }
        assert_eq!(inj.stats.injected_silent_corruptions, 256);
        assert_eq!(
            inj.stats.detected_silent_corruptions, 256,
            "parity must catch every injected flip"
        );
    }

    #[test]
    fn silent_corruption_skips_invalid_entries() {
        let mem = PhysMem::new();
        let mut inj = FaultInjector::new(9, site::PTW_PTE);
        let (pte, corrupted) =
            read_pte_checked(&mem, PhysAddr::new(0x3000), Some((&mut inj, 0.0, 1.0)));
        assert!(!pte.is_valid());
        assert!(!corrupted);
        assert_eq!(inj.stats.injected_silent_corruptions, 0);
    }

    #[test]
    fn zero_silent_rate_draws_nothing() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let mut a = FaultInjector::new(7, site::PTW_PTE);
        let mut b = FaultInjector::new(7, site::PTW_PTE);
        // Drawing with silent_rate == 0 must leave the stream exactly
        // where the two-rate-free path would: pre-silent-mode armed runs
        // reproduce bit-identically.
        for _ in 0..64 {
            read_pte_checked(&mem, PhysAddr::new(0x1000), Some((&mut a, 0.5, 0.0)));
            let real = Pte::from_raw(mem.read_u64(PhysAddr::new(0x1000)));
            if real.is_valid() {
                b.fire(0.5);
            }
        }
        assert_eq!(
            a.fire(0.5),
            b.fire(0.5),
            "silent-rate-0 path perturbed the RNG stream"
        );
    }

    #[test]
    fn observed_read_records_event_and_matches_unobserved() {
        let mut mem = PhysMem::new();
        mem.write_u64(
            PhysAddr::new(0x1000),
            Pte::valid(swgpu_types::Pfn::new(5)).raw(),
        );
        let mut sink = Vec::new();
        let (pte, corrupted) = read_pte_observed(
            &mem,
            PhysAddr::new(0x1000),
            None,
            Vpn::new(42),
            2,
            Cycle::new(7),
            Some(&mut sink),
        );
        let (plain, _) = read_pte_checked(&mem, PhysAddr::new(0x1000), None);
        assert_eq!(pte, plain, "observation must not perturb the read");
        assert!(!corrupted);
        assert_eq!(
            sink,
            vec![PteReadEvent {
                vpn: Vpn::new(42),
                level: 2,
                at: Cycle::new(7),
            }]
        );
    }
}
