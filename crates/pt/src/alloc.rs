//! Physical frame allocation for page tables and mapped data.

use std::collections::BTreeSet;
use swgpu_types::{PageSize, Pfn, PhysAddr};

/// Size of one radix page-table node: 512 entries x 8 bytes.
pub(crate) const TABLE_BYTES: u64 = 4096;

/// A bump allocator over the simulated physical address space.
///
/// Two regions grow from a base address: page-table nodes (4 KiB each) and
/// data frames (one page each). Data frames can optionally be handed out in
/// a scrambled order so that virtually-contiguous pages land on physically
/// scattered frames, defeating any accidental physical locality — GPUs
/// allocate frames from free lists, not contiguously.
///
/// # Example
///
/// ```
/// use swgpu_pt::FrameAllocator;
/// use swgpu_types::PageSize;
///
/// let mut alloc = FrameAllocator::new(PageSize::Size64K);
/// let t0 = alloc.alloc_table();
/// let t1 = alloc.alloc_table();
/// assert_ne!(t0, t1);
/// let f = alloc.alloc_data_frame();
/// assert!(alloc.frame_base(f).value() >= FrameAllocator::DATA_REGION_BASE);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    page_size: PageSize,
    /// Base of this allocator's table-region slice (the whole region for a
    /// single-tenant allocator).
    table_base: u64,
    next_table: u64,
    /// First data-frame index of this allocator's slice.
    data_index_base: u64,
    next_data_index: u64,
    scramble: bool,
    data_frames_capacity: u64,
    retired: BTreeSet<u64>,
}

impl FrameAllocator {
    /// Physical base of the page-table-node region.
    pub const TABLE_REGION_BASE: u64 = 0x0000_1000_0000; // 256 MiB in

    /// Physical base of the data-frame region.
    pub const DATA_REGION_BASE: u64 = 0x0010_0000_0000; // 64 GiB in

    /// Capacity of the data region in bytes (1 TiB — far more than any
    /// benchmark footprint; the region is sparse anyway).
    pub const DATA_REGION_BYTES: u64 = 1 << 40;

    /// Creates an allocator for the given data-page granularity with
    /// sequential frame assignment.
    pub fn new(page_size: PageSize) -> Self {
        Self {
            page_size,
            table_base: Self::TABLE_REGION_BASE,
            next_table: 0,
            data_index_base: 0,
            next_data_index: 0,
            scramble: false,
            data_frames_capacity: Self::DATA_REGION_BYTES / page_size.bytes(),
            retired: BTreeSet::new(),
        }
    }

    /// Creates an allocator that scrambles data-frame order (a fixed
    /// bijective permutation, so allocation stays deterministic).
    pub fn new_scrambled(page_size: PageSize) -> Self {
        Self {
            scramble: true,
            ..Self::new(page_size)
        }
    }

    /// Restricts this allocator to tenant `tenant`'s slice of the physical
    /// regions: both the table region and the data region are divided into
    /// `tenants` equal, disjoint slices, so concurrent address spaces can
    /// never hand out overlapping frames. `tenant_slice(0, 1)` is the
    /// identity — a single-tenant allocator is byte-for-byte the plain
    /// [`FrameAllocator::new`] one.
    ///
    /// # Panics
    ///
    /// Panics if `tenant >= tenants` or `tenants == 0`.
    pub fn tenant_slice(mut self, tenant: usize, tenants: usize) -> Self {
        assert!(tenants > 0, "at least one tenant");
        assert!(tenant < tenants, "tenant index out of range");
        let table_span = (Self::DATA_REGION_BASE - Self::TABLE_REGION_BASE) / tenants as u64;
        let table_span = table_span - table_span % TABLE_BYTES;
        self.table_base = Self::TABLE_REGION_BASE + tenant as u64 * table_span;
        let frames = Self::DATA_REGION_BYTES / self.page_size.bytes();
        let per_tenant = frames / tenants as u64;
        self.data_index_base = tenant as u64 * per_tenant;
        self.data_frames_capacity = per_tenant;
        self
    }

    /// The data-page granularity this allocator serves.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Allocates a zeroed 4 KiB page-table node, returning its base
    /// physical address.
    pub fn alloc_table(&mut self) -> PhysAddr {
        let addr = self.table_base + self.next_table * TABLE_BYTES;
        self.next_table += 1;
        PhysAddr::new(addr)
    }

    /// Number of page-table nodes allocated so far.
    pub fn tables_allocated(&self) -> u64 {
        self.next_table
    }

    /// Allocates a physically contiguous region of `bytes` bytes (rounded
    /// up to whole 4 KiB nodes) in the table region — used by the hashed
    /// page table, whose buckets are indexed by address arithmetic.
    pub fn alloc_table_region(&mut self, bytes: u64) -> PhysAddr {
        let nodes = bytes.div_ceil(TABLE_BYTES).max(1);
        let base = self.table_base + self.next_table * TABLE_BYTES;
        self.next_table += nodes;
        PhysAddr::new(base)
    }

    /// Allocates one data frame, or `None` if the region is exhausted —
    /// the signal the demand-paging memory manager turns into an eviction
    /// instead of a crash mid-run.
    pub fn try_alloc_data_frame(&mut self) -> Option<Pfn> {
        loop {
            if self.next_data_index >= self.data_frames_capacity {
                return None;
            }
            let idx = if self.scramble {
                self.permute(self.next_data_index)
            } else {
                self.next_data_index
            };
            self.next_data_index += 1;
            let base_pfn = Self::DATA_REGION_BASE >> self.page_size.offset_bits();
            let pfn = Pfn::new(base_pfn + self.data_index_base + idx);
            if !self.retired.contains(&pfn.value()) {
                return Some(pfn);
            }
            // Bad frame: skip it and keep walking the region.
        }
    }

    /// Marks a frame as bad: it will never be handed out again, even if
    /// freed back by the memory manager. Models hardware page retirement
    /// after repeated data-path failures.
    pub fn retire_frame(&mut self, pfn: Pfn) {
        self.retired.insert(pfn.value());
    }

    /// Whether a frame has been retired to the bad-frame list.
    pub fn is_retired(&self, pfn: Pfn) -> bool {
        self.retired.contains(&pfn.value())
    }

    /// Number of frames on the bad-frame list.
    pub fn retired_frames(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Allocates one data frame (legacy prebuilt path).
    ///
    /// # Panics
    ///
    /// Panics if the data region is exhausted (practically unreachable
    /// when prebuilding: benchmark footprints are far below 1 TiB).
    pub fn alloc_data_frame(&mut self) -> Pfn {
        self.try_alloc_data_frame()
            .expect("data frame region exhausted")
    }

    /// Number of data frames allocated so far.
    pub fn data_frames_allocated(&self) -> u64 {
        self.next_data_index
    }

    /// Base physical address of an allocated frame.
    pub fn frame_base(&self, pfn: Pfn) -> PhysAddr {
        self.page_size.base_of_pfn(pfn)
    }

    /// A fixed bijective permutation of the frame index space (multiply by
    /// an odd constant modulo a power of two is invertible).
    fn permute(&self, idx: u64) -> u64 {
        let modulus = self.data_frames_capacity.next_power_of_two();
        let mut x = idx;
        // A couple of rounds of multiply-xor keeps neighbours apart.
        loop {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) & (modulus - 1);
            x ^= x >> 7;
            x &= modulus - 1;
            if x < self.data_frames_capacity {
                return x;
            }
            // Cycle-walk until we land inside the capacity.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_4k_apart() {
        let mut a = FrameAllocator::new(PageSize::Size64K);
        let t0 = a.alloc_table();
        let t1 = a.alloc_table();
        assert_eq!(t1.value() - t0.value(), TABLE_BYTES);
        assert_eq!(a.tables_allocated(), 2);
    }

    #[test]
    fn sequential_data_frames_are_contiguous() {
        let mut a = FrameAllocator::new(PageSize::Size64K);
        let f0 = a.alloc_data_frame();
        let f1 = a.alloc_data_frame();
        assert_eq!(f1.value(), f0.value() + 1);
    }

    #[test]
    fn scrambled_frames_are_unique_and_in_region() {
        let mut a = FrameAllocator::new(PageSize::Size64K);
        let mut s = FrameAllocator::new_scrambled(PageSize::Size64K);
        let mut seen = std::collections::HashSet::new();
        let mut differs = false;
        for _ in 0..1000 {
            let seq = a.alloc_data_frame();
            let scr = s.alloc_data_frame();
            assert!(seen.insert(scr), "scrambled allocator reused a frame");
            if seq != scr {
                differs = true;
            }
            let base = s.frame_base(scr).value();
            assert!(base >= FrameAllocator::DATA_REGION_BASE);
            assert!(base < FrameAllocator::DATA_REGION_BASE + (1 << 41));
        }
        assert!(differs, "scrambling had no effect");
    }

    #[test]
    fn try_alloc_returns_none_on_exhaustion() {
        let mut a = FrameAllocator::new(PageSize::Size2M);
        let capacity = FrameAllocator::DATA_REGION_BYTES / PageSize::Size2M.bytes();
        for _ in 0..capacity {
            assert!(a.try_alloc_data_frame().is_some());
        }
        assert!(a.try_alloc_data_frame().is_none());
        assert_eq!(a.data_frames_allocated(), capacity);
    }

    #[test]
    fn retired_frames_are_never_reissued() {
        let mut a = FrameAllocator::new(PageSize::Size64K);
        let f0 = a.alloc_data_frame();
        let mut b = FrameAllocator::new(PageSize::Size64K);
        b.retire_frame(f0);
        assert!(b.is_retired(f0));
        assert_eq!(b.retired_frames(), 1);
        let got = b.alloc_data_frame();
        assert_ne!(got, f0, "allocator reissued a retired frame");
        // The very next sequential frame is handed out instead.
        assert_eq!(got.value(), f0.value() + 1);
    }

    #[test]
    fn tenant_slices_are_disjoint_and_identity_for_single_tenant() {
        // Identity: tenant 0 of 1 behaves exactly like a plain allocator.
        let mut plain = FrameAllocator::new(PageSize::Size64K);
        let mut sliced = FrameAllocator::new(PageSize::Size64K).tenant_slice(0, 1);
        for _ in 0..16 {
            assert_eq!(plain.alloc_table(), sliced.alloc_table());
            assert_eq!(plain.alloc_data_frame(), sliced.alloc_data_frame());
        }
        // Disjointness: two tenants of four never hand out the same frame
        // or table node.
        let mut t0 = FrameAllocator::new_scrambled(PageSize::Size64K).tenant_slice(0, 4);
        let mut t1 = FrameAllocator::new_scrambled(PageSize::Size64K).tenant_slice(1, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(t0.alloc_data_frame()), "t0 frame reuse");
            assert!(seen.insert(t1.alloc_data_frame()), "cross-tenant frame");
            assert!(
                seen.insert(Pfn::new(t0.alloc_table().value())),
                "t0 table reuse"
            );
            assert!(
                seen.insert(Pfn::new(t1.alloc_table().value())),
                "cross-tenant table"
            );
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut a = FrameAllocator::new(PageSize::Size2M);
        let table_top = a.alloc_table().value() + TABLE_BYTES * 1_000_000;
        assert!(table_top < FrameAllocator::DATA_REGION_BASE);
    }
}
