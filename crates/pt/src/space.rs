//! A GPU address space: page size + frame allocator + radix page table.

use crate::alloc::FrameAllocator;
use crate::hashed::HashedPageTable;
use crate::radix::RadixPageTable;
use std::collections::BTreeMap;
use swgpu_mem::PhysMem;
use swgpu_types::{PageSize, Pfn, PhysAddr, VirtAddr, Vpn};

/// One process's GPU address space.
///
/// Owns the frame allocator and the radix page table, tracks the installed
/// mappings, and can derive an equivalent [`HashedPageTable`] for FS-HPT
/// experiments so that both translation structures describe the *same*
/// address space.
///
/// # Example
///
/// ```
/// use swgpu_mem::PhysMem;
/// use swgpu_pt::AddressSpace;
/// use swgpu_types::{PageSize, VirtAddr};
///
/// let mut mem = PhysMem::new();
/// let mut space = AddressSpace::new(PageSize::Size64K, &mut mem);
/// space.map_region(VirtAddr::new(0x10_0000), 256 * 1024, &mut mem);
/// assert_eq!(space.mapped_pages(), 4);
/// assert!(space.translate(VirtAddr::new(0x10_1234), &mem).is_some());
/// assert!(space.translate(VirtAddr::new(0x90_0000), &mem).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_size: PageSize,
    alloc: FrameAllocator,
    radix: RadixPageTable,
    mappings: BTreeMap<Vpn, Pfn>,
}

impl AddressSpace {
    /// Creates an empty address space with sequential frame allocation.
    pub fn new(page_size: PageSize, mem: &mut PhysMem) -> Self {
        let mut alloc = FrameAllocator::new(page_size);
        let radix = RadixPageTable::new(&mut alloc, mem);
        Self {
            page_size,
            alloc,
            radix,
            mappings: BTreeMap::new(),
        }
    }

    /// Creates an address space whose data frames are handed out in a
    /// scrambled (but deterministic) order, like a real free-list
    /// allocator.
    pub fn new_scrambled(page_size: PageSize, mem: &mut PhysMem) -> Self {
        let mut alloc = FrameAllocator::new_scrambled(page_size);
        let radix = RadixPageTable::new(&mut alloc, mem);
        Self {
            page_size,
            alloc,
            radix,
            mappings: BTreeMap::new(),
        }
    }

    /// Creates tenant `tenant`-of-`tenants`'s address space: its frame
    /// allocator is confined to that tenant's disjoint slice of the table
    /// and data regions (see [`FrameAllocator::tenant_slice`]), so
    /// concurrent tenants build non-overlapping page tables and can never
    /// share a data frame by accident. `new_tenant(ps, 0, 1, scrambled, m)`
    /// is byte-identical to the single-tenant constructors.
    pub fn new_tenant(
        page_size: PageSize,
        tenant: usize,
        tenants: usize,
        scrambled: bool,
        mem: &mut PhysMem,
    ) -> Self {
        let base = if scrambled {
            FrameAllocator::new_scrambled(page_size)
        } else {
            FrameAllocator::new(page_size)
        };
        let mut alloc = base.tenant_slice(tenant, tenants);
        let radix = RadixPageTable::new(&mut alloc, mem);
        Self {
            page_size,
            alloc,
            radix,
            mappings: BTreeMap::new(),
        }
    }

    /// Translation granularity of this space.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// The radix page table (for walkers that need the root address).
    pub fn radix(&self) -> &RadixPageTable {
        &self.radix
    }

    /// Number of pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.mappings.len()
    }

    /// Total mapped bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.mappings.len() as u64 * self.page_size.bytes()
    }

    /// Maps the page containing `vpn` to a fresh frame (idempotent: an
    /// existing mapping is returned unchanged).
    pub fn map_page(&mut self, vpn: Vpn, mem: &mut PhysMem) -> Pfn {
        if let Some(&pfn) = self.mappings.get(&vpn) {
            return pfn;
        }
        let pfn = self.alloc.alloc_data_frame();
        self.radix.map(vpn, pfn, &mut self.alloc, mem);
        self.mappings.insert(vpn, pfn);
        pfn
    }

    /// Like [`AddressSpace::map_page`] but returns `None` (instead of
    /// panicking) when the frame region is exhausted, so a demand-paging
    /// caller can evict and retry with a recycled frame.
    pub fn try_map_page(&mut self, vpn: Vpn, mem: &mut PhysMem) -> Option<Pfn> {
        if let Some(&pfn) = self.mappings.get(&vpn) {
            return Some(pfn);
        }
        let pfn = self.alloc.try_alloc_data_frame()?;
        self.radix.map(vpn, pfn, &mut self.alloc, mem);
        self.mappings.insert(vpn, pfn);
        Some(pfn)
    }

    /// Maps `vpn` to a specific (recycled) frame — the memory manager's
    /// path for reusing a frame freed by eviction.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is already mapped: silently remapping would leak
    /// the old frame.
    pub fn map_page_to(&mut self, vpn: Vpn, pfn: Pfn, mem: &mut PhysMem) {
        assert!(
            !self.mappings.contains_key(&vpn),
            "map_page_to over an existing mapping"
        );
        self.radix.map(vpn, pfn, &mut self.alloc, mem);
        self.mappings.insert(vpn, pfn);
    }

    /// Removes the mapping for `vpn`, returning the freed frame (`None`
    /// if the page was not mapped). Only the leaf PTE is zeroed;
    /// intermediate nodes survive for remapping.
    pub fn unmap_page(&mut self, vpn: Vpn, mem: &mut PhysMem) -> Option<Pfn> {
        let pfn = self.mappings.remove(&vpn)?;
        let was_mapped = self.radix.unmap(vpn, mem);
        debug_assert!(was_mapped, "mappings and radix table out of sync");
        Some(pfn)
    }

    /// The frame backing `vpn`, if mapped (no memory traffic).
    pub fn pfn_of(&self, vpn: Vpn) -> Option<Pfn> {
        self.mappings.get(&vpn).copied()
    }

    /// Maps every page overlapping `[va_start, va_start + bytes)`.
    pub fn map_region(&mut self, va_start: VirtAddr, bytes: u64, mem: &mut PhysMem) {
        if bytes == 0 {
            return;
        }
        let first = self.page_size.vpn_of(va_start).value();
        let last = self
            .page_size
            .vpn_of(VirtAddr::new(va_start.value() + bytes - 1))
            .value();
        for v in first..=last {
            self.map_page(Vpn::new(v), mem);
        }
    }

    /// Functional translation of a full virtual address.
    pub fn translate(&self, va: VirtAddr, mem: &PhysMem) -> Option<PhysAddr> {
        let vpn = self.page_size.vpn_of(va);
        self.radix
            .translate(vpn, mem)
            .map(|pfn| self.page_size.translate(va, pfn))
    }

    /// The installed mappings, in VPN order.
    pub fn mappings(&self) -> impl Iterator<Item = (Vpn, Pfn)> + '_ {
        self.mappings.iter().map(|(&v, &p)| (v, p))
    }

    /// Builds a hashed page table describing the same mappings, sized at
    /// roughly 2x occupancy as FS-HPT prescribes.
    ///
    /// # Panics
    ///
    /// Panics if insertion fails, which cannot happen at 2x sizing.
    pub fn build_hashed(&mut self, mem: &mut PhysMem) -> HashedPageTable {
        let buckets = ((self.mappings.len() as u64 * 2)
            .div_ceil(crate::hashed::SLOTS_PER_BUCKET as u64))
        .max(16);
        let mut hpt = HashedPageTable::new(&mut self.alloc, buckets);
        for (&vpn, &pfn) in &self.mappings {
            hpt.insert(vpn, pfn, mem)
                .expect("2x-sized hashed table cannot fill up");
        }
        hpt
    }

    /// Number of 4 KiB page-table nodes backing the radix table — the
    /// simulated page-table footprint.
    pub fn table_nodes(&self) -> u64 {
        self.alloc.tables_allocated()
    }

    /// Retires a frame to the allocator's bad-frame list so it is never
    /// handed out again — the memory manager's page-retirement path for
    /// frames that repeatedly fail the data checksum.
    pub fn retire_frame(&mut self, pfn: Pfn) {
        self.alloc.retire_frame(pfn);
    }

    /// Number of frames on the allocator's bad-frame list.
    pub fn retired_frames(&self) -> u64 {
        self.alloc.retired_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_page_is_idempotent() {
        let mut mem = PhysMem::new();
        let mut s = AddressSpace::new(PageSize::Size64K, &mut mem);
        let a = s.map_page(Vpn::new(7), &mut mem);
        let b = s.map_page(Vpn::new(7), &mut mem);
        assert_eq!(a, b);
        assert_eq!(s.mapped_pages(), 1);
    }

    #[test]
    fn region_mapping_covers_partial_pages() {
        let mut mem = PhysMem::new();
        let mut s = AddressSpace::new(PageSize::Size64K, &mut mem);
        // 1 byte in page 0 + crossing into page 1.
        s.map_region(VirtAddr::new(0xFFFF), 2, &mut mem);
        assert_eq!(s.mapped_pages(), 2);
        s.map_region(VirtAddr::new(0), 0, &mut mem);
        assert_eq!(s.mapped_pages(), 2, "zero-byte region maps nothing");
    }

    #[test]
    fn translate_round_trips_offsets() {
        let mut mem = PhysMem::new();
        let mut s = AddressSpace::new(PageSize::Size64K, &mut mem);
        s.map_region(VirtAddr::new(0x20_0000), 64 * 1024, &mut mem);
        let va = VirtAddr::new(0x20_1234);
        let pa = s.translate(va, &mem).unwrap();
        assert_eq!(pa.value() & 0xFFFF, 0x1234, "page offset preserved");
    }

    #[test]
    fn unmap_frees_and_remap_recycles() {
        let mut mem = PhysMem::new();
        let mut s = AddressSpace::new(PageSize::Size64K, &mut mem);
        let pfn = s.map_page(Vpn::new(3), &mut mem);
        assert_eq!(s.pfn_of(Vpn::new(3)), Some(pfn));
        assert_eq!(s.unmap_page(Vpn::new(3), &mut mem), Some(pfn));
        assert_eq!(s.pfn_of(Vpn::new(3)), None);
        assert_eq!(s.mapped_pages(), 0);
        assert_eq!(s.unmap_page(Vpn::new(3), &mut mem), None);
        // Recycle the freed frame explicitly.
        s.map_page_to(Vpn::new(7), pfn, &mut mem);
        assert_eq!(s.pfn_of(Vpn::new(7)), Some(pfn));
        assert!(s.translate(VirtAddr::new(7 * 64 * 1024), &mem).is_some());
    }

    #[test]
    fn hashed_table_matches_radix() {
        let mut mem = PhysMem::new();
        let mut s = AddressSpace::new_scrambled(PageSize::Size64K, &mut mem);
        s.map_region(VirtAddr::new(0), 4 * 1024 * 1024, &mut mem);
        let hpt = s.build_hashed(&mut mem);
        for (vpn, pfn) in s.mappings() {
            assert_eq!(hpt.lookup(vpn, &mem).0, Some(pfn));
        }
    }

    #[test]
    fn footprint_accounts_page_size() {
        let mut mem = PhysMem::new();
        let mut s = AddressSpace::new(PageSize::Size2M, &mut mem);
        s.map_region(VirtAddr::new(0), 5 * 1024 * 1024, &mut mem);
        assert_eq!(s.mapped_pages(), 3);
        assert_eq!(s.footprint_bytes(), 6 * 1024 * 1024);
    }
}
