//! The simulated driver/OS memory manager: demand paging, Mosaic-style
//! transparent coalescing, and LRU-ish eviction under a device-memory
//! budget.
//!
//! The manager owns the *policy* side of demand paging; the simulator's
//! fault path owns the timing. When a translation misses the page table
//! (a **major fault**), the driver-replay machinery calls
//! [`MemoryManager::service_fault`] after the configured fill latency:
//! the manager populates the page (recycling an evicted frame when one is
//! free), updates its coalescing bookkeeping, and reports which resident
//! pages it had to evict so the caller can shoot down their TLB entries.
//!
//! Coalescing follows Mosaic's transparent scheme: when every base page
//! of a 64 KiB or 2 MiB aligned run is populated *and* the backing frames
//! happen to be physically contiguous and aligned, the run is promoted to
//! a single large mapping — no data moves and no PTE changes, so every
//! translation is identical before and after; only the bookkeeping (and
//! the `mm_coalesces_*` counters) change. Evicting any constituent page
//! *splinters* the large mapping back into base pages first.
//!
//! Eviction victim selection is an [`MmEvictPolicy`] axis: fill-order
//! FIFO (the historical default — the page faulted in longest ago goes
//! first, no per-access bookkeeping) or a clock second-chance LRU
//! approximation (each translation delivery sets a reference bit; the
//! evictor skips and clears referenced pages until it finds an
//! unreferenced victim).
//!
//! When the simulator arms data-path fault injection, the manager also
//! owns the *integrity* side: every fresh fill stamps the frame's base
//! word with a deterministic checksum ([`swgpu_types::data_checksum`]
//! keyed by VPN and a per-fill generation), verified when an SM consumes
//! the page. A frame that repeatedly fails verification is retired to the
//! allocator's bad-frame list (hardware page retirement) and the page
//! re-filled elsewhere.

use crate::space::AddressSpace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use swgpu_mem::PhysMem;
use swgpu_types::{
    data_checksum, MmConfig, MmEvictPolicy, MmFaultStats, MmStats, PageSize, Pfn, Vpn,
};

/// Result of servicing one major fault: the frame the page landed in plus
/// every page evicted to make room (whose stale TLB entries the caller
/// must invalidate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillOutcome {
    /// Frame now backing the faulted page.
    pub pfn: Pfn,
    /// Pages unmapped to make room, in eviction order.
    pub evicted: Vec<Vpn>,
    /// Checksum generation stamped into the frame (0 when data-path fault
    /// checking is off, or when the page was already resident).
    pub generation: u64,
}

/// Verdict of an end-to-end data check when a translation delivers a
/// frame to a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameCheck {
    /// Checksum matches the stamp (or checking is disabled).
    Ok,
    /// The frame is no longer backing this page — a stale translation
    /// survived a (dropped) TLB shootdown.
    Stale,
    /// The frame backs this page but its payload checksum is wrong:
    /// silent data-path corruption, now detected.
    Corrupt,
}

/// What a fresh fill stamped into a frame, kept so later verification
/// can recompute the expected checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameStamp {
    vpn: Vpn,
    generation: u64,
}

/// Tracks population of aligned base-page runs of one large-page span.
#[derive(Debug, Clone, Default)]
struct GroupTracker {
    /// Base pages per group; 0 disables the tracker (base page size is
    /// already at or above the large-page size).
    span: u64,
    /// Populated-page count per group id (`vpn / span`).
    populated: BTreeMap<u64, u64>,
    /// Groups currently promoted to a large mapping.
    coalesced: BTreeSet<u64>,
}

impl GroupTracker {
    fn new(large_bytes: u64, base: PageSize) -> Self {
        let span = if base.bytes() < large_bytes {
            large_bytes / base.bytes()
        } else {
            0
        };
        Self {
            span,
            ..Self::default()
        }
    }

    /// Records a populated page; returns the group id if the group just
    /// became fully populated.
    fn note_populated(&mut self, vpn: Vpn) -> Option<u64> {
        if self.span == 0 {
            return None;
        }
        let g = vpn.value() / self.span;
        let count = self.populated.entry(g).or_insert(0);
        *count += 1;
        (*count == self.span).then_some(g)
    }

    /// Records an eviction; returns true if the page's group had been
    /// coalesced (the caller counts the splinter).
    fn note_evicted(&mut self, vpn: Vpn) -> bool {
        if self.span == 0 {
            return false;
        }
        let g = vpn.value() / self.span;
        if let Some(count) = self.populated.get_mut(&g) {
            *count -= 1;
            if *count == 0 {
                self.populated.remove(&g);
            }
        }
        self.coalesced.remove(&g)
    }

    /// Whether the group's frames form a contiguous, span-aligned run —
    /// the physical precondition for a transparent (no-copy) promotion.
    fn contiguous_aligned(&self, g: u64, space: &AddressSpace) -> bool {
        let base_vpn = g * self.span;
        let Some(base_pfn) = space.pfn_of(Vpn::new(base_vpn)) else {
            return false;
        };
        if base_pfn.value() % self.span != 0 {
            return false;
        }
        (1..self.span)
            .all(|i| space.pfn_of(Vpn::new(base_vpn + i)) == Some(Pfn::new(base_pfn.value() + i)))
    }
}

/// The demand-paging memory manager. See the module docs for the model.
///
/// # Example
///
/// ```
/// use swgpu_mem::PhysMem;
/// use swgpu_pt::{AddressSpace, MemoryManager};
/// use swgpu_types::{MmConfig, PageSize, Vpn};
///
/// let mut mem = PhysMem::new();
/// let mut space = AddressSpace::new(PageSize::Size64K, &mut mem);
/// let mut mm = MemoryManager::new(MmConfig::demand_paged(), space.page_size());
/// let out = mm.service_fault(Vpn::new(7), &mut space, &mut mem);
/// assert!(out.evicted.is_empty());
/// assert_eq!(space.pfn_of(Vpn::new(7)), Some(out.pfn));
/// assert_eq!(mm.stats().major_faults, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryManager {
    cfg: MmConfig,
    base: PageSize,
    /// Resident pages in fill order (front = oldest = next victim).
    resident: VecDeque<Vpn>,
    /// Frames freed by eviction, recycled lowest-first for determinism.
    free_frames: BTreeSet<u64>,
    group_64k: GroupTracker,
    group_2m: GroupTracker,
    stats: MmStats,
    /// Clock reference bits (LRU policy only; untouched under FIFO so
    /// FIFO-configured runs stay cycle-identical to earlier builds).
    ref_bits: BTreeSet<Vpn>,
    /// Checksum stamps by frame number. Empty unless data-path fault
    /// checking is armed.
    stamps: BTreeMap<u64, FrameStamp>,
    /// Verification failures per frame; at `verify_threshold` the frame
    /// is retired.
    fail_counts: BTreeMap<u64, u32>,
    /// `Some(threshold)` arms checksum stamping/verification.
    verify_threshold: Option<u32>,
    /// Monotonic fill-generation counter (advances only while armed).
    generation: u64,
    fault_stats: MmFaultStats,
}

impl MemoryManager {
    /// Creates a manager for an address space using `base` pages.
    pub fn new(cfg: MmConfig, base: PageSize) -> Self {
        Self {
            cfg,
            base,
            resident: VecDeque::new(),
            free_frames: BTreeSet::new(),
            group_64k: GroupTracker::new(64 * 1024, base),
            group_2m: GroupTracker::new(2 * 1024 * 1024, base),
            stats: MmStats::default(),
            ref_bits: BTreeSet::new(),
            stamps: BTreeMap::new(),
            fail_counts: BTreeMap::new(),
            verify_threshold: None,
            generation: 0,
            fault_stats: MmFaultStats::default(),
        }
    }

    /// Arms end-to-end data checking: fills stamp a checksum, deliveries
    /// verify it, and a frame failing `threshold` times is retired.
    pub fn set_data_fault_checking(&mut self, threshold: u32) {
        self.verify_threshold = Some(threshold.max(1));
    }

    /// Accumulated counters.
    pub fn stats(&self) -> MmStats {
        self.stats
    }

    /// Data-path fault counters accumulated inside the manager (scrub
    /// detections, retirements); the simulator merges these into the
    /// run-level `mm_fault_*` stats at finalize.
    pub fn fault_stats(&self) -> MmFaultStats {
        self.fault_stats
    }

    /// Mutable counters — the simulator credits `major_replays` here when
    /// a replayed fill translation completes end to end.
    pub fn stats_mut(&mut self) -> &mut MmStats {
        &mut self.stats
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Currently-coalesced (64 KiB, 2 MiB) group counts.
    pub fn coalesced_groups(&self) -> (usize, usize) {
        (
            self.group_64k.coalesced.len(),
            self.group_2m.coalesced.len(),
        )
    }

    /// Services a major fault for `vpn`: evicts past the device-memory
    /// budget if needed, populates the page (recycled frame first), and
    /// updates coalescing state. Idempotent — a page that is already
    /// resident (e.g. filled while this fault was queued) is returned
    /// as-is without counting a second major fault.
    ///
    /// # Panics
    ///
    /// Panics if the frame region is exhausted while nothing is resident
    /// to evict (an impossible configuration: the region holds 1 TiB).
    pub fn service_fault(
        &mut self,
        vpn: Vpn,
        space: &mut AddressSpace,
        mem: &mut PhysMem,
    ) -> FillOutcome {
        if let Some(pfn) = space.pfn_of(vpn) {
            let generation = self
                .stamps
                .get(&pfn.value())
                .map_or(0, |stamp| stamp.generation);
            return FillOutcome {
                pfn,
                evicted: Vec::new(),
                generation,
            };
        }

        let mut evicted = Vec::new();
        if self.cfg.resident_page_budget > 0 {
            while self.resident.len() as u64 >= self.cfg.resident_page_budget {
                match self.evict_one(space, mem) {
                    Some(v) => evicted.push(v),
                    None => break,
                }
            }
        }

        let pfn = loop {
            if let Some(&raw) = self.free_frames.iter().next() {
                self.free_frames.remove(&raw);
                let pfn = Pfn::new(raw);
                space.map_page_to(vpn, pfn, mem);
                break pfn;
            }
            if let Some(pfn) = space.try_map_page(vpn, mem) {
                break pfn;
            }
            // Region exhausted: free a frame by evicting the oldest page.
            let victim = self
                .evict_one(space, mem)
                .expect("frame region exhausted with no resident pages");
            evicted.push(victim);
        };

        self.resident.push_back(vpn);
        self.stats.major_faults += 1;
        self.stats.resident_peak = self.stats.resident_peak.max(self.resident.len() as u64);

        if let Some(g) = self.group_64k.note_populated(vpn) {
            if self.cfg.coalesce && self.group_64k.contiguous_aligned(g, space) {
                self.group_64k.coalesced.insert(g);
                self.stats.coalesces_64k += 1;
            }
        }
        if let Some(g) = self.group_2m.note_populated(vpn) {
            if self.cfg.coalesce && self.group_2m.contiguous_aligned(g, space) {
                self.group_2m.coalesced.insert(g);
                self.stats.coalesces_2m += 1;
            }
        }

        let mut generation = 0;
        if self.verify_threshold.is_some() {
            self.generation += 1;
            generation = self.generation;
            mem.write_u64(
                self.base.base_of_pfn(pfn),
                data_checksum(vpn.value(), generation),
            );
            self.stamps
                .insert(pfn.value(), FrameStamp { vpn, generation });
        }

        FillOutcome {
            pfn,
            evicted,
            generation,
        }
    }

    /// Records a translation delivery for `vpn` — sets the clock
    /// reference bit under the LRU policy; a no-op under FIFO.
    pub fn touch(&mut self, vpn: Vpn) {
        if self.cfg.evict == MmEvictPolicy::Lru {
            self.ref_bits.insert(vpn);
        }
    }

    /// End-to-end data check when a translation delivers `(vpn, pfn)` to
    /// a consumer. Always [`FrameCheck::Ok`] while checking is unarmed.
    pub fn verify(&self, vpn: Vpn, pfn: Pfn, mem: &PhysMem) -> FrameCheck {
        if self.verify_threshold.is_none() {
            return FrameCheck::Ok;
        }
        let Some(stamp) = self.stamps.get(&pfn.value()) else {
            return FrameCheck::Stale;
        };
        if stamp.vpn != vpn {
            return FrameCheck::Stale;
        }
        if mem.read_u64(self.base.base_of_pfn(pfn)) != data_checksum(vpn.value(), stamp.generation)
        {
            return FrameCheck::Corrupt;
        }
        FrameCheck::Ok
    }

    /// Garbles the payload of a frame in place — the injector's corrupt-
    /// fill primitive. The mask is forced odd so at least one bit flips.
    pub fn corrupt_frame(&self, pfn: Pfn, garble: u64, mem: &mut PhysMem) {
        mem.xor_u64(self.base.base_of_pfn(pfn), garble | 1);
    }

    /// Pulls a corrupt page out of service: unmaps it, splinters its
    /// coalesced groups, and disposes of the frame — retired to the
    /// allocator's bad-frame list once it has failed
    /// `verify_threshold` checks (returns `true`), otherwise recycled
    /// through the free list (returns `false`). The caller owns TLB
    /// shootdown and the re-fill.
    pub fn quarantine_page(
        &mut self,
        vpn: Vpn,
        space: &mut AddressSpace,
        mem: &mut PhysMem,
    ) -> bool {
        let Some(pfn) = space.unmap_page(vpn, mem) else {
            return false;
        };
        self.resident.retain(|&v| v != vpn);
        self.ref_bits.remove(&vpn);
        if self.group_64k.note_evicted(vpn) {
            self.stats.splinters += 1;
        }
        if self.group_2m.note_evicted(vpn) {
            self.stats.splinters += 1;
        }
        self.stamps.remove(&pfn.value());
        self.dispose_failed_frame(pfn, space)
    }

    /// Bumps a frame's failure count and either retires it (at the
    /// threshold; returns `true`) or recycles it through the free list.
    fn dispose_failed_frame(&mut self, pfn: Pfn, space: &mut AddressSpace) -> bool {
        let count = self.fail_counts.entry(pfn.value()).or_insert(0);
        *count += 1;
        let threshold = self.verify_threshold.unwrap_or(u32::MAX);
        if *count >= threshold {
            space.retire_frame(pfn);
            self.fault_stats.frames_retired += 1;
            true
        } else {
            self.free_frames.insert(pfn.value());
            false
        }
    }

    /// Evicts one resident page per the configured policy: splinters its
    /// coalesced groups, zeroes its leaf PTE and recycles its frame.
    /// Returns the evicted VPN (the caller owns TLB shootdown), or
    /// `None` if nothing is resident.
    fn evict_one(&mut self, space: &mut AddressSpace, mem: &mut PhysMem) -> Option<Vpn> {
        let vpn = match self.cfg.evict {
            MmEvictPolicy::Fifo => self.resident.pop_front()?,
            MmEvictPolicy::Lru => {
                // Clock second-chance, bounded by one full lap so an
                // all-referenced set still yields a victim (the oldest).
                let mut lap = self.resident.len();
                loop {
                    let v = self.resident.pop_front()?;
                    if lap > 0 && self.ref_bits.remove(&v) {
                        self.resident.push_back(v);
                        lap -= 1;
                    } else {
                        self.ref_bits.remove(&v);
                        break v;
                    }
                }
            }
        };
        let pfn = space
            .unmap_page(vpn, mem)
            .expect("resident page missing from the address space");
        self.stats.evictions += 1;
        if self.group_64k.note_evicted(vpn) {
            self.stats.splinters += 1;
        }
        if self.group_2m.note_evicted(vpn) {
            self.stats.splinters += 1;
        }
        // Eviction scrub: a corrupt fill that was never consumed still
        // has to be *detected* (corruptions injected == detected), and a
        // flaky frame still accrues toward retirement.
        if self.verify_threshold.is_some() {
            let verdict = self.verify(vpn, pfn, mem);
            self.stamps.remove(&pfn.value());
            if verdict == FrameCheck::Corrupt {
                self.fault_stats.detected_corruptions += 1;
                if self.dispose_failed_frame(pfn, space) {
                    self.fault_stats.retired_fills += 1;
                } else {
                    self.fault_stats.recovered_fills += 1;
                }
                return Some(vpn);
            }
        }
        self.free_frames.insert(pfn.value());
        Some(vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cfg: MmConfig, base: PageSize) -> (MemoryManager, AddressSpace, PhysMem) {
        let mut mem = PhysMem::new();
        let space = AddressSpace::new(base, &mut mem);
        let mm = MemoryManager::new(cfg, base);
        (mm, space, mem)
    }

    #[test]
    fn first_touch_counts_one_major_fault_per_page() {
        let (mut mm, mut space, mut mem) = setup(MmConfig::demand_paged(), PageSize::Size4K);
        for v in 0..10u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
            // A second fault on the same page is absorbed.
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        assert_eq!(mm.stats().major_faults, 10);
        assert_eq!(mm.resident_pages(), 10);
        assert_eq!(space.mapped_pages(), 10);
        assert_eq!(mm.stats().resident_peak, 10);
    }

    #[test]
    fn sequential_4k_run_coalesces_to_64k_and_2m() {
        let (mut mm, mut space, mut mem) = setup(MmConfig::demand_paged(), PageSize::Size4K);
        // 512 sequential 4K pages = one 2M group = 32 64K groups.
        for v in 0..512u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        assert_eq!(mm.stats().coalesces_64k, 32);
        assert_eq!(mm.stats().coalesces_2m, 1);
        assert_eq!(mm.coalesced_groups(), (32, 1));
    }

    #[test]
    fn coalescing_never_changes_translations() {
        let (mut mm, mut space, mut mem) = setup(MmConfig::demand_paged(), PageSize::Size4K);
        for v in 0..15u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        let before: Vec<_> = (0..15u64)
            .map(|v| space.pfn_of(Vpn::new(v)).unwrap())
            .collect();
        // Page 15 completes the first 64K group.
        mm.service_fault(Vpn::new(15), &mut space, &mut mem);
        assert_eq!(mm.stats().coalesces_64k, 1);
        let after: Vec<_> = (0..15u64)
            .map(|v| space.pfn_of(Vpn::new(v)).unwrap())
            .collect();
        assert_eq!(before, after, "promotion moved data");
    }

    #[test]
    fn scattered_frames_do_not_coalesce() {
        let mut mem = PhysMem::new();
        let mut space = AddressSpace::new_scrambled(PageSize::Size4K, &mut mem);
        let mut mm = MemoryManager::new(MmConfig::demand_paged(), PageSize::Size4K);
        for v in 0..512u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        assert_eq!(
            mm.stats().coalesces_64k + mm.stats().coalesces_2m,
            0,
            "scrambled frames are not contiguous"
        );
    }

    #[test]
    fn budget_evicts_fifo_and_recycles_frames() {
        let cfg = MmConfig {
            resident_page_budget: 4,
            ..MmConfig::demand_paged()
        };
        let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size64K);
        for v in 0..4u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        let frame0 = space.pfn_of(Vpn::new(0)).unwrap();
        let out = mm.service_fault(Vpn::new(4), &mut space, &mut mem);
        assert_eq!(out.evicted, vec![Vpn::new(0)], "oldest page evicted");
        assert_eq!(out.pfn, frame0, "freed frame recycled");
        assert_eq!(space.pfn_of(Vpn::new(0)), None);
        assert_eq!(mm.resident_pages(), 4);
        assert_eq!(mm.stats().evictions, 1);
    }

    #[test]
    fn eviction_splinters_coalesced_group() {
        let cfg = MmConfig {
            resident_page_budget: 16,
            ..MmConfig::demand_paged()
        };
        let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size4K);
        for v in 0..16u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        assert_eq!(mm.coalesced_groups(), (1, 0));
        // Page 16 exceeds the budget: page 0 is evicted, splintering the
        // coalesced 64K group.
        let out = mm.service_fault(Vpn::new(16), &mut space, &mut mem);
        assert_eq!(out.evicted, vec![Vpn::new(0)]);
        assert_eq!(mm.stats().splinters, 1);
        assert_eq!(mm.coalesced_groups(), (0, 0));
    }

    #[test]
    fn evicted_page_round_trips_on_retouch() {
        let cfg = MmConfig {
            resident_page_budget: 2,
            ..MmConfig::demand_paged()
        };
        let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size64K);
        mm.service_fault(Vpn::new(0), &mut space, &mut mem);
        mm.service_fault(Vpn::new(1), &mut space, &mut mem);
        mm.service_fault(Vpn::new(2), &mut space, &mut mem); // evicts 0
        assert_eq!(space.pfn_of(Vpn::new(0)), None);
        let out = mm.service_fault(Vpn::new(0), &mut space, &mut mem); // evicts 1
        assert_eq!(out.evicted, vec![Vpn::new(1)]);
        assert!(space.pfn_of(Vpn::new(0)).is_some());
        assert_eq!(mm.stats().major_faults, 4, "re-touch is a new fault");
    }

    #[test]
    fn base_2m_disables_coalescing() {
        let (mut mm, mut space, mut mem) = setup(MmConfig::demand_paged(), PageSize::Size2M);
        for v in 0..64u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        assert_eq!(mm.stats().coalesces_64k + mm.stats().coalesces_2m, 0);
    }

    #[test]
    fn coalesce_knob_off_counts_nothing() {
        let cfg = MmConfig {
            coalesce: false,
            ..MmConfig::demand_paged()
        };
        let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size4K);
        for v in 0..512u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        assert_eq!(mm.stats().coalesces_64k + mm.stats().coalesces_2m, 0);
    }

    #[test]
    fn lru_clock_gives_referenced_pages_a_second_chance() {
        let cfg = MmConfig {
            resident_page_budget: 4,
            evict: MmEvictPolicy::Lru,
            ..MmConfig::demand_paged()
        };
        let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size64K);
        for v in 0..4u64 {
            mm.service_fault(Vpn::new(v), &mut space, &mut mem);
        }
        mm.touch(Vpn::new(0));
        // Clock skips referenced page 0 (clearing its bit), evicts 1.
        let out = mm.service_fault(Vpn::new(4), &mut space, &mut mem);
        assert_eq!(out.evicted, vec![Vpn::new(1)]);
        assert!(space.pfn_of(Vpn::new(0)).is_some());
        // Bit was cleared by the skip: 0 (now oldest unreferenced after 2)
        // is next once 2 goes. Without a fresh touch, 2 leads the queue.
        let out = mm.service_fault(Vpn::new(5), &mut space, &mut mem);
        assert_eq!(out.evicted, vec![Vpn::new(2)]);
    }

    #[test]
    fn lru_with_all_pages_referenced_still_evicts_the_oldest() {
        let cfg = MmConfig {
            resident_page_budget: 2,
            evict: MmEvictPolicy::Lru,
            ..MmConfig::demand_paged()
        };
        let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size64K);
        mm.service_fault(Vpn::new(0), &mut space, &mut mem);
        mm.service_fault(Vpn::new(1), &mut space, &mut mem);
        mm.touch(Vpn::new(0));
        mm.touch(Vpn::new(1));
        let out = mm.service_fault(Vpn::new(2), &mut space, &mut mem);
        assert_eq!(
            out.evicted,
            vec![Vpn::new(0)],
            "full lap falls back to FIFO"
        );
    }

    #[test]
    fn lru_without_touches_matches_fifo_order() {
        for evict in [MmEvictPolicy::Fifo, MmEvictPolicy::Lru] {
            let cfg = MmConfig {
                resident_page_budget: 3,
                evict,
                ..MmConfig::demand_paged()
            };
            let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size64K);
            let mut evicted = Vec::new();
            for v in 0..8u64 {
                evicted.extend(mm.service_fault(Vpn::new(v), &mut space, &mut mem).evicted);
            }
            let expect: Vec<_> = (0..5u64).map(Vpn::new).collect();
            assert_eq!(evicted, expect, "policy {evict:?} diverged without touches");
        }
    }

    #[test]
    fn checksum_stamped_verified_and_corruption_detected() {
        let (mut mm, mut space, mut mem) = setup(MmConfig::demand_paged(), PageSize::Size64K);
        mm.set_data_fault_checking(2);
        let out = mm.service_fault(Vpn::new(7), &mut space, &mut mem);
        assert_eq!(out.generation, 1);
        assert_eq!(mm.verify(Vpn::new(7), out.pfn, &mem), FrameCheck::Ok);
        // Idempotent re-fault reports the original generation.
        let again = mm.service_fault(Vpn::new(7), &mut space, &mut mem);
        assert_eq!(again.generation, 1);
        // A frame this page never mapped reads as stale.
        assert_eq!(
            mm.verify(Vpn::new(8), out.pfn, &mem),
            FrameCheck::Stale,
            "wrong vpn must not verify"
        );
        mm.corrupt_frame(out.pfn, 0xdead, &mut mem);
        assert_eq!(mm.verify(Vpn::new(7), out.pfn, &mem), FrameCheck::Corrupt);
    }

    #[test]
    fn repeatedly_failing_frame_is_retired_and_refilled_elsewhere() {
        let (mut mm, mut space, mut mem) = setup(MmConfig::demand_paged(), PageSize::Size64K);
        mm.set_data_fault_checking(2);
        let first = mm.service_fault(Vpn::new(3), &mut space, &mut mem);
        mm.corrupt_frame(first.pfn, 1, &mut mem);
        // First failure: frame recycled, not yet retired.
        assert!(!mm.quarantine_page(Vpn::new(3), &mut space, &mut mem));
        assert_eq!(space.retired_frames(), 0);
        // Re-fill lands on the recycled (lowest free) frame — same pfn.
        let second = mm.service_fault(Vpn::new(3), &mut space, &mut mem);
        assert_eq!(second.pfn, first.pfn);
        assert_eq!(mm.verify(Vpn::new(3), second.pfn, &mem), FrameCheck::Ok);
        mm.corrupt_frame(second.pfn, 2, &mut mem);
        // Second failure hits the threshold: retired for good.
        assert!(mm.quarantine_page(Vpn::new(3), &mut space, &mut mem));
        assert_eq!(space.retired_frames(), 1);
        assert_eq!(mm.fault_stats().frames_retired, 1);
        let third = mm.service_fault(Vpn::new(3), &mut space, &mut mem);
        assert_ne!(third.pfn, first.pfn, "retired frame reissued");
    }

    #[test]
    fn eviction_scrub_detects_unconsumed_corruption() {
        let cfg = MmConfig {
            resident_page_budget: 1,
            ..MmConfig::demand_paged()
        };
        let (mut mm, mut space, mut mem) = setup(cfg, PageSize::Size64K);
        mm.set_data_fault_checking(8);
        let out = mm.service_fault(Vpn::new(0), &mut space, &mut mem);
        mm.corrupt_frame(out.pfn, 0xff00, &mut mem);
        // Budget forces eviction of page 0; the scrub catches the
        // corruption nobody consumed.
        mm.service_fault(Vpn::new(1), &mut space, &mut mem);
        assert_eq!(mm.fault_stats().detected_corruptions, 1);
        assert_eq!(mm.fault_stats().recovered_fills, 1);
        assert_eq!(mm.fault_stats().retired_fills, 0);
    }

    #[test]
    fn unarmed_manager_never_touches_payload_memory() {
        let (mut mm, mut space, mut mem) = setup(MmConfig::demand_paged(), PageSize::Size64K);
        let out = mm.service_fault(Vpn::new(5), &mut space, &mut mem);
        assert_eq!(out.generation, 0);
        assert_eq!(
            mem.read_u64(PageSize::Size64K.base_of_pfn(out.pfn)),
            0,
            "unarmed fill must not stamp data frames"
        );
        assert_eq!(mm.verify(Vpn::new(5), out.pfn, &mem), FrameCheck::Ok);
    }
}
