//! Fixed-Size Hashed Page Table (FS-HPT) — the paper's HPT baseline \[32\].
//!
//! FS-HPT replaces the radix walk's level-by-level pointer chase with a
//! single hash-indexed bucket read: most translations cost one memory
//! access, collisions cost one extra access per probed bucket. The paper's
//! point (Table 1, Figure 16) is that this reduces *per-walk* memory
//! accesses but does nothing for *walk throughput* — the walker count still
//! bounds concurrency — so FS-HPT only reaches a 1.13× average speedup.

use crate::alloc::FrameAllocator;
use swgpu_mem::PhysMem;
use swgpu_types::{Pfn, PhysAddr, Pte, Vpn};

/// Slots per bucket. A bucket is one 64-byte region (half a cache line),
/// read with a single memory access.
pub const SLOTS_PER_BUCKET: usize = 4;

/// Bytes per bucket: 4 slots x (8-byte tag + 8-byte PTE).
pub const BUCKET_BYTES: u64 = (SLOTS_PER_BUCKET as u64) * 16;

const OCCUPIED_BIT: u64 = 1 << 63;

/// The probe schedule for one lookup: the sequence of bucket addresses a
/// walker must read, in order, until a tag matches.
#[derive(Debug, Clone)]
pub struct HashedWalk {
    addrs: Vec<PhysAddr>,
}

impl HashedWalk {
    /// Bucket addresses in probe order.
    pub fn addrs(&self) -> &[PhysAddr] {
        &self.addrs
    }
}

/// Statistics for hashed-table construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashedStats {
    /// Mappings inserted.
    pub inserted: u64,
    /// Insertions that had to probe past their home bucket.
    pub collisions: u64,
}

/// An open-addressed hashed page table in simulated physical memory.
///
/// # Example
///
/// ```
/// use swgpu_mem::PhysMem;
/// use swgpu_pt::{FrameAllocator, HashedPageTable};
/// use swgpu_types::{PageSize, Pfn, Vpn};
///
/// let mut mem = PhysMem::new();
/// let mut alloc = FrameAllocator::new(PageSize::Size64K);
/// let mut hpt = HashedPageTable::new(&mut alloc, 1024);
/// hpt.insert(Vpn::new(77), Pfn::new(5), &mut mem).unwrap();
/// let (pfn, probes) = hpt.lookup(Vpn::new(77), &mem);
/// assert_eq!(pfn, Some(Pfn::new(5)));
/// assert_eq!(probes, 1);
/// ```
#[derive(Debug)]
pub struct HashedPageTable {
    base: PhysAddr,
    num_buckets: u64,
    probe_limit: u64,
    stats: HashedStats,
}

/// Error returned when an insertion exhausts the probe limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HptFullError {
    /// The VPN that could not be inserted.
    pub vpn: Vpn,
}

impl std::fmt::Display for HptFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hashed page table full while inserting vpn {}", self.vpn)
    }
}

impl std::error::Error for HptFullError {}

impl HashedPageTable {
    /// Allocates a table with `num_buckets` buckets (rounded up to a power
    /// of two). Sized at 2x the expected page count, the GPU's low-entropy
    /// VPN streams keep the collision rate small — the insight FS-HPT
    /// builds on.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is zero.
    pub fn new(alloc: &mut FrameAllocator, num_buckets: u64) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        let num_buckets = num_buckets.next_power_of_two();
        let base = alloc.alloc_table_region(num_buckets * BUCKET_BYTES);
        Self {
            base,
            num_buckets,
            probe_limit: num_buckets.min(64),
            stats: HashedStats::default(),
        }
    }

    /// Construction statistics.
    pub fn stats(&self) -> HashedStats {
        self.stats
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u64 {
        self.num_buckets
    }

    fn hash(&self, vpn: Vpn) -> u64 {
        // SplitMix64 finalizer: cheap, well-mixed, deterministic.
        let mut x = vpn.value().wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) & (self.num_buckets - 1)
    }

    /// Physical address of bucket `i`.
    pub fn bucket_addr(&self, i: u64) -> PhysAddr {
        self.base + (i % self.num_buckets) * BUCKET_BYTES
    }

    /// The probe schedule a walker must follow for `vpn` — it reads each
    /// bucket in order through the timed memory hierarchy and stops at the
    /// first tag match.
    pub fn walk(&self, vpn: Vpn) -> HashedWalk {
        let home = self.hash(vpn);
        let addrs = (0..self.probe_limit)
            .map(|i| self.bucket_addr(home + i))
            .collect();
        HashedWalk { addrs }
    }

    /// Inserts a mapping with linear probing.
    ///
    /// # Errors
    ///
    /// Returns [`HptFullError`] if no free slot is found within the probe
    /// limit (the fixed-size table is over-full).
    pub fn insert(&mut self, vpn: Vpn, pfn: Pfn, mem: &mut PhysMem) -> Result<(), HptFullError> {
        let home = self.hash(vpn);
        for probe in 0..self.probe_limit {
            let bucket = self.bucket_addr(home + probe);
            for slot in 0..SLOTS_PER_BUCKET as u64 {
                let tag_addr = bucket + slot * 16;
                let tag = mem.read_u64(tag_addr);
                let occupied = tag & OCCUPIED_BIT != 0;
                let matches = occupied && (tag & !OCCUPIED_BIT) == vpn.value();
                if !occupied || matches {
                    mem.write_u64(tag_addr, OCCUPIED_BIT | vpn.value());
                    mem.write_u64(tag_addr + 8, Pte::valid(pfn).raw());
                    self.stats.inserted += 1;
                    if probe > 0 {
                        self.stats.collisions += 1;
                    }
                    return Ok(());
                }
            }
        }
        Err(HptFullError { vpn })
    }

    /// Checks one already-read bucket for `vpn`. Used by the timed walkers
    /// after their bucket read completes.
    pub fn match_in_bucket(&self, vpn: Vpn, bucket: PhysAddr, mem: &PhysMem) -> Option<Pte> {
        for slot in 0..SLOTS_PER_BUCKET as u64 {
            let tag = mem.read_u64(bucket + slot * 16);
            if tag & OCCUPIED_BIT != 0 && (tag & !OCCUPIED_BIT) == vpn.value() {
                return Some(Pte::from_raw(mem.read_u64(bucket + slot * 16 + 8)));
            }
        }
        None
    }

    /// Functional (untimed) lookup. Returns the mapping and the number of
    /// buckets probed (= memory accesses a timed walk would perform).
    pub fn lookup(&self, vpn: Vpn, mem: &PhysMem) -> (Option<Pfn>, u32) {
        let walk = self.walk(vpn);
        for (i, &bucket) in walk.addrs().iter().enumerate() {
            if let Some(pte) = self.match_in_bucket(vpn, bucket, mem) {
                return (Some(pte.pfn()), i as u32 + 1);
            }
            // An entirely-empty bucket terminates the probe chain: the
            // insert path would have used it.
            let empty = (0..SLOTS_PER_BUCKET as u64)
                .all(|s| mem.read_u64(bucket + s * 16) & OCCUPIED_BIT == 0);
            if empty {
                return (None, i as u32 + 1);
            }
        }
        (None, walk.addrs().len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_types::PageSize;

    fn setup(buckets: u64) -> (HashedPageTable, PhysMem) {
        let mut alloc = FrameAllocator::new(PageSize::Size64K);
        let hpt = HashedPageTable::new(&mut alloc, buckets);
        (hpt, PhysMem::new())
    }

    #[test]
    fn insert_then_lookup() {
        let (mut hpt, mut mem) = setup(256);
        hpt.insert(Vpn::new(1), Pfn::new(100), &mut mem).unwrap();
        hpt.insert(Vpn::new(2), Pfn::new(200), &mut mem).unwrap();
        assert_eq!(hpt.lookup(Vpn::new(1), &mem).0, Some(Pfn::new(100)));
        assert_eq!(hpt.lookup(Vpn::new(2), &mem).0, Some(Pfn::new(200)));
    }

    #[test]
    fn missing_vpn_is_none() {
        let (hpt, mem) = setup(256);
        let (pfn, probes) = hpt.lookup(Vpn::new(42), &mem);
        assert_eq!(pfn, None);
        assert_eq!(probes, 1, "empty home bucket terminates immediately");
    }

    #[test]
    fn reinsert_updates() {
        let (mut hpt, mut mem) = setup(256);
        hpt.insert(Vpn::new(9), Pfn::new(1), &mut mem).unwrap();
        hpt.insert(Vpn::new(9), Pfn::new(2), &mut mem).unwrap();
        assert_eq!(hpt.lookup(Vpn::new(9), &mem).0, Some(Pfn::new(2)));
        assert_eq!(hpt.stats().inserted, 2);
    }

    #[test]
    fn handles_many_mappings_with_low_collisions() {
        let (mut hpt, mut mem) = setup(4096);
        for i in 0..8192u64 {
            hpt.insert(Vpn::new(i), Pfn::new(i + 1), &mut mem).unwrap();
        }
        for i in 0..8192u64 {
            let (pfn, probes) = hpt.lookup(Vpn::new(i), &mem);
            assert_eq!(pfn, Some(Pfn::new(i + 1)));
            assert!(probes <= 8, "probe chain unexpectedly long: {probes}");
        }
        // Half-full table (8192 entries / 16384 slots): collisions exist
        // but stay a small fraction.
        let s = hpt.stats();
        assert!(s.collisions < s.inserted / 2);
    }

    #[test]
    fn walk_addresses_are_in_table_region() {
        let (hpt, _mem) = setup(64);
        let w = hpt.walk(Vpn::new(123));
        assert!(!w.addrs().is_empty());
        for a in w.addrs() {
            assert!(a.value() >= FrameAllocator::TABLE_REGION_BASE);
        }
    }

    #[test]
    fn overfull_table_errors() {
        // 1 bucket = 4 slots; probe limit 1 (min(num_buckets,64) = 1).
        let (mut hpt, mut mem) = setup(1);
        for i in 0..4u64 {
            hpt.insert(Vpn::new(i), Pfn::new(i), &mut mem).unwrap();
        }
        let err = hpt.insert(Vpn::new(99), Pfn::new(9), &mut mem);
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("full"));
    }
}
