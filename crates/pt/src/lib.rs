//! Page tables for the SoftWalker GPU model.
//!
//! Three translation structures, all materialized in simulated physical
//! memory ([`swgpu_mem::PhysMem`]) so that hardware walkers and software
//! PW Warps read the *same bytes*:
//!
//! * [`RadixPageTable`] — the conventional four-level radix page table
//!   (Table 3), 9 index bits per level, walked root (level 4) to leaf
//!   (level 1).
//! * [`HashedPageTable`] — the FS-HPT baseline \[32\]: a fixed-size
//!   open-addressed hash table that resolves most translations with a
//!   single bucket read.
//! * [`PageWalkCache`] — the 32-entry fully-associative PWC that lets a
//!   walk skip upper levels whose directory entries were seen recently.
//!
//! [`FrameAllocator`] hands out physical frames for page-table nodes and
//! mapped data pages; [`AddressSpace`] bundles a page size, an allocator
//! and a radix table behind a convenient mapping API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod checked;
mod hashed;
mod mm;
mod pwc;
mod radix;
mod space;

pub use alloc::FrameAllocator;
pub use checked::{read_pte_checked, read_pte_observed, PteInjection};
pub use hashed::{HashedPageTable, HashedWalk, HptFullError};
pub use mm::{FillOutcome, FrameCheck, MemoryManager};
pub use pwc::{PageWalkCache, PwcStart, PwcStats};
pub use radix::{RadixPageTable, LEAF_LEVEL, LEVEL_BITS, ROOT_LEVEL};
pub use space::AddressSpace;
