//! Four-level radix page table.

use crate::alloc::FrameAllocator;
use swgpu_mem::PhysMem;
use swgpu_types::{Pfn, PhysAddr, Pte, Vpn};

/// Index bits consumed per radix level (512-entry nodes).
pub const LEVEL_BITS: u32 = 9;

/// The root level of the walk. Walks proceed from [`ROOT_LEVEL`] down to
/// [`LEAF_LEVEL`], reading one entry per level.
pub const ROOT_LEVEL: u8 = 4;

/// The leaf level; the entry read here is the final PTE.
pub const LEAF_LEVEL: u8 = 1;

/// A four-level radix page table stored in simulated physical memory.
///
/// Level numbering follows the walk direction used in the paper's Figure 14
/// routine: the *root* node is level 4 and the *leaf* PTE level is 1. The
/// index for level `L` is bits `[(L-1)*9, L*9)` of the VPN, so a 33-bit VPN
/// (49-bit VA, 64 KB pages) fits comfortably in 4 levels.
///
/// Both the hardware PTW model and the PW-Warp `LDPT` instruction use
/// [`RadixPageTable::entry_addr`] to compute the physical address of the
/// next entry, then read it through the timed memory hierarchy; the bytes
/// come from [`PhysMem`].
///
/// # Example
///
/// ```
/// use swgpu_mem::PhysMem;
/// use swgpu_pt::{FrameAllocator, RadixPageTable};
/// use swgpu_types::{PageSize, Pfn, Vpn};
///
/// let mut mem = PhysMem::new();
/// let mut alloc = FrameAllocator::new(PageSize::Size64K);
/// let mut pt = RadixPageTable::new(&mut alloc, &mut mem);
/// pt.map(Vpn::new(0x42), Pfn::new(0x99), &mut alloc, &mut mem);
/// assert_eq!(pt.translate(Vpn::new(0x42), &mem), Some(Pfn::new(0x99)));
/// assert_eq!(pt.translate(Vpn::new(0x43), &mem), None);
/// ```
#[derive(Debug, Clone)]
pub struct RadixPageTable {
    root: PhysAddr,
}

impl RadixPageTable {
    /// Allocates an empty table (just the root node).
    pub fn new(alloc: &mut FrameAllocator, _mem: &mut PhysMem) -> Self {
        Self {
            root: alloc.alloc_table(),
        }
    }

    /// Physical address of the root (level-4) node.
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// The 9-bit node index used at `level` for `vpn`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `LEAF_LEVEL..=ROOT_LEVEL`.
    pub fn index_of(level: u8, vpn: Vpn) -> u64 {
        assert!(
            (LEAF_LEVEL..=ROOT_LEVEL).contains(&level),
            "radix level out of range"
        );
        (vpn.value() >> ((level - 1) as u32 * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1)
    }

    /// Physical address of the entry consulted at `level` of a walk for
    /// `vpn`, given the base address of the node serving that level.
    pub fn entry_addr(level: u8, node_base: PhysAddr, vpn: Vpn) -> PhysAddr {
        node_base + Self::index_of(level, vpn) * Pte::SIZE_BYTES
    }

    /// Installs a translation, allocating intermediate nodes on demand.
    ///
    /// Remapping an already-mapped VPN overwrites the leaf entry.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn, alloc: &mut FrameAllocator, mem: &mut PhysMem) {
        let mut node = self.root;
        for level in (LEAF_LEVEL + 1..=ROOT_LEVEL).rev() {
            let entry_addr = Self::entry_addr(level, node, vpn);
            let pde = Pte::from_raw(mem.read_u64(entry_addr));
            node = if pde.is_valid() {
                PhysAddr::new(pde.pfn().value())
            } else {
                let child = alloc.alloc_table();
                // Directory entries store the child node's *address* in the
                // frame field (table nodes are 4 KiB, below page granularity,
                // so we carry the raw address rather than a page-size PFN).
                mem.write_u64(entry_addr, Pte::valid(Pfn::new(child.value())).raw());
                child
            };
        }
        let leaf_addr = Self::entry_addr(LEAF_LEVEL, node, vpn);
        mem.write_u64(leaf_addr, Pte::valid(pfn).raw());
    }

    /// Removes a translation by zeroing the leaf entry. Intermediate
    /// nodes are deliberately kept: in-flight walks (and the page walk
    /// cache, which only holds upper-level entries) stay valid and simply
    /// observe an invalid leaf — a page fault — instead of a dangling
    /// directory pointer. Returns whether a mapping was present.
    pub fn unmap(&mut self, vpn: Vpn, mem: &mut PhysMem) -> bool {
        let mut node = self.root;
        for level in (LEAF_LEVEL + 1..=ROOT_LEVEL).rev() {
            let pde = Pte::from_raw(mem.read_u64(Self::entry_addr(level, node, vpn)));
            if !pde.is_valid() {
                return false;
            }
            node = PhysAddr::new(pde.pfn().value());
        }
        let leaf_addr = Self::entry_addr(LEAF_LEVEL, node, vpn);
        if !Pte::from_raw(mem.read_u64(leaf_addr)).is_valid() {
            return false;
        }
        mem.write_u64(leaf_addr, Pte::INVALID.raw());
        true
    }

    /// Functional (untimed) walk used by tests and by fault checking.
    /// Returns the mapped frame, or `None` if any level is invalid.
    pub fn translate(&self, vpn: Vpn, mem: &PhysMem) -> Option<Pfn> {
        let mut node = self.root;
        for level in (LEAF_LEVEL + 1..=ROOT_LEVEL).rev() {
            let pde = Pte::from_raw(mem.read_u64(Self::entry_addr(level, node, vpn)));
            if !pde.is_valid() {
                return None;
            }
            node = PhysAddr::new(pde.pfn().value());
        }
        let pte = Pte::from_raw(mem.read_u64(Self::entry_addr(LEAF_LEVEL, node, vpn)));
        pte.is_valid().then(|| pte.pfn())
    }

    /// The node base for the next (lower) level given the directory entry
    /// just read at the current level. Returns `None` for invalid entries
    /// (a page fault at that level).
    pub fn next_node(pde: Pte) -> Option<PhysAddr> {
        pde.is_valid().then(|| PhysAddr::new(pde.pfn().value()))
    }

    /// Number of memory reads a full (PWC-cold) walk performs.
    pub const fn full_walk_accesses() -> u32 {
        (ROOT_LEVEL - LEAF_LEVEL + 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_types::PageSize;

    fn setup() -> (RadixPageTable, FrameAllocator, PhysMem) {
        let mut mem = PhysMem::new();
        let mut alloc = FrameAllocator::new(PageSize::Size64K);
        let pt = RadixPageTable::new(&mut alloc, &mut mem);
        (pt, alloc, mem)
    }

    #[test]
    fn map_and_translate() {
        let (mut pt, mut alloc, mut mem) = setup();
        pt.map(Vpn::new(0x1_2345), Pfn::new(0xabc), &mut alloc, &mut mem);
        assert_eq!(
            pt.translate(Vpn::new(0x1_2345), &mem),
            Some(Pfn::new(0xabc))
        );
    }

    #[test]
    fn unmapped_is_none_at_any_level() {
        let (mut pt, mut alloc, mut mem) = setup();
        pt.map(Vpn::new(0), Pfn::new(1), &mut alloc, &mut mem);
        // Same leaf node, different index: leaf-level fault.
        assert_eq!(pt.translate(Vpn::new(1), &mem), None);
        // Entirely different top-level subtree: root-level fault.
        assert_eq!(pt.translate(Vpn::new(1 << 27), &mem), None);
    }

    #[test]
    fn sibling_mappings_share_intermediate_nodes() {
        let (mut pt, mut alloc, mut mem) = setup();
        let before = alloc.tables_allocated();
        pt.map(Vpn::new(0x10), Pfn::new(1), &mut alloc, &mut mem);
        let after_first = alloc.tables_allocated();
        pt.map(Vpn::new(0x11), Pfn::new(2), &mut alloc, &mut mem);
        let after_second = alloc.tables_allocated();
        assert_eq!(after_first - before, 3, "first map allocates 3 inner nodes");
        assert_eq!(after_second, after_first, "sibling reuses the whole path");
        assert_eq!(pt.translate(Vpn::new(0x10), &mem), Some(Pfn::new(1)));
        assert_eq!(pt.translate(Vpn::new(0x11), &mem), Some(Pfn::new(2)));
    }

    #[test]
    fn unmap_clears_leaf_and_keeps_intermediates() {
        let (mut pt, mut alloc, mut mem) = setup();
        pt.map(Vpn::new(0x10), Pfn::new(1), &mut alloc, &mut mem);
        pt.map(Vpn::new(0x11), Pfn::new(2), &mut alloc, &mut mem);
        let nodes = alloc.tables_allocated();
        assert!(pt.unmap(Vpn::new(0x10), &mut mem));
        assert_eq!(pt.translate(Vpn::new(0x10), &mem), None);
        assert_eq!(pt.translate(Vpn::new(0x11), &mem), Some(Pfn::new(2)));
        // Remapping reuses the intact intermediate path.
        pt.map(Vpn::new(0x10), Pfn::new(3), &mut alloc, &mut mem);
        assert_eq!(alloc.tables_allocated(), nodes, "no new nodes needed");
        assert_eq!(pt.translate(Vpn::new(0x10), &mem), Some(Pfn::new(3)));
    }

    #[test]
    fn unmap_of_unmapped_is_false() {
        let (mut pt, mut alloc, mut mem) = setup();
        assert!(!pt.unmap(Vpn::new(9), &mut mem));
        pt.map(Vpn::new(9), Pfn::new(1), &mut alloc, &mut mem);
        assert!(pt.unmap(Vpn::new(9), &mut mem));
        assert!(!pt.unmap(Vpn::new(9), &mut mem), "second unmap is a no-op");
    }

    #[test]
    fn remap_overwrites() {
        let (mut pt, mut alloc, mut mem) = setup();
        pt.map(Vpn::new(5), Pfn::new(1), &mut alloc, &mut mem);
        pt.map(Vpn::new(5), Pfn::new(2), &mut alloc, &mut mem);
        assert_eq!(pt.translate(Vpn::new(5), &mem), Some(Pfn::new(2)));
    }

    #[test]
    fn index_extraction_matches_figure_14() {
        // offset = (vpn >> ((pt_level-1)*9)) & 0x1FF
        let vpn = Vpn::new(0b101_000000001_000000010_000000011);
        assert_eq!(RadixPageTable::index_of(1, vpn), 0b000000011);
        assert_eq!(RadixPageTable::index_of(2, vpn), 0b000000010);
        assert_eq!(RadixPageTable::index_of(3, vpn), 0b000000001);
        assert_eq!(RadixPageTable::index_of(4, vpn), 0b101);
    }

    #[test]
    fn entry_addr_is_index_scaled() {
        let base = PhysAddr::new(0x1000);
        let vpn = Vpn::new(3);
        assert_eq!(
            RadixPageTable::entry_addr(1, base, vpn).value(),
            0x1000 + 3 * 8
        );
    }

    #[test]
    fn full_walk_is_four_accesses() {
        assert_eq!(RadixPageTable::full_walk_accesses(), 4);
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn index_of_rejects_level_zero() {
        RadixPageTable::index_of(0, Vpn::new(0));
    }

    #[test]
    fn dense_region_translates_fully() {
        let (mut pt, mut alloc, mut mem) = setup();
        for i in 0..2048u64 {
            pt.map(Vpn::new(i), Pfn::new(1000 + i), &mut alloc, &mut mem);
        }
        for i in 0..2048u64 {
            assert_eq!(pt.translate(Vpn::new(i), &mem), Some(Pfn::new(1000 + i)));
        }
        // 2048 VPNs span 4 leaf nodes sharing upper levels.
        assert_eq!(alloc.tables_allocated(), 1 + 2 + 4);
    }
}
