//! Page Walk Cache (PWC).
//!
//! A small fully-associative cache of recently used page *directory*
//! entries. A hit lets a walk begin below the root: the paper's Request
//! Distributor consults the PWC before dispatching a page walk request, and
//! sends along the deepest known node base and starting level. PW Warps
//! refresh it with the `FPWC` instruction; hardware walkers fill it as they
//! descend.
//!
//! Entries and roots are ASID-keyed: each tenant registers its own
//! page-table root, and a cached directory node can only accelerate walks
//! of the tenant that filled it — prefixes from different address spaces
//! are different tags even when numerically equal.

use crate::radix::{LEAF_LEVEL, LEVEL_BITS, ROOT_LEVEL};
use swgpu_types::{Asid, PhysAddr, Vpn};

/// Where a walk should start, as determined by a PWC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcStart {
    /// First level whose entry must be read (`ROOT_LEVEL` on a total miss).
    pub level: u8,
    /// Base address of the node serving that level.
    pub node_base: PhysAddr,
    /// Whether any PWC entry hit (i.e. `level < ROOT_LEVEL`).
    pub hit: bool,
}

#[derive(Debug, Clone)]
struct PwcEntry {
    asid: Asid,
    level: u8,
    prefix: u64,
    node_base: PhysAddr,
    last_used: u64,
}

/// Hit/miss statistics for the PWC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PwcStats {
    /// Lookups that found at least one matching level.
    pub hits: u64,
    /// Lookups that found nothing and must start at the root.
    pub misses: u64,
}

/// A fully-associative, LRU page walk cache (32 entries in Table 3).
///
/// Entries are keyed by `(asid, level, vpn >> (level * 9))`: the node that
/// serves level `L` of a walk is uniquely identified by the address space
/// and the VPN bits *above* that level.
///
/// # Example
///
/// ```
/// use swgpu_pt::{PageWalkCache, ROOT_LEVEL};
/// use swgpu_types::{Asid, PhysAddr, Vpn};
///
/// let mut pwc = PageWalkCache::new(32);
/// let vpn = Vpn::new(0x1234);
/// assert_eq!(pwc.lookup(Asid::ZERO, vpn).level, ROOT_LEVEL);
/// pwc.fill(Asid::ZERO, vpn, 2, PhysAddr::new(0x8000));
/// let start = pwc.lookup(Asid::ZERO, vpn);
/// assert!(start.hit);
/// assert_eq!(start.level, 2);
/// assert_eq!(start.node_base, PhysAddr::new(0x8000));
/// // Another tenant's numerically equal VPN does not hit.
/// assert!(!pwc.lookup(Asid::new(1), vpn).hit);
/// ```
#[derive(Debug)]
pub struct PageWalkCache {
    entries: Vec<PwcEntry>,
    capacity: usize,
    /// Per-ASID page-table roots, indexed by `Asid::index()`.
    roots: Vec<PhysAddr>,
    tick: u64,
    stats: PwcStats,
}

impl PageWalkCache {
    /// Creates a PWC with the given number of entries. Each tenant's root
    /// node base must be provided via [`PageWalkCache::set_root`] before
    /// its lookups return useful addresses on a total miss.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PWC needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            roots: Vec::new(),
            tick: 0,
            stats: PwcStats::default(),
        }
    }

    /// Registers the page-table root returned on `asid`'s total misses.
    pub fn set_root(&mut self, asid: Asid, root: PhysAddr) {
        if self.roots.len() <= asid.index() {
            self.roots.resize(asid.index() + 1, PhysAddr::new(0));
        }
        self.roots[asid.index()] = root;
    }

    /// The registered page-table root for `asid` (0 if never set).
    pub fn root_of(&self, asid: Asid) -> PhysAddr {
        self.roots
            .get(asid.index())
            .copied()
            .unwrap_or(PhysAddr::new(0))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PwcStats {
        self.stats
    }

    fn prefix_for(level: u8, vpn: Vpn) -> u64 {
        vpn.value() >> (level as u32 * LEVEL_BITS)
    }

    /// Finds the deepest cached node for `(asid, vpn)` and returns where
    /// the walk should start. Counts toward hit/miss statistics and
    /// refreshes LRU.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> PwcStart {
        self.tick += 1;
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.asid == asid
                && e.prefix == Self::prefix_for(e.level, vpn)
                && best.is_none_or(|b| e.level < self.entries[b].level)
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                self.entries[i].last_used = self.tick;
                self.stats.hits += 1;
                PwcStart {
                    level: self.entries[i].level,
                    node_base: self.entries[i].node_base,
                    hit: true,
                }
            }
            None => {
                self.stats.misses += 1;
                PwcStart {
                    level: ROOT_LEVEL,
                    node_base: self.root_of(asid),
                    hit: false,
                }
            }
        }
    }

    /// Caches the node base serving `level` of `asid`'s walks for `vpn` —
    /// i.e. the content of the directory entry just read at `level + 1`.
    /// Valid for levels `LEAF_LEVEL..ROOT_LEVEL` (1..=3 in the 4-level
    /// table: a level-1 fill caches the *leaf node* base, so a warm walk
    /// costs a single memory read). Filling the root level is a no-op —
    /// the root is always known.
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, level: u8, node_base: PhysAddr) {
        if !(LEAF_LEVEL..ROOT_LEVEL).contains(&level) {
            return;
        }
        self.tick += 1;
        let prefix = Self::prefix_for(level, vpn);
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.asid == asid && e.level == level && e.prefix == prefix)
        {
            e.node_base = node_base;
            e.last_used = self.tick;
            return;
        }
        let entry = PwcEntry {
            asid,
            level,
            prefix,
            node_base,
            last_used: self.tick,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty by construction");
            self.entries[victim] = entry;
        }
    }

    /// Drops every cached entry belonging to one tenant (teardown / root
    /// switch); other tenants' entries and the LRU clock are untouched.
    pub fn clear_asid(&mut self, asid: Asid) {
        self.entries.retain(|e| e.asid != asid);
    }

    /// Drops every cached entry (used when switching address spaces).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asid = Asid::ZERO;
    const B: Asid = Asid(1);

    #[test]
    fn total_miss_starts_at_root() {
        let mut pwc = PageWalkCache::new(4);
        pwc.set_root(A, PhysAddr::new(0x1000));
        let s = pwc.lookup(A, Vpn::new(0x42));
        assert!(!s.hit);
        assert_eq!(s.level, ROOT_LEVEL);
        assert_eq!(s.node_base, PhysAddr::new(0x1000));
        assert_eq!(pwc.stats().misses, 1);
    }

    #[test]
    fn roots_are_per_tenant() {
        let mut pwc = PageWalkCache::new(4);
        pwc.set_root(A, PhysAddr::new(0x1000));
        pwc.set_root(B, PhysAddr::new(0x2000));
        assert_eq!(pwc.lookup(A, Vpn::new(7)).node_base, PhysAddr::new(0x1000));
        assert_eq!(pwc.lookup(B, Vpn::new(7)).node_base, PhysAddr::new(0x2000));
    }

    #[test]
    fn deepest_level_wins() {
        let mut pwc = PageWalkCache::new(4);
        let vpn = Vpn::new(0x12345);
        pwc.fill(A, vpn, 3, PhysAddr::new(0x3000));
        pwc.fill(A, vpn, 2, PhysAddr::new(0x2000));
        let s = pwc.lookup(A, vpn);
        assert_eq!(s.level, 2);
        assert_eq!(s.node_base, PhysAddr::new(0x2000));
    }

    #[test]
    fn prefix_discriminates_neighbours() {
        let mut pwc = PageWalkCache::new(4);
        // Level-1 prefixes differ only above bit 9.
        pwc.fill(A, Vpn::new(0x200), 2, PhysAddr::new(0xaaa0));
        let hit = pwc.lookup(A, Vpn::new(0x200 + 5)); // same level-2 prefix? 0x205>>18 == 0
                                                      // Level 2 prefix = vpn >> 18; both are 0, so this *does* hit.
        assert!(hit.hit);
        // A VPN beyond the level-2 coverage misses.
        let miss = pwc.lookup(A, Vpn::new(1 << 18));
        assert!(!miss.hit);
    }

    #[test]
    fn asid_discriminates_equal_prefixes() {
        let mut pwc = PageWalkCache::new(4);
        pwc.fill(A, Vpn::new(0x200), 2, PhysAddr::new(0xaaa0));
        assert!(pwc.lookup(A, Vpn::new(0x200)).hit);
        assert!(!pwc.lookup(B, Vpn::new(0x200)).hit, "other tenant misses");
        pwc.fill(B, Vpn::new(0x200), 2, PhysAddr::new(0xbbb0));
        assert_eq!(
            pwc.lookup(A, Vpn::new(0x200)).node_base,
            PhysAddr::new(0xaaa0)
        );
        assert_eq!(
            pwc.lookup(B, Vpn::new(0x200)).node_base,
            PhysAddr::new(0xbbb0)
        );
    }

    #[test]
    fn root_fills_are_ignored_leaf_fills_cached() {
        let mut pwc = PageWalkCache::new(4);
        pwc.fill(A, Vpn::new(1), ROOT_LEVEL, PhysAddr::new(0x20));
        assert!(!pwc.lookup(A, Vpn::new(1)).hit, "root is never cached");
        pwc.fill(A, Vpn::new(1), LEAF_LEVEL, PhysAddr::new(0x10));
        let s = pwc.lookup(A, Vpn::new(1));
        assert!(s.hit, "leaf node bases are cached (cost-1 warm walks)");
        assert_eq!(s.level, LEAF_LEVEL);
        assert_eq!(s.node_base, PhysAddr::new(0x10));
    }

    #[test]
    fn lru_eviction() {
        let mut pwc = PageWalkCache::new(2);
        // Distinct level-2 prefixes need VPNs ≥ 2^18 apart.
        let a = Vpn::new(0 << 18);
        let b = Vpn::new(1 << 18);
        let c = Vpn::new(2 << 18);
        pwc.fill(A, a, 2, PhysAddr::new(0xa));
        pwc.fill(A, b, 2, PhysAddr::new(0xb));
        pwc.lookup(A, a); // refresh a; b becomes LRU
        pwc.fill(A, c, 2, PhysAddr::new(0xc));
        assert!(pwc.lookup(A, a).hit);
        assert!(!pwc.lookup(A, b).hit, "b was evicted");
        assert!(pwc.lookup(A, c).hit);
    }

    #[test]
    fn refill_updates_in_place() {
        let mut pwc = PageWalkCache::new(2);
        let vpn = Vpn::new(7);
        pwc.fill(A, vpn, 2, PhysAddr::new(0x1));
        pwc.fill(A, vpn, 2, PhysAddr::new(0x2));
        assert_eq!(pwc.lookup(A, vpn).node_base, PhysAddr::new(0x2));
    }

    #[test]
    fn clear_empties() {
        let mut pwc = PageWalkCache::new(2);
        pwc.fill(A, Vpn::new(7), 2, PhysAddr::new(0x1));
        pwc.clear();
        assert!(!pwc.lookup(A, Vpn::new(7)).hit);
    }

    #[test]
    fn clear_asid_spares_other_tenants() {
        let mut pwc = PageWalkCache::new(4);
        pwc.fill(A, Vpn::new(7), 2, PhysAddr::new(0x1));
        pwc.fill(B, Vpn::new(7), 2, PhysAddr::new(0x2));
        pwc.clear_asid(A);
        assert!(!pwc.lookup(A, Vpn::new(7)).hit);
        assert!(pwc.lookup(B, Vpn::new(7)).hit);
    }
}
