//! A sectored, set-associative, non-blocking cache with a bounded MSHR file.
//!
//! Models the paper's L1D (128 KB, 40 cyc) and L2D (4 MB, 180 cyc) caches:
//! 128-byte lines split into 32-byte sectors, LRU replacement, and a miss
//! status holding register (MSHR) file that merges requests to the same
//! in-flight sector and *rejects* new misses when full (an "MSHR failure",
//! which the paper measures for the L2 in Figure 20).

use crate::req::{AccessKind, MemReq};
use std::collections::{HashMap, VecDeque};
use swgpu_types::{Cycle, DelayQueue, FaultInjectionStats, FaultInjector};

/// Static geometry and timing of one cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Human-readable name used in stats dumps ("L1D", "L2D").
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (128 in Table 3).
    pub line_bytes: u64,
    /// Sector size in bytes (32 in Table 3); fills happen per sector.
    pub sector_bytes: u64,
    /// Lookup/hit latency in cycles.
    pub hit_latency: u64,
    /// Number of MSHR entries (distinct in-flight sectors).
    pub mshr_entries: usize,
    /// Maximum requests merged into one MSHR entry (including the first).
    pub mshr_max_merges: usize,
}

impl CacheConfig {
    /// The paper's per-SM L1 data cache (Table 3): 128 KB, 40 cycles,
    /// 128 B lines with 32 B sectors.
    pub fn l1d() -> Self {
        Self {
            name: "L1D".into(),
            size_bytes: 128 * 1024,
            assoc: 8,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 40,
            mshr_entries: 64,
            mshr_max_merges: 32,
        }
    }

    /// The paper's shared L2 data cache (Table 3): 4 MB, 180 cycles,
    /// 128 B lines with 32 B sectors.
    pub fn l2d() -> Self {
        Self {
            name: "L2D".into(),
            size_bytes: 4 * 1024 * 1024,
            assoc: 16,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 180,
            mshr_entries: 512,
            mshr_max_merges: 32,
        }
    }

    fn num_sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.assoc as u64)) as usize
    }

    /// Number of sectors per line.
    pub fn sectors_per_line(&self) -> usize {
        (self.line_bytes / self.sector_bytes) as usize
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(
            self.sector_bytes.is_power_of_two() && self.sector_bytes <= self.line_bytes,
            "sector size must be 2^n and <= line size"
        );
        assert!(self.assoc > 0, "associativity must be positive");
        assert!(
            self.num_sets() > 0 && self.num_sets().is_power_of_two(),
            "cache must have a power-of-two number of sets"
        );
        assert!(self.mshr_entries > 0, "need at least one MSHR");
        assert!(self.mshr_max_merges > 0, "merge limit must be positive");
    }
}

/// Result of presenting a request to [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Sector present; a response is scheduled after the hit latency.
    Hit,
    /// Sector absent; an MSHR was allocated and a fill request will be
    /// emitted to the lower level.
    Miss,
    /// Sector already in flight; the request was merged into the existing
    /// MSHR entry and will complete with it.
    Merged,
    /// The MSHR file (entries or merge slots) is exhausted; the caller must
    /// retry later. Counted as an MSHR failure.
    MshrFull,
}

impl AccessOutcome {
    /// Whether the request was accepted by the cache (anything but
    /// [`AccessOutcome::MshrFull`]).
    pub fn accepted(self) -> bool {
        !matches!(self, AccessOutcome::MshrFull)
    }
}

/// Hit/miss/MSHR counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total requests presented (including rejected ones).
    pub accesses: u64,
    /// Requests that hit a resident sector.
    pub hits: u64,
    /// Requests that allocated a new MSHR (true sector misses).
    pub misses: u64,
    /// Requests merged into an in-flight MSHR.
    pub merges: u64,
    /// Requests rejected because the MSHR file was saturated.
    pub mshr_failures: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss rate over accepted requests, counting merges as misses (they
    /// did not find data in the array). Returns 0 for an idle cache.
    pub fn miss_rate(&self) -> f64 {
        let accepted = self.hits + self.misses + self.merges;
        if accepted == 0 {
            0.0
        } else {
            (self.misses + self.merges) as f64 / accepted as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid_sectors: u64,
    last_used: u64,
    valid: bool,
}

impl Line {
    fn empty() -> Self {
        Line {
            tag: 0,
            valid_sectors: 0,
            last_used: 0,
            valid: false,
        }
    }
}

#[derive(Debug)]
struct MshrEntry {
    waiters: Vec<MemReq>,
}

/// A sectored set-associative non-blocking cache.
///
/// Interaction protocol, driven once per simulated cycle by the owner:
///
/// 1. [`Cache::access`] for each new request (check the outcome!).
/// 2. [`Cache::pop_fill_request`] and forward to the lower level.
/// 3. When the lower level completes a fill, [`Cache::complete_fill`].
/// 4. [`Cache::pop_response`] to collect finished requests.
///
/// # Example
///
/// ```
/// use swgpu_mem::{AccessKind, AccessOutcome, Cache, CacheConfig, MemReq};
/// use swgpu_types::{Cycle, MemReqId, PhysAddr};
///
/// let mut c = Cache::new(CacheConfig::l2d());
/// let req = MemReq::new(MemReqId(1), PhysAddr::new(0x100), AccessKind::Data);
/// assert_eq!(c.access(Cycle::ZERO, req), AccessOutcome::Miss);
/// let fill = c.pop_fill_request(Cycle::new(180)).unwrap();
/// c.complete_fill(Cycle::new(400), fill);
/// assert_eq!(c.pop_response(Cycle::new(400)).unwrap().id, MemReqId(1));
/// // The sector is now resident:
/// let again = MemReq::new(MemReqId(2), PhysAddr::new(0x110), AccessKind::Data);
/// assert_eq!(c.access(Cycle::new(401), again), AccessOutcome::Hit);
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    mshrs: HashMap<u64, MshrEntry>,
    hit_queue: DelayQueue<MemReq>,
    fill_queue: DelayQueue<MemReq>,
    responses: VecDeque<MemReq>,
    use_tick: u64,
    stats: CacheStats,
    /// Fault injection: when set, completed page-table responses are
    /// dropped with the given rate (the requester's watchdog re-issues).
    fault: Option<(FaultInjector, f64)>,
    dropped: VecDeque<MemReq>,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is inconsistent (non-power-of-two
    /// sizes, zero ways, etc.).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = vec![vec![Line::empty(); cfg.assoc]; cfg.num_sets()];
        Self {
            cfg,
            sets,
            mshrs: HashMap::new(),
            hit_queue: DelayQueue::new(),
            fill_queue: DelayQueue::new(),
            responses: VecDeque::new(),
            use_tick: 0,
            stats: CacheStats::default(),
            fault: None,
            dropped: VecDeque::new(),
        }
    }

    /// Arms response-drop fault injection: completed [`AccessKind::PageTable`]
    /// responses are discarded with probability `rate`. Dropped requests are
    /// retrievable via [`Cache::pop_dropped`] so the owner can attribute the
    /// loss; data traffic is never dropped (SMs have no watchdog).
    pub fn set_fault_injector(&mut self, inj: FaultInjector, rate: f64) {
        self.fault = Some((inj, rate));
    }

    /// Counters for faults injected at this cache.
    pub fn fault_stats(&self) -> FaultInjectionStats {
        self.fault
            .as_ref()
            .map(|(inj, _)| inj.stats)
            .unwrap_or_default()
    }

    /// Pops a response that was dropped by fault injection (the request is
    /// complete from the cache's point of view — fill done, MSHR released —
    /// but the requester never hears back).
    pub fn pop_dropped(&mut self) -> Option<MemReq> {
        self.dropped.pop_front()
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of MSHR entries currently in flight.
    pub fn mshrs_in_flight(&self) -> usize {
        self.mshrs.len()
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line_bytes) as usize) & (self.sets.len() - 1)
    }

    fn sector_bit(&self, addr: u64) -> u64 {
        let off = (addr % self.cfg.line_bytes) / self.cfg.sector_bytes;
        1u64 << off
    }

    /// Presents a read request. See [`AccessOutcome`] for the possible
    /// results; on [`AccessOutcome::MshrFull`] the caller must retry on a
    /// later cycle.
    pub fn access(&mut self, now: Cycle, req: MemReq) -> AccessOutcome {
        self.stats.accesses += 1;
        self.use_tick += 1;
        let line_addr = req.line_addr(self.cfg.line_bytes);
        let sector_addr = req.sector_addr(self.cfg.sector_bytes);
        let set = self.set_index(line_addr);
        let bit = self.sector_bit(req.addr.value());
        let tick = self.use_tick;

        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == line_addr)
        {
            if line.valid_sectors & bit != 0 {
                line.last_used = tick;
                self.stats.hits += 1;
                self.hit_queue.push_after(now, self.cfg.hit_latency, req);
                return AccessOutcome::Hit;
            }
            // Line resident but sector missing: still a sector miss.
            line.last_used = tick;
        }

        if let Some(entry) = self.mshrs.get_mut(&sector_addr) {
            if entry.waiters.len() < self.cfg.mshr_max_merges {
                entry.waiters.push(req);
                self.stats.merges += 1;
                return AccessOutcome::Merged;
            }
            self.stats.mshr_failures += 1;
            return AccessOutcome::MshrFull;
        }

        if self.mshrs.len() >= self.cfg.mshr_entries {
            self.stats.mshr_failures += 1;
            return AccessOutcome::MshrFull;
        }

        self.mshrs
            .insert(sector_addr, MshrEntry { waiters: vec![req] });
        self.stats.misses += 1;
        // The fill request targets the sector base and reuses the first
        // waiter's id so the lower level's completion can be matched back.
        let fill = MemReq::new(req.id, swgpu_types::PhysAddr::new(sector_addr), req.kind);
        self.fill_queue.push_after(now, self.cfg.hit_latency, fill);
        AccessOutcome::Miss
    }

    /// Pops the next fill request destined for the lower memory level, if
    /// one is ready at `now`.
    pub fn pop_fill_request(&mut self, now: Cycle) -> Option<MemReq> {
        self.fill_queue.pop_ready(now)
    }

    /// Completes a fill previously emitted by [`Cache::pop_fill_request`]:
    /// installs the sector and releases every merged waiter as a response.
    ///
    /// # Panics
    ///
    /// Panics if `fill` does not correspond to an outstanding MSHR entry
    /// (that would mean the memory system duplicated or invented a fill).
    pub fn complete_fill(&mut self, _now: Cycle, fill: MemReq) {
        let sector_addr = fill.sector_addr(self.cfg.sector_bytes);
        let entry = self
            .mshrs
            .remove(&sector_addr)
            .expect("fill completion without a matching MSHR entry");
        self.install_sector(sector_addr);
        for waiter in entry.waiters {
            self.responses.push_back(waiter);
        }
    }

    fn install_sector(&mut self, sector_addr: u64) {
        self.use_tick += 1;
        let line_addr = sector_addr & !(self.cfg.line_bytes - 1);
        let set = self.set_index(line_addr);
        let bit = self.sector_bit(sector_addr);
        let tick = self.use_tick;

        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == line_addr)
        {
            line.valid_sectors |= bit;
            line.last_used = tick;
            return;
        }

        // Allocate: prefer an invalid way, otherwise evict the LRU line.
        let way = if let Some(idx) = self.sets[set].iter().position(|l| !l.valid) {
            idx
        } else {
            self.stats.evictions += 1;
            self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
                .expect("cache set cannot be empty")
        };
        self.sets[set][way] = Line {
            tag: line_addr,
            valid_sectors: bit,
            last_used: tick,
            valid: true,
        };
    }

    /// Pops the next completed request (hit or filled miss) ready at `now`.
    /// Page-table responses may be discarded here by fault injection; see
    /// [`Cache::set_fault_injector`].
    pub fn pop_response(&mut self, now: Cycle) -> Option<MemReq> {
        loop {
            let req = match self.hit_queue.pop_ready(now) {
                Some(req) => req,
                None => self.responses.pop_front()?,
            };
            if req.kind == AccessKind::PageTable {
                if let Some((inj, rate)) = self.fault.as_mut() {
                    if inj.fire(*rate) {
                        inj.stats.injected_mem_drops += 1;
                        self.dropped.push_back(req);
                        continue;
                    }
                }
            }
            return Some(req);
        }
    }

    /// Whether the cache has any work in flight (hits in the pipe, fills
    /// pending, or responses waiting to be drained).
    pub fn is_idle(&self) -> bool {
        self.hit_queue.is_empty()
            && self.fill_queue.is_empty()
            && self.mshrs.is_empty()
            && self.responses.is_empty()
    }
}

impl swgpu_types::Component for Cache {
    /// The earliest of the hit pipeline and the fill-issue pipeline, or
    /// "immediately" while completed responses (or fault-dropped ones)
    /// wait to be drained. MSHR entries whose fill request has already
    /// been handed to the lower level carry no event of their own — the
    /// lower level's completion is the event.
    fn next_event(&self) -> Option<Cycle> {
        if !self.responses.is_empty() || !self.dropped.is_empty() {
            return Some(Cycle::ZERO);
        }
        match (self.hit_queue.next_ready(), self.fill_queue.next_ready()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn is_idle(&self) -> bool {
        Cache::is_idle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::AccessKind;
    use swgpu_types::{MemReqId, PhysAddr};

    fn tiny_cache() -> Cache {
        Cache::new(CacheConfig {
            name: "tiny".into(),
            size_bytes: 2 * 128 * 2, // 2 sets x 2 ways x 128B
            assoc: 2,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 4,
            mshr_entries: 2,
            mshr_max_merges: 2,
        })
    }

    fn req(id: u64, addr: u64) -> MemReq {
        MemReq::new(MemReqId(id), PhysAddr::new(addr), AccessKind::Data)
    }

    fn fill_round_trip(c: &mut Cache, now: Cycle) -> usize {
        let mut n = 0;
        let t = now + 1000;
        while let Some(f) = c.pop_fill_request(t) {
            c.complete_fill(t, f);
            n += 1;
        }
        n
    }

    #[test]
    fn miss_then_hit_same_sector() {
        let mut c = tiny_cache();
        assert_eq!(c.access(Cycle::ZERO, req(1, 0x100)), AccessOutcome::Miss);
        fill_round_trip(&mut c, Cycle::ZERO);
        assert_eq!(c.pop_response(Cycle::new(2000)).unwrap().id, MemReqId(1));
        assert_eq!(
            c.access(Cycle::new(2000), req(2, 0x104)),
            AccessOutcome::Hit
        );
        // Hit latency is respected.
        assert!(c.pop_response(Cycle::new(2003)).is_none());
        assert_eq!(c.pop_response(Cycle::new(2004)).unwrap().id, MemReqId(2));
    }

    #[test]
    fn sectored_line_misses_on_other_sector() {
        let mut c = tiny_cache();
        assert_eq!(c.access(Cycle::ZERO, req(1, 0x100)), AccessOutcome::Miss);
        fill_round_trip(&mut c, Cycle::ZERO);
        c.pop_response(Cycle::new(2000));
        // Same 128B line, different 32B sector: must miss again.
        assert_eq!(
            c.access(Cycle::new(2000), req(2, 0x120)),
            AccessOutcome::Miss
        );
    }

    #[test]
    fn merges_requests_to_inflight_sector() {
        let mut c = tiny_cache();
        assert_eq!(c.access(Cycle::ZERO, req(1, 0x100)), AccessOutcome::Miss);
        assert_eq!(c.access(Cycle::ZERO, req(2, 0x108)), AccessOutcome::Merged);
        // Merge limit (2) reached:
        assert_eq!(
            c.access(Cycle::ZERO, req(3, 0x110)),
            AccessOutcome::MshrFull
        );
        fill_round_trip(&mut c, Cycle::ZERO);
        let a = c.pop_response(Cycle::new(2000)).unwrap();
        let b = c.pop_response(Cycle::new(2000)).unwrap();
        assert_eq!((a.id, b.id), (MemReqId(1), MemReqId(2)));
        assert_eq!(c.stats().merges, 1);
        assert_eq!(c.stats().mshr_failures, 1);
    }

    #[test]
    fn mshr_entry_exhaustion_rejects() {
        let mut c = tiny_cache();
        assert_eq!(c.access(Cycle::ZERO, req(1, 0x000)), AccessOutcome::Miss);
        assert_eq!(c.access(Cycle::ZERO, req(2, 0x200)), AccessOutcome::Miss);
        assert_eq!(
            c.access(Cycle::ZERO, req(3, 0x400)),
            AccessOutcome::MshrFull
        );
        assert_eq!(c.mshrs_in_flight(), 2);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = tiny_cache();
        // Lines 0x000, 0x100, 0x200 all map to set 0 (set = (addr/128) & 1).
        // Fill both ways of set 0.
        for (id, addr) in [(1, 0x000u64), (2, 0x100)] {
            assert_eq!(c.access(Cycle::ZERO, req(id, addr)), AccessOutcome::Miss);
            fill_round_trip(&mut c, Cycle::ZERO);
            c.pop_response(Cycle::new(5000));
        }
        assert_eq!(c.stats().evictions, 0);
        // Touch 0x100 so 0x000 becomes the LRU line.
        assert_eq!(
            c.access(Cycle::new(5000), req(3, 0x100)),
            AccessOutcome::Hit
        );
        c.pop_response(Cycle::new(9000));
        // A third line in the set evicts the LRU (0x000).
        assert_eq!(
            c.access(Cycle::new(9001), req(4, 0x200)),
            AccessOutcome::Miss
        );
        fill_round_trip(&mut c, Cycle::new(9001));
        c.pop_response(Cycle::new(12000));
        assert_eq!(c.stats().evictions, 1);
        // 0x100 was recently used, so it survives; 0x000 was evicted.
        assert_eq!(
            c.access(Cycle::new(12000), req(5, 0x100)),
            AccessOutcome::Hit
        );
        assert_eq!(
            c.access(Cycle::new(12001), req(6, 0x000)),
            AccessOutcome::Miss
        );
    }

    #[test]
    fn miss_rate_counts_merges_as_misses() {
        let mut c = tiny_cache();
        c.access(Cycle::ZERO, req(1, 0x100));
        c.access(Cycle::ZERO, req(2, 0x108));
        fill_round_trip(&mut c, Cycle::ZERO);
        c.pop_response(Cycle::new(2000));
        c.pop_response(Cycle::new(2000));
        c.access(Cycle::new(2000), req(3, 0x100));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_after_drain() {
        let mut c = tiny_cache();
        assert!(c.is_idle());
        c.access(Cycle::ZERO, req(1, 0x100));
        assert!(!c.is_idle());
        fill_round_trip(&mut c, Cycle::ZERO);
        c.pop_response(Cycle::new(2000));
        assert!(c.is_idle());
    }

    #[test]
    #[should_panic(expected = "matching MSHR")]
    fn spurious_fill_panics() {
        let mut c = tiny_cache();
        c.complete_fill(Cycle::ZERO, req(9, 0x100));
    }

    #[test]
    fn drop_injection_discards_page_table_responses_only() {
        use swgpu_types::fault::site;
        let mut c = tiny_cache();
        c.set_fault_injector(FaultInjector::new(3, site::L2D_DROP), 1.0);
        let pt = MemReq::new(MemReqId(1), PhysAddr::new(0x100), AccessKind::PageTable);
        let data = MemReq::new(MemReqId(2), PhysAddr::new(0x200), AccessKind::Data);
        assert_eq!(c.access(Cycle::ZERO, pt), AccessOutcome::Miss);
        assert_eq!(c.access(Cycle::ZERO, data), AccessOutcome::Miss);
        fill_round_trip(&mut c, Cycle::ZERO);
        // The page-table response vanishes; the data response survives.
        let got = c.pop_response(Cycle::new(2000)).expect("data response");
        assert_eq!(got.id, MemReqId(2));
        assert!(c.pop_response(Cycle::new(2000)).is_none());
        assert_eq!(c.fault_stats().injected_mem_drops, 1);
        assert_eq!(c.pop_dropped().expect("dropped req").id, MemReqId(1));
        assert!(c.pop_dropped().is_none());
        // The cache itself is clean: the sector filled and the MSHR freed.
        assert!(c.is_idle());
    }
}
