//! Simulated physical memory, sectored caches and DRAM timing for the
//! SoftWalker GPU model.
//!
//! This crate supplies the *data side* of the simulator:
//!
//! * [`PhysMem`] — a sparse, word-addressed backing store. Page tables are
//!   materialized here so that hardware walkers and software PW Warps both
//!   read real bytes.
//! * [`Cache`] — a sectored, set-associative, non-blocking cache with a
//!   bounded MSHR file (used for both the per-SM L1D and the shared 4 MB
//!   L2 data cache of Table 3).
//! * [`Dram`] — a GDDR6-like multi-channel DRAM with per-channel bandwidth
//!   contention and fixed access latency.
//!
//! Components communicate by value: callers push [`MemReq`]s in, tick the
//! component once per cycle, and drain completed requests out. There are no
//! callbacks or shared-mutability cells, which keeps the whole simulator
//! deterministic and single-threaded-fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod phys;
mod req;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats};
pub use dram::{Dram, DramConfig, DramStats};
pub use phys::PhysMem;
pub use req::{AccessKind, MemReq};
