//! Sparse simulated physical memory.

use std::collections::HashMap;
use swgpu_types::PhysAddr;

/// Granule at which backing storage is allocated: 4 KiB, the natural size of
/// one radix page-table node (512 entries x 8 bytes).
const GRANULE_BYTES: u64 = 4096;
const WORDS_PER_GRANULE: usize = (GRANULE_BYTES / 8) as usize;

/// A sparse, 64-bit-word addressed physical memory.
///
/// Only page-table pages (and the fault buffer) ever hold real contents in
/// this simulator — data pages exist purely for timing, so reading an
/// unbacked address returns zero rather than allocating.
///
/// # Example
///
/// ```
/// use swgpu_mem::PhysMem;
/// use swgpu_types::PhysAddr;
///
/// let mut mem = PhysMem::new();
/// mem.write_u64(PhysAddr::new(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u64(PhysAddr::new(0x1000)), 0xdead_beef);
/// assert_eq!(mem.read_u64(PhysAddr::new(0x9_0000)), 0);
/// ```
/// Cloning deep-copies every backed granule — the experiment runner's
/// page-table prebuild store clones one built memory image per cell
/// instead of replaying the whole mapping sequence.
#[derive(Debug, Default, Clone)]
pub struct PhysMem {
    granules: HashMap<u64, Box<[u64; WORDS_PER_GRANULE]>>,
}

impl PhysMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads an aligned 64-bit word. Unbacked addresses read as zero (which
    /// decodes as an invalid [`swgpu_types::Pte`] — exactly the behaviour a
    /// walker should see for an unmapped region).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let (granule, word) = Self::split(addr);
        self.granules.get(&granule).map_or(0, |g| g[word])
    }

    /// Writes an aligned 64-bit word, allocating backing storage on demand.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        let (granule, word) = Self::split(addr);
        let g = self
            .granules
            .entry(granule)
            .or_insert_with(|| Box::new([0u64; WORDS_PER_GRANULE]));
        g[word] = value;
    }

    /// Flips the given bits of an aligned 64-bit word in place — the fault
    /// injector's primitive for corrupting a stored payload without knowing
    /// (or preserving) what was there.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn xor_u64(&mut self, addr: PhysAddr, mask: u64) {
        let current = self.read_u64(addr);
        self.write_u64(addr, current ^ mask);
    }

    /// Number of 4 KiB granules currently backed (a proxy for the simulated
    /// page-table footprint).
    pub fn backed_granules(&self) -> usize {
        self.granules.len()
    }

    fn split(addr: PhysAddr) -> (u64, usize) {
        let a = addr.value();
        assert_eq!(a % 8, 0, "physical word access must be 8-byte aligned");
        (a / GRANULE_BYTES, ((a % GRANULE_BYTES) / 8) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbacked_reads_zero() {
        let mem = PhysMem::new();
        assert_eq!(mem.read_u64(PhysAddr::new(0x12345678 & !7)), 0);
        assert_eq!(mem.backed_granules(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr::new(0x2000), 42);
        mem.write_u64(PhysAddr::new(0x2008), 43);
        assert_eq!(mem.read_u64(PhysAddr::new(0x2000)), 42);
        assert_eq!(mem.read_u64(PhysAddr::new(0x2008)), 43);
        assert_eq!(mem.backed_granules(), 1);
    }

    #[test]
    fn distinct_granules_are_independent() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr::new(0), 1);
        mem.write_u64(PhysAddr::new(GRANULE_BYTES), 2);
        assert_eq!(mem.backed_granules(), 2);
        assert_eq!(mem.read_u64(PhysAddr::new(0)), 1);
        assert_eq!(mem.read_u64(PhysAddr::new(GRANULE_BYTES)), 2);
    }

    #[test]
    fn xor_flips_bits_in_place() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr::new(0x3000), 0b1010);
        mem.xor_u64(PhysAddr::new(0x3000), 0b0110);
        assert_eq!(mem.read_u64(PhysAddr::new(0x3000)), 0b1100);
        // Unbacked word: xor against the implicit zero allocates backing.
        mem.xor_u64(PhysAddr::new(0x9000), 0xff);
        assert_eq!(mem.read_u64(PhysAddr::new(0x9000)), 0xff);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn rejects_unaligned_access() {
        PhysMem::new().read_u64(PhysAddr::new(3));
    }
}
