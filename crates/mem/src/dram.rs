//! GDDR6-like DRAM timing model.
//!
//! Table 3: GDDR6 at 1750 MHz, 16 channels, 448 GB/s aggregate. We model
//! each channel as a serially-occupied resource: a request holds its channel
//! for a fixed service time (derived from per-channel bandwidth and the
//! 32-byte sector fill size) and completes after an additional fixed access
//! latency. This captures the two effects the paper's results depend on —
//! bandwidth saturation under load and long, roughly-constant access
//! latency when the memory system is underutilized (which it is: the paper
//! measures only 6.7% bandwidth use for irregular apps at baseline).

use crate::req::{AccessKind, MemReq};
use swgpu_types::{Cycle, DelayQueue, FaultInjectionStats, FaultInjector};

/// DRAM timing parameters.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Number of independent channels (16 in Table 3).
    pub channels: usize,
    /// Fixed access latency in core cycles, applied after a request wins
    /// its channel.
    pub latency: u64,
    /// Channel occupancy per request in core cycles. At 448 GB/s over 16
    /// channels and a 1.5 GHz core clock, one 32 B sector occupies its
    /// channel for ~1.7 core cycles; we round up to 2.
    pub service_cycles: u64,
    /// Address-interleave granularity across channels in bytes.
    pub interleave_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 16,
            latency: 160,
            service_cycles: 2,
            interleave_bytes: 256,
        }
    }
}

/// Cumulative DRAM statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced.
    pub requests: u64,
    /// Total channel-busy cycles across all channels.
    pub busy_cycles: u64,
}

impl DramStats {
    /// Fraction of aggregate channel time spent busy over `elapsed` cycles
    /// with `channels` channels. This is the number Figure 20's discussion
    /// quotes (~6.7% for irregular apps at baseline).
    pub fn bandwidth_utilization(&self, channels: usize, elapsed: u64) -> f64 {
        if elapsed == 0 || channels == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (channels as f64 * elapsed as f64)
        }
    }
}

/// Multi-channel DRAM with per-channel serial occupancy.
///
/// # Example
///
/// ```
/// use swgpu_mem::{AccessKind, Dram, DramConfig, MemReq};
/// use swgpu_types::{Cycle, MemReqId, PhysAddr};
///
/// let mut dram = Dram::new(DramConfig::default());
/// dram.access(Cycle::ZERO, MemReq::new(MemReqId(7), PhysAddr::new(0x40), AccessKind::Data));
/// assert!(dram.pop_complete(Cycle::new(10)).is_none());
/// assert_eq!(dram.pop_complete(Cycle::new(162)).unwrap().id, MemReqId(7));
/// ```
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    channel_free_at: Vec<Cycle>,
    inflight: DelayQueue<MemReq>,
    stats: DramStats,
    /// Fault injection: page-table accesses are stretched by
    /// `extra_cycles` with probability `rate`.
    fault: Option<(FaultInjector, f64, u64)>,
}

impl Dram {
    /// Builds a DRAM model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or a non-power-of-two
    /// interleave granularity.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0, "DRAM needs at least one channel");
        assert!(
            cfg.interleave_bytes.is_power_of_two(),
            "interleave granularity must be a power of two"
        );
        Self {
            channel_free_at: vec![Cycle::ZERO; cfg.channels],
            inflight: DelayQueue::new(),
            stats: DramStats::default(),
            fault: None,
            cfg,
        }
    }

    /// Arms access-delay fault injection: [`AccessKind::PageTable`]
    /// accesses complete `extra_cycles` later with probability `rate`.
    /// Delayed accesses still complete on their own — no recovery needed —
    /// but they exercise the requesters' watchdog timeout paths.
    pub fn set_fault_injector(&mut self, inj: FaultInjector, rate: f64, extra_cycles: u64) {
        self.fault = Some((inj, rate, extra_cycles));
    }

    /// Counters for faults injected at this DRAM.
    pub fn fault_stats(&self) -> FaultInjectionStats {
        self.fault
            .as_ref()
            .map(|(inj, _, _)| inj.stats)
            .unwrap_or_default()
    }

    /// The DRAM configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Channel an address maps to.
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.interleave_bytes) as usize) % self.cfg.channels
    }

    /// Accepts a request unconditionally (DRAM queues are modelled as
    /// unbounded; back-pressure in the paper's system lives in the cache
    /// MSHRs above). Returns the cycle at which it will complete.
    pub fn access(&mut self, now: Cycle, req: MemReq) -> Cycle {
        let ch = self.channel_of(req.addr.value());
        let start = now.max(self.channel_free_at[ch]);
        self.channel_free_at[ch] = start + self.cfg.service_cycles;
        let mut done = start + self.cfg.service_cycles + self.cfg.latency;
        if req.kind == AccessKind::PageTable {
            if let Some((inj, rate, extra)) = self.fault.as_mut() {
                if inj.fire(*rate) {
                    inj.stats.injected_mem_delays += 1;
                    done += *extra;
                }
            }
        }
        self.stats.requests += 1;
        self.stats.busy_cycles += self.cfg.service_cycles;
        self.inflight.push(done, req);
        done
    }

    /// Pops the next completed request at `now`, if any.
    pub fn pop_complete(&mut self, now: Cycle) -> Option<MemReq> {
        self.inflight.pop_ready(now)
    }

    /// Whether any requests are still in flight.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
    }
}

impl swgpu_types::Component for Dram {
    /// The earliest in-flight completion. Channel occupancy needs no
    /// event of its own: `channel_free_at` only stamps *future* accesses,
    /// which are themselves driven by other components' events.
    fn next_event(&self) -> Option<Cycle> {
        self.inflight.next_ready()
    }

    fn is_idle(&self) -> bool {
        Dram::is_idle(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::AccessKind;
    use swgpu_types::{MemReqId, PhysAddr};

    fn req(id: u64, addr: u64) -> MemReq {
        MemReq::new(MemReqId(id), PhysAddr::new(addr), AccessKind::Data)
    }

    #[test]
    fn single_access_latency() {
        let mut d = Dram::new(DramConfig {
            channels: 1,
            latency: 100,
            service_cycles: 2,
            interleave_bytes: 256,
        });
        let done = d.access(Cycle::ZERO, req(1, 0));
        assert_eq!(done, Cycle::new(102));
        assert!(d.pop_complete(Cycle::new(101)).is_none());
        assert_eq!(d.pop_complete(Cycle::new(102)).unwrap().id, MemReqId(1));
        assert!(d.is_idle());
    }

    #[test]
    fn same_channel_serializes() {
        let mut d = Dram::new(DramConfig {
            channels: 1,
            latency: 100,
            service_cycles: 10,
            interleave_bytes: 256,
        });
        let a = d.access(Cycle::ZERO, req(1, 0));
        let b = d.access(Cycle::ZERO, req(2, 0));
        assert_eq!(a, Cycle::new(110));
        assert_eq!(b, Cycle::new(120), "second request waits for the channel");
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = Dram::new(DramConfig {
            channels: 2,
            latency: 100,
            service_cycles: 10,
            interleave_bytes: 256,
        });
        let a = d.access(Cycle::ZERO, req(1, 0));
        let b = d.access(Cycle::ZERO, req(2, 256));
        assert_eq!(a, b, "independent channels do not contend");
    }

    #[test]
    fn channel_mapping_interleaves() {
        let d = Dram::new(DramConfig::default());
        assert_eq!(d.channel_of(0), 0);
        assert_eq!(d.channel_of(256), 1);
        assert_eq!(d.channel_of(256 * 16), 0);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut d = Dram::new(DramConfig {
            channels: 2,
            latency: 0,
            service_cycles: 5,
            interleave_bytes: 256,
        });
        d.access(Cycle::ZERO, req(1, 0));
        d.access(Cycle::ZERO, req(2, 256));
        let util = d.stats().bandwidth_utilization(2, 10);
        assert!((util - 0.5).abs() < 1e-9);
    }

    #[test]
    fn delay_injection_stretches_page_table_accesses_only() {
        use swgpu_types::fault::site;
        let mut d = Dram::new(DramConfig {
            channels: 2,
            latency: 100,
            service_cycles: 2,
            interleave_bytes: 256,
        });
        d.set_fault_injector(FaultInjector::new(3, site::DRAM_DELAY), 1.0, 500);
        let pt = MemReq::new(MemReqId(1), PhysAddr::new(0), AccessKind::PageTable);
        let data = MemReq::new(MemReqId(2), PhysAddr::new(256), AccessKind::Data);
        assert_eq!(d.access(Cycle::ZERO, pt), Cycle::new(602));
        assert_eq!(d.access(Cycle::ZERO, data), Cycle::new(102));
        assert_eq!(d.fault_stats().injected_mem_delays, 1);
        // Delayed requests still complete on their own.
        assert_eq!(d.pop_complete(Cycle::new(102)).unwrap().id, MemReqId(2));
        assert_eq!(d.pop_complete(Cycle::new(602)).unwrap().id, MemReqId(1));
    }
}
