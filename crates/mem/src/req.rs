//! Memory request messages exchanged between caches and DRAM.

use swgpu_types::{MemReqId, PhysAddr};

/// What a memory request is fetching. The distinction matters because the
/// paper (footnote 2, following prior work) caches page table entries only
/// in the L2 data cache: [`AccessKind::PageTable`] requests bypass the L1D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Ordinary program data (loads/stores from user warps).
    Data,
    /// A page-table entry read issued by a hardware PTW or a PW Warp's
    /// `LDPT` instruction.
    PageTable,
}

/// One read request travelling through the memory hierarchy.
///
/// The simulator models timing for loads only: GPU stores in this study are
/// fire-and-forget for the warp that issues them, and the paper's results
/// hinge entirely on load/translation latency. A request is identified by
/// [`MemReq::id`]; responses reuse the request value itself.
///
/// # Example
///
/// ```
/// use swgpu_mem::{AccessKind, MemReq};
/// use swgpu_types::{MemReqId, PhysAddr};
///
/// let req = MemReq::new(MemReqId(1), PhysAddr::new(0x4000), AccessKind::Data);
/// assert_eq!(req.sector_addr(32), 0x4000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Unique request id (minted by the issuing component).
    pub id: MemReqId,
    /// Physical address being read.
    pub addr: PhysAddr,
    /// Data vs. page-table traffic.
    pub kind: AccessKind,
}

impl MemReq {
    /// Creates a read request.
    pub fn new(id: MemReqId, addr: PhysAddr, kind: AccessKind) -> Self {
        Self { id, addr, kind }
    }

    /// The base address of the sector containing this request.
    ///
    /// # Panics
    ///
    /// Panics if `sector_bytes` is not a power of two.
    pub fn sector_addr(&self, sector_bytes: u64) -> u64 {
        self.addr.align_down(sector_bytes).value()
    }

    /// The base address of the cache line containing this request.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line_addr(&self, line_bytes: u64) -> u64 {
        self.addr.align_down(line_bytes).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_and_line_alignment() {
        let r = MemReq::new(MemReqId(0), PhysAddr::new(0x1234), AccessKind::Data);
        assert_eq!(r.sector_addr(32), 0x1220);
        assert_eq!(r.line_addr(128), 0x1200);
    }

    #[test]
    fn kind_is_carried() {
        let r = MemReq::new(MemReqId(0), PhysAddr::new(0), AccessKind::PageTable);
        assert_eq!(r.kind, AccessKind::PageTable);
    }
}
