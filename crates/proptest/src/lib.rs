//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the strategy/`proptest!` subset its property tests use:
//! integer-range strategies, tuples, `prop::collection::{vec,
//! btree_set}`, `prop::sample::select`, `any::<bool>()`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from upstream are deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with its inputs via the
//!   standard assertion message; cases are deterministic (seeded from the
//!   test name and case index) so failures reproduce exactly.
//! * `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` are plain
//!   assertion wrappers rather than early-`Err` returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (mirror of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values (mirror of `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Samples one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    if lo == <$t>::MIN { return rng.gen_range(<$t>::MIN..<$t>::MAX); }
                    return rng.gen_range((lo - 1)..hi) + 1;
                }
                rng.gen_range(lo..hi + 1)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (mirror of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind [`any`] for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_value(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0u8..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $name:ident),*) => {$(
        /// Strategy behind [`any`] for the corresponding integer type.
        #[derive(Debug, Clone, Copy)]
        pub struct $name;
        impl Strategy for $name {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name { $name }
        }
    )*};
}

impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
    usize => AnyUsize, i32 => AnyI32, i64 => AnyI64);

/// The canonical strategy for `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The `prop::` namespace (mirror of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A vector of values from `element`, with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.start..self.len.end);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
        /// a range.
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A set of values from `element` with size in `size` (best
        /// effort: sampling stops early if the element domain is nearly
        /// exhausted, but always yields at least one element when
        /// `size.start >= 1`).
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            BTreeSetStrategy { element, size }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let target = rng.gen_range(self.size.start..self.size.end).max(1);
                let mut set = BTreeSet::new();
                let mut attempts = 0usize;
                while set.len() < target && attempts < target * 64 {
                    set.insert(self.element.new_value(rng));
                    attempts += 1;
                }
                set
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy choosing uniformly among a fixed list of options.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Uniformly selects one of `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

/// Deterministically seeds the RNG for one test case. Public for the
/// `proptest!` macro expansion only.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Property assertion (plain `assert!` wrapper — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (plain `assert_eq!` wrapper).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (plain `assert_ne!` wrapper).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines deterministic property tests (mirror of `proptest::proptest!`).
///
/// Supports the forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    let strategy = ($($strat,)+);
                    let ($($arg,)+) = $crate::Strategy::new_value(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Everything the tests import (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::case_rng("ranges", 0);
        for _ in 0..500 {
            let v = Strategy::new_value(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::case_rng("vec", 1);
        for _ in 0..100 {
            let v = Strategy::new_value(&prop::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_nonempty() {
        let mut rng = crate::case_rng("set", 2);
        for _ in 0..50 {
            let s = Strategy::new_value(
                &prop::collection::btree_set(0u64..(1 << 20), 1..24),
                &mut rng,
            );
            assert!(!s.is_empty() && s.len() < 24);
        }
    }

    #[test]
    fn select_only_yields_options() {
        let mut rng = crate::case_rng("select", 3);
        for _ in 0..100 {
            let v = Strategy::new_value(&prop::sample::select(vec![1usize, 2, 4, 8]), &mut rng);
            assert!([1, 2, 4, 8].contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..10)
            .map(|c| Strategy::new_value(&(0u64..1000), &mut crate::case_rng("d", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| Strategy::new_value(&(0u64..1000), &mut crate::case_rng("d", c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(xs in prop::collection::vec((0u64..64, any::<bool>()), 1..20)) {
            prop_assert!(!xs.is_empty());
            for (x, _) in xs {
                prop_assert!(x < 64);
            }
        }
    }
}
