//! Analytic area models for the performance-vs-area study (Figure 15) and
//! the hardware-overhead accounting (§5.2).
//!
//! The paper estimates structure areas with CACTI 7 \[8\] and synthesizes
//! the In-TLB MSHR control logic with Design Compiler on 28 nm cells. We
//! reproduce the *relative* area relationships those tools expose with
//! standard analytic models:
//!
//! * SRAM arrays scale linearly in bits.
//! * CAM (content-addressable) structures — the PWB and the L2 TLB MSHR
//!   file — pay a per-bit premium for match lines and, crucially, grow
//!   **super-linearly in port count** (≈ quadratically: each extra
//!   search/read port replicates word lines and match logic), which is
//!   exactly why Figure 15's hardware-scaling curve bends away from the
//!   SoftWalker point.
//! * Page table walker state machines contribute a fixed area each.
//!
//! Absolute numbers are normalized away in Figure 15 ("relative area
//! overhead ... normalized to the 32 PTWs with one PWB port"), so only
//! these scaling laws matter for reproducing its shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Area of one SRAM bit, in arbitrary units (a.u.).
const SRAM_BIT: f64 = 1.0;

/// Area of one CAM bit with a single search port (bit cell + match line).
const CAM_BIT: f64 = 2.0;

/// Per-additional-port replication factor for CAM structures: a structure
/// with `p` ports costs `base * (1 + PORT_ALPHA * (p - 1) * p / 2)`,
/// giving the super-linear growth prior work \[50\] reports.
const PORT_ALPHA: f64 = 0.6;

/// Fixed area of one hardware page-table-walker FSM, in a.u. (tuned so 32
/// walkers are comparable to their companion PWB, as in \[50\]).
const WALKER_FSM: f64 = 1500.0;

/// Bits per PWB entry (VPN + status + requester metadata).
const PWB_ENTRY_BITS: u64 = 96;

/// Bits per L2 TLB MSHR entry (VPN tag + merge bookkeeping).
const MSHR_ENTRY_BITS: u64 = 80;

/// A hardware walk-subsystem configuration whose area we estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtwAreaConfig {
    /// Hardware page table walkers.
    pub walkers: usize,
    /// PWB entries (scaled with walkers in the paper's methodology).
    pub pwb_entries: usize,
    /// PWB ports.
    pub pwb_ports: usize,
    /// L2 TLB MSHR entries (CAM).
    pub mshr_entries: usize,
}

impl PtwAreaConfig {
    /// The paper's baseline: 32 walkers, 128-entry PWB, 1 port, 128 MSHRs.
    pub fn baseline() -> Self {
        Self {
            walkers: 32,
            pwb_entries: 128,
            pwb_ports: 1,
            mshr_entries: 128,
        }
    }

    /// The paper's scaling rule: `n` walkers with proportionally larger
    /// PWB and MSHR files.
    pub fn scaled(walkers: usize, pwb_ports: usize) -> Self {
        let f = (walkers / 32).max(1);
        Self {
            walkers,
            pwb_entries: 128 * f,
            pwb_ports,
            mshr_entries: 128 * f,
        }
    }
}

/// Area of a CAM structure in arbitrary units.
///
/// # Example
///
/// ```
/// use swgpu_area::cam_area;
/// let one_port = cam_area(128, 96, 1);
/// let four_ports = cam_area(128, 96, 4);
/// assert!(four_ports > 4.0 * one_port, "ports scale super-linearly");
/// ```
pub fn cam_area(entries: usize, bits_per_entry: u64, ports: usize) -> f64 {
    let base = entries as f64 * bits_per_entry as f64 * CAM_BIT;
    let p = ports.max(1) as f64;
    base * (1.0 + PORT_ALPHA * (p - 1.0) * p / 2.0)
}

/// Area of a plain SRAM structure in arbitrary units.
pub fn sram_area(bits: u64) -> f64 {
    bits as f64 * SRAM_BIT
}

/// Total area of a hardware walk subsystem in arbitrary units.
pub fn ptw_subsystem_area(cfg: PtwAreaConfig) -> f64 {
    cfg.walkers as f64 * WALKER_FSM
        + cam_area(cfg.pwb_entries, PWB_ENTRY_BITS, cfg.pwb_ports)
        + cam_area(cfg.mshr_entries, MSHR_ENTRY_BITS, 1)
}

/// Relative area of `cfg` versus the 32-PTW / 1-port baseline — the
/// x-axis of Figure 15.
pub fn relative_area(cfg: PtwAreaConfig) -> f64 {
    ptw_subsystem_area(cfg) / ptw_subsystem_area(PtwAreaConfig::baseline())
}

/// SoftWalker's per-SM PW-Warp context overhead in bits (§5.2): one
/// instruction-buffer entry (64 b), a scoreboard entry (126 b) and eight
/// 160-bit SIMT stack entries — the paper's 1470 bits (64 + 126 + 8x160).
pub fn softwalker_bits_per_sm() -> u64 {
    64 + 126 + 8 * 160
}

/// The SoftWalker Controller's SoftPWB status bitmap: 2 bits per PW
/// thread (64 bits per SM for the 32-thread warp).
pub fn controller_bitmap_bits(pw_threads: u64) -> u64 {
    2 * pw_threads
}

/// In-TLB MSHR overhead bits: one pending bit per L2 TLB entry.
pub fn in_tlb_pending_bits(l2_tlb_entries: u64) -> u64 {
    l2_tlb_entries
}

/// SoftWalker's total *additional* area in the same arbitrary units used
/// by [`ptw_subsystem_area`]: per-SM context bits plus pending bits plus a
/// small controller allowance. It runs on top of the baseline subsystem
/// (hybrid) or replaces the walkers entirely (pure), so Figure 15 plots it
/// at roughly baseline area + this overhead.
pub fn softwalker_area(sms: usize, l2_tlb_entries: u64) -> f64 {
    let controller_allowance = 200.0; // per SM, §5.2's 0.0061 mm² scaled
    let per_sm_bits = softwalker_bits_per_sm() + controller_bitmap_bits(32);
    sram_area(per_sm_bits * sms as u64 + in_tlb_pending_bits(l2_tlb_entries))
        + sms as f64 * controller_allowance
}

/// Relative area of a SoftWalker GPU (baseline walk subsystem + the
/// SoftWalker additions) versus the baseline subsystem alone.
pub fn softwalker_relative_area(sms: usize, l2_tlb_entries: u64) -> f64 {
    (ptw_subsystem_area(PtwAreaConfig::baseline()) + softwalker_area(sms, l2_tlb_entries))
        / ptw_subsystem_area(PtwAreaConfig::baseline())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cam_costs_more_than_sram() {
        assert!(cam_area(128, 96, 1) > sram_area(128 * 96));
    }

    #[test]
    fn port_scaling_is_super_linear() {
        let a1 = cam_area(256, 96, 1);
        let a2 = cam_area(256, 96, 2);
        let a8 = cam_area(256, 96, 8);
        assert!(a2 > 1.5 * a1);
        assert!(a8 / a1 > 8.0, "8 ports should cost >8x: {}", a8 / a1);
    }

    #[test]
    fn entry_scaling_is_linear() {
        let a = cam_area(128, 96, 1);
        let b = cam_area(256, 96, 1);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_relative_area_is_one() {
        assert!((relative_area(PtwAreaConfig::baseline()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_walkers_grows_area_monotonically() {
        let mut last = 0.0;
        for w in [32, 64, 128, 256, 512, 1024] {
            let a = relative_area(PtwAreaConfig::scaled(w, 1));
            assert!(a > last, "w={w}");
            last = a;
        }
    }

    #[test]
    fn paper_overhead_bits_match_section_5_2() {
        assert_eq!(softwalker_bits_per_sm(), 1470);
        assert_eq!(controller_bitmap_bits(32), 64);
        assert_eq!(in_tlb_pending_bits(1024), 1024);
    }

    #[test]
    fn softwalker_is_cheap_relative_to_big_ptw_pools() {
        // Figure 15's punchline: SoftWalker's area sits near the small end
        // of the hardware curve while its speedup beats even 128 PTWs.
        let sw = softwalker_relative_area(46, 1024);
        let hw128 = relative_area(PtwAreaConfig::scaled(128, 4));
        assert!(
            sw < hw128,
            "SoftWalker ({sw:.2}) should be cheaper than 128 PTWs with 4 ports ({hw128:.2})"
        );
        // And it should land within the paper's highlighted 16-64x box
        // relative to the one-port baseline... on the *low* side.
        assert!(sw < 16.0, "sw={sw}");
    }
}
