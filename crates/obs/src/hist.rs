//! Log2-bucketed latency histograms.

/// Number of buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]`. 64 buckets cover the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-size log2-bucketed histogram of `u64` samples (cycle counts).
///
/// Recording is O(1) (a `leading_zeros` and an increment), so histograms
/// are cheap enough for per-translation observation. Percentiles are
/// derived from the buckets and are therefore upper bounds with at most
/// 2x relative error — ample for the p50/p95/p99 tail summaries of
/// Figure 18.
///
/// # Example
///
/// ```
/// use swgpu_obs::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1000);
/// assert!(h.percentile(0.5) >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index holding `value`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `idx`.
fn upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_of(value).min(HIST_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied `(bucket_index, count)` pairs in ascending bucket order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Restores a histogram from `(bucket_index, count)` pairs plus the
    /// exact sum/max carried alongside in the serialized form. Pairs with
    /// out-of-range indices are ignored.
    pub fn from_parts(pairs: &[(usize, u64)], sum: u64, max: u64) -> Self {
        let mut h = Self::new();
        for &(i, c) in pairs {
            if i < HIST_BUCKETS {
                h.buckets[i] += c;
                h.count += c;
            }
        }
        h.sum = sum;
        h.max = max;
        h
    }

    /// Merges `other` into `self`: bucket-wise saturating add, summed
    /// counts/sums, max of maxes. The SWTB reader uses this to reassemble
    /// a run's histogram from the incremental deltas the stream flushed.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The samples recorded since `earlier` (a past snapshot of this
    /// histogram), as a delta histogram: bucket counts and sum are
    /// differences, `max` is carried absolute (merging deltas in order
    /// then reproduces the final max, since max only grows).
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for (i, (cur, old)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            d.buckets[i] = cur.saturating_sub(*old);
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        d.max = self.max;
        d
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound: the
    /// smallest bucket boundary below which at least `q` of the samples
    /// fall. Returns 0 for an empty histogram; the top sample is clamped
    /// to [`Histogram::max`] so `percentile(1.0) == max()`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(upper_bound(1), 1);
        assert_eq!(upper_bound(2), 3);
        assert_eq!(upper_bound(63), (1u64 << 63) - 1);
    }

    #[test]
    fn percentiles_are_monotone_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= 500, "upper bound property: {p50}");
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 900] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 3, 3, 70] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 3, 4096, 123_456] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_saturates_the_overflow_bucket() {
        // u64::MAX lands in the clamped top bucket; merging two such
        // histograms must saturate rather than wrap.
        let mut a = Histogram::from_parts(&[(HIST_BUCKETS - 1, u64::MAX)], u64::MAX, u64::MAX);
        let b = Histogram::from_parts(&[(HIST_BUCKETS - 1, 3)], 10, u64::MAX);
        a.merge(&b);
        let top = a.nonzero_buckets().last().unwrap();
        assert_eq!(top, (HIST_BUCKETS - 1, u64::MAX));
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.max(), u64::MAX);
    }

    #[test]
    fn percentiles_survive_a_merge() {
        let (mut low, mut high, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 1..=500u64 {
            low.record(v);
            whole.record(v);
        }
        for v in 501..=1000u64 {
            high.record(v);
            whole.record(v);
        }
        low.merge(&high);
        for q in [0.5, 0.95, 0.99, 1.0] {
            assert_eq!(low.percentile(q), whole.percentile(q), "q={q}");
        }
        assert_eq!(low.percentile(1.0), 1000);
    }

    #[test]
    fn delta_since_reassembles_via_merge() {
        let mut h = Histogram::new();
        for v in [2u64, 9, 80] {
            h.record(v);
        }
        let snap = h.clone();
        for v in [0u64, 81, 1_000_000] {
            h.record(v);
        }
        let delta = h.delta_since(&snap);
        assert_eq!(delta.count(), 3);
        let mut rebuilt = snap.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, h);

        // Deltas merged in order from empty also reproduce the whole.
        let mut from_scratch = Histogram::new();
        from_scratch.merge(&snap.delta_since(&Histogram::new()));
        from_scratch.merge(&delta);
        assert_eq!(from_scratch, h);
    }

    #[test]
    fn parts_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 7, 4096, 123_456] {
            h.record(v);
        }
        let pairs: Vec<_> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&pairs, h.sum(), h.max());
        assert_eq!(back, h);
    }
}
