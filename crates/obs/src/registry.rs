//! The metrics registry: named counters, histograms and time-series
//! behind cheap interned handles.

use crate::hist::Histogram;
use crate::series::TimeSeries;

/// Handle to a monotonically-increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a log2-bucketed histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// Handle to a ring-buffered sampled time-series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// Owns every metric of a run. Instruments are registered once (by name)
/// at setup and then driven through their handles on the hot path, so
/// per-event cost is an index plus an add — no hashing, no lookups.
///
/// # Example
///
/// ```
/// use swgpu_obs::Registry;
/// let mut reg = Registry::new(100, 64);
/// let walks = reg.counter("walks");
/// let lat = reg.hist("walk_latency");
/// let occ = reg.series("pwb_occupancy");
/// reg.inc(walks, 1);
/// reg.observe(lat, 420);
/// reg.sample(occ, 7);
/// assert_eq!(reg.counters()[0], ("walks".to_string(), 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    interval: u64,
    series_cap: usize,
    counters: Vec<(String, u64)>,
    hists: Vec<(String, Histogram)>,
    series: Vec<(String, TimeSeries)>,
}

impl Registry {
    /// A registry whose series sample every `interval` cycles into rings
    /// of `series_cap` entries.
    pub fn new(interval: u64, series_cap: usize) -> Self {
        Self {
            interval,
            series_cap,
            counters: Vec::new(),
            hists: Vec::new(),
            series: Vec::new(),
        }
    }

    /// The configured sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Registers (or re-registers) a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a histogram.
    pub fn hist(&mut self, name: &str) -> HistId {
        self.hists.push((name.to_string(), Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Registers a time-series.
    pub fn series(&mut self, name: &str) -> SeriesId {
        self.series
            .push((name.to_string(), TimeSeries::new(self.series_cap)));
        SeriesId(self.series.len() - 1)
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Records one histogram sample.
    pub fn observe(&mut self, id: HistId, value: u64) {
        self.hists[id.0].1.record(value);
    }

    /// Appends one time-series sample.
    pub fn sample(&mut self, id: SeriesId, value: u64) {
        self.series[id.0].1.push(value);
    }

    /// All counters in registration order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All histograms in registration order.
    pub fn hists(&self) -> &[(String, Histogram)] {
        &self.hists
    }

    /// All time-series in registration order.
    pub fn all_series(&self) -> &[(String, TimeSeries)] {
        &self.series
    }

    /// Consumes the registry into its named instruments.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<(String, u64)>,
        Vec<(String, Histogram)>,
        Vec<(String, TimeSeries)>,
    ) {
        (self.counters, self.hists, self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_index_their_instruments() {
        let mut reg = Registry::new(10, 4);
        let a = reg.counter("a");
        let b = reg.counter("b");
        reg.inc(b, 5);
        reg.inc(a, 2);
        reg.inc(b, 1);
        assert_eq!(reg.counters(), &[("a".into(), 2), ("b".into(), 6)]);
    }

    #[test]
    fn series_respect_registry_capacity() {
        let mut reg = Registry::new(10, 2);
        let s = reg.series("occ");
        for v in 0..5u64 {
            reg.sample(s, v);
        }
        assert_eq!(reg.all_series()[0].1.samples(), vec![3, 4]);
        assert_eq!(reg.all_series()[0].1.first_index(), 3);
    }
}
