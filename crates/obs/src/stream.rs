//! Live SWTB streaming: incremental flush of spans, histogram deltas
//! and series samples during a run.
//!
//! [`SwtbStream`] sits between the simulator's `ObsState` and a byte
//! sink. It tracks a snapshot of every registry instrument so each
//! sample tick emits only what changed since the last one, and keeps the
//! whole pipeline *deterministic in simulated time*: records are emitted
//! at span-count and sample-cycle boundaries only, never on wall-clock
//! conditions, so the dense and event kernels produce byte-identical
//! traces.

use std::io::{self, Write};

use crate::hist::Histogram;
use crate::registry::Registry;
use crate::span::{Span, SpanKind};
use crate::swtb::SwtbWriter;

/// Incremental SWTB producer over an attached sink.
///
/// Lifecycle: [`SwtbStream::new`] writes the header; the owner calls
/// [`flush_spans`](SwtbStream::flush_spans) whenever its staging buffer
/// fills, [`sample_tick`](SwtbStream::sample_tick) at every series
/// sample cycle, and exactly one [`finish`](SwtbStream::finish) at end
/// of run (final staged spans, a forced instrument sync so every
/// registered name materializes in the trace, SUMMARY, END).
pub struct SwtbStream {
    w: SwtbWriter<Box<dyn Write>>,
    counter_snap: Vec<u64>,
    hist_snap: Vec<Histogram>,
    series_sent: Vec<u64>,
    spans_flushed: u64,
}

impl std::fmt::Debug for SwtbStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwtbStream")
            .field("bytes_written", &self.w.bytes_written())
            .field("spans_flushed", &self.spans_flushed)
            .finish()
    }
}

impl SwtbStream {
    /// Opens a stream over `sink` and writes the SWTB header.
    pub fn new(sink: Box<dyn Write>, fingerprint: &str, interval: u64) -> io::Result<Self> {
        Ok(Self {
            w: SwtbWriter::new(sink, fingerprint, interval)?,
            counter_snap: Vec::new(),
            hist_snap: Vec::new(),
            series_sent: Vec::new(),
            spans_flushed: 0,
        })
    }

    /// Streams a drained staging buffer out as one SPANS record.
    pub fn flush_spans(&mut self, spans: &[Span]) -> io::Result<()> {
        if spans.is_empty() {
            return Ok(());
        }
        self.spans_flushed += spans.len() as u64;
        self.w.spans(spans)
    }

    /// Emits what changed since the previous tick: counters with new
    /// values, histogram deltas, and freshly pushed series samples.
    pub fn sample_tick(&mut self, reg: &Registry) -> io::Result<()> {
        self.emit_instruments(reg, false)
    }

    /// Closes the trace: final staged spans (these stay in the in-memory
    /// report too, so they are *not* counted as flushed), a forced
    /// instrument sync, the SUMMARY record and the END marker.
    pub fn finish(
        &mut self,
        reg: &Registry,
        staged: &[Span],
        dropped: u64,
        by_kind: &[u64; SpanKind::COUNT],
        flushed: u64,
    ) -> io::Result<()> {
        if !staged.is_empty() {
            self.w.spans(staged)?;
        }
        self.emit_instruments(reg, true)?;
        self.w.summary(dropped, by_kind, flushed)?;
        self.w.end()
    }

    fn emit_instruments(&mut self, reg: &Registry, force: bool) -> io::Result<()> {
        let counters = reg.counters();
        let hists = reg.hists();
        let series = reg.all_series();
        self.counter_snap.resize(counters.len(), 0);
        self.hist_snap.resize_with(hists.len(), Histogram::new);
        self.series_sent.resize(series.len(), 0);

        for (i, (name, v)) in counters.iter().enumerate() {
            if force || *v != self.counter_snap[i] {
                self.w.counter(name, *v)?;
                self.counter_snap[i] = *v;
            }
        }
        for (i, (name, h)) in hists.iter().enumerate() {
            if force || *h != self.hist_snap[i] {
                let delta = h.delta_since(&self.hist_snap[i]);
                self.w.hist_delta(name, &delta)?;
                self.hist_snap[i] = h.clone();
            }
        }
        for (i, (name, s)) in series.iter().enumerate() {
            let total = s.total_pushed();
            let sent = self.series_sent[i];
            if total > sent {
                let window = s.samples();
                let first_retained = s.first_index();
                // Anything pushed before the retained window is gone; the
                // stream ticks every sample cycle, so in practice nothing
                // unsent is ever evicted.
                let from = sent.max(first_retained);
                self.w
                    .series(name, from, &window[(from - first_retained) as usize..])?;
                self.series_sent[i] = total;
            } else if force && total == 0 {
                // Materialize never-sampled series by name.
                self.w.series(name, 0, &[])?;
            }
        }
        Ok(())
    }

    /// Total bytes written, header included.
    pub fn bytes_written(&self) -> u64 {
        self.w.bytes_written()
    }

    /// Spans streamed out mid-run (excludes the final staged tail).
    pub fn spans_flushed(&self) -> u64 {
        self.spans_flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ObsReport;
    use crate::span::SpanRecorder;
    use crate::swtb::validate_trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A `Box<dyn Write>` sink the test keeps a handle on.
    #[derive(Clone, Default)]
    struct SharedBuf(Rc<RefCell<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn live_stream_reconstructs_the_full_run() {
        let mut reg = Registry::new(64, 8);
        let c = reg.counter("dispatches");
        let h = reg.hist("lat");
        let s = reg.series("occ");

        let buf = SharedBuf::default();
        let mut stream = SwtbStream::new(Box::new(buf.clone()), "fp16", 64).unwrap();
        let mut rec = SpanRecorder::new(2);
        rec.set_streaming(true);

        // Mimic the simulator: spans overflow the tiny staging buffer,
        // sample ticks stream instrument changes.
        let mut full_spans = Vec::new();
        for i in 0..7u64 {
            if rec.needs_flush() {
                stream.flush_spans(&rec.take_staged()).unwrap();
            }
            let span = Span {
                kind: SpanKind::SwExec,
                track: (i % 3) as u32,
                start: i * 10,
                end: i * 10 + 5,
                vpn: i,
                aux: 0,
            };
            rec.record(span);
            full_spans.push(span);
            reg.inc(c, 1);
            reg.observe(h, i * 100);
            reg.sample(s, i);
            stream.sample_tick(&reg).unwrap();
        }
        stream
            .finish(
                &reg,
                rec.spans(),
                rec.dropped(),
                rec.dropped_by_kind(),
                rec.flushed(),
            )
            .unwrap();

        assert_eq!(rec.dropped(), 0, "streaming staging never drops");
        assert!(rec.flushed() > 0, "tiny staging forced mid-run flushes");

        let bytes = buf.0.borrow();
        assert_eq!(stream.bytes_written(), bytes.len() as u64);
        let trace = validate_trace(&bytes).expect("valid");
        assert_eq!(trace.fingerprint, "fp16");
        assert_eq!(trace.report.spans, full_spans, "no span lost or reordered");
        assert_eq!(trace.report.spans_flushed, rec.flushed());
        assert_eq!(trace.report.spans_dropped, 0);

        // Instruments match a directly assembled report.
        let expected = ObsReport::from_instruments(reg, SpanRecorder::new(0));
        assert_eq!(trace.report.counters, expected.counters);
        assert_eq!(trace.report.histograms, expected.histograms);
        assert_eq!(trace.report.series, expected.series);
    }

    #[test]
    fn finish_materializes_untouched_instruments() {
        let mut reg = Registry::new(64, 8);
        reg.counter("quiet_counter");
        reg.hist("quiet_hist");
        reg.series("quiet_series");

        let buf = SharedBuf::default();
        let mut stream = SwtbStream::new(Box::new(buf.clone()), "fp", 64).unwrap();
        stream
            .finish(&reg, &[], 0, &[0; SpanKind::COUNT], 0)
            .unwrap();

        let bytes = buf.0.borrow();
        let trace = validate_trace(&bytes).expect("valid");
        assert_eq!(trace.report.counter("quiet_counter"), Some(0));
        assert!(trace.report.histogram("quiet_hist").is_some());
        assert!(trace.report.time_series("quiet_series").is_some());
    }
}
