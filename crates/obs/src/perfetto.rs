//! Chrome trace-event / Perfetto JSON export.
//!
//! The emitted document loads directly in [ui.perfetto.dev] (or
//! `chrome://tracing`): drag-and-drop the file, or use "Open trace file".
//! Spans become `"ph":"X"` complete events, instants become `"ph":"i"`,
//! and each sampled time-series becomes a `"ph":"C"` counter track.
//! Timestamps are simulated GPU cycles passed through as microseconds —
//! absolute units don't matter for inspection, relative durations do.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::report::ObsReport;
use crate::span::SpanKind;

/// Thread-id lane a span renders on: walk-lifecycle spans share per-kind
/// lanes, per-SM tracks get disjoint ranges so every SM is its own row.
fn tid_of(kind: SpanKind, track: u32) -> u64 {
    match kind {
        SpanKind::HwQueue | SpanKind::HwWalk => 1,
        SpanKind::PteRead => 2,
        SpanKind::Dispatch => 3,
        SpanKind::Fault => 4,
        SpanKind::FillRetry => 5,
        SpanKind::Prefetch => 6,
        SpanKind::PwWarpBusy => 100 + track as u64,
        SpanKind::SwQueue | SpanKind::SwPwbWait | SpanKind::SwExec => 200 + track as u64,
    }
}

fn lane_name(kind: SpanKind, track: u32) -> String {
    match kind {
        SpanKind::HwQueue | SpanKind::HwWalk => "HW PTW pool".to_string(),
        SpanKind::PteRead => "PTE reads".to_string(),
        SpanKind::Dispatch => "Distributor".to_string(),
        SpanKind::Fault => "Faults".to_string(),
        SpanKind::FillRetry => "Fill retries".to_string(),
        SpanKind::Prefetch => "Prefetches".to_string(),
        SpanKind::PwWarpBusy => format!("SM {track} PW-Warp issue"),
        SpanKind::SwQueue | SpanKind::SwPwbWait | SpanKind::SwExec => {
            format!("SM {track} SW walks")
        }
    }
}

/// Renders a report as a Chrome trace-event JSON document.
pub fn to_chrome_trace(report: &ObsReport) -> String {
    let mut out = String::with_capacity(8192 + report.spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };

    // Lane metadata: name each (pid, tid) pair once.
    let mut named: Vec<u64> = Vec::new();
    for s in &report.spans {
        let tid = tid_of(s.kind, s.track);
        if !named.contains(&tid) {
            named.push(tid);
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    lane_name(s.kind, s.track)
                ),
            );
        }
    }

    for s in &report.spans {
        let tid = tid_of(s.kind, s.track);
        let name = s.kind.name();
        if s.kind.is_instant() {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"walk\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"vpn\":{},\"aux\":{}}}}}",
                    s.start, s.vpn, s.aux
                ),
            );
        } else {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"walk\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"vpn\":{},\"aux\":{}}}}}",
                    s.start,
                    s.duration(),
                    s.vpn,
                    s.aux
                ),
            );
        }
    }

    for (name, series) in &report.series {
        let first_idx = series.first_index();
        for (i, v) in series.samples().iter().enumerate() {
            let ts = (first_idx + i as u64) * report.interval;
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"args\":{{\"value\":{v}}}}}",
                ),
            );
        }
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::registry::Registry;
    use crate::span::{Span, SpanRecorder};

    fn sample_report() -> ObsReport {
        let mut reg = Registry::new(64, 16);
        let s = reg.series("pwb_occupancy");
        for v in [1u64, 4, 2] {
            reg.sample(s, v);
        }
        let mut spans = SpanRecorder::new(16);
        spans.record(Span {
            kind: SpanKind::HwWalk,
            track: 0,
            start: 10,
            end: 300,
            vpn: 7,
            aux: 0,
        });
        spans.record(Span {
            kind: SpanKind::PwWarpBusy,
            track: 2,
            start: 5,
            end: 9,
            vpn: 0,
            aux: 0,
        });
        spans.instant(SpanKind::PteRead, 0, 42, 7, 3);
        ObsReport::from_instruments(reg, spans)
    }

    #[test]
    fn trace_is_valid_json_with_spans_and_counters() {
        let trace = to_chrome_trace(&sample_report());
        validate_json(&trace).expect("exporter must emit valid JSON");
        assert!(trace.contains("\"ph\":\"X\""), "complete spans present");
        assert!(trace.contains("\"ph\":\"C\""), "counter track present");
        assert!(trace.contains("\"ph\":\"i\""), "instants present");
        assert!(trace.contains("\"ph\":\"M\""), "lane names present");
        assert!(trace.contains("SM 2 PW-Warp issue"));
        assert!(trace.contains("pwb_occupancy"));
    }

    #[test]
    fn counter_timestamps_use_the_sampling_interval() {
        let trace = to_chrome_trace(&sample_report());
        assert!(trace.contains("\"ts\":0,"));
        assert!(trace.contains("\"ts\":64,"));
        assert!(trace.contains("\"ts\":128,"));
    }

    #[test]
    fn empty_report_still_exports_valid_json() {
        let trace = to_chrome_trace(&ObsReport::default());
        validate_json(&trace).expect("valid");
        assert!(trace.contains("\"traceEvents\":[]"));
    }
}
