//! A minimal JSON reader for the restricted grammar the exporters emit.
//!
//! The workspace deliberately vendors no serde; artifacts and traces are
//! hand-emitted. This module closes the loop on the *reading* side with a
//! small recursive-descent parser covering exactly what our emitters
//! produce — objects, arrays, unsigned integers, `-`-signed integers and
//! simple floats (accepted, surfaced as [`Value::Num`] via truncation for
//! integers only when exact), strings without escape sequences, booleans
//! and `null`. It doubles as the JSON well-formedness linter used by the
//! trace-export self-check in CI.

use std::fmt;

/// A parsed JSON value (restricted grammar; see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    Num(u64),
    /// A float (anything with `.`, `e`, or a sign that is not a u64).
    Float(f64),
    /// A string (no escape sequences).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the failure was detected at.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected byte '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| ParseError {
                            at: start,
                            msg: "invalid UTF-8 in string".into(),
                        })?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => return self.err("escape sequences are not supported"),
                Some(_) => self.pos += 1,
                None => return self.err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Num(n));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => self.err(format!("malformed number '{text}'")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(v)
}

/// Checks that `input` is a syntactically valid JSON document under this
/// module's grammar. Used by the trace-export self-check.
pub fn validate_json(input: &str) -> Result<(), ParseError> {
    parse(input).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":1,"b":[2,3,{"c":"x y"}],"d":{"e":[]},"f":true,"g":null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let b = v.get("b").and_then(Value::as_arr).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[2].get("c").and_then(Value::as_str), Some("x y"));
        assert_eq!(v.get("f"), Some(&Value::Bool(true)));
        assert_eq!(v.get("g"), Some(&Value::Null));
    }

    #[test]
    fn parses_floats_and_negatives() {
        let v = parse(r#"[1.5,-2,3e4]"#).unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0], Value::Float(1.5));
        assert_eq!(a[1], Value::Float(-2.0));
        assert_eq!(a[2], Value::Float(30000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":1").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unclosed").is_err());
        assert!(validate_json("[[[]]").is_err());
    }

    #[test]
    fn validates_whole_documents_only() {
        assert!(validate_json(" {\"ok\":[1,2,3]} \n").is_ok());
    }
}
