//! Cycle-stamped spans and instant events.

/// What a [`Span`] describes. Instant kinds have `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Hardware walk: issue → walker start (PWB queueing).
    HwQueue,
    /// Hardware walk: walker start → completion (page-table access).
    HwWalk,
    /// Software walk: issue → distributor dispatch.
    SwQueue,
    /// Software walk: SoftPWB arrival → PW-Warp thread pickup.
    SwPwbWait,
    /// Software walk: thread pickup → FL2T completion.
    SwExec,
    /// Instant: one page-table level decoded (`aux` = radix level).
    PteRead,
    /// PW Warp issue port busy interval (`track` = SM index).
    PwWarpBusy,
    /// Instant: distributor dispatched a walk to a core (`aux` = SM).
    Dispatch,
    /// Instant: a translation took the fault/driver-replay path.
    Fault,
    /// Instant: a fill watchdog re-issued a dropped driver fill
    /// completion (`aux` = retry number).
    FillRetry,
    /// Instant: the distributor issued a translation prefetch into an
    /// idle PW-Warp thread (`aux` = SM index).
    Prefetch,
}

impl SpanKind {
    /// Stable numeric code used by the serialized form.
    pub fn code(self) -> u64 {
        match self {
            SpanKind::HwQueue => 0,
            SpanKind::HwWalk => 1,
            SpanKind::SwQueue => 2,
            SpanKind::SwPwbWait => 3,
            SpanKind::SwExec => 4,
            SpanKind::PteRead => 5,
            SpanKind::PwWarpBusy => 6,
            SpanKind::Dispatch => 7,
            SpanKind::Fault => 8,
            SpanKind::FillRetry => 9,
            SpanKind::Prefetch => 10,
        }
    }

    /// Inverse of [`SpanKind::code`].
    pub fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            0 => SpanKind::HwQueue,
            1 => SpanKind::HwWalk,
            2 => SpanKind::SwQueue,
            3 => SpanKind::SwPwbWait,
            4 => SpanKind::SwExec,
            5 => SpanKind::PteRead,
            6 => SpanKind::PwWarpBusy,
            7 => SpanKind::Dispatch,
            8 => SpanKind::Fault,
            9 => SpanKind::FillRetry,
            10 => SpanKind::Prefetch,
            _ => return None,
        })
    }

    /// Human-readable name used by the Perfetto exporter.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::HwQueue => "hw_queue",
            SpanKind::HwWalk => "hw_walk",
            SpanKind::SwQueue => "sw_queue",
            SpanKind::SwPwbWait => "sw_pwb_wait",
            SpanKind::SwExec => "sw_exec",
            SpanKind::PteRead => "pte_read",
            SpanKind::PwWarpBusy => "pw_warp_busy",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Fault => "fault",
            SpanKind::FillRetry => "fill_retry",
            SpanKind::Prefetch => "prefetch",
        }
    }

    /// Whether this kind is an instant (zero-duration) event.
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            SpanKind::PteRead
                | SpanKind::Dispatch
                | SpanKind::Fault
                | SpanKind::FillRetry
                | SpanKind::Prefetch
        )
    }
}

/// One cycle-stamped interval (or instant) on a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What happened.
    pub kind: SpanKind,
    /// Track the span renders on: SM index for per-core events, 0 for
    /// subsystem-global ones.
    pub track: u32,
    /// Start cycle.
    pub start: u64,
    /// End cycle (== `start` for instants).
    pub end: u64,
    /// VPN involved, or 0 when not applicable.
    pub vpn: u64,
    /// Kind-specific payload (radix level, target SM, fault code).
    pub aux: u64,
}

impl Span {
    /// Duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A bounded span buffer: records up to `cap` spans and counts the rest
/// as dropped rather than growing without limit (the streaming-export
/// ROADMAP item lifts this).
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
    cap: usize,
    dropped: u64,
}

impl SpanRecorder {
    /// A recorder retaining at most `cap` spans.
    pub fn new(cap: usize) -> Self {
        Self {
            spans: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Records a span, or counts it dropped when at capacity.
    pub fn record(&mut self, span: Span) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Records an instant event at `at`.
    pub fn instant(&mut self, kind: SpanKind, track: u32, at: u64, vpn: u64, aux: u64) {
        self.record(Span {
            kind,
            track,
            start: at,
            end: at,
            vpn,
            aux,
        });
    }

    /// Retained spans in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the recorder, yielding `(spans, dropped)`.
    pub fn into_parts(self) -> (Vec<Span>, u64) {
        (self.spans, self.dropped)
    }
}

/// Coalesces per-cycle busy bits into [`SpanKind::PwWarpBusy`] intervals:
/// N consecutive busy cycles become one span instead of N.
#[derive(Debug, Clone, Copy)]
pub struct BusyTracker {
    track: u32,
    open: Option<(u64, u64)>,
}

impl BusyTracker {
    /// A tracker rendering onto `track`.
    pub fn new(track: u32) -> Self {
        Self { track, open: None }
    }

    /// Reports this cycle's busy bit. Closing a run emits its span.
    pub fn tick(&mut self, now: u64, busy: bool, out: &mut SpanRecorder) {
        match (self.open, busy) {
            (None, true) => self.open = Some((now, now)),
            (Some((start, last)), true) if now == last + 1 => {
                self.open = Some((start, now));
            }
            (Some(_), true) => {
                // Non-contiguous tick (the owner skipped cycles): close
                // the stale run and open a fresh one.
                self.flush(out);
                self.open = Some((now, now));
            }
            (Some(_), false) => self.flush(out),
            (None, false) => {}
        }
    }

    /// Closes any open run (end of simulation).
    pub fn flush(&mut self, out: &mut SpanRecorder) {
        if let Some((start, last)) = self.open.take() {
            out.record(Span {
                kind: SpanKind::PwWarpBusy,
                track: self.track,
                start,
                // A run of busy cycles [start, last] occupies the issue
                // port through the end of cycle `last`.
                end: last + 1,
                vpn: 0,
                aux: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=10u64 {
            let k = SpanKind::from_code(code).expect("valid code");
            assert_eq!(k.code(), code);
        }
        assert_eq!(SpanKind::from_code(99), None);
    }

    #[test]
    fn recorder_drops_beyond_capacity() {
        let mut r = SpanRecorder::new(2);
        for i in 0..5u64 {
            r.instant(SpanKind::Dispatch, 0, i, 0, 0);
        }
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn busy_tracker_coalesces_runs() {
        let mut r = SpanRecorder::new(16);
        let mut b = BusyTracker::new(3);
        for now in 0..10u64 {
            b.tick(now, (2..5).contains(&now) || (7..9).contains(&now), &mut r);
        }
        b.flush(&mut r);
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start, spans[0].end), (2, 5));
        assert_eq!((spans[1].start, spans[1].end), (7, 9));
        assert!(spans.iter().all(|s| s.track == 3));
    }

    #[test]
    fn busy_tracker_closes_on_gap() {
        let mut r = SpanRecorder::new(16);
        let mut b = BusyTracker::new(0);
        b.tick(0, true, &mut r);
        b.tick(5, true, &mut r); // gap: cycles 1..4 unobserved
        b.flush(&mut r);
        assert_eq!(r.spans().len(), 2);
        assert_eq!((r.spans()[0].start, r.spans()[0].end), (0, 1));
        assert_eq!((r.spans()[1].start, r.spans()[1].end), (5, 6));
    }
}
