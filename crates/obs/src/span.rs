//! Cycle-stamped spans and instant events.

/// What a [`Span`] describes. Instant kinds have `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Hardware walk: issue → walker start (PWB queueing).
    HwQueue,
    /// Hardware walk: walker start → completion (page-table access).
    HwWalk,
    /// Software walk: issue → distributor dispatch.
    SwQueue,
    /// Software walk: SoftPWB arrival → PW-Warp thread pickup.
    SwPwbWait,
    /// Software walk: thread pickup → FL2T completion.
    SwExec,
    /// Instant: one page-table level decoded (`aux` = radix level).
    PteRead,
    /// PW Warp issue port busy interval (`track` = SM index).
    PwWarpBusy,
    /// Instant: distributor dispatched a walk to a core (`aux` = SM).
    Dispatch,
    /// Instant: a translation took the fault/driver-replay path.
    Fault,
    /// Instant: a fill watchdog re-issued a dropped driver fill
    /// completion (`aux` = retry number).
    FillRetry,
    /// Instant: the distributor issued a translation prefetch into an
    /// idle PW-Warp thread (`aux` = SM index).
    Prefetch,
}

impl SpanKind {
    /// Number of distinct kinds (codes are `0..COUNT`).
    pub const COUNT: usize = 11;

    /// Every kind, in code order.
    pub const ALL: [SpanKind; Self::COUNT] = [
        SpanKind::HwQueue,
        SpanKind::HwWalk,
        SpanKind::SwQueue,
        SpanKind::SwPwbWait,
        SpanKind::SwExec,
        SpanKind::PteRead,
        SpanKind::PwWarpBusy,
        SpanKind::Dispatch,
        SpanKind::Fault,
        SpanKind::FillRetry,
        SpanKind::Prefetch,
    ];

    /// Stable numeric code used by the serialized form.
    pub fn code(self) -> u64 {
        match self {
            SpanKind::HwQueue => 0,
            SpanKind::HwWalk => 1,
            SpanKind::SwQueue => 2,
            SpanKind::SwPwbWait => 3,
            SpanKind::SwExec => 4,
            SpanKind::PteRead => 5,
            SpanKind::PwWarpBusy => 6,
            SpanKind::Dispatch => 7,
            SpanKind::Fault => 8,
            SpanKind::FillRetry => 9,
            SpanKind::Prefetch => 10,
        }
    }

    /// Inverse of [`SpanKind::code`].
    pub fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            0 => SpanKind::HwQueue,
            1 => SpanKind::HwWalk,
            2 => SpanKind::SwQueue,
            3 => SpanKind::SwPwbWait,
            4 => SpanKind::SwExec,
            5 => SpanKind::PteRead,
            6 => SpanKind::PwWarpBusy,
            7 => SpanKind::Dispatch,
            8 => SpanKind::Fault,
            9 => SpanKind::FillRetry,
            10 => SpanKind::Prefetch,
            _ => return None,
        })
    }

    /// Human-readable name used by the Perfetto exporter.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::HwQueue => "hw_queue",
            SpanKind::HwWalk => "hw_walk",
            SpanKind::SwQueue => "sw_queue",
            SpanKind::SwPwbWait => "sw_pwb_wait",
            SpanKind::SwExec => "sw_exec",
            SpanKind::PteRead => "pte_read",
            SpanKind::PwWarpBusy => "pw_warp_busy",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Fault => "fault",
            SpanKind::FillRetry => "fill_retry",
            SpanKind::Prefetch => "prefetch",
        }
    }

    /// Whether this kind is an instant (zero-duration) event.
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            SpanKind::PteRead
                | SpanKind::Dispatch
                | SpanKind::Fault
                | SpanKind::FillRetry
                | SpanKind::Prefetch
        )
    }
}

/// One cycle-stamped interval (or instant) on a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What happened.
    pub kind: SpanKind,
    /// Track the span renders on: SM index for per-core events, 0 for
    /// subsystem-global ones.
    pub track: u32,
    /// Start cycle.
    pub start: u64,
    /// End cycle (== `start` for instants).
    pub end: u64,
    /// VPN involved, or 0 when not applicable.
    pub vpn: u64,
    /// Kind-specific payload (radix level, target SM, fault code).
    pub aux: u64,
}

impl Span {
    /// Duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A bounded span buffer with two personalities:
///
/// * **Legacy (no sink):** records up to `cap` spans and counts the rest
///   as dropped (total and per kind) rather than growing without limit.
/// * **Streaming:** with a sink attached ([`SpanRecorder::set_streaming`])
///   the buffer is a small *staging area* — `record` never drops; instead
///   the owner drains full stagings to the sink via
///   [`SpanRecorder::take_staged`], so capacity bounds memory, not
///   fidelity.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
    cap: usize,
    dropped: u64,
    dropped_by_kind: [u64; SpanKind::COUNT],
    streaming: bool,
    flushed: u64,
}

impl SpanRecorder {
    /// A recorder retaining (or staging) at most `cap` spans.
    pub fn new(cap: usize) -> Self {
        Self {
            spans: Vec::new(),
            cap,
            dropped: 0,
            dropped_by_kind: [0; SpanKind::COUNT],
            streaming: false,
            flushed: 0,
        }
    }

    /// Switches the recorder into streaming-staging mode (or back).
    /// While streaming, `record` never drops — the owner is responsible
    /// for draining the staging buffer when [`SpanRecorder::needs_flush`]
    /// reports it full.
    pub fn set_streaming(&mut self, on: bool) {
        self.streaming = on;
    }

    /// Whether a streaming sink is attached.
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Whether the staging buffer has reached capacity and should be
    /// drained to the sink before the next `record`.
    pub fn needs_flush(&self) -> bool {
        self.streaming && self.spans.len() >= self.cap
    }

    /// Drains the staged spans for the sink, counting them as flushed.
    pub fn take_staged(&mut self) -> Vec<Span> {
        self.flushed += self.spans.len() as u64;
        std::mem::take(&mut self.spans)
    }

    /// Spans handed to the sink so far (0 means the in-memory span set
    /// is still complete).
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Records a span, or counts it dropped when at capacity (legacy
    /// mode only — a streaming recorder never drops).
    pub fn record(&mut self, span: Span) {
        if self.streaming || self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.dropped += 1;
            self.dropped_by_kind[span.kind.code() as usize] += 1;
        }
    }

    /// Records an instant event at `at`.
    pub fn instant(&mut self, kind: SpanKind, track: u32, at: u64, vpn: u64, aux: u64) {
        self.record(Span {
            kind,
            track,
            start: at,
            end: at,
            vpn,
            aux,
        });
    }

    /// Retained (or currently staged) spans in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-kind drop counters, indexed by [`SpanKind::code`].
    pub fn dropped_by_kind(&self) -> &[u64; SpanKind::COUNT] {
        &self.dropped_by_kind
    }

    /// Consumes the recorder, yielding
    /// `(spans, dropped, dropped_by_kind, flushed)`.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Vec<Span>, u64, [u64; SpanKind::COUNT], u64) {
        (self.spans, self.dropped, self.dropped_by_kind, self.flushed)
    }
}

/// Coalesces per-cycle busy bits into [`SpanKind::PwWarpBusy`] intervals:
/// N consecutive busy cycles become one span instead of N.
#[derive(Debug, Clone, Copy)]
pub struct BusyTracker {
    track: u32,
    open: Option<(u64, u64)>,
}

impl BusyTracker {
    /// A tracker rendering onto `track`.
    pub fn new(track: u32) -> Self {
        Self { track, open: None }
    }

    /// Reports this cycle's busy bit. Closing a run yields its span for
    /// the caller to record.
    pub fn tick(&mut self, now: u64, busy: bool) -> Option<Span> {
        match (self.open, busy) {
            (None, true) => {
                self.open = Some((now, now));
                None
            }
            (Some((start, last)), true) if now == last + 1 => {
                self.open = Some((start, now));
                None
            }
            (Some(_), true) => {
                // Non-contiguous tick (the owner skipped cycles): close
                // the stale run and open a fresh one.
                let closed = self.flush();
                self.open = Some((now, now));
                closed
            }
            (Some(_), false) => self.flush(),
            (None, false) => None,
        }
    }

    /// Closes any open run (end of simulation), yielding its span.
    pub fn flush(&mut self) -> Option<Span> {
        self.open.take().map(|(start, last)| Span {
            kind: SpanKind::PwWarpBusy,
            track: self.track,
            start,
            // A run of busy cycles [start, last] occupies the issue
            // port through the end of cycle `last`.
            end: last + 1,
            vpn: 0,
            aux: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=10u64 {
            let k = SpanKind::from_code(code).expect("valid code");
            assert_eq!(k.code(), code);
        }
        assert_eq!(SpanKind::from_code(99), None);
    }

    #[test]
    fn recorder_drops_beyond_capacity() {
        let mut r = SpanRecorder::new(2);
        for i in 0..5u64 {
            r.instant(SpanKind::Dispatch, 0, i, 0, 0);
        }
        r.instant(SpanKind::Fault, 0, 9, 0, 0);
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.dropped_by_kind()[SpanKind::Dispatch.code() as usize], 3);
        assert_eq!(r.dropped_by_kind()[SpanKind::Fault.code() as usize], 1);
    }

    #[test]
    fn streaming_recorder_stages_instead_of_dropping() {
        let mut r = SpanRecorder::new(2);
        r.set_streaming(true);
        for i in 0..3u64 {
            assert!(!r.needs_flush() || i >= 2);
            r.instant(SpanKind::Dispatch, 0, i, 0, 0);
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.spans().len(), 3, "staging grows past cap, never drops");
        assert!(r.needs_flush());
        let staged = r.take_staged();
        assert_eq!(staged.len(), 3);
        assert_eq!(r.flushed(), 3);
        assert!(r.spans().is_empty());
        assert!(!r.needs_flush());
    }

    #[test]
    fn all_kinds_match_their_codes() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k.code(), i as u64);
        }
        assert_eq!(SpanKind::ALL.len(), SpanKind::COUNT);
    }

    #[test]
    fn busy_tracker_coalesces_runs() {
        let mut r = SpanRecorder::new(16);
        let mut b = BusyTracker::new(3);
        for now in 0..10u64 {
            if let Some(s) = b.tick(now, (2..5).contains(&now) || (7..9).contains(&now)) {
                r.record(s);
            }
        }
        if let Some(s) = b.flush() {
            r.record(s);
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start, spans[0].end), (2, 5));
        assert_eq!((spans[1].start, spans[1].end), (7, 9));
        assert!(spans.iter().all(|s| s.track == 3));
    }

    #[test]
    fn busy_tracker_closes_on_gap() {
        let mut spans = Vec::new();
        let mut b = BusyTracker::new(0);
        spans.extend(b.tick(0, true));
        spans.extend(b.tick(5, true)); // gap: cycles 1..4 unobserved
        spans.extend(b.flush());
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start, spans[0].end), (0, 1));
        assert_eq!((spans[1].start, spans[1].end), (5, 6));
    }
}
