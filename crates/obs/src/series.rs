//! Ring-buffered sampled time-series.

/// A bounded ring buffer of periodic `u64` samples (occupancies, queue
/// depths) taken every `interval` cycles.
///
/// The series remembers how many samples were ever pushed, so after
/// wrap-around the retained window still reconstructs absolute sample
/// times: the i-th retained sample (0-based) was taken at cycle
/// `(first_index() + i) * interval`.
///
/// # Example
///
/// ```
/// use swgpu_obs::TimeSeries;
/// let mut s = TimeSeries::new(2);
/// s.push(10);
/// s.push(20);
/// s.push(30); // evicts the sample at index 0
/// assert_eq!(s.first_index(), 1);
/// assert_eq!(s.samples(), vec![20, 30]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    buf: Vec<u64>,
    cap: usize,
    /// Ring head: index in `buf` of the oldest retained sample.
    head: usize,
    /// Samples ever pushed (≥ retained length).
    pushed: u64,
}

impl TimeSeries {
    /// An empty series retaining at most `cap` samples (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        Self {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, value: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.cap;
        }
        self.pushed += 1;
    }

    /// Samples ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no samples were ever retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Global index of the oldest retained sample (0 until eviction).
    pub fn first_index(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Restores a series from its serialized window.
    pub fn from_parts(cap: usize, first_index: u64, samples: Vec<u64>) -> Self {
        let cap = cap.max(1).max(samples.len());
        let pushed = first_index + samples.len() as u64;
        Self {
            buf: samples,
            cap,
            head: 0,
            pushed,
        }
    }
}

/// Logical equality: two series are equal when they retain the same
/// window at the same global offset, regardless of internal ring
/// rotation (which a serialize/deserialize round trip normalizes away).
impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.pushed == other.pushed && self.samples() == other.samples()
    }
}

impl Eq for TimeSeries {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_in_order() {
        let mut s = TimeSeries::new(3);
        for v in 1..=5u64 {
            s.push(v * 10);
        }
        assert_eq!(s.samples(), vec![30, 40, 50]);
        assert_eq!(s.first_index(), 2);
        assert_eq!(s.total_pushed(), 5);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut s = TimeSeries::new(8);
        s.push(1);
        s.push(2);
        assert_eq!(s.samples(), vec![1, 2]);
        assert_eq!(s.first_index(), 0);
    }

    #[test]
    fn parts_round_trip_preserves_window() {
        let mut s = TimeSeries::new(4);
        for v in 0..9u64 {
            s.push(v);
        }
        let back = TimeSeries::from_parts(4, s.first_index(), s.samples());
        assert_eq!(back.samples(), s.samples());
        assert_eq!(back.first_index(), s.first_index());
    }
}
