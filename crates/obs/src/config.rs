//! Observability configuration.

/// Knobs for the observability layer. Disabled by default: a default
/// `ObsConfig` arms nothing, records nothing, and leaves simulation
/// byte-identical to a build without the layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. When false every other knob is ignored.
    pub enabled: bool,
    /// Cycles between occupancy samples (gauge → time-series).
    pub sample_interval: u64,
    /// Ring capacity of each sampled time-series.
    pub series_capacity: usize,
    /// Maximum retained spans; further spans are counted as dropped.
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            sample_interval: 1024,
            series_capacity: 4096,
            span_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// An enabled configuration with the default knobs — what the figure
    /// harnesses use.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Panics when an enabled configuration is inconsistent. A disabled
    /// configuration is always valid (its knobs are ignored).
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(self.sample_interval > 0, "obs sample interval must be > 0");
        assert!(self.series_capacity > 0, "obs series capacity must be > 0");
        assert!(self.span_capacity > 0, "obs span capacity must be > 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        c.validate();
    }

    #[test]
    fn disabled_config_ignores_bad_knobs() {
        let c = ObsConfig {
            enabled: false,
            sample_interval: 0,
            series_capacity: 0,
            span_capacity: 0,
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sample interval")]
    fn enabled_zero_interval_panics() {
        ObsConfig {
            sample_interval: 0,
            ..ObsConfig::enabled()
        }
        .validate();
    }
}
