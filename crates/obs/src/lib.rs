//! **swgpu-obs**: the cycle-accurate observability layer.
//!
//! The simulator's figures are *temporal* — walk timelines (Figure 9),
//! latency/stall breakdowns (Figures 7/8), and tail distributions
//! (Figure 18) — but aggregate end-of-run counters can't answer "what was
//! the PW-Warp doing at cycle 40k?". This crate provides the substrate
//! that can, with a strict zero-overhead-when-disabled contract:
//!
//! * [`SpanRecorder`] — bounded, cycle-stamped [`Span`]s for walk
//!   lifecycle phases, PW-Warp busy intervals ([`BusyTracker`]),
//!   per-level PTE reads, distributor dispatches and fault events.
//! * [`Registry`] — named counters, log2-bucketed [`Histogram`]s and
//!   ring-buffered [`TimeSeries`] behind cheap interned handles.
//! * [`ObsReport`] — the serializable end-of-run bundle, embedded in
//!   schema-v3 run artifacts with an exact JSON round trip.
//! * [`to_chrome_trace`] — Chrome trace-event / Perfetto JSON export,
//!   openable in <https://ui.perfetto.dev>.
//! * [`SwtbStream`] over the SWTB binary format ([`SwtbWriter`],
//!   [`read_trace`], [`validate_trace`]) — incremental, bounded-memory
//!   span/metric export during a run; with a sink attached the
//!   [`SpanRecorder`] becomes a small staging buffer that never drops.
//! * [`ObsConfig`] — the validated, fingerprint-participating knob block
//!   (`GpuConfig::obs`), off by default.
//!
//! The component crates (ptw, core) never depend on this crate: they
//! buffer tiny `swgpu_types::PteReadEvent`s when observation is armed,
//! and the full simulator drains those buffers into the recorder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hist;
pub mod json;
mod perfetto;
mod registry;
mod report;
mod series;
mod span;
mod stream;
mod swtb;

pub use config::ObsConfig;
pub use hist::{Histogram, HIST_BUCKETS};
pub use json::validate_json;
pub use perfetto::to_chrome_trace;
pub use registry::{CounterId, HistId, Registry, SeriesId};
pub use report::ObsReport;
pub use series::TimeSeries;
pub use span::{BusyTracker, Span, SpanKind, SpanRecorder};
pub use stream::SwtbStream;
pub use swtb::{
    read_trace, validate_trace, write_report, SwtbTrace, SwtbWriter, SWTB_MAGIC, SWTB_VERSION,
};
