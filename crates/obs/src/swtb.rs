//! SWTB: the **S**oft**W**alker **T**race **B**inary format.
//!
//! A compact, versioned, little-endian container for everything an
//! [`ObsReport`] holds, designed for *incremental* emission: a live run
//! appends self-contained records as spans complete and samples land, so
//! a trace is useful (and bounded-memory) long before the run finishes.
//!
//! ## Layout
//!
//! ```text
//! header  := "SWTB" u32:version u32:fp_len fp_bytes u64:interval
//! record  := u32:len u8:tag payload          (len covers tag + payload)
//! ```
//!
//! Record tags:
//!
//! | tag | name    | payload |
//! |-----|---------|---------|
//! | 1   | SPANS   | `u32:n` then n × (`u8:kind u32:track u64:start u64:end u64:vpn u64:aux`) |
//! | 2   | COUNTER | `u16:name_len name u64:value` — absolute, last wins |
//! | 3   | HIST    | `u16:name_len name u64:sum_delta u64:max u32:n` then n × (`u32:bucket u64:count_delta`) — deltas [`merge`](Histogram::merge)d in order; `max` is absolute |
//! | 4   | SERIES  | `u16:name_len name u64:first u32:n` then n × `u64:sample` — must be contiguous with what was already streamed |
//! | 5   | SUMMARY | `u64:spans_dropped u64:spans_flushed u8:n` then n × (`u8:kind u64:dropped`) |
//! | 6   | END     | empty — a trace without it was truncated |
//!
//! The header's fingerprint is the producing run's
//! `GpuConfig::fingerprint()`, so a trace is self-identifying against
//! the artifact cache. All multi-byte integers are little-endian.

use std::io::{self, Write};

use crate::hist::Histogram;
use crate::report::ObsReport;
use crate::series::TimeSeries;
use crate::span::{Span, SpanKind};

/// Current SWTB schema version.
pub const SWTB_VERSION: u32 = 1;

/// File magic, first four bytes of every trace.
pub const SWTB_MAGIC: [u8; 4] = *b"SWTB";

/// Spans per SPANS record when serializing a whole report.
const SPAN_BATCH: usize = 4096;

const TAG_SPANS: u8 = 1;
const TAG_COUNTER: u8 = 2;
const TAG_HIST: u8 = 3;
const TAG_SERIES: u8 = 4;
const TAG_SUMMARY: u8 = 5;
const TAG_END: u8 = 6;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_name(buf: &mut Vec<u8>, name: &str) {
    debug_assert!(name.len() <= u16::MAX as usize);
    put_u16(buf, name.len() as u16);
    buf.extend_from_slice(name.as_bytes());
}

/// Low-level record-at-a-time SWTB writer over any byte sink.
///
/// The writer is deliberately dumb: callers decide *when* to emit (that
/// is what keeps dense⇔event byte-identity — see [`crate::SwtbStream`]);
/// this type only knows *how*.
#[derive(Debug)]
pub struct SwtbWriter<W: Write> {
    w: W,
    bytes: u64,
    scratch: Vec<u8>,
}

impl<W: Write> SwtbWriter<W> {
    /// Opens a writer and emits the header.
    pub fn new(mut w: W, fingerprint: &str, interval: u64) -> io::Result<Self> {
        let mut head = Vec::with_capacity(24 + fingerprint.len());
        head.extend_from_slice(&SWTB_MAGIC);
        put_u32(&mut head, SWTB_VERSION);
        put_u32(&mut head, fingerprint.len() as u32);
        head.extend_from_slice(fingerprint.as_bytes());
        put_u64(&mut head, interval);
        w.write_all(&head)?;
        Ok(Self {
            w,
            bytes: head.len() as u64,
            scratch: Vec::new(),
        })
    }

    fn emit(&mut self, tag: u8) -> io::Result<()> {
        let len = (self.scratch.len() + 1) as u32;
        self.w.write_all(&len.to_le_bytes())?;
        self.w.write_all(&[tag])?;
        self.w.write_all(&self.scratch)?;
        self.bytes += 4 + 1 + self.scratch.len() as u64;
        self.scratch.clear();
        Ok(())
    }

    /// Emits one SPANS record (no internal batching).
    pub fn spans(&mut self, spans: &[Span]) -> io::Result<()> {
        let mut buf = std::mem::take(&mut self.scratch);
        put_u32(&mut buf, spans.len() as u32);
        for s in spans {
            buf.push(s.kind.code() as u8);
            put_u32(&mut buf, s.track);
            put_u64(&mut buf, s.start);
            put_u64(&mut buf, s.end);
            put_u64(&mut buf, s.vpn);
            put_u64(&mut buf, s.aux);
        }
        self.scratch = buf;
        self.emit(TAG_SPANS)
    }

    /// Emits a COUNTER record (absolute value; last record wins).
    pub fn counter(&mut self, name: &str, value: u64) -> io::Result<()> {
        let mut buf = std::mem::take(&mut self.scratch);
        put_name(&mut buf, name);
        put_u64(&mut buf, value);
        self.scratch = buf;
        self.emit(TAG_COUNTER)
    }

    /// Emits a HIST record carrying a delta histogram.
    pub fn hist_delta(&mut self, name: &str, delta: &Histogram) -> io::Result<()> {
        let mut buf = std::mem::take(&mut self.scratch);
        put_name(&mut buf, name);
        put_u64(&mut buf, delta.sum());
        put_u64(&mut buf, delta.max());
        let pairs: Vec<(usize, u64)> = delta.nonzero_buckets().collect();
        put_u32(&mut buf, pairs.len() as u32);
        for (idx, c) in pairs {
            put_u32(&mut buf, idx as u32);
            put_u64(&mut buf, c);
        }
        self.scratch = buf;
        self.emit(TAG_HIST)
    }

    /// Emits a SERIES record of samples starting at global index `first`.
    pub fn series(&mut self, name: &str, first: u64, samples: &[u64]) -> io::Result<()> {
        let mut buf = std::mem::take(&mut self.scratch);
        put_name(&mut buf, name);
        put_u64(&mut buf, first);
        put_u32(&mut buf, samples.len() as u32);
        for &v in samples {
            put_u64(&mut buf, v);
        }
        self.scratch = buf;
        self.emit(TAG_SERIES)
    }

    /// Emits the SUMMARY record.
    pub fn summary(
        &mut self,
        dropped: u64,
        by_kind: &[u64; SpanKind::COUNT],
        flushed: u64,
    ) -> io::Result<()> {
        let mut buf = std::mem::take(&mut self.scratch);
        put_u64(&mut buf, dropped);
        put_u64(&mut buf, flushed);
        let nonzero: Vec<(usize, u64)> = by_kind
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        buf.push(nonzero.len() as u8);
        for (i, n) in nonzero {
            buf.push(i as u8);
            put_u64(&mut buf, n);
        }
        self.scratch = buf;
        self.emit(TAG_SUMMARY)
    }

    /// Emits the END marker and flushes the sink.
    pub fn end(&mut self) -> io::Result<()> {
        self.emit(TAG_END)?;
        self.w.flush()
    }

    /// Total bytes written so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Serializes a complete [`ObsReport`] as a well-formed SWTB trace.
///
/// Used to synthesize trace files from cached artifacts (so a `--trace-out`
/// run that disk-hits still produces `.swtb` outputs) and by round-trip
/// tests. Returns the byte count written.
pub fn write_report<W: Write>(w: W, fingerprint: &str, report: &ObsReport) -> io::Result<u64> {
    let mut wr = SwtbWriter::new(w, fingerprint, report.interval)?;
    for chunk in report.spans.chunks(SPAN_BATCH) {
        wr.spans(chunk)?;
    }
    for (name, v) in &report.counters {
        wr.counter(name, *v)?;
    }
    for (name, h) in &report.histograms {
        wr.hist_delta(name, h)?;
    }
    for (name, s) in &report.series {
        wr.series(name, s.first_index(), &s.samples())?;
    }
    wr.summary(
        report.spans_dropped,
        &report.spans_dropped_by_kind,
        report.spans_flushed,
    )?;
    wr.end()?;
    Ok(wr.bytes_written())
}

/// A parsed SWTB trace: header metadata plus the reconstructed report.
#[derive(Debug, Clone, PartialEq)]
pub struct SwtbTrace {
    /// Schema version from the header.
    pub version: u32,
    /// Config fingerprint of the producing run.
    pub fingerprint: String,
    /// Total records parsed (END included).
    pub records: u64,
    /// SPANS records seen (how incremental the producer was).
    pub span_batches: u64,
    /// Whether the END marker was present (false ⇒ truncated trace).
    pub ended: bool,
    /// The report reassembled from all records.
    pub report: ObsReport,
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "unexpected end of trace at byte {} (wanted {n} more)",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn name(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 instrument name".to_string())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Named accumulators preserving first-appearance order.
struct Ordered<T>(Vec<(String, T)>);

impl<T> Ordered<T> {
    fn new() -> Self {
        Self(Vec::new())
    }

    fn entry(&mut self, name: String, init: impl FnOnce() -> T) -> &mut T {
        if let Some(i) = self.0.iter().position(|(n, _)| *n == name) {
            &mut self.0[i].1
        } else {
            self.0.push((name, init()));
            &mut self.0.last_mut().unwrap().1
        }
    }
}

/// Parses an SWTB byte stream and reconstructs its [`ObsReport`].
///
/// Structural problems (bad magic, unknown tags, invalid span kinds,
/// non-contiguous series records, trailing bytes after END) are errors;
/// a *missing* END is reported via [`SwtbTrace::ended`] so callers can
/// distinguish "truncated but salvageable" from "corrupt".
pub fn read_trace(bytes: &[u8]) -> Result<SwtbTrace, String> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(4)? != SWTB_MAGIC {
        return Err("not an SWTB trace (bad magic)".to_string());
    }
    let version = c.u32()?;
    if version != SWTB_VERSION {
        return Err(format!(
            "unsupported SWTB version {version} (reader speaks {SWTB_VERSION})"
        ));
    }
    let fp_len = c.u32()? as usize;
    let fingerprint = String::from_utf8(c.take(fp_len)?.to_vec())
        .map_err(|_| "non-UTF-8 fingerprint".to_string())?;
    let interval = c.u64()?;

    let mut spans: Vec<Span> = Vec::new();
    let mut counters: Ordered<u64> = Ordered::new();
    let mut hists: Ordered<Histogram> = Ordered::new();
    // name → (first_index, samples) with contiguity enforcement.
    let mut series: Ordered<(u64, Vec<u64>)> = Ordered::new();
    let mut dropped = 0u64;
    let mut flushed = 0u64;
    let mut by_kind = [0u64; SpanKind::COUNT];
    let (mut records, mut span_batches, mut ended) = (0u64, 0u64, false);

    while !c.done() {
        if ended {
            return Err(format!("{} trailing bytes after END", bytes.len() - c.pos));
        }
        let len = c.u32()? as usize;
        if len == 0 {
            return Err("zero-length record".to_string());
        }
        let body = c.take(len)?;
        let mut r = Cursor { buf: body, pos: 0 };
        let tag = r.u8()?;
        records += 1;
        match tag {
            TAG_SPANS => {
                span_batches += 1;
                let n = r.u32()?;
                for _ in 0..n {
                    let code = r.u8()? as u64;
                    let kind = SpanKind::from_code(code)
                        .ok_or_else(|| format!("invalid span kind code {code}"))?;
                    spans.push(Span {
                        kind,
                        track: r.u32()?,
                        start: r.u64()?,
                        end: r.u64()?,
                        vpn: r.u64()?,
                        aux: r.u64()?,
                    });
                }
            }
            TAG_COUNTER => {
                let name = r.name()?;
                let v = r.u64()?;
                *counters.entry(name, || 0) = v;
            }
            TAG_HIST => {
                let name = r.name()?;
                let sum = r.u64()?;
                let max = r.u64()?;
                let n = r.u32()?;
                let mut pairs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    pairs.push((r.u32()? as usize, r.u64()?));
                }
                let delta = Histogram::from_parts(&pairs, sum, max);
                hists.entry(name, Histogram::new).merge(&delta);
            }
            TAG_SERIES => {
                let name = r.name()?;
                let first = r.u64()?;
                let n = r.u32()?;
                let slot = series.entry(name.clone(), || (first, Vec::new()));
                let expect = slot.0 + slot.1.len() as u64;
                if first != expect {
                    return Err(format!(
                        "non-contiguous series record for {name}: first {first}, expected {expect}"
                    ));
                }
                for _ in 0..n {
                    slot.1.push(r.u64()?);
                }
            }
            TAG_SUMMARY => {
                dropped = r.u64()?;
                flushed = r.u64()?;
                let n = r.u8()?;
                by_kind = [0; SpanKind::COUNT];
                for _ in 0..n {
                    let code = r.u8()? as usize;
                    let count = r.u64()?;
                    if code >= SpanKind::COUNT {
                        return Err(format!("invalid span kind code {code} in summary"));
                    }
                    by_kind[code] = count;
                }
            }
            TAG_END => ended = true,
            other => return Err(format!("unknown record tag {other}")),
        }
        if !r.done() {
            return Err(format!(
                "record tag {tag} has {} undecoded payload bytes",
                body.len() - r.pos
            ));
        }
    }

    let spans_dropped = dropped;
    let report = ObsReport {
        interval,
        spans,
        spans_dropped,
        spans_dropped_by_kind: by_kind,
        spans_flushed: flushed,
        counters: counters.0,
        histograms: hists.0,
        series: series
            .0
            .into_iter()
            .map(|(name, (first, samples))| {
                let cap = samples.len();
                (name, TimeSeries::from_parts(cap, first, samples))
            })
            .collect(),
    };
    Ok(SwtbTrace {
        version,
        fingerprint,
        records,
        span_batches,
        ended,
        report,
    })
}

/// Strict validation: [`read_trace`] plus the invariants a complete,
/// well-formed trace must satisfy (END present, spans time-ordered
/// within themselves, instants zero-length).
pub fn validate_trace(bytes: &[u8]) -> Result<SwtbTrace, String> {
    let trace = read_trace(bytes)?;
    if !trace.ended {
        return Err("trace has no END marker (producer was interrupted)".to_string());
    }
    for (i, s) in trace.report.spans.iter().enumerate() {
        if s.start > s.end {
            return Err(format!(
                "span {i} ends ({}) before it starts ({})",
                s.end, s.start
            ));
        }
        if s.kind.is_instant() && s.start != s.end {
            return Err(format!("instant span {i} has non-zero duration"));
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::SpanRecorder;

    fn sample_report() -> ObsReport {
        let mut reg = Registry::new(128, 4);
        let c = reg.counter("dispatches");
        let c2 = reg.counter("pte_reads");
        let h = reg.hist("walk_total");
        let h2 = reg.hist("never_touched");
        let s = reg.series("occ");
        let _empty = reg.series("quiet");
        reg.inc(c, 17);
        let _ = c2;
        let _ = h2;
        for v in [3u64, 40, 400, 4000] {
            reg.observe(h, v);
        }
        for v in 0..6u64 {
            reg.sample(s, v * 2);
        }
        let mut spans = SpanRecorder::new(8);
        spans.record(Span {
            kind: SpanKind::HwWalk,
            track: 0,
            start: 10,
            end: 400,
            vpn: 99,
            aux: 0,
        });
        spans.instant(SpanKind::PteRead, 2, 55, 99, 3);
        spans.instant(SpanKind::Dispatch, 1, 60, 99, 1);
        ObsReport::from_instruments(reg, spans)
    }

    #[test]
    fn report_round_trips_through_swtb() {
        let report = sample_report();
        let mut buf = Vec::new();
        let bytes = write_report(&mut buf, "cafebabe01234567", &report).unwrap();
        assert_eq!(bytes, buf.len() as u64);
        let trace = validate_trace(&buf).expect("valid");
        assert_eq!(trace.version, SWTB_VERSION);
        assert_eq!(trace.fingerprint, "cafebabe01234567");
        assert!(trace.ended);
        assert_eq!(trace.report, report);
        // Canonical-JSON equality, the artifact-layer contract.
        assert_eq!(trace.report.to_json(), report.to_json());
    }

    #[test]
    fn empty_report_round_trips() {
        let report = ObsReport::default();
        let mut buf = Vec::new();
        write_report(&mut buf, "", &report).unwrap();
        let trace = validate_trace(&buf).expect("valid");
        assert_eq!(trace.report, report);
    }

    #[test]
    fn incremental_emission_equals_whole_report() {
        // Emitting the same content as many small records reconstructs
        // the same report as one big write.
        let report = sample_report();
        let mut buf = Vec::new();
        let mut w = SwtbWriter::new(&mut buf, "fp", report.interval).unwrap();
        for s in &report.spans {
            w.spans(std::slice::from_ref(s)).unwrap();
        }
        for (name, v) in &report.counters {
            w.counter(name, 0).unwrap(); // stale value, superseded below
            w.counter(name, *v).unwrap();
        }
        for (name, h) in &report.histograms {
            // Split each histogram into two deltas (the second carries
            // the absolute max, as a live stream's later delta would).
            let half =
                Histogram::from_parts(&h.nonzero_buckets().take(1).collect::<Vec<_>>(), 0, 0);
            w.hist_delta(name, &half).unwrap();
            w.hist_delta(name, &h.delta_since(&half)).unwrap();
        }
        for (name, s) in &report.series {
            let samples = s.samples();
            let first = s.first_index();
            let mid = samples.len() / 2;
            w.series(name, first, &samples[..mid]).unwrap();
            w.series(name, first + mid as u64, &samples[mid..]).unwrap();
        }
        w.summary(
            report.spans_dropped,
            &report.spans_dropped_by_kind,
            report.spans_flushed,
        )
        .unwrap();
        w.end().unwrap();
        let trace = validate_trace(&buf).expect("valid");
        assert_eq!(trace.report, report);
        assert_eq!(trace.span_batches, report.spans.len() as u64);
    }

    #[test]
    fn truncated_trace_is_not_ended() {
        let mut buf = Vec::new();
        write_report(&mut buf, "fp", &sample_report()).unwrap();
        // Chop off the END record (4-byte len + 1-byte tag).
        let cut = &buf[..buf.len() - 5];
        let trace = read_trace(cut).expect("parses without END");
        assert!(!trace.ended);
        assert!(validate_trace(cut).is_err());
        // Mid-record truncation is a hard parse error.
        assert!(read_trace(&buf[..buf.len() - 7]).is_err());
    }

    #[test]
    fn corrupt_traces_are_rejected() {
        assert!(read_trace(b"NOPE").is_err());
        assert!(read_trace(b"SWTB").is_err());
        let mut buf = Vec::new();
        write_report(&mut buf, "fp", &sample_report()).unwrap();
        let mut bad = buf.clone();
        bad[4] = 99; // version
        assert!(read_trace(&bad).is_err());
        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(read_trace(&trailing).is_err());
    }

    #[test]
    fn non_contiguous_series_is_rejected() {
        let mut buf = Vec::new();
        let mut w = SwtbWriter::new(&mut buf, "fp", 64).unwrap();
        w.series("occ", 0, &[1, 2]).unwrap();
        w.series("occ", 5, &[3]).unwrap(); // gap: expected first == 2
        w.end().unwrap();
        let err = read_trace(&buf).unwrap_err();
        assert!(err.contains("non-contiguous"), "{err}");
    }
}
