//! The serializable end-of-run observability report.

use crate::hist::Histogram;
use crate::json::{self, Value};
use crate::registry::Registry;
use crate::series::TimeSeries;
use crate::span::{Span, SpanKind, SpanRecorder};

/// Everything the observability layer recorded over a run: retained
/// spans, counters, histograms and sampled time-series. This is what gets
/// embedded (as the `"obs"` payload) in schema-v3 run artifacts and what
/// the Perfetto exporter renders.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Sampling interval the series were collected at, in cycles.
    pub interval: u64,
    /// Retained spans, in recording order.
    pub spans: Vec<Span>,
    /// Spans dropped because the recorder was at capacity.
    pub spans_dropped: u64,
    /// Per-kind breakdown of `spans_dropped`, indexed by
    /// [`SpanKind::code`].
    pub spans_dropped_by_kind: [u64; SpanKind::COUNT],
    /// Spans flushed to a streaming sink during the run. Non-zero means
    /// `spans` holds only the final staging tail — the complete span set
    /// lives in the SWTB file the sink wrote.
    pub spans_flushed: u64,
    /// Named counters, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Named histograms, in registration order.
    pub histograms: Vec<(String, Histogram)>,
    /// Named time-series, in registration order.
    pub series: Vec<(String, TimeSeries)>,
}

impl ObsReport {
    /// Assembles a report from a drained registry and span recorder.
    pub fn from_instruments(reg: Registry, spans: SpanRecorder) -> Self {
        let interval = reg.interval();
        let (counters, histograms, series) = reg.into_parts();
        let (spans, spans_dropped, spans_dropped_by_kind, spans_flushed) = spans.into_parts();
        Self {
            interval,
            spans,
            spans_dropped,
            spans_dropped_by_kind,
            spans_flushed,
            counters,
            histograms,
            series,
        }
    }

    /// Non-zero per-kind drop counts, in kind-code order.
    pub fn dropped_by_kind(&self) -> impl Iterator<Item = (SpanKind, u64)> + '_ {
        SpanKind::ALL
            .iter()
            .map(|&k| (k, self.spans_dropped_by_kind[k.code() as usize]))
            .filter(|&(_, n)| n > 0)
    }

    /// Whether the in-memory span set is complete (nothing was flushed
    /// to a streaming sink mid-run).
    pub fn spans_complete(&self) -> bool {
        self.spans_flushed == 0
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a time-series by name.
    pub fn time_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Serializes the report as a single nested JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.spans.len() * 24);
        out.push_str("{\"interval\":");
        out.push_str(&self.interval.to_string());
        out.push_str(",\"spans_dropped\":");
        out.push_str(&self.spans_dropped.to_string());
        out.push_str(",\"spans_dropped_by_kind\":{");
        for (i, (kind, n)) in self.dropped_by_kind().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{n}", kind.name()));
        }
        out.push_str("},\"spans_flushed\":");
        out.push_str(&self.spans_flushed.to_string());
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},{},{},{},{},{}]",
                s.kind.code(),
                s.track,
                s.start,
                s.end,
                s.vpn,
                s.aux
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"sum\":{},\"max\":{},\"buckets\":[",
                h.sum(),
                h.max()
            ));
            for (j, (idx, c)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{c}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"series\":{");
        for (i, (name, s)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"first\":{},\"samples\":[",
                s.first_index()
            ));
            for (j, v) in s.samples().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a report serialized by [`ObsReport::to_json`]. Returns
    /// `None` on any structural mismatch (the caller treats the artifact
    /// as stale and re-simulates).
    pub fn from_json(input: &str) -> Option<Self> {
        let root = json::parse(input).ok()?;
        let interval = root.get("interval")?.as_u64()?;
        let spans_dropped = root.get("spans_dropped")?.as_u64()?;
        let mut spans_dropped_by_kind = [0u64; SpanKind::COUNT];
        for (name, n) in root.get("spans_dropped_by_kind")?.as_obj()? {
            let kind = SpanKind::ALL.iter().find(|k| k.name() == name)?;
            spans_dropped_by_kind[kind.code() as usize] = n.as_u64()?;
        }
        let spans_flushed = root.get("spans_flushed")?.as_u64()?;

        let mut spans = Vec::new();
        for item in root.get("spans")?.as_arr()? {
            let f = item.as_arr()?;
            if f.len() != 6 {
                return None;
            }
            let nums: Vec<u64> = f.iter().map(Value::as_u64).collect::<Option<_>>()?;
            spans.push(Span {
                kind: SpanKind::from_code(nums[0])?,
                track: u32::try_from(nums[1]).ok()?,
                start: nums[2],
                end: nums[3],
                vpn: nums[4],
                aux: nums[5],
            });
        }

        let mut counters = Vec::new();
        for (name, v) in root.get("counters")?.as_obj()? {
            counters.push((name.clone(), v.as_u64()?));
        }

        let mut histograms = Vec::new();
        for (name, h) in root.get("hists")?.as_obj()? {
            let sum = h.get("sum")?.as_u64()?;
            let max = h.get("max")?.as_u64()?;
            let mut pairs = Vec::new();
            for pair in h.get("buckets")?.as_arr()? {
                let p = pair.as_arr()?;
                if p.len() != 2 {
                    return None;
                }
                pairs.push((p[0].as_u64()? as usize, p[1].as_u64()?));
            }
            histograms.push((name.clone(), Histogram::from_parts(&pairs, sum, max)));
        }

        let mut series = Vec::new();
        for (name, s) in root.get("series")?.as_obj()? {
            let first = s.get("first")?.as_u64()?;
            let samples: Vec<u64> = s
                .get("samples")?
                .as_arr()?
                .iter()
                .map(Value::as_u64)
                .collect::<Option<_>>()?;
            let cap = samples.len();
            series.push((name.clone(), TimeSeries::from_parts(cap, first, samples)));
        }

        Some(Self {
            interval,
            spans,
            spans_dropped,
            spans_dropped_by_kind,
            spans_flushed,
            counters,
            histograms,
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        let mut reg = Registry::new(128, 4);
        let c = reg.counter("dispatches");
        let h = reg.hist("walk_total");
        let s = reg.series("pwb_occupancy");
        reg.inc(c, 17);
        for v in [3u64, 40, 400, 4000] {
            reg.observe(h, v);
        }
        for v in 0..6u64 {
            reg.sample(s, v * 2);
        }
        let mut spans = SpanRecorder::new(8);
        spans.record(Span {
            kind: SpanKind::HwWalk,
            track: 0,
            start: 10,
            end: 400,
            vpn: 99,
            aux: 0,
        });
        spans.instant(SpanKind::PteRead, 2, 55, 99, 3);
        ObsReport::from_instruments(reg, spans)
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let json = report.to_json();
        let back = ObsReport::from_json(&json).expect("parses");
        assert_eq!(back, report);
        // Serialization is canonical: re-serializing is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = ObsReport::default();
        let back = ObsReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn truncated_json_is_rejected() {
        let json = sample_report().to_json();
        assert!(ObsReport::from_json(&json[..json.len() - 3]).is_none());
        assert!(ObsReport::from_json("{}").is_none());
    }

    #[test]
    fn lookups_find_named_instruments() {
        let report = sample_report();
        assert_eq!(report.counter("dispatches"), Some(17));
        assert_eq!(report.histogram("walk_total").unwrap().count(), 4);
        assert_eq!(report.time_series("pwb_occupancy").unwrap().len(), 4);
        assert!(report.counter("missing").is_none());
    }

    #[test]
    fn drop_breakdown_and_flush_count_round_trip() {
        let mut spans = SpanRecorder::new(1);
        spans.instant(SpanKind::Dispatch, 0, 1, 0, 0);
        spans.instant(SpanKind::Dispatch, 0, 2, 0, 0);
        spans.instant(SpanKind::Fault, 0, 3, 0, 0);
        let mut report = ObsReport::from_instruments(Registry::new(64, 4), spans);
        report.spans_flushed = 17;
        assert_eq!(report.spans_dropped, 2);
        assert!(!report.spans_complete());
        let back = ObsReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
        assert_eq!(
            back.dropped_by_kind().collect::<Vec<_>>(),
            vec![(SpanKind::Dispatch, 1), (SpanKind::Fault, 1)]
        );
        assert_eq!(back.spans_flushed, 17);
    }

    #[test]
    fn series_window_survives_round_trip() {
        let report = sample_report();
        let back = ObsReport::from_json(&report.to_json()).unwrap();
        let s = back.time_series("pwb_occupancy").unwrap();
        assert_eq!(s.first_index(), 2, "ring evicted the first two samples");
        assert_eq!(s.samples(), vec![4, 6, 8, 10]);
    }
}
