//! The Table 4 benchmark registry.

use crate::pattern::Pattern;
use crate::workload::{Workload, WorkloadParams};

/// Irregular vs. regular, by the paper's criterion: irregular workloads
/// need more than 32 concurrent page walkers to hide queueing delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// High L2 TLB MPKI; requires 256–1024 PTWs (top of Table 4).
    Irregular,
    /// Minimal TLB pressure; 32 PTWs suffice (bottom of Table 4).
    Regular,
}

/// One benchmark row of Table 4, plus the synthetic pattern standing in
/// for its SASS trace.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkSpec {
    /// Full benchmark name as in Table 4.
    pub name: &'static str,
    /// Table 4 abbreviation (used everywhere in figures).
    pub abbr: &'static str,
    /// Irregular / regular classification.
    pub class: WorkloadClass,
    /// Memory footprint in MB (Table 4).
    pub footprint_mb: u64,
    /// L2 TLB misses per kilo-instruction the paper measured (reference
    /// only; our synthetic streams are checked for regime, not digits).
    pub paper_mpki: f64,
    /// Concurrent page walkers the paper found the benchmark needs.
    pub paper_required_ptws: u32,
    /// Whether the footprint can be scaled beyond 2 MB-page L2 TLB
    /// coverage — the 10 benchmarks used in Figures 6 and 25.
    pub scalable: bool,
    /// Synthetic address-stream family.
    pub pattern: Pattern,
    /// Dependency-latency cycles of the compute instruction between
    /// successive loads (models arithmetic intensity).
    pub compute_cycles: u32,
}

impl BenchmarkSpec {
    /// Instantiates the workload generator for this benchmark.
    pub fn build(&self, params: WorkloadParams) -> Workload {
        Workload::new(*self, params)
    }

    /// Mapped bytes a run at `footprint_percent` of the Table 4 footprint
    /// needs, floored at 16 pages so even tiny quick-test scalings map
    /// something. This is *the* footprint formula — `Workload::new` uses
    /// it, and the experiment runner keys its shared page-table prebuild
    /// store on the value, so cells with equal results here can share one
    /// built page table.
    pub fn footprint_bytes(&self, footprint_percent: u64, page_size: swgpu_types::PageSize) -> u64 {
        (self.footprint_mb * 1024 * 1024 * footprint_percent / 100).max(page_size.bytes() * 16)
    }
}

const KB64: u64 = 64 * 1024;

/// The full 20-benchmark registry of Table 4, irregular first.
pub fn table4() -> Vec<BenchmarkSpec> {
    vec![
        // ---- Irregular (required PTWs > 32) ----
        BenchmarkSpec {
            name: "betweenness centr",
            abbr: "bc",
            class: WorkloadClass::Irregular,
            footprint_mb: 1194,
            paper_mpki: 9.0819,
            paper_required_ptws: 256,
            scalable: true,
            pattern: Pattern::Gather {
                hot_permille: 500,
                hot_divisor: 512,
            },
            compute_cycles: 24,
        },
        BenchmarkSpec {
            name: "degree centr",
            abbr: "dc",
            class: WorkloadClass::Irregular,
            footprint_mb: 1138,
            paper_mpki: 26.17,
            paper_required_ptws: 512,
            scalable: true,
            pattern: Pattern::Gather {
                hot_permille: 350,
                hot_divisor: 256,
            },
            compute_cycles: 12,
        },
        BenchmarkSpec {
            name: "sssp",
            abbr: "sssp",
            class: WorkloadClass::Irregular,
            footprint_mb: 1788,
            paper_mpki: 30.2808,
            paper_required_ptws: 512,
            scalable: true,
            pattern: Pattern::Gather {
                hot_permille: 300,
                hot_divisor: 256,
            },
            compute_cycles: 10,
        },
        BenchmarkSpec {
            name: "graph coloring",
            abbr: "gc",
            class: WorkloadClass::Irregular,
            footprint_mb: 1294,
            paper_mpki: 13.7029,
            paper_required_ptws: 256,
            scalable: true,
            pattern: Pattern::Gather {
                hot_permille: 450,
                hot_divisor: 384,
            },
            compute_cycles: 18,
        },
        BenchmarkSpec {
            name: "nw",
            abbr: "nw",
            class: WorkloadClass::Irregular,
            footprint_mb: 612,
            paper_mpki: 44.5329,
            paper_required_ptws: 512,
            scalable: true,
            pattern: Pattern::Wavefront { row_bytes: KB64 },
            compute_cycles: 8,
        },
        BenchmarkSpec {
            name: "stencil2d",
            abbr: "st2d",
            class: WorkloadClass::Irregular,
            footprint_mb: 612,
            paper_mpki: 4.8493,
            paper_required_ptws: 256,
            scalable: false,
            pattern: Pattern::Stencil {
                rows: 4,
                row_bytes: KB64,
            },
            compute_cycles: 20,
        },
        BenchmarkSpec {
            name: "xsbench",
            abbr: "xsb",
            class: WorkloadClass::Irregular,
            footprint_mb: 360,
            paper_mpki: 57.9595,
            paper_required_ptws: 512,
            scalable: true,
            pattern: Pattern::Gather {
                hot_permille: 120,
                hot_divisor: 64,
            },
            compute_cycles: 8,
        },
        BenchmarkSpec {
            name: "bfs",
            abbr: "bfs",
            class: WorkloadClass::Irregular,
            footprint_mb: 1396,
            paper_mpki: 22.1519,
            paper_required_ptws: 256,
            scalable: true,
            pattern: Pattern::Gather {
                hot_permille: 400,
                hot_divisor: 256,
            },
            compute_cycles: 14,
        },
        BenchmarkSpec {
            name: "syr2k",
            abbr: "sy2k",
            class: WorkloadClass::Irregular,
            footprint_mb: 192,
            paper_mpki: 120.696,
            paper_required_ptws: 1024,
            scalable: false,
            pattern: Pattern::Wavefront { row_bytes: KB64 },
            compute_cycles: 4,
        },
        BenchmarkSpec {
            name: "spmv",
            abbr: "spmv",
            class: WorkloadClass::Irregular,
            footprint_mb: 288,
            paper_mpki: 2517.196,
            paper_required_ptws: 512,
            scalable: true,
            pattern: Pattern::SetSkewedGather {
                distinct_sets: 8,
                skew_permille: 700,
            },
            compute_cycles: 2,
        },
        BenchmarkSpec {
            name: "gesummv",
            abbr: "gesv",
            class: WorkloadClass::Irregular,
            footprint_mb: 226,
            paper_mpki: 1320.543,
            paper_required_ptws: 512,
            scalable: true,
            pattern: Pattern::Wavefront {
                row_bytes: 2 * KB64,
            },
            compute_cycles: 2,
        },
        BenchmarkSpec {
            name: "gups",
            abbr: "gups",
            class: WorkloadClass::Irregular,
            footprint_mb: 308,
            paper_mpki: 318.8202,
            paper_required_ptws: 1024,
            scalable: true,
            pattern: Pattern::Gather {
                hot_permille: 0,
                hot_divisor: 1,
            },
            compute_cycles: 2,
        },
        // ---- Regular (required PTWs <= 32) ----
        BenchmarkSpec {
            name: "connected comp",
            abbr: "cc",
            class: WorkloadClass::Regular,
            footprint_mb: 2306,
            paper_mpki: 0.1309,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 20,
        },
        BenchmarkSpec {
            name: "kcore",
            abbr: "kc",
            class: WorkloadClass::Regular,
            footprint_mb: 1152,
            paper_mpki: 0.5271,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 18,
        },
        BenchmarkSpec {
            name: "2dconv",
            abbr: "2dc",
            class: WorkloadClass::Regular,
            footprint_mb: 1120,
            paper_mpki: 0.0767,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 26,
        },
        BenchmarkSpec {
            name: "fft",
            abbr: "fft",
            class: WorkloadClass::Regular,
            footprint_mb: 610,
            paper_mpki: 0.077,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 24,
        },
        BenchmarkSpec {
            name: "histogram",
            abbr: "histo",
            class: WorkloadClass::Regular,
            footprint_mb: 1124,
            paper_mpki: 0.0976,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 16,
        },
        BenchmarkSpec {
            name: "reduction",
            abbr: "red",
            class: WorkloadClass::Regular,
            footprint_mb: 1124,
            paper_mpki: 0.3383,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 12,
        },
        BenchmarkSpec {
            name: "scan",
            abbr: "scan",
            class: WorkloadClass::Regular,
            footprint_mb: 516,
            paper_mpki: 0.1458,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 14,
        },
        BenchmarkSpec {
            name: "gemm",
            abbr: "gemm",
            class: WorkloadClass::Regular,
            footprint_mb: 288,
            paper_mpki: 0.0614,
            paper_required_ptws: 32,
            scalable: false,
            pattern: Pattern::Streaming,
            compute_cycles: 28,
        },
    ]
}

/// The 12 irregular benchmarks.
pub fn irregular() -> Vec<BenchmarkSpec> {
    table4()
        .into_iter()
        .filter(|b| b.class == WorkloadClass::Irregular)
        .collect()
}

/// The 8 regular benchmarks.
pub fn regular() -> Vec<BenchmarkSpec> {
    table4()
        .into_iter()
        .filter(|b| b.class == WorkloadClass::Regular)
        .collect()
}

/// Looks up a benchmark by its Table 4 abbreviation.
pub fn by_abbr(abbr: &str) -> Option<BenchmarkSpec> {
    table4().into_iter().find(|b| b.abbr == abbr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table4_shape() {
        let all = table4();
        assert_eq!(all.len(), 20);
        assert_eq!(irregular().len(), 12);
        assert_eq!(regular().len(), 8);
    }

    #[test]
    fn abbreviations_are_unique() {
        let all = table4();
        let mut abbrs: Vec<_> = all.iter().map(|b| b.abbr).collect();
        abbrs.sort_unstable();
        abbrs.dedup();
        assert_eq!(abbrs.len(), 20);
    }

    #[test]
    fn classification_follows_required_ptws() {
        for b in table4() {
            match b.class {
                WorkloadClass::Irregular => assert!(b.paper_required_ptws > 32, "{}", b.abbr),
                WorkloadClass::Regular => assert_eq!(b.paper_required_ptws, 32, "{}", b.abbr),
            }
        }
    }

    #[test]
    fn ten_scalable_benchmarks() {
        assert_eq!(table4().iter().filter(|b| b.scalable).count(), 10);
    }

    #[test]
    fn lookup_by_abbr() {
        assert_eq!(by_abbr("gups").unwrap().footprint_mb, 308);
        assert!(by_abbr("nope").is_none());
    }

    #[test]
    fn footprint_helper_matches_workload() {
        use swgpu_types::PageSize;
        for b in table4() {
            for pct in [1, 5, 100] {
                let params = WorkloadParams {
                    footprint_percent: pct,
                    page_size: PageSize::Size64K,
                    ..WorkloadParams::default()
                };
                let wl = b.build(params);
                assert_eq!(
                    wl.footprint_bytes(),
                    b.footprint_bytes(pct, PageSize::Size64K),
                    "{} at {pct}%",
                    b.abbr
                );
            }
        }
        // The 16-page floor kicks in for tiny scalings.
        let gups = by_abbr("gups").unwrap();
        assert_eq!(
            gups.footprint_bytes(0, swgpu_types::PageSize::Size2M),
            16 * swgpu_types::PageSize::Size2M.bytes()
        );
    }

    #[test]
    fn irregular_mpki_dominates_regular() {
        let min_irr = irregular()
            .iter()
            .map(|b| b.paper_mpki)
            .fold(f64::INFINITY, f64::min);
        let max_reg = regular().iter().map(|b| b.paper_mpki).fold(0.0, f64::max);
        assert!(min_irr > max_reg);
    }
}
