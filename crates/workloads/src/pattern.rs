//! Address-stream pattern families.

use swgpu_types::{VirtAddr, LANES_PER_WARP};

/// Deterministic 64-bit mixer (SplitMix64 finalizer) used for all
/// "randomness" in workload generation — reproducible and stateless.
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A page-level access-pattern family. Each variant generates the lane
/// addresses of one warp load given the warp's identity and a step
/// counter; see the crate docs for which benchmarks map to which family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Coalesced sequential sweep: warp `w`'s step `s` reads 128
    /// consecutive bytes at its private slice. One page per access.
    Streaming,
    /// Coalesced rows visited with a page-sized (or larger) stride: each
    /// access touches a fresh page (sy2k, gesv).
    StridedSweep {
        /// Bytes between consecutive accesses of one warp.
        stride_bytes: u64,
    },
    /// A vertical stencil: lanes split across `rows` rows that are
    /// `row_bytes` apart, so one access touches `rows` pages when rows
    /// exceed the page size (st2d).
    Stencil {
        /// Number of rows read per access.
        rows: u8,
        /// Bytes per matrix row.
        row_bytes: u64,
    },
    /// Per-lane random gathers. With probability `hot_permille`/1000 a
    /// lane stays in a small hot region (frontier locality of graph
    /// kernels); otherwise it lands anywhere in the footprint.
    Gather {
        /// Probability (in permille) of a hot-region access.
        hot_permille: u16,
        /// Hot region size as a divisor of the footprint (e.g. 64 ⇒
        /// footprint/64 bytes of hot data).
        hot_divisor: u64,
    },
    /// Gathers with a per-set hot spot: `skew_permille`/1000 of lanes land
    /// on pages confined to `distinct_sets` L2 TLB set indices (64 sets at
    /// 1024 entries / 16 ways), the rest anywhere — the spmv pathology
    /// whose In-TLB reservations pile up in a few sets (Figure 24).
    SetSkewedGather {
        /// Number of distinct L2 TLB sets the skewed pages fall into.
        distinct_sets: u64,
        /// Probability (permille) that a lane accesses the skewed sets.
        skew_permille: u16,
    },
    /// Anti-diagonal wavefront: lane `i` reads row `base_row + i`, so each
    /// lane is on its own page when rows are page-sized (nw).
    Wavefront {
        /// Bytes per matrix row.
        row_bytes: u64,
    },
}

/// Number of L2 TLB sets assumed by [`Pattern::SetSkewedGather`] (1024
/// entries, 16-way — Table 3).
pub(crate) const L2_TLB_SETS: u64 = 64;

impl Pattern {
    /// Generates the lane addresses of one warp load.
    ///
    /// * `footprint` — mapped bytes available (addresses stay inside).
    /// * `warp_seed` — globally unique *mixed* warp identity (randomness).
    /// * `warp_global` — raw global warp index (structured locality).
    /// * `warps_per_sm` — co-resident warps (CTA tiling for streaming).
    /// * `step` — the warp's memory-instruction counter.
    /// * `page_bytes` — translation granularity (used by set-skewed
    ///   generation to align to pages).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn lane_addrs(
        &self,
        footprint: u64,
        warp_seed: u64,
        warp_global: u64,
        warps_per_sm: u64,
        step: u64,
        page_bytes: u64,
    ) -> Vec<VirtAddr> {
        let lanes = LANES_PER_WARP as u64;
        match *self {
            Pattern::Streaming => {
                // CTA tiling: each SM streams a contiguous slice, and its
                // resident warps walk *adjacent* 128-byte chunks — so the
                // whole SM works within one page at a time and the L1 TLB
                // almost always hits (the paper's regular-app regime).
                let wps = warps_per_sm.max(1);
                let sm = warp_global / wps;
                let warp_in_sm = warp_global % wps;
                let slice_base = (sm.wrapping_mul(0x1000_0000)) % footprint;
                let chunk = step * wps + warp_in_sm;
                let off = (slice_base + chunk * 128) % footprint;
                (0..lanes)
                    .map(|l| VirtAddr::new((off + l * 4) % footprint))
                    .collect()
            }
            Pattern::StridedSweep { stride_bytes } => {
                let start = mix(warp_seed) % footprint;
                let off = (start + step * stride_bytes) % footprint;
                (0..lanes)
                    .map(|l| VirtAddr::new((off + l * 4) % footprint))
                    .collect()
            }
            Pattern::Stencil { rows, row_bytes } => {
                let total_rows = (footprint / row_bytes).max(rows as u64);
                let row0 = (mix(warp_seed) + step) % total_rows;
                let col = (step * 128) % row_bytes;
                let lanes_per_row = lanes / rows as u64;
                (0..lanes)
                    .map(|l| {
                        let r = (row0 + l / lanes_per_row.max(1)) % total_rows;
                        let addr =
                            r * row_bytes + (col + (l % lanes_per_row.max(1)) * 4) % row_bytes;
                        VirtAddr::new(addr % footprint)
                    })
                    .collect()
            }
            Pattern::Gather {
                hot_permille,
                hot_divisor,
            } => {
                let hot_bytes = (footprint / hot_divisor.max(1)).max(4096);
                (0..lanes)
                    .map(|l| {
                        let h = mix(warp_seed ^ (step << 8) ^ l);
                        let addr = if (h % 1000) < u64::from(hot_permille) {
                            mix(h) % hot_bytes
                        } else {
                            mix(h ^ 0xABCD) % footprint
                        };
                        VirtAddr::new(addr & !3)
                    })
                    .collect()
            }
            Pattern::SetSkewedGather {
                distinct_sets,
                skew_permille,
            } => {
                let pages = (footprint / page_bytes).max(1);
                (0..lanes)
                    .map(|l| {
                        let h = mix(warp_seed ^ (step << 8) ^ l);
                        let page = if (h % 1000) < u64::from(skew_permille) {
                            // Constrain the page index so vpn % 64 takes
                            // only `distinct_sets` values.
                            let set = h % distinct_sets.max(1);
                            let group = mix(h) % pages.div_ceil(L2_TLB_SETS).max(1);
                            (group * L2_TLB_SETS + set) % pages
                        } else {
                            mix(h ^ 0x5EED) % pages
                        };
                        VirtAddr::new(page * page_bytes + ((mix(h ^ 7) % page_bytes) & !3))
                    })
                    .collect()
            }
            Pattern::Wavefront { row_bytes } => {
                let total_rows = (footprint / row_bytes).max(lanes);
                let base_row = (mix(warp_seed) + step) % total_rows;
                let col = mix(warp_seed ^ step) % (row_bytes / 4);
                (0..lanes)
                    .map(|l| {
                        let r = (base_row + l) % total_rows;
                        VirtAddr::new((r * row_bytes + col * 4) % footprint)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use swgpu_types::PageSize;

    const FOOT: u64 = 256 * 1024 * 1024; // 256 MB
    const PAGE: u64 = 64 * 1024;

    fn distinct_pages(addrs: &[VirtAddr]) -> usize {
        addrs
            .iter()
            .map(|a| a.value() / PAGE)
            .collect::<BTreeSet<_>>()
            .len()
    }

    #[test]
    fn streaming_is_coalesced() {
        let p = Pattern::Streaming;
        for step in 0..50 {
            let addrs = p.lane_addrs(FOOT, 3, 3, 16, step, PAGE);
            assert!(distinct_pages(&addrs) <= 2, "step {step}");
        }
    }

    #[test]
    fn gather_is_divergent() {
        let p = Pattern::Gather {
            hot_permille: 0,
            hot_divisor: 1,
        };
        let addrs = p.lane_addrs(FOOT, 3, 3, 16, 0, PAGE);
        assert!(distinct_pages(&addrs) >= 28, "{}", distinct_pages(&addrs));
    }

    #[test]
    fn hot_gather_has_locality() {
        let p = Pattern::Gather {
            hot_permille: 900,
            hot_divisor: 4096,
        };
        let hot_bytes = FOOT / 4096;
        let mut hot_hits = 0;
        let mut total = 0;
        for step in 0..100 {
            for a in p.lane_addrs(FOOT, 5, 5, 16, step, PAGE) {
                total += 1;
                if a.value() < hot_bytes {
                    hot_hits += 1;
                }
            }
        }
        let frac = hot_hits as f64 / total as f64;
        assert!(frac > 0.8, "hot fraction {frac}");
    }

    #[test]
    fn wavefront_one_page_per_lane() {
        let p = Pattern::Wavefront { row_bytes: PAGE };
        let addrs = p.lane_addrs(FOOT, 1, 1, 16, 7, PAGE);
        assert_eq!(distinct_pages(&addrs), 32);
    }

    #[test]
    fn set_skew_concentrates_tlb_sets() {
        let p = Pattern::SetSkewedGather {
            distinct_sets: 4,
            skew_permille: 1000,
        };
        let mut sets = BTreeSet::new();
        for step in 0..200 {
            for a in p.lane_addrs(FOOT, 9, 9, 16, step, PAGE) {
                sets.insert((a.value() / PAGE) % L2_TLB_SETS);
            }
        }
        assert!(sets.len() <= 4, "sets touched: {}", sets.len());
        // A partial skew still reaches the whole footprint.
        let p = Pattern::SetSkewedGather {
            distinct_sets: 4,
            skew_permille: 700,
        };
        let mut pages = BTreeSet::new();
        let mut skewed = 0u64;
        let mut total = 0u64;
        for step in 0..400 {
            for a in p.lane_addrs(FOOT, 9, 9, 16, step, PAGE) {
                let page = a.value() / PAGE;
                pages.insert(page);
                total += 1;
                if page % L2_TLB_SETS < 4 {
                    skewed += 1;
                }
            }
        }
        assert!(pages.len() > 1000, "distinct pages: {}", pages.len());
        let frac = skewed as f64 / total as f64;
        assert!(frac > 0.6, "skewed fraction {frac}");
    }

    #[test]
    fn strided_sweep_changes_page_every_step() {
        let p = Pattern::StridedSweep { stride_bytes: PAGE };
        let a0 = p.lane_addrs(FOOT, 2, 2, 16, 0, PAGE);
        let a1 = p.lane_addrs(FOOT, 2, 2, 16, 1, PAGE);
        assert_ne!(a0[0].value() / PAGE, a1[0].value() / PAGE);
        assert!(distinct_pages(&a0) <= 2);
    }

    #[test]
    fn stencil_touches_rows_pages() {
        let p = Pattern::Stencil {
            rows: 4,
            row_bytes: PAGE,
        };
        let addrs = p.lane_addrs(FOOT, 0, 0, 16, 0, PAGE);
        let d = distinct_pages(&addrs);
        assert!((2..=5).contains(&d), "distinct pages {d}");
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let patterns = [
            Pattern::Streaming,
            Pattern::StridedSweep { stride_bytes: PAGE },
            Pattern::Stencil {
                rows: 3,
                row_bytes: PAGE,
            },
            Pattern::Gather {
                hot_permille: 500,
                hot_divisor: 64,
            },
            Pattern::SetSkewedGather {
                distinct_sets: 4,
                skew_permille: 700,
            },
            Pattern::Wavefront { row_bytes: PAGE },
        ];
        let page = PageSize::Size64K;
        for p in patterns {
            for step in 0..50 {
                for a in p.lane_addrs(FOOT, 11, 11, 16, step, page.bytes()) {
                    assert!(a.value() < FOOT, "{p:?} escaped footprint: {a}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Pattern::Gather {
            hot_permille: 300,
            hot_divisor: 64,
        };
        assert_eq!(
            p.lane_addrs(FOOT, 42, 42, 16, 17, PAGE),
            p.lane_addrs(FOOT, 42, 42, 16, 17, PAGE)
        );
    }
}
