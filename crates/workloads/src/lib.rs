//! Synthetic GPU workload generators standing in for the paper's 20
//! benchmarks (Table 4).
//!
//! We have neither CUDA hardware nor the authors' SASS traces, so each
//! benchmark is reproduced as a *page-level address-stream generator*
//! capturing the property the paper's evaluation actually exercises: how
//! many distinct pages a warp instruction touches, with what locality, and
//! how fast the footprint is swept. The generators are deterministic
//! (hash-based, no hidden RNG state) so every simulation is reproducible.
//!
//! Pattern families:
//!
//! * [`Pattern::Streaming`] — fully coalesced sequential sweeps (2dc, fft,
//!   histo, red, scan, gemm, cc, kc): one page per warp access, high TLB
//!   hit rates.
//! * [`Pattern::StridedSweep`] — page-granular strides (sy2k, gesv): every
//!   access lands on a fresh page, thrashing the L2 TLB.
//! * [`Pattern::Stencil`] — multi-row stencils (st2d): a few pages per
//!   access.
//! * [`Pattern::Gather`] — random gathers with tunable locality (graph
//!   kernels bc/dc/sssp/gc/bfs, xsbench, gups): up to 32 distinct pages
//!   per warp instruction.
//! * [`Pattern::SetSkewedGather`] — spmv's pathology: gathers concentrated
//!   on a handful of L2 TLB set indices, which caps how much the In-TLB
//!   MSHR can help (Figure 24's spmv discussion).
//! * [`Pattern::Wavefront`] — nw's anti-diagonal sweep: each lane on its
//!   own row ⇒ its own page.
//!
//! [`table4`] returns the full benchmark registry with the paper's
//! footprints, MPKI and required-PTW classification; [`microbench`] builds
//! the Figure 4 concurrency microbenchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod micro;
mod pattern;
mod spec;
mod workload;

pub use micro::{microbench, Microbench};
pub use pattern::Pattern;
pub use spec::{by_abbr, irregular, regular, table4, BenchmarkSpec, WorkloadClass};
pub use workload::{Workload, WorkloadParams};
