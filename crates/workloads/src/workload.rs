//! The workload generator: an [`InstrSource`] built from a benchmark spec.

use crate::pattern::mix;
use crate::spec::BenchmarkSpec;
use std::collections::HashMap;
use swgpu_sm::{InstrSource, WarpInstr};
use swgpu_types::{PageSize, SmId, VirtAddr, Vpn, WarpId};

/// Sizing parameters for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// SMs in the GPU (46 in Table 3).
    pub sms: usize,
    /// Warps resident per SM (48 in Table 3).
    pub warps_per_sm: usize,
    /// Memory instructions each warp executes before retiring; each is
    /// preceded by one compute instruction (unless the benchmark's
    /// `compute_cycles` is zero). Controls run length.
    pub mem_instrs_per_warp: u32,
    /// Footprint multiplier in percent (100 = the Table 4 footprint;
    /// Figures 6/25 scale footprints up, quick tests scale down).
    pub footprint_percent: u64,
    /// Translation granularity (needed by set-skewed generation).
    pub page_size: PageSize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            sms: 46,
            warps_per_sm: 48,
            mem_instrs_per_warp: 8,
            footprint_percent: 100,
            page_size: PageSize::Size64K,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct WarpCursor {
    iter: u64,
    next_is_load: bool,
}

/// A deterministic synthetic workload: each warp alternates compute and
/// load instructions whose addresses follow the benchmark's
/// [`crate::Pattern`].
///
/// # Example
///
/// ```
/// use swgpu_sm::{InstrSource, WarpInstr};
/// use swgpu_types::{SmId, WarpId};
/// use swgpu_workloads::{by_abbr, WorkloadParams};
///
/// let spec = by_abbr("gups").unwrap();
/// let mut w = spec.build(WorkloadParams {
///     mem_instrs_per_warp: 2,
///     ..WorkloadParams::default()
/// });
/// let first = w.next_instr(SmId::new(0), WarpId::new(0)).unwrap();
/// assert!(matches!(first, WarpInstr::Compute { .. }));
/// let second = w.next_instr(SmId::new(0), WarpId::new(0)).unwrap();
/// assert!(matches!(second, WarpInstr::Load { .. }));
/// ```
#[derive(Debug)]
pub struct Workload {
    spec: BenchmarkSpec,
    params: WorkloadParams,
    footprint: u64,
    cursors: HashMap<(SmId, WarpId), WarpCursor>,
}

impl Workload {
    /// Builds the generator. See [`BenchmarkSpec::build`].
    pub fn new(spec: BenchmarkSpec, params: WorkloadParams) -> Self {
        let footprint = spec.footprint_bytes(params.footprint_percent, params.page_size);
        Self {
            spec,
            params,
            footprint,
            cursors: HashMap::new(),
        }
    }

    /// The benchmark this workload instantiates.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Mapped bytes the simulator must install before the run (a single
    /// region starting at virtual address 0).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    /// Sizing parameters.
    pub fn params(&self) -> WorkloadParams {
        self.params
    }

    fn warp_global(&self, sm: SmId, warp: WarpId) -> u64 {
        sm.index() as u64 * self.params.warps_per_sm as u64 + warp.index() as u64
    }

    fn warp_seed(&self, sm: SmId, warp: WarpId) -> u64 {
        mix(self.warp_global(sm, warp)
            ^ mix(self.spec.abbr.len() as u64 ^ (self.spec.footprint_mb << 20)))
    }

    /// Lane addresses of the `step`-th load of a warp — exposed for the
    /// Figure 3 access-pattern harness, which plots page indices over
    /// (logical) time without running the full simulator.
    pub fn lane_addrs(&self, sm: SmId, warp: WarpId, step: u64) -> Vec<VirtAddr> {
        self.spec.pattern.lane_addrs(
            self.footprint,
            self.warp_seed(sm, warp),
            self.warp_global(sm, warp),
            self.params.warps_per_sm as u64,
            step,
            self.params.page_size.bytes(),
        )
    }
}

impl InstrSource for Workload {
    fn next_instr(&mut self, sm: SmId, warp: WarpId) -> Option<WarpInstr> {
        if sm.index() >= self.params.sms || warp.index() >= self.params.warps_per_sm {
            return None;
        }
        let zero_compute = self.spec.compute_cycles == 0;
        let step = {
            let cursor = self.cursors.entry((sm, warp)).or_insert(WarpCursor {
                iter: 0,
                next_is_load: zero_compute,
            });
            if cursor.iter >= u64::from(self.params.mem_instrs_per_warp) {
                return None;
            }
            if cursor.next_is_load {
                let step = cursor.iter;
                cursor.iter += 1;
                cursor.next_is_load = zero_compute;
                Some(step)
            } else {
                cursor.next_is_load = true;
                None
            }
        };
        match step {
            Some(step) => Some(WarpInstr::Load {
                addrs: self.lane_addrs(sm, warp, step),
            }),
            None => Some(WarpInstr::Compute {
                cycles: self.spec.compute_cycles,
            }),
        }
    }

    /// The generator is a pure function of `(warp, step)`, so the warp's
    /// future loads are known exactly without consuming the stream: the
    /// cursor gives the next unissued step, and `lane_addrs` reproduces
    /// what `next_instr` will emit for it.
    fn peek_load_vpns(&self, sm: SmId, warp: WarpId, lookahead: u32) -> Vec<Vpn> {
        if sm.index() >= self.params.sms || warp.index() >= self.params.warps_per_sm {
            return Vec::new();
        }
        let next = self.cursors.get(&(sm, warp)).map_or(0, |c| c.iter);
        let last = u64::from(self.params.mem_instrs_per_warp).min(next + u64::from(lookahead));
        let mut vpns = Vec::new();
        for step in next..last {
            for addr in self.lane_addrs(sm, warp, step) {
                let vpn = self.params.page_size.vpn_of(addr);
                if !vpns.contains(&vpn) {
                    vpns.push(vpn);
                }
            }
        }
        vpns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::by_abbr;

    fn params(n: u32) -> WorkloadParams {
        WorkloadParams {
            sms: 2,
            warps_per_sm: 2,
            mem_instrs_per_warp: n,
            footprint_percent: 10,
            page_size: PageSize::Size64K,
        }
    }

    #[test]
    fn alternates_compute_and_load_then_retires() {
        let mut w = by_abbr("bfs").unwrap().build(params(2));
        let sm = SmId::new(0);
        let wp = WarpId::new(0);
        let seq: Vec<_> = std::iter::from_fn(|| w.next_instr(sm, wp)).collect();
        assert_eq!(seq.len(), 4, "2 iterations x (compute + load)");
        assert!(matches!(seq[0], WarpInstr::Compute { .. }));
        assert!(seq[1].is_load());
        assert!(matches!(seq[2], WarpInstr::Compute { .. }));
        assert!(seq[3].is_load());
    }

    #[test]
    fn zero_compute_benchmarks_emit_only_loads() {
        let mut spec = by_abbr("gups").unwrap();
        spec.compute_cycles = 0;
        let mut w = spec.build(params(3));
        let seq: Vec<_> =
            std::iter::from_fn(|| w.next_instr(SmId::new(0), WarpId::new(0))).collect();
        assert_eq!(seq.len(), 3);
        assert!(seq.iter().all(WarpInstr::is_load));
    }

    #[test]
    fn out_of_range_warps_retire_immediately() {
        let mut w = by_abbr("gups").unwrap().build(params(5));
        assert!(w.next_instr(SmId::new(5), WarpId::new(0)).is_none());
        assert!(w.next_instr(SmId::new(0), WarpId::new(7)).is_none());
    }

    #[test]
    fn footprint_scales() {
        let full = by_abbr("gups").unwrap().build(WorkloadParams::default());
        let tenth = by_abbr("gups").unwrap().build(params(1));
        assert_eq!(full.footprint_bytes(), 308 * 1024 * 1024);
        assert_eq!(tenth.footprint_bytes(), 308 * 1024 * 1024 / 10);
    }

    #[test]
    fn addresses_within_footprint_for_all_benchmarks() {
        for spec in crate::spec::table4() {
            let mut w = spec.build(params(3));
            for smi in 0..2 {
                for wpi in 0..2 {
                    while let Some(instr) = w.next_instr(SmId::new(smi), WarpId::new(wpi)) {
                        if let WarpInstr::Load { addrs } = instr {
                            for a in addrs {
                                assert!(
                                    a.value() < w.footprint_bytes(),
                                    "{}: {a} outside footprint",
                                    spec.abbr
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_warps_use_distinct_seeds() {
        let w = by_abbr("gups").unwrap().build(params(1));
        let a = w.lane_addrs(SmId::new(0), WarpId::new(0), 0);
        let b = w.lane_addrs(SmId::new(0), WarpId::new(1), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn generation_is_reproducible() {
        let w1 = by_abbr("sssp").unwrap().build(params(1));
        let w2 = by_abbr("sssp").unwrap().build(params(1));
        assert_eq!(
            w1.lane_addrs(SmId::new(1), WarpId::new(1), 5),
            w2.lane_addrs(SmId::new(1), WarpId::new(1), 5)
        );
    }
}
