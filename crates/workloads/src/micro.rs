//! The Figure 4 concurrency microbenchmark.
//!
//! The paper probes page-walk contention on a real NVIDIA A2000 with a
//! microbenchmark that "generates a variable number of concurrent page
//! walks by issuing memory accesses from warps with one active thread,
//! each accessing a distinct cache line". We reproduce it exactly: `n`
//! warps, one lane each, every access touching a *fresh page* so each load
//! forces a page walk; average load latency versus `n` is the plotted
//! curve.

use crate::pattern::mix;
use crate::spec::{BenchmarkSpec, WorkloadClass};
use crate::Pattern;
use std::collections::HashMap;
use swgpu_sm::{InstrSource, WarpInstr};
use swgpu_types::{PageSize, SmId, VirtAddr, WarpId};

/// One-active-lane workload generating `concurrent` simultaneous page
/// walks.
#[derive(Debug)]
pub struct Microbench {
    concurrent: usize,
    warps_per_sm: usize,
    accesses_per_warp: u32,
    footprint: u64,
    page: PageSize,
    cursors: HashMap<(SmId, WarpId), u32>,
}

/// Builds the Figure 4 microbenchmark: `concurrent` single-lane warps
/// (spread `warps_per_sm` per SM), each issuing `accesses_per_warp`
/// loads to distinct pages of a `footprint_bytes` region.
pub fn microbench(
    concurrent: usize,
    warps_per_sm: usize,
    accesses_per_warp: u32,
    footprint_bytes: u64,
    page: PageSize,
) -> Microbench {
    Microbench {
        concurrent,
        warps_per_sm: warps_per_sm.max(1),
        accesses_per_warp,
        footprint: footprint_bytes.max(page.bytes() * concurrent as u64),
        page,
        cursors: HashMap::new(),
    }
}

impl Microbench {
    /// Total single-lane warps in flight.
    pub fn concurrent(&self) -> usize {
        self.concurrent
    }

    /// Mapped bytes the simulator must install.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    /// A pseudo-spec so the harness can reuse benchmark plumbing.
    pub fn spec(&self) -> BenchmarkSpec {
        BenchmarkSpec {
            name: "fig4 microbenchmark",
            abbr: "ubench",
            class: WorkloadClass::Irregular,
            footprint_mb: self.footprint / (1024 * 1024),
            paper_mpki: f64::NAN,
            paper_required_ptws: 0,
            scalable: false,
            pattern: Pattern::Gather {
                hot_permille: 0,
                hot_divisor: 1,
            },
            compute_cycles: 0,
        }
    }

    fn global_index(&self, sm: SmId, warp: WarpId) -> usize {
        sm.index() * self.warps_per_sm + warp.index()
    }
}

impl InstrSource for Microbench {
    fn next_instr(&mut self, sm: SmId, warp: WarpId) -> Option<WarpInstr> {
        if warp.index() >= self.warps_per_sm {
            return None;
        }
        let g = self.global_index(sm, warp);
        if g >= self.concurrent {
            return None;
        }
        let step = *self.cursors.get(&(sm, warp)).unwrap_or(&0);
        if step >= self.accesses_per_warp {
            return None;
        }
        self.cursors.insert((sm, warp), step + 1);
        // One active lane, fresh page every access, distinct across warps.
        let pages = self.footprint / self.page.bytes();
        let page_idx = mix((g as u64) << 32 | u64::from(step)) % pages;
        let addr = page_idx * self.page.bytes() + (u64::from(step) * 32) % self.page.bytes();
        Some(WarpInstr::Load {
            addrs: vec![VirtAddr::new(addr)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_per_access() {
        let mut m = microbench(4, 2, 3, 64 * 1024 * 1024, PageSize::Size64K);
        let instr = m.next_instr(SmId::new(0), WarpId::new(0)).unwrap();
        let WarpInstr::Load { addrs } = instr else {
            panic!("expected load")
        };
        assert_eq!(addrs.len(), 1);
    }

    #[test]
    fn concurrency_limits_active_warps() {
        let mut m = microbench(3, 2, 1, 64 * 1024 * 1024, PageSize::Size64K);
        // Global warp indices 0..3 are active; index 3 (sm1,warp1) is not.
        assert!(m.next_instr(SmId::new(0), WarpId::new(0)).is_some());
        assert!(m.next_instr(SmId::new(0), WarpId::new(1)).is_some());
        assert!(m.next_instr(SmId::new(1), WarpId::new(0)).is_some());
        assert!(m.next_instr(SmId::new(1), WarpId::new(1)).is_none());
    }

    #[test]
    fn each_access_is_a_fresh_page() {
        let mut m = microbench(1, 1, 16, 256 * 1024 * 1024, PageSize::Size64K);
        let mut pages = std::collections::BTreeSet::new();
        while let Some(WarpInstr::Load { addrs }) = m.next_instr(SmId::new(0), WarpId::new(0)) {
            pages.insert(addrs[0].value() / 65536);
        }
        assert!(pages.len() >= 15, "pages visited: {}", pages.len());
    }

    #[test]
    fn retires_after_quota() {
        let mut m = microbench(1, 1, 2, 64 * 1024 * 1024, PageSize::Size64K);
        assert!(m.next_instr(SmId::new(0), WarpId::new(0)).is_some());
        assert!(m.next_instr(SmId::new(0), WarpId::new(0)).is_some());
        assert!(m.next_instr(SmId::new(0), WarpId::new(0)).is_none());
    }
}
