//! Full-system simulation statistics.

use softwalker::{DistributorStats, PwWarpStats};
use swgpu_mem::{CacheStats, DramStats};
use swgpu_sm::SmStats;
use swgpu_tlb::InTlbStats;
use swgpu_types::{Cycle, FaultInjectionStats, MmFaultStats, MmStats};

/// Page-walk latency decomposition aggregated over every completed
/// translation — the raw material of Figures 7, 18 and 23.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkLatencyStats {
    /// Translations completed by a page walk.
    pub translations: u64,
    /// Σ queueing cycles (waiting for a walker / PW thread).
    pub queue_cycles: u64,
    /// Σ access cycles (page-table reads, plus — for SoftWalker —
    /// communication and instruction execution).
    pub access_cycles: u64,
}

impl WalkLatencyStats {
    /// Records one completed translation.
    pub fn record(&mut self, queue: u64, access: u64) {
        self.translations += 1;
        self.queue_cycles += queue;
        self.access_cycles += access;
    }

    /// Mean queueing delay.
    pub fn avg_queue(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / self.translations as f64
        }
    }

    /// Mean page-table access latency.
    pub fn avg_access(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.access_cycles as f64 / self.translations as f64
        }
    }

    /// Mean total walk latency (queue + access).
    pub fn avg_total(&self) -> f64 {
        self.avg_queue() + self.avg_access()
    }

    /// Queueing share of total walk latency — ~0.95 for irregular apps at
    /// the 32-PTW baseline (Figure 7).
    pub fn queue_fraction(&self) -> f64 {
        let total = self.queue_cycles + self.access_cycles;
        if total == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / total as f64
        }
    }
}

/// One tenant's slice of a multi-tenant run. Recorded only when the
/// configuration carries a [`crate::TenantsConfig`]; single-tenant runs
/// leave [`SimStats::tenants`] empty so their JSON stays byte-identical
/// to artifacts written before multi-tenancy existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Warp instructions issued by the tenant's SMs.
    pub instructions: u64,
    /// Memory (load) instructions issued by the tenant's SMs.
    pub loads: u64,
    /// Cycle at which the tenant's last instruction issued — its
    /// private notion of runtime for the per-tenant IPC.
    pub cycles: u64,
    /// L2 TLB misses charged to the tenant, counted once per request.
    pub fresh_l2_misses: u64,
    /// Page walks completed on the tenant's behalf (hardware + software).
    pub walks: u64,
}

impl TenantStats {
    /// Instructions per cycle over the tenant's active window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L2 TLB misses per kilo-instruction for this tenant alone.
    pub fn l2_tlb_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.fresh_l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Everything a figure harness needs from one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Total simulated cycles until the kernel drained.
    pub cycles: u64,
    /// Whether the run hit the safety cycle limit instead of finishing.
    pub timed_out: bool,
    /// Cycles the event-scheduled kernel actually executed (`step` calls).
    /// Identical between the event kernel and the dense reference mode:
    /// both count only cycles the event schedule demanded.
    pub kernel_steps: u64,
    /// Cycles the event-scheduled kernel jumped over because no component
    /// had a pending event. `kernel_steps + kernel_cycles_skipped ==
    /// cycles + 1` on drained runs (cycle 0 is always executed).
    pub kernel_cycles_skipped: u64,
    /// Warp instructions issued across all SMs.
    pub instructions: u64,
    /// Memory (load) instructions issued.
    pub loads: u64,
    /// Aggregated SM scheduler statistics (summed over SMs).
    pub sm: SmStats,
    /// Aggregated L1 TLB statistics (summed over SMs).
    pub l1_tlb: swgpu_tlb::TlbStats,
    /// Shared L2 TLB array statistics.
    pub l2_tlb: swgpu_tlb::TlbStats,
    /// L2 TLB dedicated-MSHR statistics.
    pub l2_mshr: swgpu_tlb::TlbMshrStats,
    /// In-TLB MSHR statistics.
    pub in_tlb: InTlbStats,
    /// Distinct L2 misses that were rejected at least once because no
    /// MSHR capacity existed — the Figure 17 "MSHR failure" count.
    pub l2_mshr_failure_events: u64,
    /// L2 TLB misses counted once per request (retries after MSHR
    /// failures excluded) — the MPKI numerator.
    pub fresh_l2_misses: u64,
    /// Page-walk latency decomposition.
    pub walk: WalkLatencyStats,
    /// Walks completed by hardware PTWs.
    pub hw_walks: u64,
    /// Walks completed by PW Warps.
    pub sw_walks: u64,
    /// Aggregated L1D statistics (summed over SMs).
    pub l1d: CacheStats,
    /// Shared L2 data cache statistics.
    pub l2d: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// DRAM bandwidth utilization over the run.
    pub dram_utilization: f64,
    /// Page walk cache statistics.
    pub pwc_hits: u64,
    /// Page walk cache misses.
    pub pwc_misses: u64,
    /// Aggregated PW Warp statistics (summed over SMs).
    pub pw_warp: PwWarpStats,
    /// Request Distributor statistics.
    pub distributor: DistributorStats,
    /// Page faults observed (UVM path).
    pub faults: u64,
    /// Fault-injection and recovery counters, summed over every
    /// injection site (all zero — and omitted from the JSON — unless the
    /// run armed a [`swgpu_types::FaultPlan`]).
    pub fault: FaultInjectionStats,
    /// Demand-paged memory-manager counters (major faults, coalescing,
    /// eviction). All zero — and omitted from the JSON — unless the run
    /// enabled [`swgpu_types::MmConfig`]; prebuilt-mode stats stay
    /// byte-identical to artifacts written before the manager existed.
    pub mm: MmStats,
    /// Demand-paging data-path fault counters (dropped/duplicated/
    /// corrupted fills, shootdown drops, watchdog recovery, frame
    /// retirement). All zero — and omitted from the JSON — unless the
    /// run armed the data-path sites of a [`swgpu_types::FaultPlan`].
    pub mm_fault: MmFaultStats,
    /// TLB fills installed with a dead-on-arrival prediction, summed over
    /// the L1s and the shared L2. Zero — and omitted from the JSON —
    /// unless a TLB runs [`swgpu_tlb::ReplPolicy::DeadBlock`].
    pub tlb_dead_fills: u64,
    /// Translation prefetches issued into idle PW-Warp threads. Zero —
    /// and, with the other prefetch counters, omitted from the JSON —
    /// unless the run enabled [`crate::PrefetchConfig`].
    pub prefetch_issued: u64,
    /// Prefetched translations that later served a demand access.
    pub prefetch_useful: u64,
    /// Demand misses that arrived while the prefetch walk was still in
    /// flight and merged onto it (the prefetch was correct but late).
    pub prefetch_late: u64,
    /// Prefetched translations discarded before any demand use: evicted,
    /// invalidated, flushed, dropped at install, or failed walks.
    pub prefetch_evicted: u64,
    /// Prefetches still unresolved when the run drained: walks in flight
    /// plus resident entries never touched. Closes the conservation
    /// ledger `issued == useful + late + evicted + in_flight`.
    pub prefetch_in_flight: u64,
    /// Per-tenant metric slices, indexed by ASID. Empty — and omitted
    /// from the JSON — on single-tenant runs, preserving the byte-
    /// identity contract for existing artifacts.
    pub tenants: Vec<TenantStats>,
    /// Lifecycle records of the first walks, when tracing was enabled.
    pub walk_trace: crate::WalkTrace,
    /// Observability report (spans, histograms, time-series), present
    /// only when the run armed [`swgpu_obs::ObsConfig`]. Deliberately
    /// *not* serialized by [`SimStats::to_json`] — the flat-JSON stats
    /// object stays byte-identical whether or not observability ran;
    /// the experiment-artifact layer persists the report separately.
    pub obs: Option<Box<swgpu_obs::ObsReport>>,
}

impl SimStats {
    /// Instructions per cycle across the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L2 TLB misses per kilo-instruction — the Table 4 MPKI metric
    /// (each missed request counted once, even if it had to retry).
    pub fn l2_tlb_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.fresh_l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Speedup of this run relative to a baseline run of the *same*
    /// workload (same instruction count): inverse cycle ratio.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Stall cycles (memory + scoreboard) summed over SMs.
    pub fn stall_cycles(&self) -> u64 {
        self.sm.mem_stall_cycles + self.sm.scoreboard_stall_cycles
    }

    /// Whether any translation-policy counter is live (dead-block fills
    /// or prefetch activity) — gates the JSON/Display policy block.
    pub fn policy_any(&self) -> bool {
        self.tlb_dead_fills != 0
            || self.prefetch_issued != 0
            || self.prefetch_useful != 0
            || self.prefetch_late != 0
            || self.prefetch_evicted != 0
            || self.prefetch_in_flight != 0
    }

    /// Jain's fairness index over the per-tenant IPCs, in (0, 1]: 1.0
    /// when every tenant progresses at the same rate, approaching `1/n`
    /// when a single tenant monopolizes the machine. Returns 1.0 for
    /// single-tenant runs (no contention to be unfair about).
    pub fn fairness_index(&self) -> f64 {
        let n = self.tenants.len();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = self.tenants.iter().map(TenantStats::ipc).sum();
        let sum_sq: f64 = self.tenants.iter().map(|t| t.ipc() * t.ipc()).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            (sum * sum) / (n as f64 * sum_sq)
        }
    }

    /// Stall reduction versus a baseline run (Figure 19), in [0, 1].
    pub fn stall_reduction_vs(&self, baseline: &SimStats) -> f64 {
        let b = baseline.stall_cycles();
        if b == 0 {
            0.0
        } else {
            1.0 - self.stall_cycles() as f64 / b as f64
        }
    }

    /// Sets the elapsed time fields from the final cycle.
    pub(crate) fn finish(&mut self, end: Cycle, channels: usize) {
        self.cycles = end.value();
        self.dram_utilization = self
            .dram
            .bandwidth_utilization(channels, self.cycles.max(1));
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles {} | instr {} (IPC {:.3}) | MPKI {:.1}",
            self.cycles,
            self.instructions,
            self.ipc(),
            self.l2_tlb_mpki()
        )?;
        writeln!(
            f,
            "walks {} (hw {} / sw {}): queue {:.0} + access {:.0} cyc ({:.0}% queueing)",
            self.walk.translations,
            self.hw_walks,
            self.sw_walks,
            self.walk.avg_queue(),
            self.walk.avg_access(),
            self.walk.queue_fraction() * 100.0
        )?;
        write!(
            f,
            "MSHR failures {} | stalls {} ({:.0}%) | L2D miss {:.1}% | DRAM {:.1}%",
            self.l2_mshr_failure_events,
            self.stall_cycles(),
            self.sm.stall_fraction() * 100.0,
            self.l2d.miss_rate() * 100.0,
            self.dram_utilization * 100.0
        )?;
        if self.fault.any() {
            write!(
                f,
                "\nfault injection: {} injected ({} recovered / {} escalated) | {} replayed | {} unrecoverable | {} buffer drops",
                self.fault.injected_total(),
                self.fault.recovered_injections,
                self.fault.escalated_injections,
                self.fault.fault_replays,
                self.fault.unrecoverable_faults,
                self.fault.fault_buffer_overflow_drops
            )?;
        }
        if self.mm.any() {
            write!(
                f,
                "\ndemand paging: {} major faults ({} replayed) | {} evictions | {} + {} coalesces (64K/2M) | {} splinters | {} resident peak",
                self.mm.major_faults,
                self.mm.major_replays,
                self.mm.evictions,
                self.mm.coalesces_64k,
                self.mm.coalesces_2m,
                self.mm.splinters,
                self.mm.resident_peak
            )?;
        }
        if self.policy_any() {
            write!(
                f,
                "\npolicy: {} dead fills | prefetch {} issued ({} useful / {} late / {} evicted / {} in flight)",
                self.tlb_dead_fills,
                self.prefetch_issued,
                self.prefetch_useful,
                self.prefetch_late,
                self.prefetch_evicted,
                self.prefetch_in_flight
            )?;
        }
        if !self.tenants.is_empty() {
            write!(
                f,
                "\ntenants: {} | fairness {:.3} | {} shared joins",
                self.tenants.len(),
                self.fairness_index(),
                self.l2_tlb.shared_joins
            )?;
            for (i, t) in self.tenants.iter().enumerate() {
                write!(
                    f,
                    "\n  tenant {i}: instr {} (IPC {:.3}) | MPKI {:.1} | walks {}",
                    t.instructions,
                    t.ipc(),
                    t.l2_tlb_mpki(),
                    t.walks
                )?;
            }
        }
        if self.mm_fault.any() {
            write!(
                f,
                "\nmm faults: {} injected ({} recovered / {} escalated / {} retired) | {} corruptions detected | {} stale hits | {} frames retired",
                self.mm_fault.injected_conserved(),
                self.mm_fault.recovered_fills,
                self.mm_fault.escalated_fills,
                self.mm_fault.retired_fills,
                self.mm_fault.detected_corruptions,
                self.mm_fault.detected_stale_hits,
                self.mm_fault.frames_retired
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_single_summary_block() {
        let s = SimStats {
            cycles: 100,
            instructions: 50,
            ..SimStats::default()
        };
        let text = s.to_string();
        // Every metric family must be present; the exact layout (line
        // count, ordering) is free to evolve.
        for needle in ["cycles 100", "IPC 0.500", "walks", "MSHR failures", "DRAM"] {
            assert!(text.contains(needle), "missing {needle:?} in {text:?}");
        }
        assert!(!text.ends_with('\n'), "Display must not trail a newline");
    }

    #[test]
    fn walk_latency_decomposition() {
        let mut w = WalkLatencyStats::default();
        w.record(95, 5);
        w.record(85, 15);
        assert_eq!(w.translations, 2);
        assert!((w.avg_queue() - 90.0).abs() < 1e-9);
        assert!((w.avg_access() - 10.0).abs() < 1e-9);
        assert!((w.queue_fraction() - 0.9).abs() < 1e-9);
        assert!((w.avg_total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = SimStats {
            cycles: 1000,
            ..SimStats::default()
        };
        let fast = SimStats {
            cycles: 250,
            ..SimStats::default()
        };
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mpki_per_kiloinstruction() {
        let s = SimStats {
            instructions: 4000,
            fresh_l2_misses: 120,
            ..SimStats::default()
        };
        assert!((s.l2_tlb_mpki() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn stall_reduction() {
        let mut base = SimStats::default();
        base.sm.mem_stall_cycles = 900;
        base.sm.scoreboard_stall_cycles = 100;
        let mut sw = SimStats::default();
        sw.sm.mem_stall_cycles = 250;
        sw.sm.scoreboard_stall_cycles = 50;
        assert!((sw.stall_reduction_vs(&base) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l2_tlb_mpki(), 0.0);
        assert_eq!(s.walk.avg_total(), 0.0);
    }
}

impl SimStats {
    /// Serializes the run's key metrics as a flat JSON object (hand-rolled
    /// so the workspace needs no serialization dependency). Intended for
    /// harnesses that post-process results with external tooling, and for
    /// the experiment runner's on-disk run cache.
    ///
    /// The object carries both derived metrics (rates, averages) and the
    /// raw counters they derive from, so [`SimStats::from_json`] can
    /// reconstruct a value whose `to_json` output is byte-identical.
    ///
    /// # Example
    ///
    /// ```
    /// use swgpu_sim::SimStats;
    /// let json = SimStats::default().to_json();
    /// assert!(json.starts_with('{') && json.ends_with('}'));
    /// assert!(json.contains("\"cycles\":0"));
    /// ```
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        let mut num = |k: &str, v: f64| {
            if v.is_finite() {
                fields.push(format!("\"{k}\":{v}"));
            } else {
                fields.push(format!("\"{k}\":null"));
            }
        };
        num("cycles", self.cycles as f64);
        num("timed_out", u8::from(self.timed_out) as f64);
        num("instructions", self.instructions as f64);
        num("loads", self.loads as f64);
        num("ipc", self.ipc());
        num("l2_tlb_mpki", self.l2_tlb_mpki());
        num("fresh_l2_misses", self.fresh_l2_misses as f64);
        num("walks", self.walk.translations as f64);
        num("hw_walks", self.hw_walks as f64);
        num("sw_walks", self.sw_walks as f64);
        num("avg_walk_queue_cycles", self.walk.avg_queue());
        num("avg_walk_access_cycles", self.walk.avg_access());
        num("walk_queue_fraction", self.walk.queue_fraction());
        num("l2_mshr_failures", self.l2_mshr_failure_events as f64);
        num("in_tlb_allocations", self.in_tlb.in_tlb_allocations as f64);
        num("stall_cycles", self.stall_cycles() as f64);
        num("issued_cycles", self.sm.issued_cycles as f64);
        num("pw_issue_cycles", self.sm.pw_issue_cycles as f64);
        num("mem_stall_cycles", self.sm.mem_stall_cycles as f64);
        num(
            "scoreboard_stall_cycles",
            self.sm.scoreboard_stall_cycles as f64,
        );
        num("idle_cycles", self.sm.idle_cycles as f64);
        num("l1_tlb_hit_rate", self.l1_tlb.hit_rate());
        num("l2_tlb_hit_rate", self.l2_tlb.hit_rate());
        num("l1d_miss_rate", self.l1d.miss_rate());
        num("l2d_miss_rate", self.l2d.miss_rate());
        num("dram_utilization", self.dram_utilization);
        num("pwc_hits", self.pwc_hits as f64);
        num("pwc_misses", self.pwc_misses as f64);
        num("faults", self.faults as f64);
        // Raw counters behind the derived metrics above — these make the
        // object self-contained for from_json round-tripping.
        num("walk_queue_cycles", self.walk.queue_cycles as f64);
        num("walk_access_cycles", self.walk.access_cycles as f64);
        num("l1_tlb_hits", self.l1_tlb.hits as f64);
        num("l1_tlb_misses", self.l1_tlb.misses as f64);
        num("l1_tlb_fills", self.l1_tlb.fills as f64);
        num("l1_tlb_evictions", self.l1_tlb.evictions as f64);
        num("l2_tlb_hits", self.l2_tlb.hits as f64);
        num("l2_tlb_misses", self.l2_tlb.misses as f64);
        num("l2_tlb_fills", self.l2_tlb.fills as f64);
        num("l2_tlb_evictions", self.l2_tlb.evictions as f64);
        num("l1d_accesses", self.l1d.accesses as f64);
        num("l1d_hits", self.l1d.hits as f64);
        num("l1d_misses", self.l1d.misses as f64);
        num("l1d_merges", self.l1d.merges as f64);
        num("l1d_mshr_failures", self.l1d.mshr_failures as f64);
        num("l1d_evictions", self.l1d.evictions as f64);
        num("l2d_accesses", self.l2d.accesses as f64);
        num("l2d_hits", self.l2d.hits as f64);
        num("l2d_misses", self.l2d.misses as f64);
        num("l2d_merges", self.l2d.merges as f64);
        num("l2d_mshr_failures", self.l2d.mshr_failures as f64);
        num("l2d_evictions", self.l2d.evictions as f64);
        num("dram_requests", self.dram.requests as f64);
        num("dram_busy_cycles", self.dram.busy_cycles as f64);
        num("sm_l1_mshr_failures", self.sm.l1_mshr_failures as f64);
        num("sm_xlat_faults", self.sm.xlat_faults as f64);
        num("in_tlb_merges", self.in_tlb.in_tlb_merges as f64);
        num(
            "in_tlb_dedicated_rejections",
            self.in_tlb.dedicated_rejections as f64,
        );
        num("in_tlb_total_failures", self.in_tlb.total_failures as f64);
        num("kernel_steps", self.kernel_steps as f64);
        num("kernel_cycles_skipped", self.kernel_cycles_skipped as f64);
        // The fault block is emitted only when fault injection actually
        // happened: a zero-rate run stays byte-identical to artifacts
        // written before the fault layer existed.
        if self.fault.any() {
            num(
                "fault_injected_pte_corruptions",
                self.fault.injected_pte_corruptions as f64,
            );
            num(
                "fault_injected_mem_drops",
                self.fault.injected_mem_drops as f64,
            );
            num(
                "fault_injected_mem_delays",
                self.fault.injected_mem_delays as f64,
            );
            num(
                "fault_injected_stuck_threads",
                self.fault.injected_stuck_threads as f64,
            );
            num(
                "fault_recovered_injections",
                self.fault.recovered_injections as f64,
            );
            num(
                "fault_escalated_injections",
                self.fault.escalated_injections as f64,
            );
            num(
                "fault_watchdog_timeouts",
                self.fault.watchdog_timeouts as f64,
            );
            num("fault_walk_retries", self.fault.walk_retries as f64);
            num("fault_escalations", self.fault.fault_escalations as f64);
            num("fault_replays", self.fault.fault_replays as f64);
            num(
                "fault_unrecoverable",
                self.fault.unrecoverable_faults as f64,
            );
            num(
                "fault_buffer_overflow_drops",
                self.fault.fault_buffer_overflow_drops as f64,
            );
            num(
                "fault_silent_corruptions_injected",
                self.fault.injected_silent_corruptions as f64,
            );
            num(
                "fault_silent_corruptions_detected",
                self.fault.detected_silent_corruptions as f64,
            );
        }
        // Same contract for the memory-manager block: only demand-paged
        // runs carry mm keys.
        if self.mm.any() {
            num("fault_major_faults", self.mm.major_faults as f64);
            num("fault_major_replays", self.mm.major_replays as f64);
            num("mm_sw_fill_replays", self.mm.sw_fill_replays as f64);
            num("mm_evictions", self.mm.evictions as f64);
            num("mm_coalesces_64k", self.mm.coalesces_64k as f64);
            num("mm_coalesces_2m", self.mm.coalesces_2m as f64);
            num("mm_splinters", self.mm.splinters as f64);
            num("mm_resident_peak", self.mm.resident_peak as f64);
        }
        // And for the translation-policy block: runs on the default LRU
        // policy with prefetch off carry no policy keys, so existing
        // artifacts (and the byte-identity contract) are untouched.
        if self.policy_any() {
            num("tlb_dead_fills", self.tlb_dead_fills as f64);
            num("prefetch_issued", self.prefetch_issued as f64);
            num("prefetch_useful", self.prefetch_useful as f64);
            num("prefetch_late", self.prefetch_late as f64);
            num("prefetch_evicted", self.prefetch_evicted as f64);
            num("prefetch_in_flight", self.prefetch_in_flight as f64);
        }
        // And for the data-path fault block: only runs that armed the
        // demand-paging fault sites carry mm_fault/data keys.
        if self.mm_fault.any() {
            num(
                "mm_fault_injected_fill_drops",
                self.mm_fault.injected_fill_drops as f64,
            );
            num(
                "mm_fault_injected_fill_delays",
                self.mm_fault.injected_fill_delays as f64,
            );
            num(
                "mm_fault_injected_fill_duplicates",
                self.mm_fault.injected_fill_duplicates as f64,
            );
            num(
                "mm_fault_injected_fill_corruptions",
                self.mm_fault.injected_fill_corruptions as f64,
            );
            num(
                "mm_fault_injected_shootdown_drops",
                self.mm_fault.injected_shootdown_drops as f64,
            );
            num(
                "mm_fault_injected_driver_stalls",
                self.mm_fault.injected_driver_stalls as f64,
            );
            num(
                "data_corruptions_detected",
                self.mm_fault.detected_corruptions as f64,
            );
            num(
                "data_stale_hits_detected",
                self.mm_fault.detected_stale_hits as f64,
            );
            num(
                "mm_fault_recovered_fills",
                self.mm_fault.recovered_fills as f64,
            );
            num(
                "mm_fault_escalated_fills",
                self.mm_fault.escalated_fills as f64,
            );
            num("mm_fault_retired_fills", self.mm_fault.retired_fills as f64);
            num(
                "mm_fault_frames_retired",
                self.mm_fault.frames_retired as f64,
            );
            num(
                "mm_fault_fill_watchdog_timeouts",
                self.mm_fault.fill_watchdog_timeouts as f64,
            );
            num("mm_fault_fill_retries", self.mm_fault.fill_retries as f64);
        }
        // And for the tenant block: single-tenant runs carry no tenant
        // keys, so pre-multi-tenant artifacts stay byte-identical.
        if !self.tenants.is_empty() {
            num("tenant_count", self.tenants.len() as f64);
            num("fairness_index", self.fairness_index());
            num("l2_tlb_shared_joins", self.l2_tlb.shared_joins as f64);
            for (i, t) in self.tenants.iter().enumerate() {
                num(&format!("tenant{i}_instructions"), t.instructions as f64);
                num(&format!("tenant{i}_loads"), t.loads as f64);
                num(&format!("tenant{i}_cycles"), t.cycles as f64);
                num(
                    &format!("tenant{i}_fresh_l2_misses"),
                    t.fresh_l2_misses as f64,
                );
                num(&format!("tenant{i}_walks"), t.walks as f64);
            }
        }
        format!("{{{}}}", fields.join(","))
    }

    /// Parses a flat JSON object produced by [`SimStats::to_json`] back
    /// into a `SimStats`.
    ///
    /// Derived metrics (`ipc`, hit rates, averages) are ignored on input
    /// and recomputed from the raw counters, so the round trip
    /// `SimStats::from_json(&s.to_json())?.to_json() == s.to_json()`
    /// holds exactly. Fields that are not serialized (per-structure
    /// sub-statistics like the PW Warp breakdown, and the walk trace)
    /// come back as their defaults.
    ///
    /// Unknown keys are ignored so older artifacts stay readable after
    /// the schema gains fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token if `json` is
    /// not a flat `{"key":number-or-null, ...}` object.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let body = json
            .trim()
            .strip_prefix('{')
            .and_then(|rest| rest.strip_suffix('}'))
            .ok_or_else(|| "not a JSON object".to_string())?;
        let mut map = std::collections::HashMap::new();
        for field in body.split(',').filter(|f| !f.trim().is_empty()) {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("malformed field {field:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted key in {field:?}"))?;
            let value = value.trim();
            let value = if value == "null" {
                f64::NAN
            } else {
                value
                    .parse::<f64>()
                    .map_err(|e| format!("bad number for {key:?}: {e}"))?
            };
            map.insert(key.to_string(), value);
        }
        let get = |k: &str| map.get(k).copied().unwrap_or(0.0);
        let int = |k: &str| get(k) as u64;
        let mut s = SimStats {
            cycles: int("cycles"),
            timed_out: int("timed_out") != 0,
            instructions: int("instructions"),
            loads: int("loads"),
            fresh_l2_misses: int("fresh_l2_misses"),
            l2_mshr_failure_events: int("l2_mshr_failures"),
            hw_walks: int("hw_walks"),
            sw_walks: int("sw_walks"),
            dram_utilization: get("dram_utilization"),
            pwc_hits: int("pwc_hits"),
            pwc_misses: int("pwc_misses"),
            faults: int("faults"),
            ..SimStats::default()
        };
        s.walk.translations = int("walks");
        s.walk.queue_cycles = int("walk_queue_cycles");
        s.walk.access_cycles = int("walk_access_cycles");
        s.sm.issued_cycles = int("issued_cycles");
        s.sm.pw_issue_cycles = int("pw_issue_cycles");
        s.sm.mem_stall_cycles = int("mem_stall_cycles");
        s.sm.scoreboard_stall_cycles = int("scoreboard_stall_cycles");
        s.sm.idle_cycles = int("idle_cycles");
        s.sm.l1_mshr_failures = int("sm_l1_mshr_failures");
        s.sm.xlat_faults = int("sm_xlat_faults");
        s.l1_tlb.hits = int("l1_tlb_hits");
        s.l1_tlb.misses = int("l1_tlb_misses");
        s.l1_tlb.fills = int("l1_tlb_fills");
        s.l1_tlb.evictions = int("l1_tlb_evictions");
        s.l2_tlb.hits = int("l2_tlb_hits");
        s.l2_tlb.misses = int("l2_tlb_misses");
        s.l2_tlb.fills = int("l2_tlb_fills");
        s.l2_tlb.evictions = int("l2_tlb_evictions");
        s.l1d.accesses = int("l1d_accesses");
        s.l1d.hits = int("l1d_hits");
        s.l1d.misses = int("l1d_misses");
        s.l1d.merges = int("l1d_merges");
        s.l1d.mshr_failures = int("l1d_mshr_failures");
        s.l1d.evictions = int("l1d_evictions");
        s.l2d.accesses = int("l2d_accesses");
        s.l2d.hits = int("l2d_hits");
        s.l2d.misses = int("l2d_misses");
        s.l2d.merges = int("l2d_merges");
        s.l2d.mshr_failures = int("l2d_mshr_failures");
        s.l2d.evictions = int("l2d_evictions");
        s.dram.requests = int("dram_requests");
        s.dram.busy_cycles = int("dram_busy_cycles");
        s.in_tlb.in_tlb_allocations = int("in_tlb_allocations");
        s.in_tlb.in_tlb_merges = int("in_tlb_merges");
        s.in_tlb.dedicated_rejections = int("in_tlb_dedicated_rejections");
        s.in_tlb.total_failures = int("in_tlb_total_failures");
        s.kernel_steps = int("kernel_steps");
        s.kernel_cycles_skipped = int("kernel_cycles_skipped");
        // Absent fault keys (artifacts from runs without injection, or
        // written before the fault layer existed) parse as zero.
        s.fault.injected_pte_corruptions = int("fault_injected_pte_corruptions");
        s.fault.injected_mem_drops = int("fault_injected_mem_drops");
        s.fault.injected_mem_delays = int("fault_injected_mem_delays");
        s.fault.injected_stuck_threads = int("fault_injected_stuck_threads");
        s.fault.recovered_injections = int("fault_recovered_injections");
        s.fault.escalated_injections = int("fault_escalated_injections");
        s.fault.watchdog_timeouts = int("fault_watchdog_timeouts");
        s.fault.walk_retries = int("fault_walk_retries");
        s.fault.fault_escalations = int("fault_escalations");
        s.fault.fault_replays = int("fault_replays");
        s.fault.unrecoverable_faults = int("fault_unrecoverable");
        s.fault.fault_buffer_overflow_drops = int("fault_buffer_overflow_drops");
        s.fault.injected_silent_corruptions = int("fault_silent_corruptions_injected");
        s.fault.detected_silent_corruptions = int("fault_silent_corruptions_detected");
        s.mm.major_faults = int("fault_major_faults");
        s.mm.major_replays = int("fault_major_replays");
        s.mm.sw_fill_replays = int("mm_sw_fill_replays");
        s.mm.evictions = int("mm_evictions");
        s.mm.coalesces_64k = int("mm_coalesces_64k");
        s.mm.coalesces_2m = int("mm_coalesces_2m");
        s.mm.splinters = int("mm_splinters");
        s.mm.resident_peak = int("mm_resident_peak");
        s.tlb_dead_fills = int("tlb_dead_fills");
        s.prefetch_issued = int("prefetch_issued");
        s.prefetch_useful = int("prefetch_useful");
        s.prefetch_late = int("prefetch_late");
        s.prefetch_evicted = int("prefetch_evicted");
        s.prefetch_in_flight = int("prefetch_in_flight");
        s.mm_fault.injected_fill_drops = int("mm_fault_injected_fill_drops");
        s.mm_fault.injected_fill_delays = int("mm_fault_injected_fill_delays");
        s.mm_fault.injected_fill_duplicates = int("mm_fault_injected_fill_duplicates");
        s.mm_fault.injected_fill_corruptions = int("mm_fault_injected_fill_corruptions");
        s.mm_fault.injected_shootdown_drops = int("mm_fault_injected_shootdown_drops");
        s.mm_fault.injected_driver_stalls = int("mm_fault_injected_driver_stalls");
        s.mm_fault.detected_corruptions = int("data_corruptions_detected");
        s.mm_fault.detected_stale_hits = int("data_stale_hits_detected");
        s.mm_fault.recovered_fills = int("mm_fault_recovered_fills");
        s.mm_fault.escalated_fills = int("mm_fault_escalated_fills");
        s.mm_fault.retired_fills = int("mm_fault_retired_fills");
        s.mm_fault.frames_retired = int("mm_fault_frames_retired");
        s.mm_fault.fill_watchdog_timeouts = int("mm_fault_fill_watchdog_timeouts");
        s.mm_fault.fill_retries = int("mm_fault_fill_retries");
        // Absent tenant keys (single-tenant artifacts) parse as an empty
        // tenant vector; fairness_index is derived and never trusted.
        s.l2_tlb.shared_joins = int("l2_tlb_shared_joins");
        for i in 0..int("tenant_count") as usize {
            s.tenants.push(TenantStats {
                instructions: int(&format!("tenant{i}_instructions")),
                loads: int(&format!("tenant{i}_loads")),
                cycles: int(&format!("tenant{i}_cycles")),
                fresh_l2_misses: int(&format!("tenant{i}_fresh_l2_misses")),
                walks: int(&format!("tenant{i}_walks")),
            });
        }
        Ok(s)
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut s = SimStats {
            cycles: 12345,
            instructions: 678,
            ..SimStats::default()
        };
        s.walk.record(10, 20);
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"cycles\":12345"));
        assert!(j.contains("\"walks\":1"));
        // No NaNs leak (empty rates must serialize as numbers or null).
        assert!(!j.contains("NaN"));
        // Every key unique (the flat format has no nested objects or
        // string values, so splitting on ',' and ':' is exact).
        let keys: Vec<&str> = j[1..j.len() - 1]
            .split(',')
            .map(|field| field.split(':').next().unwrap().trim_matches('"'))
            .collect();
        let unique: std::collections::HashSet<&&str> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "duplicate JSON keys in {j}");
        assert!(keys.len() >= 25);
    }

    #[test]
    fn json_handles_empty_stats() {
        let j = SimStats::default().to_json();
        assert!(j.contains("\"ipc\":0"));
        assert!(!j.contains("NaN"));
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let mut s = SimStats {
            cycles: 987_654,
            instructions: 123_456,
            loads: 45_678,
            timed_out: false,
            fresh_l2_misses: 777,
            l2_mshr_failure_events: 33,
            hw_walks: 210,
            sw_walks: 543,
            ..SimStats::default()
        };
        s.walk.record(95, 5);
        s.walk.record(85, 17);
        s.sm.issued_cycles = 1000;
        s.sm.mem_stall_cycles = 2000;
        s.sm.scoreboard_stall_cycles = 300;
        s.sm.idle_cycles = 40;
        s.sm.pw_issue_cycles = 5;
        s.l1_tlb.hits = 9000;
        s.l1_tlb.misses = 1000;
        s.l2_tlb.hits = 800;
        s.l2_tlb.misses = 200;
        s.l1d.accesses = 500;
        s.l1d.hits = 400;
        s.l1d.misses = 80;
        s.l1d.merges = 20;
        s.l2d.accesses = 100;
        s.l2d.hits = 61;
        s.l2d.misses = 39;
        s.dram.requests = 39;
        s.dram.busy_cycles = 78;
        s.dram_utilization = 0.061_234_567_891;
        s.in_tlb.in_tlb_allocations = 12;
        s.pwc_hits = 3;
        s.pwc_misses = 4;
        let j = s.to_json();
        let parsed = SimStats::from_json(&j).expect("parse");
        assert_eq!(parsed.to_json(), j, "round trip must be byte-identical");
        assert_eq!(parsed.cycles, s.cycles);
        assert_eq!(parsed.walk.queue_cycles, s.walk.queue_cycles);
        assert!((parsed.ipc() - s.ipc()).abs() < 1e-15);
    }

    #[test]
    fn fault_block_omitted_when_inert() {
        let s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        let j = s.to_json();
        assert!(
            !j.contains("fault_"),
            "zero-rate runs must serialize without fault keys: {j}"
        );
        // Display stays on the legacy layout too.
        assert!(!s.to_string().contains("fault injection"));
    }

    #[test]
    fn fault_block_round_trips() {
        let mut s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        s.fault.injected_pte_corruptions = 5;
        s.fault.injected_mem_drops = 2;
        s.fault.recovered_injections = 6;
        s.fault.escalated_injections = 1;
        s.fault.watchdog_timeouts = 2;
        s.fault.walk_retries = 7;
        s.fault.fault_escalations = 1;
        s.fault.fault_replays = 1;
        s.fault.fault_buffer_overflow_drops = 3;
        let j = s.to_json();
        assert!(j.contains("\"fault_injected_pte_corruptions\":5"));
        let parsed = SimStats::from_json(&j).expect("parse");
        assert_eq!(parsed.fault, s.fault);
        assert_eq!(parsed.to_json(), j, "round trip must be byte-identical");
        assert!(s.to_string().contains("fault injection: 7 injected"));
    }

    #[test]
    fn mm_block_omitted_when_inert() {
        let s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        let j = s.to_json();
        assert!(
            !j.contains("mm_") && !j.contains("fault_major"),
            "prebuilt-mode runs must serialize without mm keys: {j}"
        );
        assert!(!s.to_string().contains("demand paging"));
    }

    #[test]
    fn mm_block_round_trips() {
        let mut s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        s.mm.major_faults = 40;
        s.mm.major_replays = 40;
        s.mm.sw_fill_replays = 12;
        s.mm.evictions = 8;
        s.mm.coalesces_64k = 2;
        s.mm.coalesces_2m = 1;
        s.mm.splinters = 3;
        s.mm.resident_peak = 32;
        let j = s.to_json();
        assert!(j.contains("\"fault_major_faults\":40"));
        assert!(j.contains("\"mm_resident_peak\":32"));
        let parsed = SimStats::from_json(&j).expect("parse");
        assert_eq!(parsed.mm, s.mm);
        assert_eq!(parsed.to_json(), j, "round trip must be byte-identical");
        assert!(s.to_string().contains("demand paging: 40 major faults"));
    }

    #[test]
    fn mm_fault_block_omitted_when_inert() {
        let mut s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        // Even with the demand-paging block live, zero data-path
        // counters keep the mm_fault/data keys out of the JSON.
        s.mm.major_faults = 4;
        s.mm.major_replays = 4;
        let j = s.to_json();
        assert!(
            !j.contains("mm_fault_") && !j.contains("data_"),
            "runs without armed data-path sites must not carry mm_fault keys: {j}"
        );
        assert!(!s.to_string().contains("mm faults"));
    }

    #[test]
    fn mm_fault_block_round_trips() {
        let mut s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        s.mm_fault.injected_fill_drops = 6;
        s.mm_fault.injected_fill_delays = 2;
        s.mm_fault.injected_fill_duplicates = 3;
        s.mm_fault.injected_fill_corruptions = 4;
        s.mm_fault.injected_shootdown_drops = 1;
        s.mm_fault.injected_driver_stalls = 5;
        s.mm_fault.detected_corruptions = 4;
        s.mm_fault.detected_stale_hits = 1;
        s.mm_fault.recovered_fills = 17;
        s.mm_fault.escalated_fills = 1;
        s.mm_fault.retired_fills = 1;
        s.mm_fault.frames_retired = 1;
        s.mm_fault.fill_watchdog_timeouts = 7;
        s.mm_fault.fill_retries = 6;
        let j = s.to_json();
        assert!(j.contains("\"mm_fault_injected_fill_drops\":6"));
        assert!(j.contains("\"data_corruptions_detected\":4"));
        assert!(j.contains("\"mm_fault_frames_retired\":1"));
        let parsed = SimStats::from_json(&j).expect("parse");
        assert_eq!(parsed.mm_fault, s.mm_fault);
        assert_eq!(parsed.to_json(), j, "round trip must be byte-identical");
        assert!(s.to_string().contains("mm faults: 19 injected"));
    }

    #[test]
    fn policy_block_omitted_when_inert() {
        let s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        let j = s.to_json();
        assert!(
            !j.contains("prefetch_") && !j.contains("tlb_dead_fills"),
            "default-policy runs must serialize without policy keys: {j}"
        );
        assert!(!s.to_string().contains("policy:"));
    }

    #[test]
    fn policy_block_round_trips() {
        let mut s = SimStats {
            cycles: 10,
            tlb_dead_fills: 14,
            prefetch_issued: 9,
            prefetch_useful: 4,
            prefetch_late: 2,
            prefetch_evicted: 2,
            prefetch_in_flight: 1,
            ..SimStats::default()
        };
        s.walk.record(1, 1);
        let j = s.to_json();
        assert!(j.contains("\"tlb_dead_fills\":14"));
        assert!(j.contains("\"prefetch_issued\":9"));
        let parsed = SimStats::from_json(&j).expect("parse");
        assert_eq!(parsed.prefetch_issued, 9);
        assert_eq!(parsed.tlb_dead_fills, 14);
        assert_eq!(parsed.to_json(), j, "round trip must be byte-identical");
        assert!(s
            .to_string()
            .contains("policy: 14 dead fills | prefetch 9 issued"));
    }

    #[test]
    fn tenant_block_omitted_when_inert() {
        let s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        let j = s.to_json();
        assert!(
            !j.contains("tenant") && !j.contains("fairness"),
            "single-tenant runs must serialize without tenant keys: {j}"
        );
        assert!(!s.to_string().contains("tenants:"));
        assert!((s.fairness_index() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tenant_block_round_trips() {
        let mut s = SimStats {
            cycles: 1000,
            instructions: 900,
            ..SimStats::default()
        };
        s.l2_tlb.shared_joins = 7;
        s.tenants.push(TenantStats {
            instructions: 600,
            loads: 120,
            cycles: 1000,
            fresh_l2_misses: 30,
            walks: 25,
        });
        s.tenants.push(TenantStats {
            instructions: 300,
            loads: 60,
            cycles: 900,
            fresh_l2_misses: 90,
            walks: 70,
        });
        let j = s.to_json();
        assert!(j.contains("\"tenant_count\":2"));
        assert!(j.contains("\"tenant0_instructions\":600"));
        assert!(j.contains("\"tenant1_walks\":70"));
        assert!(j.contains("\"l2_tlb_shared_joins\":7"));
        let parsed = SimStats::from_json(&j).expect("parse");
        assert_eq!(parsed.tenants, s.tenants);
        assert_eq!(parsed.l2_tlb.shared_joins, 7);
        assert_eq!(parsed.to_json(), j, "round trip must be byte-identical");
        let text = s.to_string();
        assert!(text.contains("tenants: 2"));
        assert!(text.contains("tenant 0: instr 600"));
    }

    #[test]
    fn fairness_index_is_jain() {
        let mut s = SimStats::default();
        // Two tenants at identical IPC: perfectly fair.
        for _ in 0..2 {
            s.tenants.push(TenantStats {
                instructions: 500,
                cycles: 1000,
                ..TenantStats::default()
            });
        }
        assert!((s.fairness_index() - 1.0).abs() < 1e-12);
        // One tenant starved entirely: Jain's index for (x, 0) is 1/2.
        s.tenants[1].instructions = 0;
        assert!((s.fairness_index() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn silent_corruption_keys_round_trip() {
        let mut s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        s.fault.injected_silent_corruptions = 9;
        s.fault.detected_silent_corruptions = 9;
        s.fault.recovered_injections = 9;
        let j = s.to_json();
        assert!(j.contains("\"fault_silent_corruptions_injected\":9"));
        assert!(j.contains("\"fault_silent_corruptions_detected\":9"));
        let parsed = SimStats::from_json(&j).expect("parse");
        assert_eq!(parsed.fault, s.fault);
        assert_eq!(parsed.to_json(), j);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(SimStats::from_json("").is_err());
        assert!(SimStats::from_json("[1,2]").is_err());
        assert!(SimStats::from_json("{\"cycles\":abc}").is_err());
        assert!(SimStats::from_json("{cycles:1}").is_err());
    }

    #[test]
    fn from_json_ignores_unknown_and_derived_keys() {
        let s = SimStats::from_json(
            "{\"cycles\":10,\"instructions\":20,\"ipc\":99.0,\"future_field\":7}",
        )
        .expect("parse");
        assert_eq!(s.cycles, 10);
        assert_eq!(s.instructions, 20);
        // ipc is derived, never trusted from input.
        assert!((s.ipc() - 2.0).abs() < 1e-12);
    }
}
