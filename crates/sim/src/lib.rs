//! The top-level cycle-driven GPU simulator: Table 3 configuration,
//! translation-mode selection and full-system statistics.
//!
//! [`GpuSimulator`] wires together every substrate crate — SMs with their
//! L1 TLBs and L1D caches (`swgpu-sm`), the shared L2 TLB complex with
//! In-TLB MSHRs (`swgpu-tlb`), the page walk cache and the radix / hashed
//! page tables (`swgpu-pt`), the hardware PTW pool (`swgpu-ptw`), the
//! SoftWalker PW Warps and Request Distributor (`softwalker`), and the
//! shared L2 data cache + GDDR6 DRAM (`swgpu-mem`) — and steps the whole
//! machine one core cycle at a time until the workload retires.
//!
//! [`TranslationMode`] selects which translation machinery serves L2 TLB
//! misses, covering every configuration the paper evaluates: the
//! 32-PTW baseline, scaled PTW pools, NHA coalescing, FS-HPT, the ideal
//! (unbounded) walker, SoftWalker with and without In-TLB MSHRs, and the
//! hardware/software hybrid.
//!
//! # Example
//!
//! ```
//! use swgpu_sim::{GpuConfig, GpuSimulator, TranslationMode};
//! use swgpu_workloads::{by_abbr, WorkloadParams};
//!
//! let mut cfg = GpuConfig::quick_test();
//! cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
//! let spec = by_abbr("gups").unwrap();
//! let wl = spec.build(WorkloadParams {
//!     sms: cfg.sms,
//!     warps_per_sm: cfg.max_warps,
//!     mem_instrs_per_warp: 2,
//!     footprint_percent: 5,
//!     page_size: cfg.page_size,
//! });
//! let stats = GpuSimulator::new(cfg, Box::new(wl)).run();
//! assert!(!stats.timed_out);
//! assert!(stats.instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod gpu;
mod stats;
mod trace;

pub use config::{
    GpuConfig, PrefetchConfig, SharingPolicy, TenantConfig, TenantsConfig, TranslationMode,
};
pub use gpu::{GpuSimulator, PrebuiltMemory, RunProgress, TenantMuxSource};
pub use stats::{SimStats, TenantStats, WalkLatencyStats};
pub use swgpu_obs::{ObsConfig, ObsReport};
pub use trace::{WalkRecord, WalkTrace, WalkerKind};
