//! GPU configuration (Table 3) and translation-mode selection.

use softwalker::{DistributorPolicy, PwWarpConfig};
use swgpu_mem::{CacheConfig, DramConfig};
use swgpu_ptw::{PtwConfig, WalkTiming};
use swgpu_tlb::{TlbConfig, TlbMshrConfig};
use swgpu_types::{FaultPlan, PageSize};

/// Which machinery resolves L2 TLB misses — one variant per configuration
/// the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationMode {
    /// Hardware page table walkers over the radix table (the baseline;
    /// scale `GpuConfig::ptw.walkers` for the Figure 5 sweeps, set
    /// `GpuConfig::ptw.nha` for the NHA \[86\] comparison).
    HardwarePtw,
    /// Hardware walkers over the FS-HPT hashed page table \[32\].
    HashedPtw,
    /// Unbounded walkers *and* unbounded L2 TLB MSHRs: the "Ideal PTWs
    /// with ideal MSHRs" bar of Figure 16.
    IdealPtw,
    /// SoftWalker: PW Warps on every SM; `in_tlb_mshr` toggles the In-TLB
    /// MSHR mechanism ("SW w/o In-TLB MSHR" vs "SoftWalker" in Figure 16).
    SoftWalker {
        /// Enable the In-TLB MSHR overflow (capacity set by
        /// `GpuConfig::in_tlb_max`).
        in_tlb_mshr: bool,
    },
    /// Hybrid (§5.4): hardware walkers preferred while free, overflow to
    /// PW Warps. Protects latency-sensitive regular workloads.
    Hybrid {
        /// Enable the In-TLB MSHR overflow.
        in_tlb_mshr: bool,
    },
}

impl TranslationMode {
    /// Whether this mode deploys PW Warps.
    pub fn uses_software_walkers(self) -> bool {
        matches!(
            self,
            TranslationMode::SoftWalker { .. } | TranslationMode::Hybrid { .. }
        )
    }

    /// Whether this mode uses the hardware PTW pool.
    pub fn uses_hardware_walkers(self) -> bool {
        !matches!(self, TranslationMode::SoftWalker { .. })
    }

    /// Whether the In-TLB MSHR mechanism is active.
    pub fn in_tlb_enabled(self) -> bool {
        matches!(
            self,
            TranslationMode::SoftWalker { in_tlb_mshr: true }
                | TranslationMode::Hybrid { in_tlb_mshr: true }
        )
    }
}

/// Full-system configuration. [`GpuConfig::default`] reproduces Table 3;
/// every field the paper sweeps is public.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of SMs (46).
    pub sms: usize,
    /// Warps per SM (48).
    pub max_warps: usize,
    /// Translation granularity (64 KB base; 2 MB for the large-page
    /// studies).
    pub page_size: PageSize,
    /// Per-SM L1 TLB (32 entries, fully associative).
    pub l1_tlb: TlbConfig,
    /// L1 TLB MSHRs (32 x 192 merges).
    pub l1_mshr: TlbMshrConfig,
    /// L1 TLB lookup latency (10 cycles).
    pub l1_tlb_latency: u64,
    /// Shared L2 TLB (1024 entries, 16-way).
    pub l2_tlb: TlbConfig,
    /// L2 TLB MSHRs (128 x 46 merges). The Figure 12 "MSHRs" sweep scales
    /// `entries`.
    pub l2_mshr: TlbMshrConfig,
    /// L2 TLB access latency (80 cycles; swept 40–200 in Figure 22). Also
    /// the SM↔L2TLB communication charge for SoftWalker dispatch and FL2T
    /// return.
    pub l2_tlb_latency: u64,
    /// Latency of the L2→L1 translation response path.
    pub xlat_return_latency: u64,
    /// Maximum L2 TLB entries usable as In-TLB MSHRs (1024; swept in
    /// Figure 24). Only consulted when the mode enables the mechanism.
    pub in_tlb_max: usize,
    /// Per-SM L1 data cache (128 KB, 40 cycles).
    pub l1d: CacheConfig,
    /// Shared L2 data cache (4 MB, 180 cycles).
    pub l2d: CacheConfig,
    /// GDDR6 DRAM model (16 channels, 448 GB/s).
    pub dram: DramConfig,
    /// Page walk cache (32 entries, fully associative).
    pub pwc_entries: usize,
    /// Hardware walk subsystem (32 walkers baseline; `nha` and `timing`
    /// knobs live here).
    pub ptw: PtwConfig,
    /// PW Warp shape (32 threads, 32-entry SoftPWB).
    pub pw_warp: PwWarpConfig,
    /// Request Distributor policy (round-robin default; Figure 26).
    pub distributor_policy: DistributorPolicy,
    /// Dispatches the Request Distributor can perform per cycle.
    pub dispatches_per_cycle: usize,
    /// Translation machinery under test.
    pub mode: TranslationMode,
    /// Force-enable the In-TLB MSHR even for hardware-walker modes — the
    /// Figure 21 ablation ("128 PTWs + In-TLB MSHR").
    pub force_in_tlb: bool,
    /// Scramble physical frame assignment (like a real free-list
    /// allocator).
    pub scrambled_frames: bool,
    /// Safety net: abort the run after this many cycles.
    pub max_cycles: u64,
    /// Record the lifecycle of the first N completed walks into
    /// [`crate::WalkTrace`] (0 disables; used by the Figure 9 timeline
    /// harness).
    pub walk_trace_cap: usize,
    /// Deterministic fault injection + recovery knobs. All rates default
    /// to zero, which leaves every injection site unarmed: a zero-rate
    /// run is cycle- and stats-identical to a build without the fault
    /// layer. The plan participates in [`GpuConfig::fingerprint`], so
    /// changing it busts the experiment runner's cache.
    pub fault_plan: FaultPlan,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            sms: 46,
            max_warps: 48,
            page_size: PageSize::Size64K,
            l1_tlb: TlbConfig::l1(),
            l1_mshr: TlbMshrConfig::l1(),
            l1_tlb_latency: 10,
            l2_tlb: TlbConfig::l2(),
            l2_mshr: TlbMshrConfig::l2(),
            l2_tlb_latency: 80,
            xlat_return_latency: 20,
            in_tlb_max: 1024,
            l1d: CacheConfig::l1d(),
            l2d: CacheConfig::l2d(),
            dram: DramConfig::default(),
            pwc_entries: 32,
            ptw: PtwConfig::default(),
            pw_warp: PwWarpConfig::default(),
            distributor_policy: DistributorPolicy::RoundRobin,
            dispatches_per_cycle: 2,
            mode: TranslationMode::HardwarePtw,
            force_in_tlb: false,
            scrambled_frames: true,
            max_cycles: 50_000_000,
            walk_trace_cap: 0,
            fault_plan: FaultPlan::default(),
        }
    }
}

impl GpuConfig {
    /// A small configuration for unit tests: 4 SMs, 8 warps each.
    pub fn quick_test() -> Self {
        Self {
            sms: 4,
            max_warps: 8,
            max_cycles: 2_000_000,
            ..Self::default()
        }
    }

    /// Applies the paper's PTW-scaling rule (Figures 5/12/21): sets the
    /// walker count and proportionally scales the PWB; optionally scales
    /// the L2 TLB MSHRs alongside ("PTWs + MSHRs" in Figure 12).
    pub fn with_ptws(mut self, walkers: usize, scale_mshrs: bool) -> Self {
        self.ptw.walkers = walkers;
        self.ptw.pwb_entries = (walkers * 4).max(128);
        self.ptw.pwb_ports = (walkers / 32).max(1);
        if scale_mshrs {
            let f = (walkers / 32).max(1);
            self.l2_mshr.entries = 128 * f;
        }
        self
    }

    /// The ideal configuration: unbounded walkers and MSHRs.
    pub fn ideal(mut self) -> Self {
        self.mode = TranslationMode::IdealPtw;
        self.ptw = PtwConfig {
            timing: self.ptw.timing,
            nha: self.ptw.nha,
            sector_bytes: self.ptw.sector_bytes,
            ..PtwConfig::ideal()
        };
        self.l2_mshr = TlbMshrConfig {
            entries: usize::MAX / 2,
            max_merges: usize::MAX / 2,
        };
        self
    }

    /// Switches to 2 MB pages (the large-page sensitivity studies).
    pub fn with_large_pages(mut self) -> Self {
        self.page_size = PageSize::Size2M;
        self
    }

    /// Sets the fixed per-level page-table latency of Figure 23.
    pub fn with_fixed_walk_latency(mut self, cycles: u64) -> Self {
        self.ptw.timing = WalkTiming::FixedPerLevel(cycles);
        self
    }

    /// A stable 64-bit fingerprint over every configuration field,
    /// rendered as 16 hex digits. Two configurations share a fingerprint
    /// iff their `Debug` representations agree, which covers every public
    /// knob — the experiment runner keys its run cache on this (plus the
    /// workload identity), so any config change busts the cache.
    ///
    /// The fingerprint is FNV-1a over the `Debug` rendering: stable
    /// across runs and platforms for a given source revision, and
    /// intentionally *not* stable across revisions that add or rename
    /// config fields (stale cache entries must not be reused).
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.sms > 0, "need at least one SM");
        assert!(self.max_warps > 0, "need at least one warp per SM");
        assert!(self.dispatches_per_cycle > 0, "distributor needs a port");
        assert!(
            self.pw_warp.softpwb_entries >= 1,
            "SoftPWB must hold requests"
        );
        for (name, rate) in [
            ("pte_corrupt_rate", self.fault_plan.pte_corrupt_rate),
            ("mem_drop_rate", self.fault_plan.mem_drop_rate),
            ("mem_delay_rate", self.fault_plan.mem_delay_rate),
            ("stuck_thread_rate", self.fault_plan.stuck_thread_rate),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "fault plan {name} must be a probability, got {rate}"
            );
        }
        if self.fault_plan.enabled() {
            assert!(
                self.fault_plan.watchdog_cycles > 0,
                "an armed fault plan needs a positive watchdog timeout"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = GpuConfig::default();
        assert_eq!(c.sms, 46);
        assert_eq!(c.max_warps, 48);
        assert_eq!(c.l2_tlb.entries, 1024);
        assert_eq!(c.l2_mshr.entries, 128);
        assert_eq!(c.l2_mshr.max_merges, 46);
        assert_eq!(c.ptw.walkers, 32);
        assert_eq!(c.pwc_entries, 32);
        assert_eq!(c.page_size, PageSize::Size64K);
        assert_eq!(c.pw_warp.threads, 32);
        assert_eq!(c.pw_warp.softpwb_entries, 32);
        assert_eq!(c.in_tlb_max, 1024);
    }

    #[test]
    fn ptw_scaling_scales_companions() {
        let c = GpuConfig::default().with_ptws(256, true);
        assert_eq!(c.ptw.walkers, 256);
        assert_eq!(c.ptw.pwb_entries, 1024);
        assert_eq!(c.l2_mshr.entries, 1024);
        let c2 = GpuConfig::default().with_ptws(256, false);
        assert_eq!(c2.l2_mshr.entries, 128);
    }

    #[test]
    fn mode_predicates() {
        assert!(TranslationMode::SoftWalker { in_tlb_mshr: true }.uses_software_walkers());
        assert!(!TranslationMode::SoftWalker { in_tlb_mshr: false }.uses_hardware_walkers());
        assert!(TranslationMode::Hybrid { in_tlb_mshr: false }.uses_hardware_walkers());
        assert!(TranslationMode::Hybrid { in_tlb_mshr: false }.uses_software_walkers());
        assert!(!TranslationMode::HardwarePtw.in_tlb_enabled());
        assert!(TranslationMode::SoftWalker { in_tlb_mshr: true }.in_tlb_enabled());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let base = GpuConfig::default();
        assert_eq!(base.fingerprint(), GpuConfig::default().fingerprint());
        assert_eq!(base.fingerprint().len(), 16);
        let mut tweaked = GpuConfig::default();
        tweaked.l2_tlb_latency += 1;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let sw = GpuConfig {
            mode: TranslationMode::SoftWalker { in_tlb_mshr: true },
            ..GpuConfig::default()
        };
        assert_ne!(base.fingerprint(), sw.fingerprint());
    }

    #[test]
    fn fault_plan_defaults_disabled_and_fingerprints() {
        let base = GpuConfig::default();
        assert!(!base.fault_plan.enabled());
        base.validate();
        let mut faulty = GpuConfig::default();
        faulty.fault_plan.pte_corrupt_rate = 0.01;
        faulty.validate();
        assert_ne!(
            base.fingerprint(),
            faulty.fingerprint(),
            "an armed plan must bust the run cache"
        );
        let mut reseeded = faulty.clone();
        reseeded.fault_plan.seed = 1;
        assert_ne!(faulty.fingerprint(), reseeded.fingerprint());
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn fault_rate_out_of_range_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.fault_plan.mem_drop_rate = 1.5;
        cfg.validate();
    }

    #[test]
    fn ideal_is_unbounded() {
        let c = GpuConfig::default().ideal();
        assert_eq!(c.ptw.walkers, usize::MAX);
        assert!(c.l2_mshr.entries > 1 << 40);
    }
}
