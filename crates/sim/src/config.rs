//! GPU configuration (Table 3) and translation-mode selection.

use softwalker::{DistributorPolicy, PwWarpConfig};
use swgpu_mem::{CacheConfig, DramConfig};
use swgpu_obs::ObsConfig;
use swgpu_ptw::{PtwConfig, PwbPolicy, WalkTiming};
use swgpu_tlb::{ReplPolicy, TlbConfig, TlbMshrConfig};
use swgpu_types::{FaultPlan, MmConfig, MmEvictPolicy, PageSize};

/// Which machinery resolves L2 TLB misses — one variant per configuration
/// the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationMode {
    /// Hardware page table walkers over the radix table (the baseline;
    /// scale `GpuConfig::ptw.walkers` for the Figure 5 sweeps, set
    /// `GpuConfig::ptw.nha` for the NHA \[86\] comparison).
    HardwarePtw,
    /// Hardware walkers over the FS-HPT hashed page table \[32\].
    HashedPtw,
    /// Unbounded walkers *and* unbounded L2 TLB MSHRs: the "Ideal PTWs
    /// with ideal MSHRs" bar of Figure 16.
    IdealPtw,
    /// SoftWalker: PW Warps on every SM; `in_tlb_mshr` toggles the In-TLB
    /// MSHR mechanism ("SW w/o In-TLB MSHR" vs "SoftWalker" in Figure 16).
    SoftWalker {
        /// Enable the In-TLB MSHR overflow (capacity set by
        /// `GpuConfig::in_tlb_max`).
        in_tlb_mshr: bool,
    },
    /// Hybrid (§5.4): hardware walkers preferred while free, overflow to
    /// PW Warps. Protects latency-sensitive regular workloads.
    Hybrid {
        /// Enable the In-TLB MSHR overflow.
        in_tlb_mshr: bool,
    },
}

impl TranslationMode {
    /// Whether this mode deploys PW Warps.
    pub fn uses_software_walkers(self) -> bool {
        matches!(
            self,
            TranslationMode::SoftWalker { .. } | TranslationMode::Hybrid { .. }
        )
    }

    /// Whether this mode uses the hardware PTW pool.
    pub fn uses_hardware_walkers(self) -> bool {
        !matches!(self, TranslationMode::SoftWalker { .. })
    }

    /// Whether the In-TLB MSHR mechanism is active.
    pub fn in_tlb_enabled(self) -> bool {
        matches!(
            self,
            TranslationMode::SoftWalker { in_tlb_mshr: true }
                | TranslationMode::Hybrid { in_tlb_mshr: true }
        )
    }
}

/// WaSP-style translation-prefetch knobs for the Request Distributor
/// (software-walker modes only): each cycle the distributor peeks up to
/// `lookahead` future loads per warp stream and issues up to `degree`
/// prefetch walks into *idle* PW-Warp threads. Prefetched fills land in
/// the shared L2 TLB tagged, so an unused prefetch is preferentially
/// evicted and its fate (useful / late / evicted) is counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Master switch. Disabled (the default) is fully inert: no extra
    /// work, no stats, and no bytes in [`GpuConfig::fingerprint`].
    pub enabled: bool,
    /// Future load instructions to peek per warp stream.
    pub lookahead: u32,
    /// Maximum prefetch walks issued per cycle.
    pub degree: u32,
}

impl PrefetchConfig {
    /// An enabled prefetcher with modest defaults (4-load lookahead,
    /// 2 prefetches per cycle).
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            lookahead: 4,
            degree: 2,
        }
    }
}

/// How concurrent tenants share the translation stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// MIG-style static partitioning: each tenant owns a disjoint window
    /// of L2 TLB ways (associativity divided evenly) and its walks
    /// dispatch only to its own SMs. Strong isolation, no QoS needed.
    Partitioned,
    /// Fully shared L2 TLB and walker pool, with a QoS cap bounding each
    /// tenant's concurrently in-flight page walks so one irregular tenant
    /// cannot monopolize the walk bandwidth.
    Shared {
        /// Maximum walks a single tenant may have in flight at once.
        max_inflight_walks: u32,
    },
}

/// One tenant: a workload bound to a slice of the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Workload tag (a Table 4 abbreviation like `"bfs"` or `"2mm"`) —
    /// the harness binds this tenant's instruction streams from it.
    pub workload: String,
    /// Number of SMs statically assigned to this tenant. Assignments are
    /// contiguous in tenant order and must sum to [`GpuConfig::sms`].
    pub sms: usize,
}

/// Multi-tenant section: 2–8 concurrent address spaces over one GPU.
///
/// Absent (`GpuConfig::tenants == None`, the default) the simulator is
/// byte-identical to the single-tenant machine: every translation
/// structure keys on [`swgpu_types::Asid::ZERO`] and the section adds no
/// bytes to [`GpuConfig::fingerprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantsConfig {
    /// The tenants, in SM-assignment order (tenant *i* gets ASID *i*).
    pub tenants: Vec<TenantConfig>,
    /// How the shared translation stack is divided.
    pub policy: SharingPolicy,
    /// Opt-in sub-entry sharing: tenants run *identically mapped* address
    /// spaces (one shared page table), and an L2 TLB fill whose (VPN,
    /// PFN) already sits valid under another tenant's tag joins that
    /// entry instead of consuming a way.
    pub sub_entry_sharing: bool,
}

impl TenantsConfig {
    /// A partitioned two-tenant mix of the given workloads, splitting the
    /// SMs evenly (the first tenant takes the remainder).
    pub fn pair(a: &str, b: &str, sms: usize) -> Self {
        Self {
            tenants: vec![
                TenantConfig {
                    workload: a.to_string(),
                    sms: sms - sms / 2,
                },
                TenantConfig {
                    workload: b.to_string(),
                    sms: sms / 2,
                },
            ],
            policy: SharingPolicy::Partitioned,
            sub_entry_sharing: false,
        }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the section is degenerate (never valid; see
    /// [`GpuConfig::validate`]).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The SM index range assigned to tenant `i` (contiguous in tenant
    /// order).
    pub fn sm_range(&self, i: usize) -> std::ops::Range<usize> {
        let start: usize = self.tenants[..i].iter().map(|t| t.sms).sum();
        start..start + self.tenants[i].sms
    }
}

/// Full-system configuration. [`GpuConfig::default`] reproduces Table 3;
/// every field the paper sweeps is public.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of SMs (46).
    pub sms: usize,
    /// Warps per SM (48).
    pub max_warps: usize,
    /// Translation granularity (64 KB base; 2 MB for the large-page
    /// studies).
    pub page_size: PageSize,
    /// Per-SM L1 TLB (32 entries, fully associative).
    pub l1_tlb: TlbConfig,
    /// L1 TLB MSHRs (32 x 192 merges).
    pub l1_mshr: TlbMshrConfig,
    /// L1 TLB lookup latency (10 cycles).
    pub l1_tlb_latency: u64,
    /// Shared L2 TLB (1024 entries, 16-way).
    pub l2_tlb: TlbConfig,
    /// L2 TLB MSHRs (128 x 46 merges). The Figure 12 "MSHRs" sweep scales
    /// `entries`.
    pub l2_mshr: TlbMshrConfig,
    /// L2 TLB access latency (80 cycles; swept 40–200 in Figure 22). Also
    /// the SM↔L2TLB communication charge for SoftWalker dispatch and FL2T
    /// return.
    pub l2_tlb_latency: u64,
    /// Latency of the L2→L1 translation response path.
    pub xlat_return_latency: u64,
    /// Maximum L2 TLB entries usable as In-TLB MSHRs (1024; swept in
    /// Figure 24). Only consulted when the mode enables the mechanism.
    pub in_tlb_max: usize,
    /// Per-SM L1 data cache (128 KB, 40 cycles).
    pub l1d: CacheConfig,
    /// Shared L2 data cache (4 MB, 180 cycles).
    pub l2d: CacheConfig,
    /// GDDR6 DRAM model (16 channels, 448 GB/s).
    pub dram: DramConfig,
    /// Page walk cache (32 entries, fully associative).
    pub pwc_entries: usize,
    /// Hardware walk subsystem (32 walkers baseline; `nha` and `timing`
    /// knobs live here).
    pub ptw: PtwConfig,
    /// PW Warp shape (32 threads, 32-entry SoftPWB).
    pub pw_warp: PwWarpConfig,
    /// Request Distributor policy (round-robin default; Figure 26).
    pub distributor_policy: DistributorPolicy,
    /// Dispatches the Request Distributor can perform per cycle.
    pub dispatches_per_cycle: usize,
    /// Translation prefetch into idle PW-Warp threads (software-walker
    /// modes only). Disabled by default; like [`GpuConfig::obs`], a
    /// disabled block contributes no bytes to [`GpuConfig::fingerprint`].
    pub prefetch: PrefetchConfig,
    /// Translation machinery under test.
    pub mode: TranslationMode,
    /// Force-enable the In-TLB MSHR even for hardware-walker modes — the
    /// Figure 21 ablation ("128 PTWs + In-TLB MSHR").
    pub force_in_tlb: bool,
    /// Scramble physical frame assignment (like a real free-list
    /// allocator).
    pub scrambled_frames: bool,
    /// Safety net: abort the run after this many cycles.
    pub max_cycles: u64,
    /// Record the lifecycle of the first N completed walks into
    /// [`crate::WalkTrace`] (0 disables; used by the Figure 9 timeline
    /// harness).
    pub walk_trace_cap: usize,
    /// Deterministic fault injection + recovery knobs. All rates default
    /// to zero, which leaves every injection site unarmed: a zero-rate
    /// run is cycle- and stats-identical to a build without the fault
    /// layer. The plan participates in [`GpuConfig::fingerprint`], so
    /// changing it busts the experiment runner's cache.
    pub fault_plan: FaultPlan,
    /// Observability knobs (spans, sampled time-series, histograms).
    /// Disabled by default; a disabled config records nothing, leaves
    /// stats byte-identical to the pre-observability behavior and —
    /// crucially — does not participate in [`GpuConfig::fingerprint`],
    /// so obs-off fingerprints (and every cached baseline) are
    /// unchanged. An *enabled* config is hashed and busts the cache.
    pub obs: ObsConfig,
    /// Demand-paged memory manager (Mosaic-style driver/OS model). The
    /// default is *disabled*: the simulator prebuilds the full page table
    /// exactly as before, and — like [`GpuConfig::obs`] — a disabled
    /// block contributes no bytes to [`GpuConfig::fingerprint`], so every
    /// existing cached baseline keeps its key. When enabled, pages are
    /// populated on first touch through the fault-buffer/driver-replay
    /// machinery, contiguous 4 KB runs coalesce into 64 KB/2 MB mappings,
    /// and a device-memory budget triggers LRU eviction.
    pub mm: MmConfig,
    /// Multi-tenant section (2–8 concurrent workloads under MIG-style
    /// partitioning or QoS-capped sharing). `None` — the default — is the
    /// single-tenant machine, byte-identical to the pre-tenant simulator,
    /// and contributes no bytes to [`GpuConfig::fingerprint`].
    pub tenants: Option<TenantsConfig>,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            sms: 46,
            max_warps: 48,
            page_size: PageSize::Size64K,
            l1_tlb: TlbConfig::l1(),
            l1_mshr: TlbMshrConfig::l1(),
            l1_tlb_latency: 10,
            l2_tlb: TlbConfig::l2(),
            l2_mshr: TlbMshrConfig::l2(),
            l2_tlb_latency: 80,
            xlat_return_latency: 20,
            in_tlb_max: 1024,
            l1d: CacheConfig::l1d(),
            l2d: CacheConfig::l2d(),
            dram: DramConfig::default(),
            pwc_entries: 32,
            ptw: PtwConfig::default(),
            pw_warp: PwWarpConfig::default(),
            distributor_policy: DistributorPolicy::RoundRobin,
            dispatches_per_cycle: 2,
            prefetch: PrefetchConfig::default(),
            mode: TranslationMode::HardwarePtw,
            force_in_tlb: false,
            scrambled_frames: true,
            max_cycles: 50_000_000,
            walk_trace_cap: 0,
            fault_plan: FaultPlan::default(),
            obs: ObsConfig::default(),
            mm: MmConfig::default(),
            tenants: None,
        }
    }
}

impl GpuConfig {
    /// A small configuration for unit tests: 4 SMs, 8 warps each.
    pub fn quick_test() -> Self {
        Self {
            sms: 4,
            max_warps: 8,
            max_cycles: 2_000_000,
            ..Self::default()
        }
    }

    /// Applies the paper's PTW-scaling rule (Figures 5/12/21): sets the
    /// walker count and proportionally scales the PWB; optionally scales
    /// the L2 TLB MSHRs alongside ("PTWs + MSHRs" in Figure 12).
    pub fn with_ptws(mut self, walkers: usize, scale_mshrs: bool) -> Self {
        self.ptw.walkers = walkers;
        self.ptw.pwb_entries = (walkers * 4).max(128);
        self.ptw.pwb_ports = (walkers / 32).max(1);
        if scale_mshrs {
            let f = (walkers / 32).max(1);
            self.l2_mshr.entries = 128 * f;
        }
        self
    }

    /// The ideal configuration: unbounded walkers and MSHRs.
    pub fn ideal(mut self) -> Self {
        self.mode = TranslationMode::IdealPtw;
        self.ptw = PtwConfig {
            timing: self.ptw.timing,
            nha: self.ptw.nha,
            sector_bytes: self.ptw.sector_bytes,
            ..PtwConfig::ideal()
        };
        self.l2_mshr = TlbMshrConfig {
            entries: usize::MAX / 2,
            max_merges: usize::MAX / 2,
        };
        self
    }

    /// Switches to 2 MB pages (the large-page sensitivity studies).
    pub fn with_large_pages(mut self) -> Self {
        self.page_size = PageSize::Size2M;
        self
    }

    /// Sets the fixed per-level page-table latency of Figure 23.
    pub fn with_fixed_walk_latency(mut self, cycles: u64) -> Self {
        self.ptw.timing = WalkTiming::FixedPerLevel(cycles);
        self
    }

    /// A stable 64-bit fingerprint over every configuration field,
    /// rendered as 16 hex digits — the experiment runner keys its run
    /// cache on this (plus the workload identity), so any config change
    /// busts the cache.
    ///
    /// The fingerprint is FNV-1a over the *explicit field values* (every
    /// struct is exhaustively destructured, so adding a field without
    /// hashing it is a compile error), **not** over a `Debug` rendering:
    /// a cosmetic `Debug` format change must neither invalidate nor alias
    /// cached baselines. The resulting value is pinned by a
    /// golden-fingerprint test; an accidental change to what is hashed
    /// fails that test loudly instead of silently corrupting the cache.
    pub fn fingerprint(&self) -> String {
        let GpuConfig {
            sms,
            max_warps,
            page_size,
            l1_tlb,
            l1_mshr,
            l1_tlb_latency,
            l2_tlb,
            l2_mshr,
            l2_tlb_latency,
            xlat_return_latency,
            in_tlb_max,
            l1d,
            l2d,
            dram,
            pwc_entries,
            ptw,
            pw_warp,
            distributor_policy,
            dispatches_per_cycle,
            prefetch,
            mode,
            force_in_tlb,
            scrambled_frames,
            max_cycles,
            walk_trace_cap,
            fault_plan,
            obs,
            mm,
            tenants,
        } = self;
        let mut h = Fnv::new();
        h.usize(*sms);
        h.usize(*max_warps);
        h.u64(page_size.bytes());
        hash_tlb(&mut h, l1_tlb);
        hash_tlb_mshr(&mut h, l1_mshr);
        h.u64(*l1_tlb_latency);
        hash_tlb(&mut h, l2_tlb);
        hash_tlb_mshr(&mut h, l2_mshr);
        h.u64(*l2_tlb_latency);
        h.u64(*xlat_return_latency);
        h.usize(*in_tlb_max);
        hash_cache(&mut h, l1d);
        hash_cache(&mut h, l2d);
        hash_dram(&mut h, dram);
        h.usize(*pwc_entries);
        hash_ptw(&mut h, ptw);
        hash_pw_warp(&mut h, pw_warp);
        h.u64(match distributor_policy {
            DistributorPolicy::RoundRobin => 0,
            DistributorPolicy::Random => 1,
            DistributorPolicy::StallAware => 2,
        });
        h.usize(*dispatches_per_cycle);
        match mode {
            TranslationMode::HardwarePtw => h.u64(0),
            TranslationMode::HashedPtw => h.u64(1),
            TranslationMode::IdealPtw => h.u64(2),
            TranslationMode::SoftWalker { in_tlb_mshr } => {
                h.u64(3);
                h.bool(*in_tlb_mshr);
            }
            TranslationMode::Hybrid { in_tlb_mshr } => {
                h.u64(4);
                h.bool(*in_tlb_mshr);
            }
        }
        h.bool(*force_in_tlb);
        h.bool(*scrambled_frames);
        h.u64(*max_cycles);
        h.usize(*walk_trace_cap);
        hash_fault_plan(&mut h, fault_plan);
        hash_obs(&mut h, obs);
        hash_mm(&mut h, mm);
        hash_prefetch(&mut h, prefetch);
        hash_tenants(&mut h, tenants);
        format!("{:016x}", h.finish())
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.sms > 0, "need at least one SM");
        assert!(self.max_warps > 0, "need at least one warp per SM");
        assert!(self.dispatches_per_cycle > 0, "distributor needs a port");
        assert!(
            self.pw_warp.softpwb_entries >= 1,
            "SoftPWB must hold requests"
        );
        for (name, rate) in [
            ("pte_corrupt_rate", self.fault_plan.pte_corrupt_rate),
            (
                "pte_silent_corrupt_rate",
                self.fault_plan.pte_silent_corrupt_rate,
            ),
            ("mem_drop_rate", self.fault_plan.mem_drop_rate),
            ("mem_delay_rate", self.fault_plan.mem_delay_rate),
            ("stuck_thread_rate", self.fault_plan.stuck_thread_rate),
            ("fill_drop_rate", self.fault_plan.fill_drop_rate),
            ("fill_delay_rate", self.fault_plan.fill_delay_rate),
            ("fill_duplicate_rate", self.fault_plan.fill_duplicate_rate),
            ("fill_corrupt_rate", self.fault_plan.fill_corrupt_rate),
            ("shootdown_drop_rate", self.fault_plan.shootdown_drop_rate),
            ("driver_stuck_rate", self.fault_plan.driver_stuck_rate),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "fault plan {name} must be a probability, got {rate}"
            );
        }
        if self.fault_plan.enabled() {
            assert!(
                self.fault_plan.watchdog_cycles > 0,
                "an armed fault plan needs a positive watchdog timeout"
            );
        }
        if self.fault_plan.data_path_enabled() {
            assert!(
                self.mm.enabled,
                "data-path fault rates target the demand-paging pipeline; \
                 enable the memory manager or zero the fill/shootdown/driver \
                 rates"
            );
            assert!(
                self.fault_plan.fill_delay_rate <= 0.0 || self.fault_plan.fill_delay_cycles > 0,
                "an armed fill-delay site needs a positive delay"
            );
            assert!(
                self.fault_plan.frame_retire_threshold >= 1,
                "frame retirement needs a threshold of at least one failure"
            );
        }
        self.obs.validate();
        if self.mm.enabled {
            assert!(
                self.mm.fill_latency > 0,
                "demand paging needs a positive driver fill latency"
            );
            assert!(
                self.mode != TranslationMode::HashedPtw,
                "demand paging requires the radix page table; the FS-HPT \
                 hashed table has no incremental map/unmap path"
            );
        }
        if self.prefetch.enabled {
            assert!(
                self.mode.uses_software_walkers(),
                "translation prefetch issues walks into idle PW-Warp \
                 threads; it requires a software-walker mode"
            );
            assert!(
                self.prefetch.lookahead > 0,
                "an enabled prefetcher needs a positive lookahead"
            );
            assert!(
                self.prefetch.degree > 0,
                "an enabled prefetcher needs a positive degree"
            );
        }
        if self.mode.in_tlb_enabled() || self.force_in_tlb {
            assert!(
                self.in_tlb_max > 0,
                "In-TLB MSHR is enabled but in_tlb_max is 0; disable the \
                 mechanism explicitly (in_tlb_mshr: false / SwNoInTlb) instead"
            );
        }
        if let Some(t) = &self.tenants {
            assert!(
                (2..=8).contains(&t.tenants.len()),
                "multi-tenant runs take 2 to 8 tenants, got {}",
                t.tenants.len()
            );
            assert!(
                t.tenants.iter().all(|x| x.sms > 0),
                "every tenant needs at least one SM"
            );
            assert!(
                t.tenants.iter().all(|x| !x.workload.is_empty()),
                "every tenant needs a workload tag"
            );
            let total: usize = t.tenants.iter().map(|x| x.sms).sum();
            assert_eq!(
                total, self.sms,
                "tenant SM assignments must cover every SM exactly"
            );
            if t.policy == SharingPolicy::Partitioned {
                assert_eq!(
                    self.l2_tlb.assoc % t.tenants.len(),
                    0,
                    "partitioned mode splits L2 TLB ways evenly; the \
                     associativity must be divisible by the tenant count"
                );
            }
            if let SharingPolicy::Shared { max_inflight_walks } = t.policy {
                assert!(
                    max_inflight_walks >= 1,
                    "the QoS cap must admit at least one in-flight walk"
                );
            }
            assert!(
                self.mode != TranslationMode::HashedPtw,
                "multi-tenant runs use per-tenant radix tables; the FS-HPT \
                 hashed table is single-tenant only"
            );
            if t.sub_entry_sharing {
                assert!(
                    !self.mm.enabled,
                    "sub-entry sharing runs one identically-mapped address \
                     space for all tenants; demand paging would evict pages \
                     under one tenant while another still maps them"
                );
            }
        }
    }
}

/// FNV-1a accumulator behind [`GpuConfig::fingerprint`]. All writes are
/// fixed-width (strings are length-prefixed), so two configurations can
/// only collide if a full 64-bit FNV collision occurs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_tlb(h: &mut Fnv, c: &TlbConfig) {
    let TlbConfig {
        name,
        entries,
        assoc,
        repl,
    } = c;
    h.str(name);
    h.usize(*entries);
    h.usize(*assoc);
    // The baseline LRU policy contributes no bytes, so every cached
    // pre-policy-axis fingerprint — including the golden pin — is
    // unchanged.
    if *repl != ReplPolicy::Lru {
        h.u64(0x5245_504c); // "REPL" marker
        h.u64(1);
    }
}

fn hash_tlb_mshr(h: &mut Fnv, c: &TlbMshrConfig) {
    let TlbMshrConfig {
        entries,
        max_merges,
    } = c;
    h.usize(*entries);
    h.usize(*max_merges);
}

fn hash_cache(h: &mut Fnv, c: &CacheConfig) {
    let CacheConfig {
        name,
        size_bytes,
        assoc,
        line_bytes,
        sector_bytes,
        hit_latency,
        mshr_entries,
        mshr_max_merges,
    } = c;
    h.str(name);
    h.u64(*size_bytes);
    h.usize(*assoc);
    h.u64(*line_bytes);
    h.u64(*sector_bytes);
    h.u64(*hit_latency);
    h.usize(*mshr_entries);
    h.usize(*mshr_max_merges);
}

fn hash_dram(h: &mut Fnv, c: &DramConfig) {
    let DramConfig {
        channels,
        latency,
        service_cycles,
        interleave_bytes,
    } = c;
    h.usize(*channels);
    h.u64(*latency);
    h.u64(*service_cycles);
    h.u64(*interleave_bytes);
}

fn hash_ptw(h: &mut Fnv, c: &PtwConfig) {
    let PtwConfig {
        walkers,
        pwb_entries,
        pwb_ports,
        nha,
        sector_bytes,
        timing,
        pwb_policy,
    } = c;
    h.usize(*walkers);
    h.usize(*pwb_entries);
    h.usize(*pwb_ports);
    h.bool(*nha);
    h.u64(*sector_bytes);
    match timing {
        WalkTiming::Memory => h.u64(0),
        WalkTiming::FixedPerLevel(cycles) => {
            h.u64(1);
            h.u64(*cycles);
        }
    }
    h.u64(match pwb_policy {
        PwbPolicy::Fifo => 0,
        PwbPolicy::WarpShortestFirst => 1,
    });
}

fn hash_pw_warp(h: &mut Fnv, c: &PwWarpConfig) {
    let PwWarpConfig {
        threads,
        softpwb_entries,
        setup_instrs,
        per_level_instrs,
        finish_instrs,
        fault_buffer_entries,
    } = c;
    h.usize(*threads);
    h.usize(*softpwb_entries);
    h.u32(*setup_instrs);
    h.u32(*per_level_instrs);
    h.u32(*finish_instrs);
    h.usize(*fault_buffer_entries);
}

/// Hashes the observability block **only when enabled**. A disabled
/// block contributes no bytes at all, so every obs-off configuration
/// fingerprints exactly as it did before the field existed — the golden
/// pin proves it. Enabling observation (or changing an enabled block's
/// knobs) writes a marker plus the knob values, busting the cache for
/// obs-carrying artifacts only.
fn hash_obs(h: &mut Fnv, o: &ObsConfig) {
    let ObsConfig {
        enabled,
        sample_interval,
        series_capacity,
        span_capacity,
    } = o;
    if !enabled {
        return;
    }
    h.u64(0x4f42_5321); // "OBS!" marker
    h.u64(*sample_interval);
    h.usize(*series_capacity);
    h.usize(*span_capacity);
}

fn hash_fault_plan(h: &mut Fnv, p: &FaultPlan) {
    let FaultPlan {
        seed,
        pte_corrupt_rate,
        pte_silent_corrupt_rate,
        mem_drop_rate,
        mem_delay_rate,
        mem_delay_cycles,
        stuck_thread_rate,
        watchdog_cycles,
        max_retries,
        driver_latency,
        fill_drop_rate,
        fill_delay_rate,
        fill_delay_cycles,
        fill_duplicate_rate,
        fill_corrupt_rate,
        shootdown_drop_rate,
        driver_stuck_rate,
        frame_retire_threshold,
    } = p;
    h.u64(*seed);
    h.f64(*pte_corrupt_rate);
    h.f64(*mem_drop_rate);
    h.f64(*mem_delay_rate);
    h.u64(*mem_delay_cycles);
    h.f64(*stuck_thread_rate);
    h.u64(*watchdog_cycles);
    h.u32(*max_retries);
    h.u64(*driver_latency);
    // Hashed only when armed so every pre-existing (silent-rate-zero)
    // fingerprint — including the golden pin — is unchanged.
    if *pte_silent_corrupt_rate > 0.0 {
        h.u64(0x5343_4f52); // "SCOR" marker
        h.f64(*pte_silent_corrupt_rate);
    }
    // Same contract for the demand-paging data-path block: all-zero rates
    // contribute no bytes, so every pre-existing fingerprint is intact.
    if p.data_path_enabled() {
        h.u64(0x4450_5448); // "DPTH" marker
        h.f64(*fill_drop_rate);
        h.f64(*fill_delay_rate);
        h.u64(*fill_delay_cycles);
        h.f64(*fill_duplicate_rate);
        h.f64(*fill_corrupt_rate);
        h.f64(*shootdown_drop_rate);
        h.f64(*driver_stuck_rate);
        h.u32(*frame_retire_threshold);
    }
}

/// Hashes the memory-manager block **only when enabled** — same
/// zero-overhead cache-key contract as [`hash_obs`]: a disabled block
/// contributes no bytes, so prebuilt-mode fingerprints (and every cached
/// baseline) are exactly what they were before the field existed.
fn hash_mm(h: &mut Fnv, m: &MmConfig) {
    let MmConfig {
        enabled,
        resident_page_budget,
        fill_latency,
        coalesce,
        evict,
    } = m;
    if !enabled {
        return;
    }
    h.u64(0x4d4d_4752); // "MMGR" marker
    h.u64(*resident_page_budget);
    h.u64(*fill_latency);
    h.bool(*coalesce);
    // The historical FIFO policy contributes no bytes, so every cached
    // FIFO (and pre-policy-axis) fingerprint is unchanged.
    if *evict != MmEvictPolicy::Fifo {
        h.u64(0x4c52_5545); // "LRUE" marker
        h.u64(1);
    }
}

/// Hashes the translation-prefetch block **only when enabled** — same
/// zero-overhead cache-key contract as [`hash_obs`]/[`hash_mm`]: a
/// disabled block contributes no bytes, so every prefetch-off
/// fingerprint (and every cached baseline) is unchanged.
fn hash_prefetch(h: &mut Fnv, p: &PrefetchConfig) {
    let PrefetchConfig {
        enabled,
        lookahead,
        degree,
    } = p;
    if !enabled {
        return;
    }
    h.u64(0x5046_4348); // "PFCH" marker
    h.u32(*lookahead);
    h.u32(*degree);
}

/// Hashes the multi-tenant section **only when present** — same cache-key
/// contract as [`hash_obs`]/[`hash_mm`]: an absent section contributes no
/// bytes, so every single-tenant fingerprint (including the golden pin)
/// is exactly what it was before the field existed.
fn hash_tenants(h: &mut Fnv, t: &Option<TenantsConfig>) {
    let Some(t) = t else {
        return;
    };
    let TenantsConfig {
        tenants,
        policy,
        sub_entry_sharing,
    } = t;
    h.u64(0x544e_4e54); // "TNNT" marker
    h.usize(tenants.len());
    for TenantConfig { workload, sms } in tenants {
        h.str(workload);
        h.usize(*sms);
    }
    match policy {
        SharingPolicy::Partitioned => h.u64(0),
        SharingPolicy::Shared { max_inflight_walks } => {
            h.u64(1);
            h.u32(*max_inflight_walks);
        }
    }
    h.bool(*sub_entry_sharing);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = GpuConfig::default();
        assert_eq!(c.sms, 46);
        assert_eq!(c.max_warps, 48);
        assert_eq!(c.l2_tlb.entries, 1024);
        assert_eq!(c.l2_mshr.entries, 128);
        assert_eq!(c.l2_mshr.max_merges, 46);
        assert_eq!(c.ptw.walkers, 32);
        assert_eq!(c.pwc_entries, 32);
        assert_eq!(c.page_size, PageSize::Size64K);
        assert_eq!(c.pw_warp.threads, 32);
        assert_eq!(c.pw_warp.softpwb_entries, 32);
        assert_eq!(c.in_tlb_max, 1024);
    }

    #[test]
    fn ptw_scaling_scales_companions() {
        let c = GpuConfig::default().with_ptws(256, true);
        assert_eq!(c.ptw.walkers, 256);
        assert_eq!(c.ptw.pwb_entries, 1024);
        assert_eq!(c.l2_mshr.entries, 1024);
        let c2 = GpuConfig::default().with_ptws(256, false);
        assert_eq!(c2.l2_mshr.entries, 128);
    }

    #[test]
    fn mode_predicates() {
        assert!(TranslationMode::SoftWalker { in_tlb_mshr: true }.uses_software_walkers());
        assert!(!TranslationMode::SoftWalker { in_tlb_mshr: false }.uses_hardware_walkers());
        assert!(TranslationMode::Hybrid { in_tlb_mshr: false }.uses_hardware_walkers());
        assert!(TranslationMode::Hybrid { in_tlb_mshr: false }.uses_software_walkers());
        assert!(!TranslationMode::HardwarePtw.in_tlb_enabled());
        assert!(TranslationMode::SoftWalker { in_tlb_mshr: true }.in_tlb_enabled());
    }

    /// The pinned fingerprint of `GpuConfig::default()`. The experiment
    /// runner's disk cache keys on this value: if it drifts, every cached
    /// baseline is silently invalidated (or worse, aliased). Any change
    /// to the config fields or the hashing scheme must be *deliberate* —
    /// update this constant only when the cache is meant to be busted.
    const GOLDEN_DEFAULT_FINGERPRINT: &str = "e2d406ba07f931c1";

    #[test]
    fn fingerprint_is_pinned() {
        assert_eq!(
            GpuConfig::default().fingerprint(),
            GOLDEN_DEFAULT_FINGERPRINT,
            "GpuConfig::fingerprint drifted — this invalidates every \
             cached baseline; if intentional, update the golden constant"
        );
    }

    #[test]
    fn fingerprint_covers_every_knob() {
        // One perturbation per field family; every one must produce a
        // distinct fingerprint (a knob the hash misses would silently
        // alias cache entries).
        type Tweak = Box<dyn Fn(&mut GpuConfig)>;
        let tweaks: Vec<Tweak> = vec![
            Box::new(|c| c.sms += 1),
            Box::new(|c| c.max_warps += 1),
            Box::new(|c| c.page_size = PageSize::Size2M),
            Box::new(|c| c.l1_tlb.entries += 1),
            Box::new(|c| c.l1_mshr.max_merges += 1),
            Box::new(|c| c.l1_tlb_latency += 1),
            Box::new(|c| c.l2_tlb.assoc += 1),
            Box::new(|c| c.l2_mshr.entries += 1),
            Box::new(|c| c.l2_tlb_latency += 1),
            Box::new(|c| c.xlat_return_latency += 1),
            Box::new(|c| c.in_tlb_max += 1),
            Box::new(|c| c.l1d.size_bytes += 128),
            Box::new(|c| c.l2d.hit_latency += 1),
            Box::new(|c| c.dram.channels += 1),
            Box::new(|c| c.pwc_entries += 1),
            Box::new(|c| c.ptw.walkers += 1),
            Box::new(|c| c.ptw.timing = WalkTiming::FixedPerLevel(100)),
            Box::new(|c| c.ptw.pwb_policy = PwbPolicy::WarpShortestFirst),
            Box::new(|c| c.pw_warp.threads += 1),
            Box::new(|c| c.distributor_policy = DistributorPolicy::Random),
            Box::new(|c| c.dispatches_per_cycle += 1),
            Box::new(|c| c.mode = TranslationMode::SoftWalker { in_tlb_mshr: true }),
            Box::new(|c| c.force_in_tlb = true),
            Box::new(|c| c.scrambled_frames = false),
            Box::new(|c| c.max_cycles += 1),
            Box::new(|c| c.walk_trace_cap = 64),
            Box::new(|c| c.fault_plan.seed = 7),
            Box::new(|c| c.fault_plan.pte_silent_corrupt_rate = 0.25),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.fill_drop_rate = 0.25;
            }),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.fill_delay_rate = 0.25;
            }),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.fill_delay_rate = 0.25;
                c.fault_plan.fill_delay_cycles = 5_000;
            }),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.fill_duplicate_rate = 0.25;
            }),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.fill_corrupt_rate = 0.25;
            }),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.shootdown_drop_rate = 0.25;
            }),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.driver_stuck_rate = 0.25;
            }),
            Box::new(|c| {
                c.mm = MmConfig::demand_paged();
                c.fault_plan.fill_corrupt_rate = 0.25;
                c.fault_plan.frame_retire_threshold = 9;
            }),
            Box::new(|c| {
                c.mm = MmConfig {
                    evict: MmEvictPolicy::Lru,
                    ..MmConfig::demand_paged()
                }
            }),
            Box::new(|c| c.obs = ObsConfig::enabled()),
            Box::new(|c| c.mm = MmConfig::demand_paged()),
            Box::new(|c| {
                c.mm = MmConfig {
                    resident_page_budget: 4096,
                    ..MmConfig::demand_paged()
                }
            }),
            Box::new(|c| {
                c.obs = ObsConfig {
                    sample_interval: 2048,
                    ..ObsConfig::enabled()
                }
            }),
            Box::new(|c| c.l1_tlb.repl = ReplPolicy::DeadBlock),
            Box::new(|c| c.l2_tlb.repl = ReplPolicy::DeadBlock),
            Box::new(|c| {
                c.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
                c.prefetch = PrefetchConfig::enabled();
            }),
            Box::new(|c| {
                c.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
                c.prefetch = PrefetchConfig {
                    lookahead: 8,
                    ..PrefetchConfig::enabled()
                };
            }),
            Box::new(|c| c.tenants = Some(TenantsConfig::pair("bfs", "2mm", 46))),
            Box::new(|c| c.tenants = Some(TenantsConfig::pair("bfs", "sssp", 46))),
            Box::new(|c| {
                let mut t = TenantsConfig::pair("bfs", "2mm", 46);
                t.tenants[0].sms = 30;
                t.tenants[1].sms = 16;
                c.tenants = Some(t);
            }),
            Box::new(|c| {
                let mut t = TenantsConfig::pair("bfs", "2mm", 46);
                t.policy = SharingPolicy::Shared {
                    max_inflight_walks: 64,
                };
                c.tenants = Some(t);
            }),
            Box::new(|c| {
                let mut t = TenantsConfig::pair("bfs", "2mm", 46);
                t.policy = SharingPolicy::Shared {
                    max_inflight_walks: 128,
                };
                c.tenants = Some(t);
            }),
            Box::new(|c| {
                let mut t = TenantsConfig::pair("bfs", "bfs", 46);
                t.sub_entry_sharing = true;
                c.tenants = Some(t);
            }),
        ];
        let mut prints = vec![GpuConfig::default().fingerprint()];
        for tweak in &tweaks {
            let mut cfg = GpuConfig::default();
            tweak(&mut cfg);
            prints.push(cfg.fingerprint());
        }
        let unique: std::collections::HashSet<&String> = prints.iter().collect();
        assert_eq!(unique.len(), prints.len(), "fingerprint aliased a knob");
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let base = GpuConfig::default();
        assert_eq!(base.fingerprint(), GpuConfig::default().fingerprint());
        assert_eq!(base.fingerprint().len(), 16);
        let mut tweaked = GpuConfig::default();
        tweaked.l2_tlb_latency += 1;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let sw = GpuConfig {
            mode: TranslationMode::SoftWalker { in_tlb_mshr: true },
            ..GpuConfig::default()
        };
        assert_ne!(base.fingerprint(), sw.fingerprint());
    }

    #[test]
    fn fault_plan_defaults_disabled_and_fingerprints() {
        let base = GpuConfig::default();
        assert!(!base.fault_plan.enabled());
        base.validate();
        let mut faulty = GpuConfig::default();
        faulty.fault_plan.pte_corrupt_rate = 0.01;
        faulty.validate();
        assert_ne!(
            base.fingerprint(),
            faulty.fingerprint(),
            "an armed plan must bust the run cache"
        );
        let mut reseeded = faulty.clone();
        reseeded.fault_plan.seed = 1;
        assert_ne!(faulty.fingerprint(), reseeded.fingerprint());
    }

    #[test]
    fn disabled_obs_leaves_fingerprint_unchanged() {
        // The zero-overhead contract extends to the cache key: an obs-off
        // config hashes identically no matter what the (ignored) knobs
        // say, and identically to the pre-observability golden pin.
        let mut weird_knobs = GpuConfig::default();
        weird_knobs.obs.sample_interval = 99;
        weird_knobs.obs.series_capacity = 7;
        assert_eq!(weird_knobs.fingerprint(), GOLDEN_DEFAULT_FINGERPRINT);

        let on = GpuConfig {
            obs: ObsConfig::enabled(),
            ..GpuConfig::default()
        };
        on.validate();
        assert_ne!(
            on.fingerprint(),
            GOLDEN_DEFAULT_FINGERPRINT,
            "enabled observation must bust the cache"
        );
    }

    #[test]
    fn disabled_mm_leaves_fingerprint_unchanged() {
        // Like obs: an mm-off config hashes identically no matter what
        // the (ignored) knobs say, and identically to the pre-mm golden
        // pin — prebuilt-mode cached baselines keep their keys.
        let mut weird_knobs = GpuConfig::default();
        weird_knobs.mm.resident_page_budget = 17;
        weird_knobs.mm.fill_latency = 999;
        weird_knobs.mm.coalesce = false;
        assert_eq!(weird_knobs.fingerprint(), GOLDEN_DEFAULT_FINGERPRINT);

        let on = GpuConfig {
            mm: MmConfig::demand_paged(),
            ..GpuConfig::default()
        };
        on.validate();
        assert_ne!(
            on.fingerprint(),
            GOLDEN_DEFAULT_FINGERPRINT,
            "demand paging must bust the cache"
        );
    }

    #[test]
    fn zero_silent_rate_leaves_fingerprint_unchanged() {
        assert_eq!(
            GpuConfig::default().fingerprint(),
            GOLDEN_DEFAULT_FINGERPRINT
        );
        let mut armed = GpuConfig::default();
        armed.fault_plan.pte_silent_corrupt_rate = 0.01;
        armed.validate();
        assert_ne!(armed.fingerprint(), GOLDEN_DEFAULT_FINGERPRINT);
    }

    #[test]
    fn zero_data_path_rates_leave_fingerprint_unchanged() {
        // Non-rate data-path knobs (delay length, retire threshold) are
        // ignored while every rate is zero — same contract as the silent
        // corrupt rate above, so the golden pin survives the new fields.
        let mut idle_knobs = GpuConfig::default();
        idle_knobs.fault_plan.fill_delay_cycles = 123;
        idle_knobs.fault_plan.frame_retire_threshold = 42;
        assert_eq!(idle_knobs.fingerprint(), GOLDEN_DEFAULT_FINGERPRINT);

        let mut armed = GpuConfig {
            mm: MmConfig::demand_paged(),
            ..GpuConfig::default()
        };
        armed.fault_plan.fill_drop_rate = 0.01;
        armed.validate();
        let mm_only = GpuConfig {
            mm: MmConfig::demand_paged(),
            ..GpuConfig::default()
        };
        assert_ne!(
            armed.fingerprint(),
            mm_only.fingerprint(),
            "armed data-path rates must bust the cache"
        );
    }

    #[test]
    fn fifo_evict_policy_leaves_fingerprint_unchanged() {
        // FIFO is the pre-policy-axis behaviour: an enabled manager with
        // FIFO eviction hashes exactly as it did before the enum existed.
        let fifo = GpuConfig {
            mm: MmConfig::demand_paged(),
            ..GpuConfig::default()
        };
        let lru = GpuConfig {
            mm: MmConfig {
                evict: MmEvictPolicy::Lru,
                ..MmConfig::demand_paged()
            },
            ..GpuConfig::default()
        };
        lru.validate();
        assert_ne!(fifo.fingerprint(), lru.fingerprint());
        // Disabled manager ignores the policy knob entirely.
        let mut off = GpuConfig::default();
        off.mm.evict = MmEvictPolicy::Lru;
        assert_eq!(off.fingerprint(), GOLDEN_DEFAULT_FINGERPRINT);
    }

    #[test]
    fn lru_policy_and_disabled_prefetch_leave_fingerprint_unchanged() {
        // Same contract as obs/mm: the baseline replacement policy and a
        // disabled prefetcher add no bytes, so the golden pin and every
        // cached baseline survive the new policy axis.
        let mut idle_knobs = GpuConfig::default();
        idle_knobs.prefetch.lookahead = 99;
        idle_knobs.prefetch.degree = 3;
        assert_eq!(idle_knobs.fingerprint(), GOLDEN_DEFAULT_FINGERPRINT);

        let mut dead = GpuConfig::default();
        dead.l2_tlb.repl = ReplPolicy::DeadBlock;
        dead.validate();
        assert_ne!(
            dead.fingerprint(),
            GOLDEN_DEFAULT_FINGERPRINT,
            "a non-LRU policy must bust the cache"
        );

        let sw_only = GpuConfig {
            mode: TranslationMode::SoftWalker { in_tlb_mshr: true },
            ..GpuConfig::default()
        };
        let pf = GpuConfig {
            prefetch: PrefetchConfig::enabled(),
            ..sw_only.clone()
        };
        pf.validate();
        assert_ne!(
            pf.fingerprint(),
            sw_only.fingerprint(),
            "an enabled prefetcher must bust the cache"
        );
    }

    #[test]
    fn absent_tenants_leave_fingerprint_unchanged() {
        // The multi-tenant section follows the gated-block contract: the
        // default (single-tenant) config hashes exactly as it did before
        // the field existed, so the golden pin and every cached baseline
        // survive. A present section busts the cache.
        assert_eq!(
            GpuConfig::default().fingerprint(),
            GOLDEN_DEFAULT_FINGERPRINT
        );
        let two = GpuConfig {
            tenants: Some(TenantsConfig::pair("bfs", "2mm", 46)),
            ..GpuConfig::default()
        };
        two.validate();
        assert_ne!(two.fingerprint(), GOLDEN_DEFAULT_FINGERPRINT);
    }

    #[test]
    fn tenant_validation_accepts_both_policies() {
        for policy in [
            SharingPolicy::Partitioned,
            SharingPolicy::Shared {
                max_inflight_walks: 64,
            },
        ] {
            let mut cfg = GpuConfig::quick_test();
            let mut t = TenantsConfig::pair("bfs", "2mm", cfg.sms);
            t.policy = policy;
            cfg.tenants = Some(t);
            cfg.validate();
        }
    }

    #[test]
    fn tenant_sm_ranges_are_contiguous_and_disjoint() {
        let mut t = TenantsConfig::pair("a", "b", 46);
        t.tenants.push(TenantConfig {
            workload: "c".into(),
            sms: 10,
        });
        assert_eq!(t.sm_range(0), 0..23);
        assert_eq!(t.sm_range(1), 23..46);
        assert_eq!(t.sm_range(2), 46..56);
    }

    #[test]
    #[should_panic(expected = "cover every SM")]
    fn tenant_sm_mismatch_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.tenants = Some(TenantsConfig::pair("bfs", "2mm", cfg.sms + 1));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "2 to 8 tenants")]
    fn too_many_tenants_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.sms = 9;
        let tenants = (0..9)
            .map(|i| TenantConfig {
                workload: format!("w{i}"),
                sms: 1,
            })
            .collect();
        cfg.tenants = Some(TenantsConfig {
            tenants,
            policy: SharingPolicy::Partitioned,
            sub_entry_sharing: false,
        });
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "divisible by the tenant count")]
    fn partitioned_ways_must_divide() {
        let mut cfg = GpuConfig::quick_test();
        cfg.sms = 3;
        cfg.tenants = Some(TenantsConfig {
            tenants: (0..3)
                .map(|i| TenantConfig {
                    workload: format!("w{i}"),
                    sms: 1,
                })
                .collect(),
            policy: SharingPolicy::Partitioned,
            sub_entry_sharing: false,
        });
        // 16 ways over 3 tenants does not divide.
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one in-flight walk")]
    fn zero_qos_cap_rejected() {
        let mut cfg = GpuConfig::quick_test();
        let mut t = TenantsConfig::pair("bfs", "2mm", cfg.sms);
        t.policy = SharingPolicy::Shared {
            max_inflight_walks: 0,
        };
        cfg.tenants = Some(t);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "single-tenant only")]
    fn tenants_with_hashed_table_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = TranslationMode::HashedPtw;
        cfg.tenants = Some(TenantsConfig::pair("bfs", "2mm", cfg.sms));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "demand paging")]
    fn sub_entry_sharing_with_mm_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mm = MmConfig::demand_paged();
        let mut t = TenantsConfig::pair("bfs", "bfs", cfg.sms);
        t.sub_entry_sharing = true;
        cfg.tenants = Some(t);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "software-walker mode")]
    fn prefetch_without_software_walkers_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = TranslationMode::HardwarePtw;
        cfg.prefetch = PrefetchConfig::enabled();
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn prefetch_with_zero_lookahead_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
        cfg.prefetch = PrefetchConfig {
            lookahead: 0,
            ..PrefetchConfig::enabled()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "demand-paging pipeline")]
    fn data_path_rates_without_mm_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.fault_plan.fill_corrupt_rate = 0.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "positive driver fill latency")]
    fn mm_with_zero_fill_latency_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mm = MmConfig {
            fill_latency: 0,
            ..MmConfig::demand_paged()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "radix page table")]
    fn mm_with_hashed_table_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mm = MmConfig::demand_paged();
        cfg.mode = TranslationMode::HashedPtw;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "sample interval")]
    fn enabled_obs_with_zero_interval_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.obs = ObsConfig {
            sample_interval: 0,
            ..ObsConfig::enabled()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn fault_rate_out_of_range_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.fault_plan.mem_drop_rate = 1.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "in_tlb_max is 0")]
    fn in_tlb_enabled_with_zero_capacity_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
        cfg.in_tlb_max = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "in_tlb_max is 0")]
    fn forced_in_tlb_with_zero_capacity_rejected() {
        let mut cfg = GpuConfig::quick_test();
        cfg.force_in_tlb = true;
        cfg.in_tlb_max = 0;
        cfg.validate();
    }

    #[test]
    fn in_tlb_disabled_allows_zero_capacity() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: false };
        cfg.in_tlb_max = 0;
        cfg.validate();
    }

    #[test]
    fn ideal_is_unbounded() {
        let c = GpuConfig::default().ideal();
        assert_eq!(c.ptw.walkers, usize::MAX);
        assert!(c.l2_mshr.entries > 1 << 40);
    }
}
