//! The full-GPU cycle loop.

use crate::config::{GpuConfig, SharingPolicy, TenantsConfig, TranslationMode};
use crate::stats::SimStats;
use softwalker::{
    DistributorPolicy, FaultBuffer, FaultRecord, PwWarpUnit, RequestDistributor, SwWalkRequest,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use swgpu_mem::{AccessOutcome, Cache, Dram, MemReq, PhysMem};
use swgpu_obs::{
    BusyTracker, CounterId, HistId, ObsReport, Registry, SeriesId, Span, SpanKind, SpanRecorder,
    SwtbStream,
};
use swgpu_pt::{AddressSpace, FrameCheck, HashedPageTable, MemoryManager, PageWalkCache};
use swgpu_ptw::{PtwSubsystem, TableRef, WalkContext, WalkOwner, WalkRequest};
use swgpu_sm::{InstrSource, Sm, SmConfig, WarpInstr};
use swgpu_tlb::{L2MissOutcome, L2TlbComplex};
use swgpu_types::WarpId;
use swgpu_types::{
    fault::site, Asid, Component, Cycle, FaultInjectionStats, FaultInjector, IdGen, MemReqId,
    MmFaultStats, Pfn, Port, SmId, VirtAddr, Vpn,
};

/// The L2 MSHR meta a translation prefetch registers as its "waiter".
/// No SM has this id; [`GpuSimulator::finish_translation`] filters it
/// from the waiter list instead of delivering a translation to it.
const PREFETCH_REQUESTER: SmId = SmId::new(u16::MAX);

/// Who issued a memory request into the shared L2 data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemOwner {
    /// An SM's L1D fill.
    SmData(usize),
    /// A hardware page table walker.
    Ptw,
    /// An SM's PW Warp `LDPT`.
    PwWarp(usize),
}

/// An L2 TLB request waiting for MSHR capacity.
#[derive(Debug, Clone, Copy)]
struct PendingL2 {
    sm: SmId,
    warp: WarpId,
    vpn: Vpn,
    first_seen: Cycle,
    counted_failure: bool,
}

/// One request in the simulated UVM driver's service queue: the owning
/// tenant, the faulted VPN, the cycle the walk was originally issued,
/// how many injected service stalls this request has already absorbed,
/// and whether it is a re-fill of a page quarantined by checksum
/// verification.
#[derive(Debug, Clone, Copy)]
struct DriverReq {
    asid: Asid,
    vpn: Vpn,
    issued_at: Cycle,
    stalls: u32,
    refill: bool,
}

/// Per-VPN state of an in-flight demand-paging fill replay. The
/// generation ties watchdogs to one specific fill (a watchdog armed for
/// an earlier fill of the same page must not fire into a later one);
/// `drop_pending` counts injected completion drops not yet resolved.
#[derive(Debug, Clone, Copy, Default)]
struct FillTracker {
    generation: u64,
    retries: u32,
    drop_pending: u64,
}

/// Timed self-messages of the demand-paging fault machinery: fill
/// watchdogs and artificially delayed replay deliveries.
#[derive(Debug, Clone, Copy)]
enum MmEvent {
    FillWatchdog {
        asid: Asid,
        vpn: Vpn,
        generation: u64,
    },
    DelayedReplay {
        asid: Asid,
        vpn: Vpn,
        issued_at: Cycle,
    },
}

/// Injectors for the four demand-paging data-path fault sites. Present
/// only when the plan arms a data-path rate *and* the memory manager is
/// on; `None` keeps the unfaulted path free of RNG draws entirely.
struct DataFaultState {
    fill_complete: FaultInjector,
    fill_payload: FaultInjector,
    shootdown: FaultInjector,
    driver_queue: FaultInjector,
}

/// Live observability instruments, allocated only when
/// [`swgpu_obs::ObsConfig::enabled`] is set. The simulator holds this
/// behind an `Option<Box<_>>` so a disabled run pays one pointer of
/// state and a handful of `is_some` branches — nothing else.
struct ObsState {
    reg: Registry,
    rec: SpanRecorder,
    /// Attached SWTB streaming sink, if any. With a stream the recorder
    /// runs in staging mode: full stagings flush here instead of
    /// dropping, and sample ticks emit instrument deltas.
    stream: Option<SwtbStream>,
    /// Per-SM PW-Warp issue-port busy coalescers.
    busy: Vec<BusyTracker>,
    /// Next cycle at which the time-series sample.
    next_sample: u64,
    interval: u64,
    // Histogram handles (walk-latency decomposition, per-SM stalls).
    h_walk_total: HistId,
    h_walk_queue: HistId,
    h_walk_access: HistId,
    h_sm_stall: HistId,
    // Counter handles.
    c_dispatches: CounterId,
    c_pte_reads: CounterId,
    c_driver_replays: CounterId,
    // Sampled-occupancy series handles.
    s_softpwb: SeriesId,
    s_pw_active: SeriesId,
    s_hw_pwb: SeriesId,
    s_hw_active: SeriesId,
    s_mshr_dedicated: SeriesId,
    s_mshr_in_tlb: SeriesId,
    s_mshr_overflow: SeriesId,
    s_dispatch_q: SeriesId,
}

impl ObsState {
    fn new(cfg: &swgpu_obs::ObsConfig, sms: usize) -> Self {
        let mut reg = Registry::new(cfg.sample_interval, cfg.series_capacity);
        let h_walk_total = reg.hist("walk_total_cycles");
        let h_walk_queue = reg.hist("walk_queue_cycles");
        let h_walk_access = reg.hist("walk_access_cycles");
        let h_sm_stall = reg.hist("sm_stall_cycles");
        let c_dispatches = reg.counter("distributor_dispatches");
        let c_pte_reads = reg.counter("pte_reads");
        let c_driver_replays = reg.counter("driver_replays");
        let s_softpwb = reg.series("softpwb_occupancy");
        let s_pw_active = reg.series("pw_active_walks");
        let s_hw_pwb = reg.series("hw_pwb_depth");
        let s_hw_active = reg.series("hw_active_walks");
        let s_mshr_dedicated = reg.series("l2_mshr_dedicated");
        let s_mshr_in_tlb = reg.series("l2_mshr_in_tlb");
        let s_mshr_overflow = reg.series("l2_mshr_overflow_waiting");
        let s_dispatch_q = reg.series("dispatch_queue_depth");
        Self {
            reg,
            rec: SpanRecorder::new(cfg.span_capacity),
            stream: None,
            busy: (0..sms).map(|i| BusyTracker::new(i as u32)).collect(),
            next_sample: 0,
            interval: cfg.sample_interval,
            h_walk_total,
            h_walk_queue,
            h_walk_access,
            h_sm_stall,
            c_dispatches,
            c_pte_reads,
            c_driver_replays,
            s_softpwb,
            s_pw_active,
            s_hw_pwb,
            s_hw_active,
            s_mshr_dedicated,
            s_mshr_in_tlb,
            s_mshr_overflow,
            s_dispatch_q,
        }
    }

    /// Routes every span through one choke point so the staging buffer
    /// can flush to the stream *exactly* when it reaches capacity. The
    /// flush trigger depends only on recorded span content — never on
    /// the kernel's step schedule — which is what keeps dense⇔event
    /// SWTB output byte-identical.
    fn push(&mut self, span: Span) {
        if self.rec.needs_flush() {
            if let Some(stream) = self.stream.as_mut() {
                stream
                    .flush_spans(&self.rec.take_staged())
                    .expect("SWTB trace sink write failed");
            }
        }
        self.rec.record(span);
    }

    fn instant(&mut self, kind: SpanKind, track: u32, at: u64, vpn: u64, aux: u64) {
        self.push(Span {
            kind,
            track,
            start: at,
            end: at,
            vpn,
            aux,
        });
    }

    fn span(&mut self, kind: SpanKind, track: u32, start: Cycle, end: Cycle, vpn: Vpn) {
        self.push(Span {
            kind,
            track,
            start: start.value(),
            end: end.value(),
            vpn: vpn.value(),
            aux: 0,
        });
    }
}

/// A live progress snapshot handed to a [`GpuSimulator::set_progress_hook`]
/// callback while the run loop executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Simulated cycles so far.
    pub cycles: u64,
    /// Spans flushed to the attached SWTB sink (0 without a sink).
    pub spans_flushed: u64,
    /// Bytes the SWTB sink has absorbed (0 without a sink).
    pub trace_bytes: u64,
}

struct ProgressHook {
    every: u64,
    next: u64,
    hook: Box<dyn FnMut(RunProgress)>,
}

/// A physical memory image with the workload footprint already mapped.
///
/// Building one is deterministic in `(page_size, scrambled, footprint
/// bytes)`: the frame allocator and radix table insertions depend on
/// nothing else. The experiment runner exploits this by building the
/// image once per distinct footprint and handing each cell a clone via
/// [`GpuSimulator::new_with_prebuilt`].
#[derive(Debug, Clone)]
pub struct PrebuiltMemory {
    page_size: swgpu_types::PageSize,
    scrambled: bool,
    phys: PhysMem,
    space: AddressSpace,
}

impl PrebuiltMemory {
    /// Maps `footprint_bytes` of virtual address space starting at 0 into
    /// a fresh physical memory, exactly as
    /// [`GpuSimulator::new_with_footprint`] would.
    pub fn build(page_size: swgpu_types::PageSize, scrambled: bool, footprint_bytes: u64) -> Self {
        let mut phys = PhysMem::new();
        let mut space = if scrambled {
            AddressSpace::new_scrambled(page_size, &mut phys)
        } else {
            AddressSpace::new(page_size, &mut phys)
        };
        space.map_region(VirtAddr::new(0), footprint_bytes, &mut phys);
        Self {
            page_size,
            scrambled,
            phys,
            space,
        }
    }

    /// Number of pages the image has mapped.
    pub fn mapped_pages(&self) -> usize {
        self.space.mapped_pages()
    }
}

/// Routes each global SM to the owning tenant's instruction source.
///
/// Tenant workloads are built for their own SM partition (SM ids
/// `0..tenant_sms`), so the mux rewrites the global SM id to the
/// tenant-local one before forwarding. Warp ids pass through unchanged.
pub struct TenantMuxSource {
    sources: Vec<Box<dyn InstrSource>>,
    /// Global SM index → (tenant index, tenant-local SM id).
    map: Vec<(usize, SmId)>,
}

impl TenantMuxSource {
    /// Builds the mux from the tenant layout and one source per tenant,
    /// in ASID order.
    ///
    /// # Panics
    ///
    /// Panics if the source count does not match the tenant count.
    pub fn new(tenants: &TenantsConfig, sources: Vec<Box<dyn InstrSource>>) -> Self {
        assert_eq!(
            tenants.len(),
            sources.len(),
            "one instruction source per tenant"
        );
        let mut map = Vec::new();
        for i in 0..tenants.len() {
            for (local, _) in tenants.sm_range(i).enumerate() {
                map.push((i, SmId::new(local as u16)));
            }
        }
        Self { sources, map }
    }
}

impl InstrSource for TenantMuxSource {
    fn next_instr(&mut self, sm: SmId, warp: WarpId) -> Option<WarpInstr> {
        let (tenant, local) = self.map[sm.index()];
        self.sources[tenant].next_instr(local, warp)
    }

    fn peek_load_vpns(&self, sm: SmId, warp: WarpId, lookahead: u32) -> Vec<Vpn> {
        let (tenant, local) = self.map[sm.index()];
        self.sources[tenant].peek_load_vpns(local, warp, lookahead)
    }
}

/// The assembled GPU. See the crate-level example for usage; construct
/// with a configuration and a boxed workload, then [`GpuSimulator::run`].
pub struct GpuSimulator {
    cfg: GpuConfig,
    source: Box<dyn InstrSource>,
    sms: Vec<Sm>,
    pw_warps: Vec<PwWarpUnit>,
    l2: L2TlbComplex<SmId>,
    pwc: PageWalkCache,
    ptw: PtwSubsystem,
    l2d: Cache,
    dram: Dram,
    phys: PhysMem,
    // Per-tenant address spaces, indexed by ASID. Single-tenant runs
    // hold exactly one; sub-entry-sharing mode clones one shared space
    // into every slot so indexing stays uniform.
    spaces: Vec<AddressSpace>,
    hashed: Option<HashedPageTable>,
    // SM → tenant binding (all `Asid::ZERO` without a tenants config).
    sm_asids: Vec<Asid>,
    // Partitioned-policy dispatch masks: `tenant_masks[asid][sm]` is
    // true iff the SM belongs to the tenant. Empty in shared mode and
    // on single-tenant runs (empty mask = every SM eligible).
    tenant_masks: Vec<Vec<bool>>,
    // Shared-policy QoS: per-tenant cap on concurrently in-flight walks
    // (`None` disables gating entirely) and the live per-tenant count.
    qos_cap: Option<u32>,
    inflight_walks: Vec<u32>,
    // Per-tenant MPKI/fairness raw counters (always maintained, only
    // surfaced in the stats on multi-tenant runs).
    tenant_fresh_misses: Vec<u64>,
    tenant_walks: Vec<u64>,
    distributor: RequestDistributor,
    ids: IdGen,
    now: Cycle,
    // Inter-component ports. Latency ports carry fixed-delay messages
    // (L2 TLB hops, translation returns, driver replays); FIFO ports are
    // plain backlogs (dispatch queue, retry queues). Both feed the event
    // kernel's drain/wake derivation uniformly via `Component`.
    to_l2: Port<(SmId, WarpId, Vpn, Cycle)>,
    l2_retry: Port<PendingL2>,
    xlat_ret: Port<(SmId, Vpn, Option<Pfn>)>,
    dispatch_q: Port<(Asid, Vpn, Cycle)>,
    sw_to_sm: Port<(usize, SwWalkRequest)>,
    fl2t_ret: Port<(usize, softwalker::SwCompletion)>,
    pwb_retry: Port<WalkRequest>,
    l2d_retry: Port<MemReq>,
    mem_owner: HashMap<MemReqId, MemOwner>,
    // Fault recovery: escalated translations waiting on the simulated
    // UVM driver, hardware-walk fault records (the PW Warps log into
    // their own per-SM buffers), and the driver-side counters.
    driver_q: Port<DriverReq>,
    hw_faults: FaultBuffer,
    fault_counters: FaultInjectionStats,
    // Demand paging: one simulated driver/OS memory manager per tenant
    // (empty in the default prebuilt mode) and the pages whose fill
    // replay is still in flight — their replayed walks are tagged so the
    // PW Warps can count software fill replays. BTreeMap for
    // deterministic iteration.
    mms: Vec<MemoryManager>,
    pending_fills: BTreeMap<(Asid, Vpn), FillTracker>,
    // Demand-paging data-path fault machinery: watchdog/delay timer
    // port, duplicated completions not yet absorbed, victims whose TLB
    // shootdown was dropped, driver-side counters, and the injectors
    // (None unless the plan arms a data-path rate with the mm on).
    mm_events: Port<MmEvent>,
    dup_fills: BTreeMap<(Asid, Vpn), u64>,
    stale_shootdowns: BTreeMap<(Asid, Vpn), u64>,
    mm_fault: MmFaultStats,
    data_faults: Option<DataFaultState>,
    // Translation prefetch (inert unless cfg.prefetch.enabled): pages
    // whose prefetch walk is still in flight, the rotation cursor over
    // (sm, warp) streams, and the counters the TLB cannot see (issues,
    // demand merges onto live prefetch walks, failed prefetch walks).
    prefetch_live: BTreeSet<(Asid, Vpn)>,
    prefetch_cursor: usize,
    prefetch_issued: u64,
    prefetch_late: u64,
    prefetch_failed: u64,
    // Retry budgets: rejected requests are re-attempted only as capacity
    // is actually freed (2 retries per completion, covering merge
    // opportunities), so a saturated cycle costs O(freed) instead of
    // O(backlog).
    l2_retry_budget: usize,
    l2d_retry_budget: usize,
    // Observability instruments; `None` (the default) costs nothing on
    // the hot path beyond a branch per hook.
    obs: Option<Box<ObsState>>,
    // Periodic progress callback (runner liveness reporting). Purely
    // observational: it reads cycle/flush counters, never sim state.
    progress: Option<ProgressHook>,
    stats: SimStats,
}

/// The single source of truth for what the event kernel drives: every
/// port, every gated backlog (with its gate condition), and every timed
/// component. `is_drained` and `next_event_wake` both expand from this
/// list, so adding a queue or component in one place wires it into both
/// the drain check and the wake schedule — forgetting it is a compile
/// error at the use site, not a silent hang.
///
/// `dispatch_q` is deliberately an *ungated* port: while it is non-empty
/// the dense loop consults the distributor (consuming RNG and counting
/// blocked cycles) every single cycle, so the kernel must too.
macro_rules! with_kernel_inventory {
    ($self:ident, $port:ident, $gated:ident, $comp:ident) => {
        $port!(to_l2);
        $port!(xlat_ret);
        $port!(sw_to_sm);
        $port!(fl2t_ret);
        $port!(driver_q);
        $port!(mm_events);
        $port!(dispatch_q);
        $gated!(l2_retry, $self.l2_retry_budget > 0);
        $gated!(l2d_retry, $self.l2d_retry_budget > 0);
        $gated!(pwb_retry, $self.ptw.pwb_depth() < $self.cfg.ptw.pwb_entries);
        $comp!($self.ptw);
        $comp!($self.l2);
        $comp!($self.l2d);
        $comp!($self.dram);
        for sm in &$self.sms {
            $comp!((*sm));
        }
        for pw in &$self.pw_warps {
            $comp!((*pw));
        }
    };
}

impl std::fmt::Debug for GpuSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuSimulator")
            .field("mode", &self.cfg.mode)
            .field("sms", &self.sms.len())
            .field("cycle", &self.now)
            .finish_non_exhaustive()
    }
}

impl GpuSimulator {
    /// Builds the GPU and maps the workload's footprint into a fresh
    /// address space. The workload must also implement a
    /// `footprint_bytes()`-style contract: here, the caller passes it via
    /// [`GpuSimulator::new_with_footprint`] or uses the
    /// `swgpu_workloads::Workload` convenience below.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: GpuConfig, workload: Box<swgpu_workloads::Workload>) -> Self {
        let footprint = workload.footprint_bytes();
        Self::new_with_footprint(cfg, workload, footprint)
    }

    /// Builds the GPU around any instruction source, mapping
    /// `footprint_bytes` of virtual address space starting at 0.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new_with_footprint(
        cfg: GpuConfig,
        source: Box<dyn InstrSource>,
        footprint_bytes: u64,
    ) -> Self {
        // Demand paging populates on first touch: skip the (possibly
        // large) upfront mapping walk entirely.
        let bytes = if cfg.mm.enabled { 0 } else { footprint_bytes };
        let prebuilt = PrebuiltMemory::build(cfg.page_size, cfg.scrambled_frames, bytes);
        Self::new_with_prebuilt(cfg, source, prebuilt)
    }

    /// Builds the GPU around a pre-built memory image ([`PrebuiltMemory`])
    /// instead of mapping the footprint from scratch. Identical results
    /// to [`GpuSimulator::new_with_footprint`] — the page-table build is
    /// deterministic in `(page size, scrambling, footprint)` — but cells
    /// sharing a footprint can clone one image instead of paying the
    /// per-page mapping walk every time (the experiment runner's prebuild
    /// store does exactly that).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or the prebuilt image
    /// was built for a different page size / scrambling than `cfg` uses.
    pub fn new_with_prebuilt(
        cfg: GpuConfig,
        source: Box<dyn InstrSource>,
        prebuilt: PrebuiltMemory,
    ) -> Self {
        assert!(
            cfg.tenants.is_none(),
            "multi-tenant configs construct via GpuSimulator::new_multi_tenant"
        );
        cfg.validate();
        assert_eq!(
            prebuilt.page_size, cfg.page_size,
            "prebuilt memory image page size does not match the config"
        );
        assert_eq!(
            prebuilt.scrambled, cfg.scrambled_frames,
            "prebuilt memory image frame scrambling does not match the config"
        );
        let PrebuiltMemory {
            mut phys,
            mut space,
            ..
        } = prebuilt;
        if cfg.mm.enabled && space.mapped_pages() > 0 {
            // Demand paging owns population: a prebuilt image would make
            // every page resident before the first touch, so start from
            // an empty address space instead.
            phys = PhysMem::new();
            space = if cfg.scrambled_frames {
                AddressSpace::new_scrambled(cfg.page_size, &mut phys)
            } else {
                AddressSpace::new(cfg.page_size, &mut phys)
            };
        }
        let mms: Vec<MemoryManager> = cfg
            .mm
            .enabled
            .then(|| MemoryManager::new(cfg.mm, cfg.page_size))
            .into_iter()
            .collect();

        let hashed = match cfg.mode {
            TranslationMode::HashedPtw => Some(space.build_hashed(&mut phys)),
            _ => None,
        };
        Self::assemble(cfg, source, phys, vec![space], mms, hashed)
    }

    /// Builds a multi-tenant GPU: `cfg.tenants` describes the layout,
    /// and `tenants` supplies one `(instruction source, footprint
    /// bytes)` pair per tenant in ASID order.
    ///
    /// Each tenant gets its own address space carved from a disjoint
    /// slice of physical memory (its page tables and data frames can
    /// never collide with another tenant's), its own PWC walk root, and
    /// — under demand paging — its own memory manager with independent
    /// resident-page accounting. In sub-entry-sharing mode every tenant
    /// instead maps the *same* address space, the precondition for
    /// identically-mapped VPNs to share L2 TLB entries.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent, `cfg.tenants` is
    /// absent, or the pair count does not match the tenant count.
    pub fn new_multi_tenant(cfg: GpuConfig, tenants: Vec<(Box<dyn InstrSource>, u64)>) -> Self {
        cfg.validate();
        let layout = cfg
            .tenants
            .clone()
            .expect("new_multi_tenant requires cfg.tenants");
        assert_eq!(
            layout.len(),
            tenants.len(),
            "one (source, footprint) pair per tenant"
        );
        let n = layout.len();
        let mut phys = PhysMem::new();
        let (sources, footprints): (Vec<_>, Vec<_>) = tenants.into_iter().unzip();
        let spaces: Vec<AddressSpace> = if layout.sub_entry_sharing {
            // One shared space mapped to the largest footprint: every
            // tenant sees the same VPN→PFN function, which is what lets
            // fills join another tenant's identical entry.
            let mut sp = if cfg.scrambled_frames {
                AddressSpace::new_scrambled(cfg.page_size, &mut phys)
            } else {
                AddressSpace::new(cfg.page_size, &mut phys)
            };
            let max = footprints.iter().copied().max().unwrap_or(0);
            sp.map_region(VirtAddr::new(0), max, &mut phys);
            vec![sp; n]
        } else {
            (0..n)
                .map(|i| {
                    let mut sp = AddressSpace::new_tenant(
                        cfg.page_size,
                        i,
                        n,
                        cfg.scrambled_frames,
                        &mut phys,
                    );
                    if !cfg.mm.enabled {
                        sp.map_region(VirtAddr::new(0), footprints[i], &mut phys);
                    }
                    sp
                })
                .collect()
        };
        let mms: Vec<MemoryManager> = if cfg.mm.enabled {
            (0..n)
                .map(|_| MemoryManager::new(cfg.mm, cfg.page_size))
                .collect()
        } else {
            Vec::new()
        };
        let source = Box::new(TenantMuxSource::new(&layout, sources));
        Self::assemble(cfg, source, phys, spaces, mms, None)
    }

    /// Wires the (already built) memory system into a full simulator —
    /// the tail shared by the single-tenant and multi-tenant
    /// constructors. `spaces[i]` is ASID `i`'s address space; `mms` is
    /// empty unless demand paging is on, else one manager per tenant.
    fn assemble(
        mut cfg: GpuConfig,
        source: Box<dyn InstrSource>,
        phys: PhysMem,
        spaces: Vec<AddressSpace>,
        mut mms: Vec<MemoryManager>,
        hashed: Option<HashedPageTable>,
    ) -> Self {
        if cfg.mode == TranslationMode::IdealPtw {
            // The ideal mode is self-sufficient: unbounded walkers and L2
            // TLB MSHRs regardless of what the rest of the config says.
            cfg = cfg.ideal();
        }
        let n_tenants = cfg.tenants.as_ref().map_or(1, TenantsConfig::len);
        let mut pwc = PageWalkCache::new(cfg.pwc_entries);
        for (i, sp) in spaces.iter().enumerate() {
            pwc.set_root(Asid::new(i as u16), sp.radix().root());
        }

        let sm_asids: Vec<Asid> = match cfg.tenants.as_ref() {
            None => vec![Asid::ZERO; cfg.sms],
            Some(t) => {
                let mut v = vec![Asid::ZERO; cfg.sms];
                for i in 0..t.len() {
                    for s in t.sm_range(i) {
                        v[s] = Asid::new(i as u16);
                    }
                }
                v
            }
        };

        let sms = (0..cfg.sms)
            .map(|i| {
                Sm::new(SmConfig {
                    id: SmId::new(i as u16),
                    asid: sm_asids[i],
                    max_warps: cfg.max_warps,
                    l1_tlb: cfg.l1_tlb.clone(),
                    l1_mshr: cfg.l1_mshr,
                    l1_tlb_latency: cfg.l1_tlb_latency,
                    l1d: cfg.l1d.clone(),
                    page_size: cfg.page_size,
                    sector_bytes: 32,
                })
            })
            .collect();

        let pw_warps = if cfg.mode.uses_software_walkers() {
            (0..cfg.sms).map(|_| PwWarpUnit::new(cfg.pw_warp)).collect()
        } else {
            Vec::new()
        };

        let in_tlb_max = if cfg.mode.in_tlb_enabled() || cfg.force_in_tlb {
            cfg.in_tlb_max
        } else {
            0
        };
        let mut l2 = L2TlbComplex::new(cfg.l2_tlb.clone(), cfg.l2_mshr, in_tlb_max);

        // Sharing-policy wiring. Partitioned (MIG-style) statically
        // splits the L2 TLB ways and pins dispatch to each tenant's SM
        // partition; Shared leaves capacity open but caps each tenant's
        // concurrently in-flight walks (QoS).
        let mut qos_cap = None;
        let mut tenant_masks: Vec<Vec<bool>> = Vec::new();
        if let Some(t) = cfg.tenants.as_ref() {
            match t.policy {
                SharingPolicy::Partitioned => {
                    let ways = cfg.l2_tlb.assoc / t.len();
                    l2.set_way_partition((0..t.len()).map(|i| (i * ways, ways)).collect());
                    tenant_masks = (0..t.len())
                        .map(|i| {
                            let r = t.sm_range(i);
                            (0..cfg.sms).map(|s| r.contains(&s)).collect()
                        })
                        .collect();
                }
                SharingPolicy::Shared { max_inflight_walks } => {
                    qos_cap = Some(max_inflight_walks);
                }
            }
            if t.sub_entry_sharing {
                l2.set_sub_entry_sharing(true);
            }
        }

        let distributor = RequestDistributor::new(
            cfg.distributor_policy,
            cfg.sms.max(1),
            cfg.pw_warp.softpwb_entries as u32,
        );

        let mut ptw = PtwSubsystem::new(cfg.ptw.clone());
        let mut l2d = Cache::new(cfg.l2d.clone());
        let mut dram = Dram::new(cfg.dram.clone());
        let mut pw_warps = pw_warps;
        let plan = &cfg.fault_plan;
        if plan.enabled() {
            ptw.set_fault_plan(plan);
            l2d.set_fault_injector(
                FaultInjector::new(plan.seed, site::L2D_DROP),
                plan.mem_drop_rate,
            );
            dram.set_fault_injector(
                FaultInjector::new(plan.seed, site::DRAM_DELAY),
                plan.mem_delay_rate,
                plan.mem_delay_cycles,
            );
            for (i, pw) in pw_warps.iter_mut().enumerate() {
                pw.set_fault_plan(plan, i as u64);
            }
        }
        let data_faults = (plan.data_path_enabled() && !mms.is_empty()).then(|| {
            for mm in &mut mms {
                mm.set_data_fault_checking(plan.frame_retire_threshold);
            }
            DataFaultState {
                fill_complete: FaultInjector::new(plan.seed, site::FILL_COMPLETE),
                fill_payload: FaultInjector::new(plan.seed, site::FILL_PAYLOAD),
                shootdown: FaultInjector::new(plan.seed, site::SHOOTDOWN),
                driver_queue: FaultInjector::new(plan.seed, site::DRIVER_QUEUE),
            }
        });
        let obs = if cfg.obs.enabled {
            ptw.set_observed(true);
            for pw in &mut pw_warps {
                pw.set_observed(true);
            }
            Some(Box::new(ObsState::new(&cfg.obs, cfg.sms)))
        } else {
            None
        };
        Self {
            sms,
            pw_warps,
            l2,
            pwc,
            ptw,
            l2d,
            dram,
            phys,
            spaces,
            hashed,
            sm_asids,
            tenant_masks,
            qos_cap,
            inflight_walks: vec![0; n_tenants],
            tenant_fresh_misses: vec![0; n_tenants],
            tenant_walks: vec![0; n_tenants],
            distributor,
            ids: IdGen::new(),
            now: Cycle::ZERO,
            to_l2: Port::new(),
            l2_retry: Port::new(),
            xlat_ret: Port::new(),
            dispatch_q: Port::new(),
            sw_to_sm: Port::new(),
            fl2t_ret: Port::new(),
            pwb_retry: Port::new(),
            l2d_retry: Port::new(),
            mem_owner: HashMap::new(),
            driver_q: Port::new(),
            hw_faults: FaultBuffer::with_capacity(cfg.pw_warp.fault_buffer_entries),
            fault_counters: FaultInjectionStats::default(),
            mms,
            pending_fills: BTreeMap::new(),
            mm_events: Port::new(),
            dup_fills: BTreeMap::new(),
            stale_shootdowns: BTreeMap::new(),
            mm_fault: MmFaultStats::default(),
            data_faults,
            prefetch_live: BTreeSet::new(),
            prefetch_cursor: 0,
            prefetch_issued: 0,
            prefetch_late: 0,
            prefetch_failed: 0,
            l2_retry_budget: 0,
            l2d_retry_budget: 0,
            obs,
            progress: None,
            stats: SimStats {
                walk_trace: crate::WalkTrace::new(cfg.walk_trace_cap),
                ..SimStats::default()
            },
            source,
            cfg,
        }
    }

    /// The address space backing this run (for tests and examples that
    /// want to verify translations functionally). Multi-tenant runs
    /// return tenant 0's space; see [`GpuSimulator::address_space_of`].
    pub fn address_space(&self) -> &AddressSpace {
        &self.spaces[0]
    }

    /// The address space of one tenant.
    pub fn address_space_of(&self, asid: Asid) -> &AddressSpace {
        &self.spaces[asid.index()]
    }

    /// The tenant that owns an SM (always [`Asid::ZERO`] on
    /// single-tenant runs).
    fn sm_asid(&self, sm: SmId) -> Asid {
        self.sm_asids[sm.index()]
    }

    /// Whether the shared-policy QoS cap forbids `asid` another
    /// concurrently in-flight walk. Always false without a cap
    /// (single-tenant and partitioned runs).
    fn at_walk_cap(&self, asid: Asid) -> bool {
        self.qos_cap
            .is_some_and(|cap| self.inflight_walks[asid.index()] >= cap)
    }

    fn note_walk_started(&mut self, asid: Asid) {
        self.inflight_walks[asid.index()] += 1;
    }

    fn note_walk_done(&mut self, asid: Asid) {
        let n = &mut self.inflight_walks[asid.index()];
        *n = n.saturating_sub(1);
    }

    /// Attaches a streaming SWTB sink for this run's observability data.
    ///
    /// Call before [`GpuSimulator::run`]. Returns `false` (dropping the
    /// sink) when observability is disabled. With a sink attached the
    /// span recorder becomes a bounded *staging buffer* that never
    /// drops: stagings that hit `span_capacity` flush to the sink,
    /// every sample tick streams instrument deltas, and finalization
    /// closes the trace with SUMMARY + END records. Flush points depend
    /// only on simulated content, so the dense and event kernels emit
    /// byte-identical traces.
    pub fn attach_trace_sink(&mut self, sink: Box<dyn std::io::Write>) -> bool {
        let fingerprint = self.cfg.fingerprint();
        let interval = self.cfg.obs.sample_interval;
        let Some(o) = self.obs.as_deref_mut() else {
            return false;
        };
        let stream =
            SwtbStream::new(sink, &fingerprint, interval).expect("SWTB trace sink write failed");
        o.stream = Some(stream);
        o.rec.set_streaming(true);
        true
    }

    /// Registers a callback invoked at the first step at or past every
    /// `every_cycles` simulated cycles with a [`RunProgress`] snapshot.
    /// Purely observational — it cannot influence simulation state,
    /// timing, or the emitted trace.
    pub fn set_progress_hook(&mut self, every_cycles: u64, hook: Box<dyn FnMut(RunProgress)>) {
        self.progress = Some(ProgressHook {
            every: every_cycles.max(1),
            next: 0,
            hook,
        });
    }

    /// Runs to completion (or the cycle cap) on the event-scheduled
    /// kernel: between events the clock jumps straight to the next
    /// pending wake instead of executing empty cycles. Produces
    /// byte-identical statistics to [`GpuSimulator::run_dense`].
    pub fn run(mut self) -> SimStats {
        self.run_loop(false);
        self.finalize()
    }

    /// Runs to completion executing *every* cycle — the dense reference
    /// mode the event kernel is validated against. Same statistics as
    /// [`GpuSimulator::run`] (including the `kernel_*` counters, which
    /// both modes derive from the event schedule alone), just slower on
    /// workloads with long quiescent stretches.
    pub fn run_dense(mut self) -> SimStats {
        self.run_loop(true);
        self.finalize()
    }

    /// The kernel loop shared by both modes. `sim_target` is the next
    /// cycle the event schedule demands; cycle 0 is always scheduled.
    /// Dense mode executes every cycle but runs the *same* schedule
    /// arithmetic, so `kernel_steps` / `kernel_cycles_skipped` agree
    /// byte-for-byte across modes. Event mode additionally wakes at
    /// observability sample boundaries (those steps are no-ops for
    /// simulation state — every component's next event is provably
    /// later) and bulk-accounts the skipped cycles into the SMs' stall
    /// taxonomy, which is frozen across a gap.
    fn run_loop(&mut self, dense: bool) {
        let mut sim_target = 0u64;
        loop {
            let scheduled = self.now.value() >= sim_target;
            if scheduled {
                self.stats.kernel_steps += 1;
            }
            self.step();
            if self
                .progress
                .as_ref()
                .is_some_and(|p| self.now.value() >= p.next)
            {
                self.report_progress();
            }
            if self.is_drained() {
                break;
            }
            if self.now.value() >= self.cfg.max_cycles {
                self.stats.timed_out = true;
                break;
            }
            if scheduled {
                // Clamping to the cycle cap makes a timeout fire at
                // exactly `max_cycles` in both modes.
                let t = self.next_event_wake().min(self.cfg.max_cycles);
                self.stats.kernel_cycles_skipped += t - self.now.value() - 1;
                sim_target = t;
            }
            let wake = if dense {
                self.now.value() + 1
            } else {
                let mut w = sim_target;
                if let Some(o) = self.obs.as_deref() {
                    w = w.min(o.next_sample);
                }
                let gap = w.saturating_sub(self.now.value() + 1);
                if gap > 0 {
                    for sm in &mut self.sms {
                        sm.account_quiet_cycles(gap);
                    }
                    // Skipped cycles are idle for every PW-Warp issue
                    // port, so any open busy run ends at `now + 1` —
                    // exactly where the dense loop's next tick would
                    // close it. Closing it here keeps span *recording
                    // order* (and therefore streamed SWTB bytes)
                    // byte-identical across the two kernels.
                    if let Some(o) = self.obs.as_deref_mut() {
                        let at = self.now.value() + 1;
                        for i in 0..o.busy.len() {
                            if let Some(s) = o.busy[i].tick(at, false) {
                                o.push(s);
                            }
                        }
                    }
                }
                w
            };
            self.now = Cycle::new(wake.max(self.now.value() + 1));
        }
    }

    /// Snapshots progress and fires the hook, advancing its threshold.
    fn report_progress(&mut self) {
        let (spans_flushed, trace_bytes) = match self.obs.as_deref() {
            Some(o) => (
                o.rec.flushed(),
                o.stream.as_ref().map_or(0, SwtbStream::bytes_written),
            ),
            None => (0, 0),
        };
        let snap = RunProgress {
            cycles: self.now.value(),
            spans_flushed,
            trace_bytes,
        };
        if let Some(p) = self.progress.as_mut() {
            p.next = snap.cycles.saturating_add(p.every);
            (p.hook)(snap);
        }
    }

    /// Derives drained-ness and the next wake from one shared inventory
    /// of every port and component the kernel drives, so the two can
    /// never fall out of sync with each other (the predecessor of this
    /// code hand-maintained a 13-clause drain list).
    ///
    /// Gated FIFO backlogs (budgeted retries, the bounded hardware PWB)
    /// contribute a wake only while their gate is open — a closed-gate
    /// backlog is exactly the case the dense loop no-ops on every cycle,
    /// and the budget/capacity that re-opens a gate is only ever minted
    /// by another component's event. They always block draining.
    fn is_drained(&self) -> bool {
        let mut drained = true;
        macro_rules! port {
            ($f:ident) => {
                drained &= self.$f.is_empty();
            };
        }
        macro_rules! gated {
            ($f:ident, $open:expr) => {
                drained &= self.$f.is_empty();
            };
        }
        macro_rules! comp {
            ($e:expr) => {
                drained &= Component::is_idle(&$e);
            };
        }
        with_kernel_inventory!(self, port, gated, comp);
        drained
    }

    /// The earliest cycle at which any component has pending work,
    /// clamped to `now + 1` (an event at or before `now` means "the very
    /// next cycle"). Must only be called on a live (un-drained)
    /// simulator; a component that holds work without scheduling an
    /// event is a bug, downgraded in release builds to per-cycle
    /// stepping so both modes still agree (they then run to the cap
    /// together).
    fn next_event_wake(&self) -> u64 {
        let now = self.now.value();
        let mut next = u64::MAX;
        macro_rules! upd {
            ($e:expr) => {
                if let Some(c) = $e {
                    next = next.min(c.value().max(now + 1));
                }
            };
        }
        macro_rules! port {
            ($f:ident) => {
                upd!(Component::next_event(&self.$f));
            };
        }
        macro_rules! gated {
            ($f:ident, $open:expr) => {
                if !self.$f.is_empty() && $open {
                    next = next.min(now + 1);
                }
            };
        }
        macro_rules! comp {
            ($e:expr) => {
                upd!(Component::next_event(&$e));
            };
        }
        with_kernel_inventory!(self, port, gated, comp);
        debug_assert!(next != u64::MAX, "live simulator with no pending event");
        if next == u64::MAX {
            now + 1
        } else {
            next
        }
    }

    /// One core cycle.
    // Index loops are deliberate: each iteration borrows `self` mutably
    // for routing, which iterator adapters cannot express.
    #[allow(clippy::needless_range_loop)]
    fn step(&mut self) {
        let now = self.now;
        self.sample_obs(now);

        // DRAM completions fill the L2D.
        while let Some(req) = self.dram.pop_complete(now) {
            self.l2d.complete_fill(now, req);
            self.l2d_retry_budget = self.l2d_retry_budget.saturating_add(2);
        }

        // L2D responses route back to their owners.
        while let Some(resp) = self.l2d.pop_response(now) {
            self.route_l2d_response(resp);
        }

        // Responses discarded by fault injection: tell the walker that
        // issued the read (so it can attribute the loss to its in-flight
        // walk); its already-armed watchdog performs the recovery.
        while let Some(dropped) = self.l2d.pop_dropped() {
            let attributed = match self.mem_owner.remove(&dropped.id) {
                Some(MemOwner::Ptw) => self.ptw.on_mem_dropped(dropped.id),
                Some(MemOwner::PwWarp(i)) => self.pw_warps[i].on_mem_dropped(dropped.id),
                owner => panic!(
                    "dropped non-page-table response {:?} ({owner:?})",
                    dropped.id
                ),
            };
            if !attributed {
                // The walker's watchdog had already given up on this read
                // and re-issued it before the drop landed; the injection
                // hit a request nobody was waiting for, so it is recovered
                // by construction.
                self.fault_counters.recovered_injections += 1;
            }
        }

        // The simulated UVM driver: escalated translations arrive here
        // after `driver_latency` cycles. If the page is genuinely mapped
        // (the escalation came from injected faults), the driver has
        // "repaired" the PTE and replays the walk through the normal
        // machinery; otherwise the fault is real and completes as one.
        while let Some(req) = self.driver_q.recv(now) {
            let DriverReq {
                asid,
                vpn,
                issued_at,
                stalls,
                refill,
            } = req;
            if let Some(o) = self.obs.as_deref_mut() {
                o.instant(SpanKind::Fault, 0, now.value(), vpn.value(), 0);
            }
            // Injected driver-queue stall: service is deferred by one
            // more driver latency, bounded by the walk retry budget so a
            // high rate cannot park a request forever.
            if let Some(df) = self.data_faults.as_mut() {
                let p = &self.cfg.fault_plan;
                if stalls < p.max_retries && df.driver_queue.fire(p.driver_stuck_rate) {
                    self.mm_fault.injected_driver_stalls += 1;
                    self.driver_q.send(
                        now + p.driver_latency.max(1),
                        DriverReq {
                            stalls: stalls + 1,
                            ..req
                        },
                    );
                    continue;
                }
            }
            // Reaching service resolves every stall this request absorbed.
            self.mm_fault.recovered_fills += u64::from(stalls);
            let mapped = self.spaces[asid.index()]
                .radix()
                .translate(vpn, &self.phys)
                .is_some();
            if mapped && refill {
                // Raced re-fill: another fault on this page already
                // refilled it, and that replayed walk (still in flight)
                // will release the waiters.
                continue;
            }
            if mapped {
                self.fault_counters.fault_replays += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.reg.inc(o.c_driver_replays, 1);
                }
                self.launch_walk(asid, vpn, issued_at, None);
            } else if !self.mms.is_empty() {
                // Major fault: the page is genuinely unmapped and demand
                // paging is on. The tenant's driver populates it (possibly
                // evicting past the budget), shoots the victims out of the
                // tenant's TLB entries, and replays the walk through the
                // normal machinery.
                let outcome = {
                    let mm = &mut self.mms[asid.index()];
                    let out = mm.service_fault(vpn, &mut self.spaces[asid.index()], &mut self.phys);
                    mm.stats_mut().major_replays += 1;
                    out
                };
                if let Some(df) = self.data_faults.as_mut() {
                    // Shootdown site: a dropped message leaves the stale
                    // translation in the shared L2 TLB (the per-SM L1s
                    // are shot down on a separate, reliable path).
                    let rate = self.cfg.fault_plan.shootdown_drop_rate;
                    for &victim in &outcome.evicted {
                        if df.shootdown.fire(rate) {
                            self.mm_fault.injected_shootdown_drops += 1;
                            *self.stale_shootdowns.entry((asid, victim)).or_insert(0) += 1;
                        } else {
                            self.l2.invalidate(asid, victim);
                        }
                        for i in 0..self.sms.len() {
                            if self.sm_asids[i] == asid {
                                self.sms[i].invalidate_translation(victim);
                            }
                        }
                    }
                } else {
                    for &victim in &outcome.evicted {
                        // Post-condition of the duplicate-tag fill fix:
                        // set uniqueness means a shootdown can never find
                        // more than one valid way per array.
                        let dropped = self.l2.invalidate(asid, victim);
                        debug_assert!(dropped <= 1, "duplicate L2 TLB ways for {victim:?}");
                        for i in 0..self.sms.len() {
                            if self.sm_asids[i] != asid {
                                continue;
                            }
                            let dropped = self.sms[i].invalidate_translation(victim);
                            debug_assert!(dropped <= 1, "duplicate L1 TLB ways for {victim:?}");
                        }
                    }
                }
                let tracker = self.pending_fills.entry((asid, vpn)).or_default();
                tracker.generation = outcome.generation;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.reg.inc(o.c_driver_replays, 1);
                }
                if let Some(df) = self.data_faults.as_mut() {
                    // Payload site: garble the filled frame's stamped
                    // word; the end-to-end checksum catches it when a
                    // consumer's translation delivers the frame.
                    if df.fill_payload.fire(self.cfg.fault_plan.fill_corrupt_rate) {
                        self.mm_fault.injected_fill_corruptions += 1;
                        let garble = df.fill_payload.draw_u64();
                        self.mms[asid.index()].corrupt_frame(outcome.pfn, garble, &mut self.phys);
                    }
                }
                self.deliver_fill(asid, vpn, issued_at);
            } else {
                self.fault_counters.unrecoverable_faults += 1;
                let queue = now.since(issued_at);
                self.finish_translation(asid, vpn, None, queue, 0);
            }
        }

        // Demand-paging fault machinery self-messages: fill watchdogs
        // and artificially delayed completion deliveries. Empty unless a
        // data-path site is armed.
        while let Some(ev) = self.mm_events.recv(now) {
            match ev {
                MmEvent::FillWatchdog {
                    asid,
                    vpn,
                    generation,
                } => self.on_fill_watchdog(asid, vpn, generation),
                MmEvent::DelayedReplay {
                    asid,
                    vpn,
                    issued_at,
                } => self.launch_walk(asid, vpn, issued_at, None),
            }
        }

        // L2D misses go to DRAM.
        while let Some(fill) = self.l2d.pop_fill_request(now) {
            self.dram.access(now, fill);
        }

        // Retry L2D accesses rejected on MSHR pressure, budgeted by the
        // fills that actually freed MSHRs.
        let n = self.l2d_retry_budget.min(self.l2d_retry.len());
        if n > 0 {
            self.l2d_retry_budget -= n;
            for req in self.l2d_retry.take(n) {
                self.issue_l2d_inner(req, true);
            }
        }

        // Translation responses reach the SMs' L1 complexes.
        while let Some((sm, vpn, pfn)) = self.xlat_ret.recv(now) {
            self.sms[sm.index()].on_translation(now, vpn, pfn);
        }

        // FL2T completions arrive back at the L2 TLB.
        while let Some((sm_idx, c)) = self.fl2t_ret.recv(now) {
            self.distributor.on_fill(SmId::new(sm_idx as u16));
            let queue = c.dispatched_at.since(c.issued_at) + c.softpwb_wait();
            let access = c.arrived_at.since(c.dispatched_at)
                + c.finished_at.since(c.started_at)
                + self.cfg.l2_tlb_latency;
            self.stats.sw_walks += 1;
            if let Some(o) = self.obs.as_deref_mut() {
                let t = sm_idx as u32;
                o.span(SpanKind::SwQueue, t, c.issued_at, c.dispatched_at, c.vpn);
                o.span(SpanKind::SwPwbWait, t, c.arrived_at, c.started_at, c.vpn);
                o.span(SpanKind::SwExec, t, c.started_at, c.finished_at, c.vpn);
            }
            self.stats.walk_trace.record(crate::WalkRecord {
                vpn: c.vpn,
                issued_at: c.issued_at,
                started_at: c.started_at,
                completed_at: now,
                walker: crate::WalkerKind::Software,
            });
            self.note_walk_done(c.asid);
            if c.pfn.is_none() && (self.cfg.fault_plan.enabled() || !self.mms.is_empty()) {
                // Faulted walk under an armed plan or demand paging:
                // hand it to the driver rather than failing the
                // translation outright.
                self.driver_q.send(
                    now + self.driver_delay(c.asid, c.vpn),
                    DriverReq {
                        asid: c.asid,
                        vpn: c.vpn,
                        issued_at: c.issued_at,
                        stalls: 0,
                        refill: false,
                    },
                );
            } else {
                self.finish_translation(c.asid, c.vpn, c.pfn, queue, access);
            }
        }

        // L2 TLB request processing: budgeted retries first (capacity is
        // only re-probed as walks complete), then fresh arrivals.
        let n = self.l2_retry_budget.min(self.l2_retry.len());
        if n > 0 {
            self.l2_retry_budget -= n;
            for p in self.l2_retry.take(n) {
                self.process_l2(p, false);
            }
        }
        while let Some((sm, warp, vpn, first_seen)) = self.to_l2.recv(now) {
            self.process_l2(
                PendingL2 {
                    sm,
                    warp,
                    vpn,
                    first_seen,
                    counted_failure: false,
                },
                true,
            );
        }

        // Hardware PWB retries: only attempt while the PWB has room and
        // the owning tenant is below its QoS walk cap.
        while let Some(&w) = self.pwb_retry.front() {
            if self.at_walk_cap(w.asid) {
                break;
            }
            if self.ptw.pwb_depth() < self.cfg.ptw.pwb_entries && self.ptw.enqueue(w) {
                self.note_walk_started(w.asid);
                self.pwb_retry.pop_front();
            } else {
                break;
            }
        }

        // SoftWalker dispatch, then translation prefetch into whatever
        // PW-Warp threads the demand stream left idle.
        self.dispatch_software_walks();
        self.issue_prefetches();

        // Dispatched requests arrive at SoftPWBs.
        while let Some((sm_idx, req)) = self.sw_to_sm.recv(now) {
            let accepted = self.pw_warps[sm_idx].accept(now, req);
            assert!(accepted, "distributor oversubscribed a SoftPWB");
        }

        // Hardware walk subsystem.
        if self.cfg.mode.uses_hardware_walkers() {
            let table = Self::table_ref(&self.hashed, &self.spaces[0]);
            let mut ctx = WalkContext {
                mem: &self.phys,
                pwc: &mut self.pwc,
                table,
            };
            self.ptw.tick(now, &mut ctx, &mut self.ids);
            while let Some(req) = self.ptw.pop_mem_request() {
                self.mem_owner.insert(req.id, MemOwner::Ptw);
                self.issue_l2d(req);
            }
            while let Some(c) = self.ptw.pop_completion() {
                self.stats.hw_walks += 1;
                for r in c.results {
                    let queue = c.started_at.since(r.issued_at);
                    let access = c.completed_at.since(c.started_at);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.span(SpanKind::HwQueue, 0, r.issued_at, c.started_at, r.vpn);
                        o.span(SpanKind::HwWalk, 0, c.started_at, c.completed_at, r.vpn);
                    }
                    self.stats.walk_trace.record(crate::WalkRecord {
                        vpn: r.vpn,
                        issued_at: r.issued_at,
                        started_at: c.started_at,
                        completed_at: c.completed_at,
                        walker: crate::WalkerKind::Hardware,
                    });
                    self.note_walk_done(r.asid);
                    if r.pfn.is_none() && (self.cfg.fault_plan.enabled() || !self.mms.is_empty()) {
                        // Hardware walks have no FFB instruction; the
                        // walker reports the fault directly (level 0 =
                        // escalation, the walk level is not preserved).
                        // Genuine major faults (demand paging) bypass the
                        // bounded injection fault buffer — they are not
                        // injections and must not consume its capacity.
                        let injected = self.cfg.fault_plan.enabled()
                            && (self.mms.is_empty()
                                || self.spaces[r.asid.index()]
                                    .radix()
                                    .translate(r.vpn, &self.phys)
                                    .is_some());
                        if injected {
                            self.hw_faults.record(FaultRecord {
                                asid: r.asid,
                                vpn: r.vpn,
                                level: 0,
                                at: now,
                            });
                        }
                        self.driver_q.send(
                            now + self.driver_delay(r.asid, r.vpn),
                            DriverReq {
                                asid: r.asid,
                                vpn: r.vpn,
                                issued_at: r.issued_at,
                                stalls: 0,
                                refill: false,
                            },
                        );
                    } else {
                        self.finish_translation(r.asid, r.vpn, r.pfn, queue, access);
                    }
                }
            }
        }

        // Drain cycle-stamped PTE-read events buffered by the walkers
        // (both kinds stamp their own timestamps, so draining once per
        // cycle preserves event times exactly).
        if let Some(o) = self.obs.as_deref_mut() {
            let events = self.ptw.drain_obs_events();
            o.reg.inc(o.c_pte_reads, events.len() as u64);
            for e in events {
                o.instant(
                    SpanKind::PteRead,
                    0,
                    e.at.value(),
                    e.vpn.value(),
                    u64::from(e.level),
                );
            }
        }

        // PW Warps: tick (claiming issue ports), then SMs.
        let mut pw_issued = vec![false; self.sms.len()];
        for i in 0..self.pw_warps.len() {
            let issued = self.pw_warps[i].tick(now, &mut self.ids);
            pw_issued[i] = issued;
            while let Some(req) = self.pw_warps[i].pop_mem_request() {
                self.mem_owner.insert(req.id, MemOwner::PwWarp(i));
                self.issue_l2d(req);
            }
            while let Some(c) = self.pw_warps[i].pop_completion() {
                self.fl2t_ret.send(now + self.cfg.l2_tlb_latency, (i, c));
            }
            if let Some(o) = self.obs.as_deref_mut() {
                let events = self.pw_warps[i].drain_obs_events();
                o.reg.inc(o.c_pte_reads, events.len() as u64);
                for e in events {
                    o.instant(
                        SpanKind::PteRead,
                        i as u32,
                        e.at.value(),
                        e.vpn.value(),
                        u64::from(e.level),
                    );
                }
            }
        }
        if let Some(o) = self.obs.as_deref_mut() {
            for i in 0..o.busy.len() {
                if let Some(s) = o.busy[i].tick(now.value(), pw_issued[i]) {
                    o.push(s);
                }
            }
        }

        for i in 0..self.sms.len() {
            let sm = &mut self.sms[i];
            sm.tick(now, self.source.as_mut(), &mut self.ids, !pw_issued[i]);
            while let Some((vpn, warp)) = sm.pop_l2_tlb_request() {
                self.to_l2.send(
                    now + self.cfg.l2_tlb_latency,
                    (SmId::new(i as u16), warp, vpn, now),
                );
            }
            while let Some(req) = self.sms[i].pop_mem_request() {
                self.mem_owner.insert(req.id, MemOwner::SmData(i));
                self.issue_l2d(req);
            }
        }
    }

    /// Samples every registered time-series when the cycle hits the
    /// configured interval. No-op (one branch) when observability is off.
    fn sample_obs(&mut self, now: Cycle) {
        let Some(o) = self.obs.as_deref_mut() else {
            return;
        };
        if now.value() < o.next_sample {
            return;
        }
        o.next_sample = now.value() + o.interval;
        let softpwb: usize = self.pw_warps.iter().map(PwWarpUnit::pwb_occupancy).sum();
        let pw_active: usize = self.pw_warps.iter().map(PwWarpUnit::active_walks).sum();
        o.reg.sample(o.s_softpwb, softpwb as u64);
        o.reg.sample(o.s_pw_active, pw_active as u64);
        o.reg.sample(o.s_hw_pwb, self.ptw.pwb_depth() as u64);
        o.reg.sample(o.s_hw_active, self.ptw.active_walks() as u64);
        o.reg
            .sample(o.s_mshr_dedicated, self.l2.dedicated_in_flight() as u64);
        o.reg
            .sample(o.s_mshr_in_tlb, self.l2.pending_in_tlb() as u64);
        o.reg
            .sample(o.s_mshr_overflow, self.l2.overflow_waiting() as u64);
        o.reg.sample(o.s_dispatch_q, self.dispatch_q.len() as u64);
        // Stream the tick's instrument deltas. Both kernels hit every
        // sample cycle (the event kernel wakes at `next_sample`), so the
        // emission schedule is identical across dense and event modes.
        if let Some(stream) = o.stream.as_mut() {
            stream
                .sample_tick(&o.reg)
                .expect("SWTB trace sink write failed");
        }
    }

    fn table_ref<'a>(hashed: &'a Option<HashedPageTable>, space: &'a AddressSpace) -> TableRef<'a> {
        match hashed {
            Some(h) => TableRef::Hashed(h),
            None => TableRef::Radix {
                root: space.radix().root(),
            },
        }
    }

    fn route_l2d_response(&mut self, resp: MemReq) {
        match self.mem_owner.remove(&resp.id) {
            Some(MemOwner::SmData(i)) => self.sms[i].on_mem_response(self.now, resp),
            Some(MemOwner::Ptw) => {
                let table = Self::table_ref(&self.hashed, &self.spaces[0]);
                let mut ctx = WalkContext {
                    mem: &self.phys,
                    pwc: &mut self.pwc,
                    table,
                };
                self.ptw
                    .on_mem_response(resp.id, self.now, &mut ctx, &mut self.ids);
            }
            Some(MemOwner::PwWarp(i)) => {
                self.pw_warps[i].on_mem_response(resp.id, self.now, &self.phys, &mut self.pwc);
            }
            None => panic!("L2D response {:?} has no registered owner", resp.id),
        }
    }

    fn issue_l2d(&mut self, req: MemReq) {
        self.issue_l2d_inner(req, false);
    }

    fn issue_l2d_inner(&mut self, req: MemReq, retried: bool) {
        match self.l2d.access(self.now, req) {
            AccessOutcome::MshrFull => self.l2d_retry.push_back(req),
            AccessOutcome::Hit if retried => {
                // Hit consumed no MSHR: refund the retry token.
                self.l2d_retry_budget += 1;
            }
            _ => {}
        }
    }

    fn process_l2(&mut self, mut p: PendingL2, fresh: bool) {
        let asid = self.sm_asid(p.sm);
        match self.l2.access(asid, p.vpn, p.sm) {
            L2MissOutcome::Hit(pfn) => {
                if self.data_faults.is_some() {
                    let check = self.mms[asid.index()].verify(p.vpn, pfn, &self.phys);
                    if check != FrameCheck::Ok {
                        // A dropped shootdown left this stale entry in
                        // the shared L2 TLB; the checksum catches it at
                        // consumption. Purge and re-process — the second
                        // access misses and walks the real mapping.
                        self.mm_fault.detected_stale_hits += 1;
                        if let Some(n) = self.stale_shootdowns.remove(&(asid, p.vpn)) {
                            self.mm_fault.recovered_fills += n;
                        }
                        self.l2.invalidate(asid, p.vpn);
                        self.process_l2(p, fresh);
                        return;
                    }
                }
                if let Some(mm) = self.mms.get_mut(asid.index()) {
                    mm.touch(p.vpn);
                }
                if !fresh {
                    // A retried request that now hits consumed no MSHR
                    // capacity: refund its retry token so the remaining
                    // backlog cannot starve once all walks have drained.
                    self.l2_retry_budget += 1;
                }
                self.xlat_ret.send(
                    self.now + self.cfg.xlat_return_latency,
                    (p.sm, p.vpn, Some(pfn)),
                );
            }
            L2MissOutcome::MissNewWalk => {
                if fresh {
                    self.stats.fresh_l2_misses += 1;
                    self.tenant_fresh_misses[asid.index()] += 1;
                }
                self.launch_walk(asid, p.vpn, p.first_seen, Some((p.sm, p.warp)));
            }
            L2MissOutcome::MissMerged => {
                if fresh {
                    self.stats.fresh_l2_misses += 1;
                    self.tenant_fresh_misses[asid.index()] += 1;
                }
                // A demand miss merging onto a still-in-flight prefetch
                // walk means the prefetch was correct but late. The walk
                // now has a real waiter, so its fills install untagged.
                if self.prefetch_live.remove(&(asid, p.vpn)) {
                    self.prefetch_late += 1;
                }
            }
            L2MissOutcome::MshrFailure => {
                if fresh {
                    self.stats.fresh_l2_misses += 1;
                    self.tenant_fresh_misses[asid.index()] += 1;
                }
                if !p.counted_failure {
                    self.stats.l2_mshr_failure_events += 1;
                    p.counted_failure = true;
                }
                self.l2_retry.push_back(p);
            }
        }
    }

    /// Driver service latency for a faulted walk on `vpn`: a genuinely
    /// unmapped page under demand paging is a major fault (page-fill
    /// cost); anything else is the injected-fault repair path.
    fn driver_delay(&self, asid: Asid, vpn: Vpn) -> u64 {
        if !self.mms.is_empty()
            && self.spaces[asid.index()]
                .radix()
                .translate(vpn, &self.phys)
                .is_none()
        {
            self.cfg.mm.fill_latency
        } else {
            self.cfg.fault_plan.driver_latency
        }
    }

    /// Hands a completed driver fill to the walk machinery through the
    /// fill-completion fault site: the completion may additionally be
    /// duplicated (an extra replayed walk races the real one), dropped
    /// (a generation-counted watchdog recovers it), or delayed. Unarmed
    /// runs go straight to [`GpuSimulator::launch_walk`] with no RNG
    /// draws.
    fn deliver_fill(&mut self, asid: Asid, vpn: Vpn, issued_at: Cycle) {
        let (dup, drop, delay) = match self.data_faults.as_mut() {
            None => (false, false, false),
            Some(df) => {
                let p = &self.cfg.fault_plan;
                (
                    df.fill_complete.fire(p.fill_duplicate_rate),
                    df.fill_complete.fire(p.fill_drop_rate),
                    df.fill_complete.fire(p.fill_delay_rate),
                )
            }
        };
        if dup {
            self.mm_fault.injected_fill_duplicates += 1;
            *self.dup_fills.entry((asid, vpn)).or_insert(0) += 1;
            self.launch_walk(asid, vpn, issued_at, None);
        }
        if drop {
            self.mm_fault.injected_fill_drops += 1;
            let tracker = self.pending_fills.entry((asid, vpn)).or_default();
            tracker.drop_pending += 1;
            let generation = tracker.generation;
            let wake = self.now + self.cfg.fault_plan.backoff_cycles(tracker.retries);
            self.mm_events.send(
                wake,
                MmEvent::FillWatchdog {
                    asid,
                    vpn,
                    generation,
                },
            );
            return;
        }
        if delay {
            self.mm_fault.injected_fill_delays += 1;
            self.mm_events.send(
                self.now + self.cfg.fault_plan.fill_delay_cycles.max(1),
                MmEvent::DelayedReplay {
                    asid,
                    vpn,
                    issued_at,
                },
            );
            return;
        }
        self.launch_walk(asid, vpn, issued_at, None);
    }

    /// A fill watchdog fired. If the fill it guarded is still outstanding
    /// (same generation, a drop still pending), re-issue the completion
    /// with exponential backoff; once the retry budget is spent, escalate
    /// into the fault buffer and hand the page back to the driver replay
    /// path (which is guaranteed — no further injection on that leg).
    fn on_fill_watchdog(&mut self, asid: Asid, vpn: Vpn, generation: u64) {
        let max_retries = self.cfg.fault_plan.max_retries;
        let Some(tracker) = self.pending_fills.get_mut(&(asid, vpn)) else {
            return; // Fill already completed and was consumed.
        };
        if tracker.generation != generation || tracker.drop_pending == 0 {
            return; // Stale watchdog: the page was refilled since.
        }
        self.mm_fault.fill_watchdog_timeouts += 1;
        tracker.retries += 1;
        if tracker.retries > max_retries {
            let pending = std::mem::take(&mut tracker.drop_pending);
            tracker.retries = 0;
            self.mm_fault.escalated_fills += pending;
            self.hw_faults.record(FaultRecord {
                asid,
                vpn,
                level: 0,
                at: self.now,
            });
            self.mm_events.send(
                self.now + self.cfg.fault_plan.driver_latency.max(1),
                MmEvent::DelayedReplay {
                    asid,
                    vpn,
                    issued_at: self.now,
                },
            );
            return;
        }
        let retries = tracker.retries;
        self.mm_fault.fill_retries += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            o.instant(
                SpanKind::FillRetry,
                0,
                self.now.value(),
                vpn.value(),
                u64::from(retries),
            );
        }
        let redropped = {
            let df = self
                .data_faults
                .as_mut()
                .expect("watchdog without armed data faults");
            df.fill_complete.fire(self.cfg.fault_plan.fill_drop_rate)
        };
        if redropped {
            self.mm_fault.injected_fill_drops += 1;
            let tracker = self
                .pending_fills
                .get_mut(&(asid, vpn))
                .expect("tracker vanished");
            tracker.drop_pending += 1;
            let wake = self.now + self.cfg.fault_plan.backoff_cycles(tracker.retries);
            self.mm_events.send(
                wake,
                MmEvent::FillWatchdog {
                    asid,
                    vpn,
                    generation,
                },
            );
        } else {
            self.launch_walk(asid, vpn, self.now, None);
        }
    }

    fn launch_walk(&mut self, asid: Asid, vpn: Vpn, issued_at: Cycle, owner: WalkOwner) {
        let req = WalkRequest::with_owner(vpn, issued_at, owner).for_asid(asid);
        match self.cfg.mode {
            TranslationMode::HardwarePtw
            | TranslationMode::HashedPtw
            | TranslationMode::IdealPtw => {
                if self.at_walk_cap(asid) || !self.ptw.enqueue(req) {
                    self.pwb_retry.push_back(req);
                } else {
                    self.note_walk_started(asid);
                }
            }
            TranslationMode::SoftWalker { .. } => {
                self.dispatch_q.push_back((asid, vpn, issued_at));
            }
            TranslationMode::Hybrid { .. } => {
                if self.ptw.free_walkers() > 0 && !self.at_walk_cap(asid) && self.ptw.enqueue(req) {
                    // Hardware took it.
                    self.note_walk_started(asid);
                } else {
                    self.dispatch_q.push_back((asid, vpn, issued_at));
                }
            }
        }
    }

    fn dispatch_software_walks(&mut self) {
        if self.dispatch_q.is_empty() {
            return;
        }
        let stalled: Vec<bool> = if self.cfg.distributor_policy == DistributorPolicy::StallAware {
            self.sms.iter().map(Sm::is_stalled).collect()
        } else {
            Vec::new()
        };
        let multi = self.cfg.tenants.is_some();
        // Bounded head rotation: a capped (QoS) or placement-starved
        // (partitioned) tenant's head request moves to the back so it
        // cannot head-block other tenants. Single-tenant runs never
        // rotate — they keep the exact historical front/break behavior.
        let mut rotations = self.dispatch_q.len();
        for _ in 0..self.cfg.dispatches_per_cycle {
            let Some(&(asid, vpn, issued_at)) = self.dispatch_q.front() else {
                break;
            };
            if multi && self.at_walk_cap(asid) {
                if rotations == 0 {
                    break;
                }
                rotations -= 1;
                let head = self.dispatch_q.pop_front().expect("checked front");
                self.dispatch_q.push_back(head);
                continue;
            }
            let allowed: &[bool] = self
                .tenant_masks
                .get(asid.index())
                .map_or(&[], Vec::as_slice);
            let Some(sm) = self.distributor.select_core_among(&stalled, allowed) else {
                if multi && !allowed.is_empty() && rotations > 0 {
                    // Partitioned: this tenant's SMs are saturated, but
                    // another tenant's partition may still have room.
                    rotations -= 1;
                    let head = self.dispatch_q.pop_front().expect("checked front");
                    self.dispatch_q.push_back(head);
                    continue;
                }
                break;
            };
            self.dispatch_q.pop_front();
            self.note_walk_started(asid);
            if let Some(o) = self.obs.as_deref_mut() {
                o.instant(
                    SpanKind::Dispatch,
                    0,
                    self.now.value(),
                    vpn.value(),
                    sm.index() as u64,
                );
                o.reg.inc(o.c_dispatches, 1);
            }
            let start = self.pwc.lookup(asid, vpn);
            let mut req =
                SwWalkRequest::new(vpn, issued_at, self.now, start.level, start.node_base)
                    .for_asid(asid);
            if self.pending_fills.contains_key(&(asid, vpn)) {
                req = req.as_fill_replay();
            }
            self.sw_to_sm
                .send(self.now + self.cfg.l2_tlb_latency, (sm.index(), req));
        }
    }

    /// WaSP-style translation prefetch: peek the next loads of a rotating
    /// window of warp streams, and for pages that are neither translated
    /// nor being walked, start a software walk on a core whose PW Warp
    /// has idle threads. Prefetch walks register [`PREFETCH_REQUESTER`]
    /// as their MSHR waiter and install tagged fills, so a demand miss
    /// arriving first merges normally (counted late) and an unused fill
    /// is preferentially evicted. One branch when disabled.
    fn issue_prefetches(&mut self) {
        let pf = self.cfg.prefetch;
        if !pf.enabled || self.pw_warps.is_empty() {
            return;
        }
        let idle: Vec<bool> = self
            .pw_warps
            .iter()
            .map(|p| p.idle_thread_slots() > 0)
            .collect();
        if !idle.iter().any(|&b| b) {
            return;
        }
        let streams = self.sms.len() * self.cfg.max_warps;
        let mut issued = 0;
        // Bounding the scan keeps the per-cycle cost proportional to the
        // configured degree, not to the SM x warp product.
        let scan_cap = (pf.degree as usize * 4).min(streams);
        'streams: for _ in 0..scan_cap {
            if issued >= pf.degree {
                break;
            }
            let stream = self.prefetch_cursor % streams;
            self.prefetch_cursor = (stream + 1) % streams;
            let sm = SmId::new((stream / self.cfg.max_warps) as u16);
            let warp = WarpId::new((stream % self.cfg.max_warps) as u16);
            let asid = self.sm_asid(sm);
            if self.at_walk_cap(asid) {
                // QoS: the issuing tenant is at its walk cap — demand
                // walks must not compete with its speculation either.
                continue 'streams;
            }
            // Partitioned: a tenant's prefetch walks may only occupy PW
            // Warp threads inside that tenant's own SM partition.
            let tenant_idle: Vec<bool> = match self.tenant_masks.get(asid.index()) {
                Some(mask) => idle
                    .iter()
                    .zip(mask.iter())
                    .map(|(&i, &m)| i && m)
                    .collect(),
                None => Vec::new(),
            };
            let idle_view: &[bool] = if tenant_idle.is_empty() {
                &idle
            } else {
                &tenant_idle
            };
            for vpn in self.source.peek_load_vpns(sm, warp, pf.lookahead) {
                if issued >= pf.degree {
                    break 'streams;
                }
                let (valid, pending) = self.l2.tlb().tag_population(asid, vpn);
                if valid > 0
                    || pending > 0
                    || self.l2.is_walk_in_flight(asid, vpn)
                    || self.prefetch_live.contains(&(asid, vpn))
                    || self.pending_fills.contains_key(&(asid, vpn))
                    || self.spaces[asid.index()]
                        .radix()
                        .translate(vpn, &self.phys)
                        .is_none()
                {
                    continue;
                }
                let Some(target) = self.distributor.select_idle_core(idle_view) else {
                    break 'streams;
                };
                match self.l2.access(asid, vpn, PREFETCH_REQUESTER) {
                    L2MissOutcome::MissNewWalk => {
                        self.prefetch_live.insert((asid, vpn));
                        self.prefetch_issued += 1;
                        self.note_walk_started(asid);
                        issued += 1;
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.instant(
                                SpanKind::Prefetch,
                                0,
                                self.now.value(),
                                vpn.value(),
                                target.index() as u64,
                            );
                            // Prefetch completions count as sw_walks, so
                            // charging a dispatch here keeps the pinned
                            // dispatches == sw_walks invariant.
                            o.reg.inc(o.c_dispatches, 1);
                        }
                        let start = self.pwc.lookup(asid, vpn);
                        let req = SwWalkRequest::new(
                            vpn,
                            self.now,
                            self.now,
                            start.level,
                            start.node_base,
                        )
                        .for_asid(asid)
                        .as_prefetch();
                        self.sw_to_sm
                            .send(self.now + self.cfg.l2_tlb_latency, (target.index(), req));
                    }
                    // No MSHR capacity (or a same-cycle race filled the
                    // entry): release the charged slot and stop — the
                    // condition will not clear within this cycle.
                    _ => {
                        self.distributor.on_fill(target);
                        break 'streams;
                    }
                }
            }
        }
    }

    fn finish_translation(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        pfn: Option<Pfn>,
        queue: u64,
        access: u64,
    ) {
        // End-to-end data check: before the translation is delivered to
        // its consumers, re-derive the frame's checksum. A mismatch
        // quarantines the page (retiring repeat-offender frames) and
        // hands it back to the driver for a re-fill; the MSHR waiters
        // stay parked until the re-filled walk completes.
        if self.data_faults.is_some() {
            if let Some(p) = pfn {
                let check = self.mms[asid.index()].verify(vpn, p, &self.phys);
                if check != FrameCheck::Ok {
                    match check {
                        FrameCheck::Corrupt => {
                            self.mm_fault.detected_corruptions += 1;
                            let retired = self.mms[asid.index()].quarantine_page(
                                vpn,
                                &mut self.spaces[asid.index()],
                                &mut self.phys,
                            );
                            if retired {
                                self.mm_fault.retired_fills += 1;
                            } else {
                                self.mm_fault.recovered_fills += 1;
                            }
                        }
                        FrameCheck::Stale => {
                            self.mm_fault.detected_stale_hits += 1;
                            if let Some(n) = self.stale_shootdowns.remove(&(asid, vpn)) {
                                self.mm_fault.recovered_fills += n;
                            }
                        }
                        FrameCheck::Ok => unreachable!(),
                    }
                    self.l2.invalidate(asid, vpn);
                    for i in 0..self.sms.len() {
                        if self.sm_asids[i] == asid {
                            self.sms[i].invalidate_translation(vpn);
                        }
                    }
                    if let Some(t) = self.pending_fills.remove(&(asid, vpn)) {
                        self.mm_fault.recovered_fills += t.drop_pending;
                    }
                    let delay = self.driver_delay(asid, vpn);
                    self.driver_q.send(
                        self.now + delay,
                        DriverReq {
                            asid,
                            vpn,
                            issued_at: self.now,
                            stalls: 0,
                            refill: true,
                        },
                    );
                    return;
                }
            }
        }
        match self.pending_fills.remove(&(asid, vpn)) {
            Some(t) => self.mm_fault.recovered_fills += t.drop_pending,
            None => {
                if pfn.is_some() {
                    if let Some(n) = self.dup_fills.get_mut(&(asid, vpn)) {
                        // Phantom duplicated completion: the real one
                        // already finished this fill and released the
                        // waiters, so this racing walk is absorbed.
                        self.mm_fault.recovered_fills += 1;
                        *n -= 1;
                        if *n == 0 {
                            self.dup_fills.remove(&(asid, vpn));
                        }
                        return;
                    }
                }
            }
        }
        if pfn.is_some() {
            if let Some(n) = self.stale_shootdowns.remove(&(asid, vpn)) {
                // A fresh walk re-established the mapping the dropped
                // shootdown left dangling: the hazard is gone.
                self.mm_fault.recovered_fills += n;
            }
            if let Some(mm) = self.mms.get_mut(asid.index()) {
                mm.touch(vpn);
            }
        }
        self.stats.walk.record(queue, access);
        self.tenant_walks[asid.index()] += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            o.reg.observe(o.h_walk_queue, queue);
            o.reg.observe(o.h_walk_access, access);
            o.reg.observe(o.h_walk_total, queue + access);
        }
        self.l2_retry_budget = self.l2_retry_budget.saturating_add(2);
        // A walk that is still a pure prefetch at completion (no demand
        // miss merged onto it) installs its fills tagged, so the TLB can
        // track whether the prefetch ever pays off. A failed prefetch
        // walk is accounted as evicted — it produced nothing.
        let pure_prefetch = self.prefetch_live.remove(&(asid, vpn));
        let waiters = match pfn {
            Some(p) if pure_prefetch => self.l2.complete_walk_prefetched(asid, vpn, p),
            Some(p) => self.l2.complete_walk(asid, vpn, p),
            None => {
                if pure_prefetch {
                    self.prefetch_failed += 1;
                }
                self.stats.faults += 1;
                self.l2.fail_walk(asid, vpn)
            }
        };
        for sm in waiters {
            if sm == PREFETCH_REQUESTER {
                continue;
            }
            self.xlat_ret
                .send(self.now + self.cfg.xlat_return_latency, (sm, vpn, pfn));
        }
    }

    fn finalize(mut self) -> SimStats {
        for sm in &self.sms {
            let s = sm.stats();
            let agg = &mut self.stats.sm;
            agg.issued_cycles += s.issued_cycles;
            agg.pw_issue_cycles += s.pw_issue_cycles;
            agg.mem_stall_cycles += s.mem_stall_cycles;
            agg.scoreboard_stall_cycles += s.scoreboard_stall_cycles;
            agg.idle_cycles += s.idle_cycles;
            agg.instructions += s.instructions;
            agg.loads += s.loads;
            agg.l1_mshr_failures += s.l1_mshr_failures;
            agg.xlat_faults += s.xlat_faults;
            let t = sm.l1_tlb_stats();
            self.stats.l1_tlb.hits += t.hits;
            self.stats.l1_tlb.misses += t.misses;
            self.stats.l1_tlb.fills += t.fills;
            self.stats.l1_tlb.evictions += t.evictions;
            self.stats.l1_tlb.dead_fills += t.dead_fills;
            self.stats.l1_tlb.prefetch_hits += t.prefetch_hits;
            self.stats.l1_tlb.prefetch_evictions += t.prefetch_evictions;
            self.stats.l1_tlb.shared_joins += t.shared_joins;
            let c = sm.l1d_stats();
            self.stats.l1d.accesses += c.accesses;
            self.stats.l1d.hits += c.hits;
            self.stats.l1d.misses += c.misses;
            self.stats.l1d.merges += c.merges;
            self.stats.l1d.mshr_failures += c.mshr_failures;
            self.stats.l1d.evictions += c.evictions;
        }
        self.stats.instructions = self.stats.sm.instructions;
        self.stats.loads = self.stats.sm.loads;
        self.stats.l2_tlb = self.l2.tlb_stats();
        self.stats.l2_mshr = self.l2.mshr_stats();
        self.stats.in_tlb = self.l2.in_tlb_stats();
        self.stats.l2d = self.l2d.stats();
        self.stats.dram = self.dram.stats().clone();
        let p = self.pwc.stats();
        self.stats.pwc_hits = p.hits;
        self.stats.pwc_misses = p.misses;
        for pw in &self.pw_warps {
            let s = pw.stats();
            let agg = &mut self.stats.pw_warp;
            agg.walks_completed += s.walks_completed;
            agg.faults += s.faults;
            agg.instructions_issued += s.instructions_issued;
            agg.ldpt_reads += s.ldpt_reads;
            agg.total_softpwb_wait += s.total_softpwb_wait;
            agg.total_execution += s.total_execution;
            agg.fill_replays += s.fill_replays;
            agg.prefetch_walks += s.prefetch_walks;
        }
        // Translation-policy counters. The conservation ledger closes at
        // any stopping point: every issued prefetch is useful (first
        // demand hit on its fill), late (demand merged onto its walk),
        // evicted (fill discarded untouched, or the walk failed), or
        // still in flight (walk live, or fill resident and untouched).
        self.stats.tlb_dead_fills = self.stats.l1_tlb.dead_fills + self.l2.tlb_stats().dead_fills;
        self.stats.prefetch_issued = self.prefetch_issued;
        self.stats.prefetch_useful = self.l2.tlb_stats().prefetch_hits;
        self.stats.prefetch_late = self.prefetch_late;
        self.stats.prefetch_evicted = self.l2.tlb_stats().prefetch_evictions + self.prefetch_failed;
        self.stats.prefetch_in_flight =
            self.prefetch_live.len() as u64 + self.l2.tlb().prefetched_resident() as u64;
        for mm in &self.mms {
            let s = mm.stats();
            self.stats.mm.major_faults += s.major_faults;
            self.stats.mm.major_replays += s.major_replays;
            self.stats.mm.evictions += s.evictions;
            self.stats.mm.coalesces_64k += s.coalesces_64k;
            self.stats.mm.coalesces_2m += s.coalesces_2m;
            self.stats.mm.splinters += s.splinters;
            self.stats.mm.resident_peak += s.resident_peak;
            // Corruptions caught by the eviction scrub (and the frames it
            // retired) are counted inside the manager.
            self.mm_fault.merge(&mm.fault_stats());
        }
        if !self.mms.is_empty() {
            self.stats.mm.sw_fill_replays = self.stats.pw_warp.fill_replays;
        }
        // Injection credits that never resolved in-run drain here so the
        // conservation invariant holds at any stopping point: duplicated
        // completions whose phantom walk was coalesced away and dangling
        // dropped-shootdown entries are harmless by construction
        // (recovered); drops whose watchdog never got to fire count as
        // escalated, mirroring their in-run terminal state.
        self.mm_fault.recovered_fills += self.dup_fills.values().sum::<u64>();
        self.mm_fault.recovered_fills += self.stale_shootdowns.values().sum::<u64>();
        self.mm_fault.escalated_fills += self
            .pending_fills
            .values()
            .map(|t| t.drop_pending)
            .sum::<u64>();
        self.stats.mm_fault = self.mm_fault;
        self.stats.distributor = self.distributor.stats();
        let mut fault = self.fault_counters;
        fault.merge(&self.ptw.fault_stats());
        for pw in &self.pw_warps {
            fault.merge(&pw.fault_stats());
        }
        fault.merge(&self.l2d.fault_stats());
        fault.merge(&self.dram.fault_stats());
        fault.fault_buffer_overflow_drops += self.hw_faults.overflow_dropped();
        self.stats.fault = fault;
        if let Some(mut o) = self.obs.take() {
            let closed: Vec<Span> = o.busy.iter_mut().filter_map(BusyTracker::flush).collect();
            for s in closed {
                o.push(s);
            }
            for sm in &self.sms {
                o.reg.observe(o.h_sm_stall, sm.stats().stall_cycles());
            }
            if let Some(mut stream) = o.stream.take() {
                // Close the trace: the staged tail is written to the
                // sink *and* retained in the in-memory report, so a run
                // that never overflowed its staging buffer still yields
                // a complete (cacheable) report.
                stream
                    .finish(
                        &o.reg,
                        o.rec.spans(),
                        o.rec.dropped(),
                        o.rec.dropped_by_kind(),
                        o.rec.flushed(),
                    )
                    .expect("SWTB trace sink write failed");
            }
            self.stats.obs = Some(Box::new(ObsReport::from_instruments(o.reg, o.rec)));
        }
        if let Some(t) = self.cfg.tenants.clone() {
            for i in 0..t.len() {
                let mut ts = crate::stats::TenantStats {
                    fresh_l2_misses: self.tenant_fresh_misses[i],
                    walks: self.tenant_walks[i],
                    ..Default::default()
                };
                for sm in &self.sms[t.sm_range(i)] {
                    ts.instructions += sm.stats().instructions;
                    ts.loads += sm.stats().loads;
                    ts.cycles = ts.cycles.max(sm.last_issue_cycle().value());
                }
                self.stats.tenants.push(ts);
            }
        }
        let channels = self.cfg.dram.channels;
        self.stats.finish(self.now, channels);
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swgpu_workloads::{by_abbr, WorkloadParams};

    fn run_bench(abbr: &str, mode: TranslationMode, instrs: u32) -> SimStats {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = mode;
        let spec = by_abbr(abbr).unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: instrs,
            footprint_percent: 20,
            page_size: cfg.page_size,
        });
        GpuSimulator::new(cfg, Box::new(wl)).run()
    }

    #[test]
    fn baseline_runs_regular_benchmark() {
        let s = run_bench("2dc", TranslationMode::HardwarePtw, 4);
        assert!(!s.timed_out);
        assert!(s.instructions > 0);
        assert!(s.l1_tlb.hit_rate() > 0.5, "regular app hits the L1 TLB");
        assert_eq!(s.faults, 0);
    }

    #[test]
    fn baseline_runs_irregular_benchmark() {
        let s = run_bench("gups", TranslationMode::HardwarePtw, 3);
        assert!(!s.timed_out);
        assert!(s.walk.translations > 0, "walks happened");
        assert!(
            s.walk.queue_fraction() > 0.5,
            "queueing dominates at 32 PTWs: {}",
            s.walk.queue_fraction()
        );
    }

    /// A configuration with real translation pressure: enough SMs that
    /// the L1 MSHR fan-in (32 per SM) far exceeds the 128 L2 TLB MSHRs.
    fn contended(abbr: &str, mode: TranslationMode, instrs: u32) -> SimStats {
        let mut cfg = GpuConfig::quick_test();
        cfg.sms = 16;
        cfg.max_warps = 16;
        cfg.mode = mode;
        cfg.l2_mshr.entries = 64;
        let spec = by_abbr(abbr).unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: instrs,
            // Full footprint: must exceed the 64 MB L2 TLB reach for the
            // translation system to matter at all.
            footprint_percent: 100,
            page_size: cfg.page_size,
        });
        GpuSimulator::new(cfg, Box::new(wl)).run()
    }

    #[test]
    fn softwalker_beats_baseline_on_irregular() {
        let base = contended("gups", TranslationMode::HardwarePtw, 3);
        let sw = contended("gups", TranslationMode::SoftWalker { in_tlb_mshr: true }, 3);
        assert!(!sw.timed_out);
        assert_eq!(sw.instructions, base.instructions, "same work");
        let speedup = sw.speedup_over(&base);
        assert!(speedup > 1.3, "speedup {speedup}");
        assert!(sw.sw_walks > 0);
        assert_eq!(sw.hw_walks, 0);
    }

    #[test]
    fn ideal_is_at_least_as_fast_as_baseline() {
        let base = run_bench("spmv", TranslationMode::HardwarePtw, 3);
        let ideal = run_bench("spmv", TranslationMode::IdealPtw, 3);
        assert!(ideal.speedup_over(&base) >= 1.0);
        assert_eq!(ideal.l2_mshr_failure_events, 0, "ideal MSHRs never fail");
    }

    #[test]
    fn hashed_mode_translates_correctly() {
        let s = run_bench("xsb", TranslationMode::HashedPtw, 2);
        assert!(!s.timed_out);
        assert_eq!(s.faults, 0, "hashed table covers the same mappings");
        assert!(s.walk.translations > 0);
    }

    #[test]
    fn hybrid_uses_both_walker_kinds_under_pressure() {
        let s = run_bench("gups", TranslationMode::Hybrid { in_tlb_mshr: true }, 3);
        assert!(!s.timed_out);
        assert!(s.hw_walks > 0, "hardware walkers used first");
        assert!(s.sw_walks > 0, "overflow went to PW warps");
    }

    #[test]
    fn in_tlb_mshr_reduces_failures() {
        let without = contended(
            "gups",
            TranslationMode::SoftWalker { in_tlb_mshr: false },
            3,
        );
        let with = contended("gups", TranslationMode::SoftWalker { in_tlb_mshr: true }, 3);
        assert!(
            without.l2_mshr_failure_events > 0,
            "contended config must saturate the 64 dedicated MSHRs"
        );
        assert!(
            with.l2_mshr_failure_events < without.l2_mshr_failure_events,
            "with={} without={}",
            with.l2_mshr_failure_events,
            without.l2_mshr_failure_events
        );
    }

    #[test]
    fn force_in_tlb_enables_overflow_for_hardware_modes() {
        let base = contended("gups", TranslationMode::HardwarePtw, 3);
        assert_eq!(
            base.in_tlb.in_tlb_allocations, 0,
            "baseline never allocates"
        );
        let mut cfg = GpuConfig::quick_test();
        cfg.sms = 16;
        cfg.max_warps = 16;
        cfg.l2_mshr.entries = 64;
        cfg.force_in_tlb = true;
        let spec = by_abbr("gups").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 3,
            footprint_percent: 100,
            page_size: cfg.page_size,
        });
        let forced = GpuSimulator::new(cfg, Box::new(wl)).run();
        assert!(
            forced.in_tlb.in_tlb_allocations > 0,
            "forced In-TLB must actually engage"
        );
    }

    #[test]
    fn walk_trace_collects_up_to_cap() {
        let mut cfg = GpuConfig::quick_test();
        cfg.walk_trace_cap = 16;
        let spec = by_abbr("xsb").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 2,
            footprint_percent: 100,
            page_size: cfg.page_size,
        });
        let s = GpuSimulator::new(cfg, Box::new(wl)).run();
        // The cap bounds the trace; how many walks the workload actually
        // produces may evolve with the timing model.
        assert!(!s.walk_trace.is_empty(), "tracing enabled but empty");
        assert!(
            s.walk_trace.len() <= 16,
            "cap exceeded: {}",
            s.walk_trace.len()
        );
        for r in s.walk_trace.records() {
            assert!(r.issued_at <= r.started_at);
            assert!(r.started_at <= r.completed_at);
            assert_eq!(r.walker, crate::WalkerKind::Hardware);
        }
    }

    fn run_with_plan(mode: TranslationMode, plan: swgpu_types::FaultPlan) -> SimStats {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = mode;
        cfg.fault_plan = plan;
        let spec = by_abbr("gups").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 3,
            footprint_percent: 20,
            page_size: cfg.page_size,
        });
        GpuSimulator::new(cfg, Box::new(wl)).run()
    }

    fn storm_plan() -> swgpu_types::FaultPlan {
        swgpu_types::FaultPlan {
            seed: 0xf00d,
            pte_corrupt_rate: 0.05,
            mem_drop_rate: 0.05,
            mem_delay_rate: 0.05,
            stuck_thread_rate: 0.02,
            ..swgpu_types::FaultPlan::default()
        }
    }

    fn assert_conserved(s: &SimStats) {
        assert!(!s.timed_out, "faulty run must still drain");
        assert!(
            s.fault.injected_total() > 0,
            "storm rates must actually inject something"
        );
        assert_eq!(
            s.fault.injected_total(),
            s.fault.recovered_injections + s.fault.escalated_injections,
            "every injected fault must be recovered or escalated: {:?}",
            s.fault
        );
        // The footprint is fully mapped, so the driver can repair every
        // escalation: none may surface as a real page fault.
        assert_eq!(s.fault.unrecoverable_faults, 0);
        assert_eq!(s.faults, 0, "injected faults must not leak to the UVM path");
        assert_eq!(s.sm.xlat_faults, 0);
        assert_eq!(
            s.fault.fault_replays, s.fault.fault_escalations,
            "every escalation must be replayed"
        );
    }

    #[test]
    fn fault_storm_recovers_on_software_walkers() {
        let s = run_with_plan(
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            storm_plan(),
        );
        assert_conserved(&s);
        assert!(s.fault.injected_stuck_threads > 0 || s.fault.injected_pte_corruptions > 0);
    }

    #[test]
    fn fault_storm_recovers_on_hardware_walkers() {
        let s = run_with_plan(TranslationMode::HardwarePtw, storm_plan());
        assert_conserved(&s);
    }

    #[test]
    fn fault_storm_recovers_on_hybrid() {
        let s = run_with_plan(TranslationMode::Hybrid { in_tlb_mshr: true }, storm_plan());
        assert_conserved(&s);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let a = run_with_plan(
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            storm_plan(),
        );
        let b = run_with_plan(
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            storm_plan(),
        );
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "same seed must replay byte-identically"
        );
        let mut reseeded = storm_plan();
        reseeded.seed ^= 1;
        let c = run_with_plan(TranslationMode::SoftWalker { in_tlb_mshr: true }, reseeded);
        assert_ne!(
            a.fault, c.fault,
            "a different seed must draw a different schedule"
        );
    }

    #[test]
    fn zero_rate_plan_is_inert() {
        // A seed alone must not arm anything.
        let plan = swgpu_types::FaultPlan {
            seed: 0xdead_beef,
            ..Default::default()
        };
        let s = run_with_plan(TranslationMode::SoftWalker { in_tlb_mshr: true }, plan);
        assert!(
            !s.fault.any(),
            "zero rates must leave every counter at zero"
        );
        assert!(!s.to_json().contains("fault_"));
    }

    /// A demand-paged cell with eviction pressure (small resident
    /// budget), the substrate every data-path fault site needs.
    fn run_mm_with_plan(mode: TranslationMode, plan: swgpu_types::FaultPlan) -> SimStats {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = mode;
        cfg.fault_plan = plan;
        cfg.mm = swgpu_types::MmConfig {
            resident_page_budget: 64,
            ..swgpu_types::MmConfig::demand_paged()
        };
        let spec = by_abbr("gups").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 3,
            footprint_percent: 20,
            page_size: cfg.page_size,
        });
        GpuSimulator::new(cfg, Box::new(wl)).run()
    }

    fn data_storm_plan() -> swgpu_types::FaultPlan {
        swgpu_types::FaultPlan {
            seed: 0xfee1_dead,
            fill_drop_rate: 0.10,
            fill_delay_rate: 0.05,
            fill_duplicate_rate: 0.05,
            fill_corrupt_rate: 0.05,
            shootdown_drop_rate: 0.10,
            driver_stuck_rate: 0.05,
            ..swgpu_types::FaultPlan::default()
        }
    }

    fn assert_mm_conserved(s: &SimStats) {
        assert!(!s.timed_out, "faulted demand-paged run must still drain");
        let f = &s.mm_fault;
        assert!(
            f.injected_conserved() > 0,
            "storm rates must actually inject something: {f:?}"
        );
        assert_eq!(
            f.injected_conserved(),
            f.recovered_fills + f.escalated_fills + f.retired_fills,
            "every injected data-path fault must be recovered, escalated \
             or retired: {f:?}"
        );
        assert_eq!(
            f.injected_fill_corruptions, f.detected_corruptions,
            "every corrupted fill must be caught by the checksum: {f:?}"
        );
        assert_eq!(s.faults, 0, "data faults must not surface as real ones");
        assert_eq!(s.sm.xlat_faults, 0);
    }

    #[test]
    fn data_path_storm_recovers_on_software_walkers() {
        let s = run_mm_with_plan(
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            data_storm_plan(),
        );
        assert_mm_conserved(&s);
        assert!(s.mm_fault.injected_fill_drops > 0);
        assert!(s.mm_fault.fill_watchdog_timeouts > 0);
    }

    #[test]
    fn data_path_storm_recovers_on_hardware_walkers() {
        let s = run_mm_with_plan(TranslationMode::HardwarePtw, data_storm_plan());
        assert_mm_conserved(&s);
    }

    #[test]
    fn data_path_storm_recovers_on_hybrid() {
        let s = run_mm_with_plan(
            TranslationMode::Hybrid { in_tlb_mshr: true },
            data_storm_plan(),
        );
        assert_mm_conserved(&s);
    }

    #[test]
    fn data_path_storm_is_deterministic() {
        let a = run_mm_with_plan(TranslationMode::HardwarePtw, data_storm_plan());
        let b = run_mm_with_plan(TranslationMode::HardwarePtw, data_storm_plan());
        assert_eq!(a.to_json(), b.to_json(), "same seed must replay bytewise");
    }

    #[test]
    fn zero_rate_data_plan_is_byte_identical_on_mm() {
        // An armed-but-zero plan (seed set, every data rate 0.0) must not
        // perturb a demand-paged run in any observable way.
        let unarmed = run_mm_with_plan(TranslationMode::HardwarePtw, Default::default());
        let armed = run_mm_with_plan(
            TranslationMode::HardwarePtw,
            swgpu_types::FaultPlan {
                seed: 0xdead_beef,
                ..Default::default()
            },
        );
        assert!(unarmed.mm.major_faults > 0, "cell must demand-page");
        assert!(!armed.mm_fault.any(), "zero rates must not count anything");
        assert_eq!(unarmed.to_json(), armed.to_json());
    }

    fn run_observed(mode: TranslationMode) -> SimStats {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = mode;
        cfg.obs = swgpu_obs::ObsConfig {
            sample_interval: 64,
            ..swgpu_obs::ObsConfig::enabled()
        };
        let spec = by_abbr("gups").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 3,
            footprint_percent: 20,
            page_size: cfg.page_size,
        });
        GpuSimulator::new(cfg, Box::new(wl)).run()
    }

    #[test]
    fn disabled_obs_attaches_no_report() {
        let s = run_bench("gups", TranslationMode::HardwarePtw, 3);
        assert!(s.obs.is_none(), "obs off must not allocate a report");
    }

    #[test]
    fn observed_software_run_captures_walk_lifecycle() {
        let s = run_observed(TranslationMode::SoftWalker { in_tlb_mshr: true });
        assert!(!s.timed_out);
        let obs = s.obs.as_deref().expect("obs armed");
        let kinds: Vec<_> = obs.spans.iter().map(|sp| sp.kind).collect();
        for kind in [
            swgpu_obs::SpanKind::SwQueue,
            swgpu_obs::SpanKind::SwPwbWait,
            swgpu_obs::SpanKind::SwExec,
            swgpu_obs::SpanKind::PteRead,
            swgpu_obs::SpanKind::Dispatch,
            swgpu_obs::SpanKind::PwWarpBusy,
        ] {
            assert!(kinds.contains(&kind), "missing {kind:?} spans");
        }
        // Span ordering invariants hold on every lifecycle interval.
        for sp in &obs.spans {
            assert!(sp.start <= sp.end, "reversed span {sp:?}");
        }
        // The walk-latency histograms saw exactly the translations the
        // scalar stats counted.
        let total = obs.histogram("walk_total_cycles").expect("hist");
        assert_eq!(total.count(), s.walk.translations);
        assert!(total.percentile(0.99) >= total.percentile(0.50));
        // Occupancy series sampled on the configured 64-cycle interval.
        assert_eq!(obs.interval, 64);
        let occ = obs.time_series("softpwb_occupancy").expect("series");
        assert_eq!(occ.total_pushed(), s.cycles / 64 + 1);
        // Every dispatched walk shows up on the dispatch counter.
        assert_eq!(obs.counter("distributor_dispatches"), Some(s.sw_walks));
    }

    #[test]
    fn observed_hardware_run_captures_hw_spans() {
        let s = run_observed(TranslationMode::HardwarePtw);
        let obs = s.obs.as_deref().expect("obs armed");
        let kinds: Vec<_> = obs.spans.iter().map(|sp| sp.kind).collect();
        assert!(kinds.contains(&swgpu_obs::SpanKind::HwQueue));
        assert!(kinds.contains(&swgpu_obs::SpanKind::HwWalk));
        assert!(kinds.contains(&swgpu_obs::SpanKind::PteRead));
        assert!(obs.counter("pte_reads").unwrap_or(0) > 0);
    }

    #[test]
    fn observing_does_not_perturb_timing() {
        let base = run_bench("gups", TranslationMode::SoftWalker { in_tlb_mshr: true }, 3);
        let observed = run_observed(TranslationMode::SoftWalker { in_tlb_mshr: true });
        assert_eq!(base.cycles, observed.cycles, "obs must be timing-neutral");
        assert_eq!(base.to_json(), observed.to_json());
    }

    /// A byte sink the test keeps a handle on after the simulator
    /// consumes the `Box<dyn Write>`.
    #[derive(Clone, Default)]
    struct SharedBuf(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn observed_sim(mode: TranslationMode, span_capacity: usize) -> GpuSimulator {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = mode;
        cfg.obs = swgpu_obs::ObsConfig {
            sample_interval: 64,
            span_capacity,
            ..swgpu_obs::ObsConfig::enabled()
        };
        let spec = by_abbr("gups").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 3,
            footprint_percent: 20,
            page_size: cfg.page_size,
        });
        GpuSimulator::new(cfg, Box::new(wl))
    }

    #[test]
    fn tiny_staging_buffer_streams_without_drops() {
        let sw = TranslationMode::SoftWalker { in_tlb_mshr: true };
        // Reference: a huge in-memory recorder retains every span.
        let full = observed_sim(sw, 1 << 20).run();
        let full_obs = full.obs.as_deref().expect("obs armed");
        assert_eq!(full_obs.spans_dropped, 0);

        // Streamed: a staging buffer far smaller than the span count.
        let buf = SharedBuf::default();
        let mut sim = observed_sim(sw, 64);
        assert!(sim.attach_trace_sink(Box::new(buf.clone())));
        let stats = sim.run();
        let obs = stats.obs.as_deref().expect("obs armed");
        assert_eq!(obs.spans_dropped, 0, "a sink-backed recorder never drops");
        assert!(
            obs.spans_flushed > 0,
            "64-span staging must overflow ({} total spans)",
            full_obs.spans.len()
        );
        assert!(!obs.spans_complete());

        // The trace reconstructs the *complete* span set plus every
        // instrument, identical to the big in-memory reference.
        let bytes = buf.0.borrow();
        let trace = swgpu_obs::validate_trace(&bytes).expect("valid SWTB");
        assert!(trace.span_batches > 1, "spans were streamed incrementally");
        assert_eq!(trace.report.spans, full_obs.spans);
        assert_eq!(trace.report.counters, full_obs.counters);
        assert_eq!(trace.report.histograms, full_obs.histograms);
        assert_eq!(trace.report.series, full_obs.series);
        assert_eq!(trace.report.spans_dropped, 0);
        assert_eq!(trace.report.spans_flushed, obs.spans_flushed);

        // Streaming is timing-neutral: scalar stats match the reference.
        assert_eq!(stats.to_json(), full.to_json());
    }

    #[test]
    fn dense_and_event_kernels_stream_identical_bytes() {
        let sw = TranslationMode::SoftWalker { in_tlb_mshr: true };
        let (event_buf, dense_buf) = (SharedBuf::default(), SharedBuf::default());
        let mut event = observed_sim(sw, 128);
        assert!(event.attach_trace_sink(Box::new(event_buf.clone())));
        let mut dense = observed_sim(sw, 128);
        assert!(dense.attach_trace_sink(Box::new(dense_buf.clone())));
        let a = event.run();
        let b = dense.run_dense();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(
            *event_buf.0.borrow(),
            *dense_buf.0.borrow(),
            "flush points must depend on simulated content only"
        );
    }

    #[test]
    fn trace_sink_requires_enabled_obs() {
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = TranslationMode::HardwarePtw;
        let spec = by_abbr("gups").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 2,
            footprint_percent: 20,
            page_size: cfg.page_size,
        });
        let mut sim = GpuSimulator::new(cfg, Box::new(wl));
        let buf = SharedBuf::default();
        assert!(!sim.attach_trace_sink(Box::new(buf.clone())));
        sim.run();
        assert!(buf.0.borrow().is_empty(), "no obs, no trace bytes");
    }

    #[test]
    fn progress_hook_observes_without_perturbing() {
        let sw = TranslationMode::SoftWalker { in_tlb_mshr: true };
        let baseline = observed_sim(sw, 1 << 20).run();

        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::<RunProgress>::new()));
        let sink = std::rc::Rc::clone(&seen);
        let mut sim = observed_sim(sw, 1 << 20);
        sim.set_progress_hook(256, Box::new(move |p| sink.borrow_mut().push(p)));
        let stats = sim.run();

        let seen = seen.borrow();
        assert!(!seen.is_empty(), "hook fired at least once");
        assert!(seen.windows(2).all(|w| w[0].cycles < w[1].cycles));
        assert!(seen.last().unwrap().cycles <= stats.cycles);
        assert_eq!(
            stats.to_json(),
            baseline.to_json(),
            "progress hooks are observational only"
        );
    }

    #[test]
    fn translations_are_functionally_correct() {
        // Every completed run with zero faults implies every walked VPN
        // decoded a valid mapping; cross-check one benchmark end to end.
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = TranslationMode::SoftWalker { in_tlb_mshr: true };
        let spec = by_abbr("bfs").unwrap();
        let wl = spec.build(WorkloadParams {
            sms: cfg.sms,
            warps_per_sm: cfg.max_warps,
            mem_instrs_per_warp: 2,
            footprint_percent: 10,
            page_size: cfg.page_size,
        });
        let sim = GpuSimulator::new(cfg, Box::new(wl));
        let stats = sim.run();
        assert_eq!(stats.faults, 0);
        assert_eq!(stats.sm.xlat_faults, 0);
    }

    fn tenant_sim(
        policy: SharingPolicy,
        sub_entry_sharing: bool,
        mode: TranslationMode,
        abbrs: &[&str],
        prefetch: bool,
    ) -> GpuSimulator {
        use crate::config::TenantConfig;
        let mut cfg = GpuConfig::quick_test();
        cfg.mode = mode;
        if prefetch {
            cfg.prefetch = crate::config::PrefetchConfig::enabled();
        }
        let n = abbrs.len();
        let per = cfg.sms / n;
        let tenants: Vec<TenantConfig> = abbrs
            .iter()
            .enumerate()
            .map(|(i, a)| TenantConfig {
                workload: (*a).to_string(),
                sms: if i == 0 { cfg.sms - per * (n - 1) } else { per },
            })
            .collect();
        cfg.tenants = Some(TenantsConfig {
            tenants,
            policy,
            sub_entry_sharing,
        });
        let layout = cfg.tenants.clone().unwrap();
        let pairs: Vec<(Box<dyn InstrSource>, u64)> = abbrs
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let spec = by_abbr(a).unwrap();
                let wl = spec.build(WorkloadParams {
                    sms: layout.tenants[i].sms,
                    warps_per_sm: cfg.max_warps,
                    mem_instrs_per_warp: 2,
                    footprint_percent: 10,
                    page_size: cfg.page_size,
                });
                let fp = wl.footprint_bytes();
                (Box::new(wl) as Box<dyn InstrSource>, fp)
            })
            .collect();
        GpuSimulator::new_multi_tenant(cfg, pairs)
    }

    fn assert_tenant_invariants(s: &SimStats, n: usize) {
        assert!(!s.timed_out);
        assert_eq!(s.faults, 0);
        assert_eq!(s.sm.xlat_faults, 0);
        assert_eq!(s.tenants.len(), n);
        for (i, t) in s.tenants.iter().enumerate() {
            assert!(t.instructions > 0, "tenant {i} made no progress");
        }
        // Walk conservation: every recorded translation belongs to
        // exactly one tenant.
        let per_tenant: u64 = s.tenants.iter().map(|t| t.walks).sum();
        assert_eq!(per_tenant, s.walk.translations);
        let f = s.fairness_index();
        assert!(f > 0.0 && f <= 1.0, "fairness {f} out of range");
    }

    #[test]
    fn partitioned_two_tenant_mix_runs() {
        let s = tenant_sim(
            SharingPolicy::Partitioned,
            false,
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            &["gups", "2dc"],
            false,
        )
        .run();
        assert_tenant_invariants(&s, 2);
        assert_eq!(s.l2_tlb.shared_joins, 0, "no sub-entry sharing requested");
    }

    #[test]
    fn shared_qos_two_tenant_mix_runs() {
        let s = tenant_sim(
            SharingPolicy::Shared {
                max_inflight_walks: 4,
            },
            false,
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            &["gups", "bfs"],
            false,
        )
        .run();
        assert_tenant_invariants(&s, 2);
    }

    #[test]
    fn multi_tenant_hardware_walkers_run() {
        let s = tenant_sim(
            SharingPolicy::Shared {
                max_inflight_walks: 8,
            },
            false,
            TranslationMode::HardwarePtw,
            &["gups", "2dc"],
            false,
        )
        .run();
        assert_tenant_invariants(&s, 2);
        assert!(s.hw_walks > 0);
    }

    #[test]
    fn four_tenant_partitioned_mix_runs() {
        let mut sim = tenant_sim(
            SharingPolicy::Partitioned,
            false,
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            &["gups", "2dc", "bfs", "spmv"],
            false,
        );
        let _ = &mut sim;
        let s = sim.run();
        assert_tenant_invariants(&s, 4);
    }

    #[test]
    fn sub_entry_sharing_joins_identical_mappings() {
        let sw = TranslationMode::SoftWalker { in_tlb_mshr: true };
        let shared = SharingPolicy::Shared {
            max_inflight_walks: 16,
        };
        // Identical workloads over one identically-mapped address space:
        // the second tenant's fills land on VPNs the first already
        // installed, so joins must occur. Without the opt-in, none do.
        let with = tenant_sim(shared, true, sw, &["gups", "gups"], false).run();
        assert_tenant_invariants(&with, 2);
        assert!(
            with.l2_tlb.shared_joins > 0,
            "identically-mapped tenants never joined an entry"
        );
        let without = tenant_sim(shared, false, sw, &["gups", "gups"], false).run();
        assert_tenant_invariants(&without, 2);
        assert_eq!(without.l2_tlb.shared_joins, 0);
    }

    #[test]
    fn prefetches_stay_in_issuing_tenants_tag_space() {
        // Two tenants with *distinct* address spaces and translation
        // prefetch on: a prefetch that installed under the wrong tenant's
        // tag would either fault that tenant's consumer or break the
        // walk-conservation ledger. Both must hold.
        let s = tenant_sim(
            SharingPolicy::Partitioned,
            false,
            TranslationMode::SoftWalker { in_tlb_mshr: true },
            &["gups", "gups"],
            true,
        )
        .run();
        assert_tenant_invariants(&s, 2);
        assert!(s.prefetch_issued > 0, "prefetcher never fired");
        assert_eq!(s.l2_tlb.shared_joins, 0, "tag spaces stayed disjoint");
    }

    #[test]
    fn multi_tenant_dense_and_event_kernels_agree() {
        let mk = || {
            tenant_sim(
                SharingPolicy::Shared {
                    max_inflight_walks: 8,
                },
                false,
                TranslationMode::SoftWalker { in_tlb_mshr: true },
                &["gups", "2dc"],
                false,
            )
        };
        let a = mk().run();
        let b = mk().run_dense();
        assert_eq!(a.to_json(), b.to_json(), "kernel choice must be invisible");
    }
}
