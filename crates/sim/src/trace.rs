//! Optional per-walk lifecycle tracing.
//!
//! When enabled (`GpuConfig::walk_trace_cap > 0`), the simulator records
//! the lifecycle of the first N completed page walks: issue (L2 TLB miss),
//! walker start (end of queueing) and completion. This is the measured
//! counterpart of the paper's *conceptual* Figure 9 timeline — the
//! `fig09_timeline` harness renders it for the three scenarios the figure
//! sketches (ideal hardware, limited hardware, software).

use swgpu_types::{Cycle, Vpn};

/// Which engine completed a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkerKind {
    /// A hardware page table walker.
    Hardware,
    /// A SoftWalker PW thread.
    Software,
}

/// One completed walk's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRecord {
    /// Translated VPN.
    pub vpn: Vpn,
    /// When the L2 TLB miss allocated the walk.
    pub issued_at: Cycle,
    /// When a walker/PW thread began processing (end of queueing).
    pub started_at: Cycle,
    /// When the translation resolved at the L2 TLB.
    pub completed_at: Cycle,
    /// Hardware or software engine.
    pub walker: WalkerKind,
}

impl WalkRecord {
    /// Queueing component of this walk's latency.
    pub fn queue_cycles(&self) -> u64 {
        self.started_at.since(self.issued_at)
    }

    /// Access (processing) component, including any communication.
    pub fn access_cycles(&self) -> u64 {
        self.completed_at.since(self.started_at)
    }

    /// Total walk latency.
    pub fn total_cycles(&self) -> u64 {
        self.completed_at.since(self.issued_at)
    }
}

/// A bounded collector for [`WalkRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct WalkTrace {
    records: Vec<WalkRecord>,
    cap: usize,
}

impl WalkTrace {
    /// Creates a collector keeping at most `cap` records (0 disables).
    pub fn new(cap: usize) -> Self {
        Self {
            records: Vec::with_capacity(cap.min(4096)),
            cap,
        }
    }

    /// Reconstructs a collector from persisted records (run-artifact
    /// loading). Records beyond `cap` are dropped, preserving the
    /// invariant that a trace never exceeds its cap.
    pub fn from_parts(cap: usize, mut records: Vec<WalkRecord>) -> Self {
        records.truncate(cap);
        Self { records, cap }
    }

    /// The record cap this collector was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Whether the collector still accepts records.
    pub fn accepting(&self) -> bool {
        self.records.len() < self.cap
    }

    /// Records one completed walk (dropped once the cap is reached).
    pub fn record(&mut self, rec: WalkRecord) {
        if self.accepting() {
            self.records.push(rec);
        }
    }

    /// The collected records, in completion order.
    pub fn records(&self) -> &[WalkRecord] {
        &self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the collected records as a JSON array of fixed-shape
    /// number arrays: `[[vpn, issued, started, completed, walker], ...]`
    /// with `walker` 0 = hardware, 1 = software. The cap is *not* part of
    /// this payload — the run artifact stores it alongside so a loaded
    /// trace can be validated against the requesting configuration.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                format!(
                    "[{},{},{},{},{}]",
                    r.vpn.value(),
                    r.issued_at.value(),
                    r.started_at.value(),
                    r.completed_at.value(),
                    match r.walker {
                        WalkerKind::Hardware => 0,
                        WalkerKind::Software => 1,
                    }
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }

    /// Parses a payload produced by [`WalkTrace::to_json`] into a
    /// collector with the given `cap`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed row if `json` is not
    /// an array of 5-number arrays.
    pub fn from_json(cap: usize, json: &str) -> Result<Self, String> {
        let body = json
            .trim()
            .strip_prefix('[')
            .and_then(|rest| rest.strip_suffix(']'))
            .ok_or_else(|| "walk trace is not a JSON array".to_string())?;
        let mut records = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let open = rest
                .strip_prefix('[')
                .ok_or_else(|| format!("walk trace row does not start with '[': {rest:.40?}"))?;
            let close = open
                .find(']')
                .ok_or_else(|| "unterminated walk trace row".to_string())?;
            let fields: Vec<u64> = open[..close]
                .split(',')
                .map(|f| {
                    f.trim()
                        .parse::<u64>()
                        .map_err(|e| format!("bad walk trace number {f:?}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            let [vpn, issued, started, completed, walker] = fields[..] else {
                return Err(format!(
                    "walk trace row has {} fields, expected 5",
                    fields.len()
                ));
            };
            records.push(WalkRecord {
                vpn: Vpn::new(vpn),
                issued_at: Cycle::new(issued),
                started_at: Cycle::new(started),
                completed_at: Cycle::new(completed),
                walker: match walker {
                    0 => WalkerKind::Hardware,
                    1 => WalkerKind::Software,
                    other => return Err(format!("bad walker kind {other}")),
                },
            });
            rest = open[close + 1..].trim_start_matches(',').trim();
        }
        Ok(Self::from_parts(cap, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(issued: u64, started: u64, done: u64) -> WalkRecord {
        WalkRecord {
            vpn: Vpn::new(1),
            issued_at: Cycle::new(issued),
            started_at: Cycle::new(started),
            completed_at: Cycle::new(done),
            walker: WalkerKind::Hardware,
        }
    }

    #[test]
    fn record_decomposes_latency() {
        let r = rec(10, 110, 310);
        assert_eq!(r.queue_cycles(), 100);
        assert_eq!(r.access_cycles(), 200);
        assert_eq!(r.total_cycles(), 300);
    }

    #[test]
    fn collector_respects_cap() {
        let mut t = WalkTrace::new(2);
        for i in 0..5 {
            t.record(rec(i, i + 1, i + 2));
        }
        assert_eq!(t.len(), 2);
        assert!(!t.accepting());
        assert_eq!(t.records()[0].issued_at, Cycle::new(0));
    }

    #[test]
    fn zero_cap_disables() {
        let mut t = WalkTrace::new(0);
        t.record(rec(0, 1, 2));
        assert!(t.is_empty());
    }

    #[test]
    fn json_round_trips_records_and_cap() {
        let mut t = WalkTrace::new(8);
        t.record(rec(10, 110, 310));
        t.record(WalkRecord {
            walker: WalkerKind::Software,
            ..rec(20, 25, 400)
        });
        let j = t.to_json();
        assert!(j.starts_with("[[") && j.ends_with("]]"), "{j}");
        let back = WalkTrace::from_json(8, &j).expect("parse");
        assert_eq!(back.cap(), 8);
        assert_eq!(back.records(), t.records());
        assert_eq!(back.to_json(), j, "round trip must be byte-identical");
    }

    #[test]
    fn empty_trace_serializes_as_empty_array() {
        let t = WalkTrace::new(4);
        assert_eq!(t.to_json(), "[]");
        let back = WalkTrace::from_json(4, "[]").expect("parse");
        assert!(back.is_empty());
        assert_eq!(back.cap(), 4);
    }

    #[test]
    fn from_parts_enforces_cap() {
        let records = vec![rec(0, 1, 2), rec(3, 4, 5), rec(6, 7, 8)];
        let t = WalkTrace::from_parts(2, records);
        assert_eq!(t.len(), 2);
        assert!(!t.accepting());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(WalkTrace::from_json(4, "{}").is_err());
        assert!(WalkTrace::from_json(4, "[[1,2,3]]").is_err(), "short row");
        assert!(WalkTrace::from_json(4, "[[1,2,3,4,7]]").is_err(), "walker");
        assert!(WalkTrace::from_json(4, "[[1,2,3,4,x]]").is_err());
    }
}
