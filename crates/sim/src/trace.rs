//! Optional per-walk lifecycle tracing.
//!
//! When enabled (`GpuConfig::walk_trace_cap > 0`), the simulator records
//! the lifecycle of the first N completed page walks: issue (L2 TLB miss),
//! walker start (end of queueing) and completion. This is the measured
//! counterpart of the paper's *conceptual* Figure 9 timeline — the
//! `fig09_timeline` harness renders it for the three scenarios the figure
//! sketches (ideal hardware, limited hardware, software).

use swgpu_types::{Cycle, Vpn};

/// Which engine completed a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkerKind {
    /// A hardware page table walker.
    Hardware,
    /// A SoftWalker PW thread.
    Software,
}

/// One completed walk's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRecord {
    /// Translated VPN.
    pub vpn: Vpn,
    /// When the L2 TLB miss allocated the walk.
    pub issued_at: Cycle,
    /// When a walker/PW thread began processing (end of queueing).
    pub started_at: Cycle,
    /// When the translation resolved at the L2 TLB.
    pub completed_at: Cycle,
    /// Hardware or software engine.
    pub walker: WalkerKind,
}

impl WalkRecord {
    /// Queueing component of this walk's latency.
    pub fn queue_cycles(&self) -> u64 {
        self.started_at.since(self.issued_at)
    }

    /// Access (processing) component, including any communication.
    pub fn access_cycles(&self) -> u64 {
        self.completed_at.since(self.started_at)
    }

    /// Total walk latency.
    pub fn total_cycles(&self) -> u64 {
        self.completed_at.since(self.issued_at)
    }
}

/// A bounded collector for [`WalkRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct WalkTrace {
    records: Vec<WalkRecord>,
    cap: usize,
}

impl WalkTrace {
    /// Creates a collector keeping at most `cap` records (0 disables).
    pub fn new(cap: usize) -> Self {
        Self {
            records: Vec::with_capacity(cap.min(4096)),
            cap,
        }
    }

    /// Whether the collector still accepts records.
    pub fn accepting(&self) -> bool {
        self.records.len() < self.cap
    }

    /// Records one completed walk (dropped once the cap is reached).
    pub fn record(&mut self, rec: WalkRecord) {
        if self.accepting() {
            self.records.push(rec);
        }
    }

    /// The collected records, in completion order.
    pub fn records(&self) -> &[WalkRecord] {
        &self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(issued: u64, started: u64, done: u64) -> WalkRecord {
        WalkRecord {
            vpn: Vpn::new(1),
            issued_at: Cycle::new(issued),
            started_at: Cycle::new(started),
            completed_at: Cycle::new(done),
            walker: WalkerKind::Hardware,
        }
    }

    #[test]
    fn record_decomposes_latency() {
        let r = rec(10, 110, 310);
        assert_eq!(r.queue_cycles(), 100);
        assert_eq!(r.access_cycles(), 200);
        assert_eq!(r.total_cycles(), 300);
    }

    #[test]
    fn collector_respects_cap() {
        let mut t = WalkTrace::new(2);
        for i in 0..5 {
            t.record(rec(i, i + 1, i + 2));
        }
        assert_eq!(t.len(), 2);
        assert!(!t.accepting());
        assert_eq!(t.records()[0].issued_at, Cycle::new(0));
    }

    #[test]
    fn zero_cap_disables() {
        let mut t = WalkTrace::new(0);
        t.record(rec(0, 1, 2));
        assert!(t.is_empty());
    }
}
