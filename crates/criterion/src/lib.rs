//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal harness surface its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Unlike real criterion there is no statistical analysis: each benchmark
//! is warmed once and then timed over an adaptive batch, and a single
//! `name: time/iter` line is printed. Passing `--test` (as `cargo test
//! --benches` does) runs every closure exactly once without timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long the timing loop runs per benchmark (upper bound).
const TARGET: Duration = Duration::from_millis(200);

/// Runs one benchmark body repeatedly and reports time per iteration.
pub struct Bencher {
    test_mode: bool,
    last_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `body` over an adaptive batch (or runs it once in `--test`
    /// mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            self.last_ns_per_iter = Some(0.0);
            return;
        }
        // Warm-up + first estimate.
        let t0 = Instant::now();
        black_box(body());
        let first = t0.elapsed();
        // Pick an iteration count that keeps total time under TARGET.
        let per_iter = first.max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        let elapsed = t1.elapsed();
        self.last_ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
    }
}

/// A named group of benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo test --benches` / `cargo bench -- --test` pass `--test`;
        // `cargo bench -- <filter>` passes a substring filter.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Self { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Runs one top-level benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            last_ns_per_iter: None,
        };
        f(&mut b);
        match b.last_ns_per_iter {
            Some(ns) if !self.test_mode => {
                if ns >= 1_000_000.0 {
                    println!("{id}: {:.3} ms/iter", ns / 1_000_000.0);
                } else if ns >= 1_000.0 {
                    println!("{id}: {:.3} us/iter", ns / 1_000.0);
                } else {
                    println!("{id}: {ns:.1} ns/iter");
                }
            }
            Some(_) => println!("{id}: ok (test mode)"),
            None => println!("{id}: no measurement (body never called iter)"),
        }
    }
}

/// Bundles benchmark functions into a callable group (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_body() {
        let mut b = Bencher {
            test_mode: false,
            last_ns_per_iter: None,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(x)
        });
        assert!(b.last_ns_per_iter.is_some());
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            last_ns_per_iter: None,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }
}
