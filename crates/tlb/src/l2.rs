//! The shared L2 TLB complex: TLB array + dedicated MSHRs + In-TLB MSHR.
//!
//! This is where the paper's In-TLB MSHR mechanism (Section 4.5, Figure 13)
//! lives. On a miss:
//!
//! 1. If the VPN is already tracked by a dedicated MSHR, merge (up to the
//!    46-waiter limit).
//! 2. Else if a dedicated MSHR entry is free, allocate one and launch a
//!    walk.
//! 3. Else — dedicated MSHRs saturated — repurpose a victim L2 TLB entry in
//!    the VPN's set as a *pending* entry holding the miss metadata. Each
//!    merged waiter reserves its own same-tag way, exactly as the paper
//!    describes ("we allow the In-TLB MSHR to reserve the same tag in a set
//!    index to support the MSHR merge").
//! 4. If the set has no reservable way (all ways pending) or the In-TLB
//!    budget is exhausted, the miss is rejected: an **MSHR failure**, the
//!    quantity Figure 17 reports.
//!
//! Being the *shared* level, every tag here — array, dedicated MSHR, and
//! In-TLB reservation alike — is the full `(Asid, Vpn)` pair: concurrent
//! tenants missing on the same VPN run independent walks, and shootdowns
//! are scoped to one tenant. The opt-in sub-entry sharing and way
//! partitioning modes of the underlying [`Tlb`] are exposed through
//! [`L2TlbComplex::set_sub_entry_sharing`] and
//! [`L2TlbComplex::set_way_partition`].

use crate::mshr::{MshrOutcome, TlbMshr, TlbMshrConfig};
use crate::tlb::{Tlb, TlbConfig, TlbStats};
use std::collections::HashMap;
use swgpu_types::{Asid, Pfn, Vpn};

/// Outcome of presenting a request to [`L2TlbComplex::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2MissOutcome {
    /// Valid translation found.
    Hit(Pfn),
    /// Miss tracked (dedicated or In-TLB); the caller must launch a page
    /// walk for this VPN.
    MissNewWalk,
    /// Miss merged into an in-flight walk; no new walk needed.
    MissMerged,
    /// Miss rejected — both the dedicated MSHRs and the In-TLB overflow
    /// are unavailable. The requester must retry.
    MshrFailure,
}

/// Statistics specific to the In-TLB MSHR path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InTlbStats {
    /// Misses tracked by repurposed TLB entries (new walks).
    pub in_tlb_allocations: u64,
    /// Waiters merged via additional same-tag pending ways.
    pub in_tlb_merges: u64,
    /// Misses rejected with the dedicated file full (before considering
    /// the In-TLB path) — the baseline failure count.
    pub dedicated_rejections: u64,
    /// Misses rejected outright (MSHR failures after both paths).
    pub total_failures: u64,
}

/// The shared L2 TLB with its MSHR file and optional In-TLB MSHR overflow.
///
/// Generic over the waiter metadata `M` (the simulator parks the
/// requesting SM / translation id here).
///
/// # Example
///
/// ```
/// use swgpu_tlb::{L2MissOutcome, L2TlbComplex, TlbConfig, TlbMshrConfig};
/// use swgpu_types::{Asid, Pfn, Vpn};
///
/// let mut l2: L2TlbComplex<u32> = L2TlbComplex::new(
///     TlbConfig::l2(),
///     TlbMshrConfig { entries: 1, max_merges: 1 },
///     1024,
/// );
/// let t = Asid::ZERO;
/// assert_eq!(l2.access(t, Vpn::new(1), 100), L2MissOutcome::MissNewWalk);
/// // Dedicated MSHR now full; the next miss overflows into the TLB array.
/// assert_eq!(l2.access(t, Vpn::new(2), 200), L2MissOutcome::MissNewWalk);
/// assert_eq!(l2.pending_in_tlb(), 1);
/// let waiters = l2.complete_walk(t, Vpn::new(2), Pfn::new(7));
/// assert_eq!(waiters, vec![200]);
/// assert_eq!(l2.access(t, Vpn::new(2), 201), L2MissOutcome::Hit(Pfn::new(7)));
/// ```
#[derive(Debug)]
pub struct L2TlbComplex<M> {
    tlb: Tlb,
    mshr: TlbMshr<M>,
    in_tlb_max: usize,
    overflow_waiters: HashMap<(Asid, Vpn), Vec<M>>,
    stats: InTlbStats,
}

impl<M> L2TlbComplex<M> {
    /// Creates the complex. `in_tlb_max` is the maximum number of TLB
    /// entries that may simultaneously serve as MSHRs (0 disables the
    /// mechanism — the baseline configuration).
    pub fn new(tlb_cfg: TlbConfig, mshr_cfg: TlbMshrConfig, in_tlb_max: usize) -> Self {
        Self {
            tlb: Tlb::new(tlb_cfg),
            mshr: TlbMshr::new(mshr_cfg),
            in_tlb_max,
            overflow_waiters: HashMap::new(),
            stats: InTlbStats::default(),
        }
    }

    /// TLB-array statistics (hits, misses, fills, evictions).
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Dedicated-MSHR statistics.
    pub fn mshr_stats(&self) -> crate::mshr::TlbMshrStats {
        self.mshr.stats()
    }

    /// In-TLB MSHR statistics.
    pub fn in_tlb_stats(&self) -> InTlbStats {
        self.stats
    }

    /// Entries currently repurposed as In-TLB MSHRs.
    pub fn pending_in_tlb(&self) -> usize {
        self.tlb.pending_entries()
    }

    /// Distinct VPNs tracked by the dedicated MSHR file.
    pub fn dedicated_in_flight(&self) -> usize {
        self.mshr.in_flight()
    }

    /// Distinct `(asid, vpn)` tags with in-flight walks across both
    /// tracking paths.
    pub fn walks_in_flight(&self) -> usize {
        self.mshr.in_flight() + self.overflow_waiters.len()
    }

    /// Requesters parked in the overflow wait list because every MSHR
    /// (dedicated and In-TLB alike) was occupied — a gauge the
    /// observability layer samples to expose MSHR pressure over time.
    pub fn overflow_waiting(&self) -> usize {
        self.overflow_waiters.len()
    }

    /// Direct read-only access to the TLB array.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// MIG-style static way partitioning of the underlying array:
    /// `partition[asid] = (first_way, ways)` confines each tenant's fills
    /// and In-TLB reservations to its window. See
    /// [`Tlb::set_way_partition`].
    pub fn set_way_partition(&mut self, partition: Vec<(usize, usize)>) {
        self.tlb.set_way_partition(partition);
    }

    /// Enables sub-entry sharing in the underlying array: identically
    /// mapped `(vpn, pfn)` pairs across tenants collapse onto one way.
    /// See [`Tlb::set_sub_entry_sharing`].
    pub fn set_sub_entry_sharing(&mut self, on: bool) {
        self.tlb.set_sub_entry_sharing(on);
    }

    /// Presents a translation request for `(asid, vpn)`, parking `meta`
    /// on a miss.
    pub fn access(&mut self, asid: Asid, vpn: Vpn, meta: M) -> L2MissOutcome {
        if let Some(pfn) = self.tlb.lookup(asid, vpn) {
            return L2MissOutcome::Hit(pfn);
        }

        // Already tracked by a dedicated MSHR? Merge there.
        if self.mshr.contains(asid, vpn) {
            return match self.mshr.allocate(asid, vpn, meta) {
                MshrOutcome::Merged => L2MissOutcome::MissMerged,
                MshrOutcome::Full => {
                    self.stats.total_failures += 1;
                    L2MissOutcome::MshrFailure
                }
                MshrOutcome::Allocated => unreachable!("contains() checked"),
            };
        }

        // Already tracked by the In-TLB path? Merge by reserving another
        // same-tag way.
        if self.tlb.has_pending(asid, vpn) {
            return self.try_in_tlb(asid, vpn, meta, /* merge: */ true);
        }

        // New miss: prefer a dedicated MSHR entry.
        if !self.mshr.is_full() {
            match self.mshr.allocate(asid, vpn, meta) {
                MshrOutcome::Allocated => return L2MissOutcome::MissNewWalk,
                _ => unreachable!("is_full() checked and tag untracked"),
            }
        }

        // Dedicated file saturated — Figure 13 step 1.
        self.stats.dedicated_rejections += 1;
        self.try_in_tlb(asid, vpn, meta, /* merge: */ false)
    }

    fn try_in_tlb(&mut self, asid: Asid, vpn: Vpn, meta: M, merge: bool) -> L2MissOutcome {
        if self.in_tlb_max == 0 || self.tlb.pending_entries() >= self.in_tlb_max {
            self.stats.total_failures += 1;
            return L2MissOutcome::MshrFailure;
        }
        if !self.tlb.reserve_pending(asid, vpn) {
            // Every way in the set is already pending — the per-set
            // bottleneck (spmv in Figure 24).
            self.stats.total_failures += 1;
            return L2MissOutcome::MshrFailure;
        }
        self.overflow_waiters
            .entry((asid, vpn))
            .or_default()
            .push(meta);
        if merge {
            self.stats.in_tlb_merges += 1;
            L2MissOutcome::MissMerged
        } else {
            self.stats.in_tlb_allocations += 1;
            L2MissOutcome::MissNewWalk
        }
    }

    /// Single-page shootdown scoped to one tenant: drops the cached
    /// translation for `(asid, vpn)` without disturbing other tenants'
    /// entries for the same VPN or in-flight MSHR walks (their waiters
    /// are still released when the walk completes; the walk itself
    /// re-reads the updated page table). Returns the number of entries
    /// dropped.
    pub fn invalidate(&mut self, asid: Asid, vpn: Vpn) -> usize {
        self.tlb.invalidate(asid, vpn)
    }

    /// Tenant-teardown flush: drops every cached claim `asid` holds in
    /// the array — valid entries, sub-entry shares, and its In-TLB
    /// reservations (their overflow waiters are dropped too; teardown
    /// implies the tenant's requesters are gone). Dedicated-MSHR walks
    /// are left to complete and install harmlessly into the now-unused
    /// tag space. Returns the number of valid entries dropped.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        self.overflow_waiters.retain(|&(a, _), _| a != asid);
        self.tlb.flush_asid(asid)
    }

    /// Whether a walk for `(asid, vpn)` is currently in flight (either
    /// path).
    pub fn is_walk_in_flight(&self, asid: Asid, vpn: Vpn) -> bool {
        self.mshr.contains(asid, vpn) || self.overflow_waiters.contains_key(&(asid, vpn))
    }

    /// Completes the walk for `(asid, vpn)`: installs the translation and
    /// returns every parked waiter (dedicated first, then In-TLB, each in
    /// arrival order).
    pub fn complete_walk(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) -> Vec<M> {
        let mut waiters = self.mshr.resolve(asid, vpn);
        if let Some(overflow) = self.overflow_waiters.remove(&(asid, vpn)) {
            waiters.extend(overflow);
            self.tlb.clear_pending_and_fill(asid, vpn, pfn);
        } else {
            self.tlb.fill(asid, vpn, pfn);
        }
        waiters
    }

    /// [`L2TlbComplex::complete_walk`] for a prefetch-initiated walk: the
    /// installed translation carries the prefetch tag so an unused
    /// prefetch is preferentially evicted and its fate is counted. The
    /// ASID is the issuing tenant's — a prefetch completes into its own
    /// tag space only.
    pub fn complete_walk_prefetched(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn) -> Vec<M> {
        let mut waiters = self.mshr.resolve(asid, vpn);
        if let Some(overflow) = self.overflow_waiters.remove(&(asid, vpn)) {
            waiters.extend(overflow);
            self.tlb.clear_pending_and_fill_prefetched(asid, vpn, pfn);
        } else {
            self.tlb.fill_prefetched(asid, vpn, pfn);
        }
        waiters
    }

    /// Aborts the walk for `(asid, vpn)` without installing a translation
    /// (page fault): waiters are still released so they can observe the
    /// fault.
    pub fn fail_walk(&mut self, asid: Asid, vpn: Vpn) -> Vec<M> {
        let mut waiters = self.mshr.resolve(asid, vpn);
        if let Some(overflow) = self.overflow_waiters.remove(&(asid, vpn)) {
            waiters.extend(overflow);
            self.tlb.clear_pending(asid, vpn);
        }
        waiters
    }

    /// Baseline-comparable MSHR failure count: with In-TLB disabled this
    /// equals total failures; with it enabled, the failures that remain.
    pub fn mshr_failures(&self) -> u64 {
        self.stats.total_failures
    }
}

impl<M> swgpu_types::Component for L2TlbComplex<M> {
    /// The complex is combinational — every state change happens inside a
    /// caller-driven `access`/`complete_walk`/`fail_walk`, so it never
    /// schedules an event of its own. Each in-flight walk it tracks is
    /// owned by a live walker (or a queued request) elsewhere, whose
    /// events drive completion; if that ever stops being true, the walk
    /// leaked and the kernel surfaces it as a visible timeout instead of
    /// silently dropping the waiters.
    fn next_event(&self) -> Option<swgpu_types::Cycle> {
        None
    }

    fn is_idle(&self) -> bool {
        self.walks_in_flight() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asid = Asid::ZERO;
    const B: Asid = Asid(1);

    fn complex(mshr_entries: usize, in_tlb_max: usize) -> L2TlbComplex<u32> {
        L2TlbComplex::new(
            TlbConfig {
                name: "L2".into(),
                entries: 8,
                assoc: 4,
                repl: crate::ReplPolicy::Lru,
            },
            TlbMshrConfig {
                entries: mshr_entries,
                max_merges: 2,
            },
            in_tlb_max,
        )
    }

    #[test]
    fn hit_path() {
        let mut l2 = complex(4, 0);
        assert_eq!(l2.access(A, Vpn::new(1), 0), L2MissOutcome::MissNewWalk);
        let w = l2.complete_walk(A, Vpn::new(1), Pfn::new(9));
        assert_eq!(w, vec![0]);
        assert_eq!(
            l2.access(A, Vpn::new(1), 1),
            L2MissOutcome::Hit(Pfn::new(9))
        );
    }

    #[test]
    fn dedicated_merge() {
        let mut l2 = complex(4, 0);
        assert_eq!(l2.access(A, Vpn::new(1), 0), L2MissOutcome::MissNewWalk);
        assert_eq!(l2.access(A, Vpn::new(1), 1), L2MissOutcome::MissMerged);
        // Merge limit is 2.
        assert_eq!(l2.access(A, Vpn::new(1), 2), L2MissOutcome::MshrFailure);
        assert_eq!(l2.complete_walk(A, Vpn::new(1), Pfn::new(5)), vec![0, 1]);
    }

    #[test]
    fn baseline_fails_without_in_tlb() {
        let mut l2 = complex(1, 0);
        assert_eq!(l2.access(A, Vpn::new(1), 0), L2MissOutcome::MissNewWalk);
        assert_eq!(l2.access(A, Vpn::new(2), 1), L2MissOutcome::MshrFailure);
        assert_eq!(l2.mshr_failures(), 1);
        assert_eq!(l2.in_tlb_stats().dedicated_rejections, 1);
    }

    #[test]
    fn in_tlb_overflow_tracks_new_walks() {
        let mut l2 = complex(1, 8);
        assert_eq!(l2.access(A, Vpn::new(1), 0), L2MissOutcome::MissNewWalk);
        assert_eq!(l2.access(A, Vpn::new(2), 1), L2MissOutcome::MissNewWalk);
        assert_eq!(l2.pending_in_tlb(), 1);
        assert_eq!(l2.walks_in_flight(), 2);
        assert_eq!(l2.mshr_failures(), 0);
        // Completion resolves the overflow-tracked miss and installs it.
        assert_eq!(l2.complete_walk(A, Vpn::new(2), Pfn::new(7)), vec![1]);
        assert_eq!(l2.pending_in_tlb(), 0);
        assert_eq!(
            l2.access(A, Vpn::new(2), 2),
            L2MissOutcome::Hit(Pfn::new(7))
        );
    }

    #[test]
    fn in_tlb_merge_reserves_same_tag_way() {
        let mut l2 = complex(1, 8);
        l2.access(A, Vpn::new(1), 0); // dedicated
        assert_eq!(l2.access(A, Vpn::new(2), 1), L2MissOutcome::MissNewWalk);
        assert_eq!(l2.access(A, Vpn::new(2), 2), L2MissOutcome::MissMerged);
        assert_eq!(l2.pending_in_tlb(), 2, "merge reserved a second way");
        assert_eq!(l2.in_tlb_stats().in_tlb_merges, 1);
        assert_eq!(l2.complete_walk(A, Vpn::new(2), Pfn::new(7)), vec![1, 2]);
        assert_eq!(l2.pending_in_tlb(), 0);
    }

    #[test]
    fn in_tlb_budget_is_enforced() {
        let mut l2 = complex(1, 1);
        l2.access(A, Vpn::new(1), 0); // dedicated
        assert_eq!(l2.access(A, Vpn::new(2), 1), L2MissOutcome::MissNewWalk);
        assert_eq!(l2.access(A, Vpn::new(3), 2), L2MissOutcome::MshrFailure);
        assert_eq!(l2.mshr_failures(), 1);
    }

    #[test]
    fn per_set_exhaustion_fails() {
        // TLB: 2 sets x 4 ways. VPNs 0,2,4,6,8 all map to set 0.
        let mut l2 = complex(1, 64);
        l2.access(A, Vpn::new(1), 0); // dedicated (set 1)
        for (i, v) in [0u64, 2, 4, 6].iter().enumerate() {
            assert_eq!(
                l2.access(A, Vpn::new(*v), 10 + i as u32),
                L2MissOutcome::MissNewWalk
            );
        }
        // Set 0 fully pending; a fifth set-0 miss fails even though the
        // In-TLB budget (64) is not exhausted.
        assert_eq!(l2.access(A, Vpn::new(8), 99), L2MissOutcome::MshrFailure);
    }

    #[test]
    fn dedicated_preferred_when_free_again() {
        let mut l2 = complex(1, 8);
        l2.access(A, Vpn::new(1), 0);
        l2.complete_walk(A, Vpn::new(1), Pfn::new(1));
        assert_eq!(l2.access(A, Vpn::new(2), 1), L2MissOutcome::MissNewWalk);
        assert_eq!(l2.pending_in_tlb(), 0, "went to the freed dedicated MSHR");
    }

    #[test]
    fn fail_walk_releases_without_filling() {
        let mut l2 = complex(1, 8);
        l2.access(A, Vpn::new(1), 0); // dedicated
        l2.access(A, Vpn::new(2), 1); // in-TLB
        assert_eq!(l2.fail_walk(A, Vpn::new(1)), vec![0]);
        assert_eq!(l2.fail_walk(A, Vpn::new(2)), vec![1]);
        assert_eq!(l2.pending_in_tlb(), 0);
        // Neither VPN was installed.
        assert!(matches!(
            l2.access(A, Vpn::new(1), 9),
            L2MissOutcome::MissNewWalk
        ));
        assert!(matches!(
            l2.access(A, Vpn::new(2), 9),
            L2MissOutcome::MissNewWalk
        ));
    }

    #[test]
    fn invalidate_drops_translation_but_not_walks() {
        let mut l2 = complex(4, 0);
        l2.access(A, Vpn::new(1), 0);
        l2.complete_walk(A, Vpn::new(1), Pfn::new(9));
        l2.access(A, Vpn::new(2), 1); // walk in flight
        assert_eq!(l2.invalidate(A, Vpn::new(1)), 1);
        assert_eq!(l2.invalidate(A, Vpn::new(2)), 0, "no cached entry to drop");
        assert!(l2.is_walk_in_flight(A, Vpn::new(2)), "walk untouched");
        assert!(matches!(
            l2.access(A, Vpn::new(1), 2),
            L2MissOutcome::MissNewWalk
        ));
        assert_eq!(l2.complete_walk(A, Vpn::new(2), Pfn::new(7)), vec![1]);
    }

    #[test]
    fn is_walk_in_flight_covers_both_paths() {
        let mut l2 = complex(1, 8);
        l2.access(A, Vpn::new(1), 0);
        l2.access(A, Vpn::new(2), 1);
        assert!(l2.is_walk_in_flight(A, Vpn::new(1)));
        assert!(l2.is_walk_in_flight(A, Vpn::new(2)));
        assert!(!l2.is_walk_in_flight(A, Vpn::new(3)));
    }

    #[test]
    fn tenants_walk_the_same_vpn_independently() {
        let mut l2 = complex(4, 0);
        assert_eq!(l2.access(A, Vpn::new(1), 0), L2MissOutcome::MissNewWalk);
        assert_eq!(
            l2.access(B, Vpn::new(1), 1),
            L2MissOutcome::MissNewWalk,
            "no cross-tenant merge"
        );
        assert_eq!(l2.complete_walk(A, Vpn::new(1), Pfn::new(10)), vec![0]);
        assert_eq!(l2.complete_walk(B, Vpn::new(1), Pfn::new(20)), vec![1]);
        assert_eq!(
            l2.access(A, Vpn::new(1), 2),
            L2MissOutcome::Hit(Pfn::new(10))
        );
        assert_eq!(
            l2.access(B, Vpn::new(1), 3),
            L2MissOutcome::Hit(Pfn::new(20))
        );
    }

    #[test]
    fn invalidate_is_tenant_scoped() {
        let mut l2 = complex(4, 0);
        l2.access(A, Vpn::new(1), 0);
        l2.complete_walk(A, Vpn::new(1), Pfn::new(10));
        l2.access(B, Vpn::new(1), 1);
        l2.complete_walk(B, Vpn::new(1), Pfn::new(20));
        assert_eq!(l2.invalidate(A, Vpn::new(1)), 1);
        assert_eq!(
            l2.access(B, Vpn::new(1), 2),
            L2MissOutcome::Hit(Pfn::new(20)),
            "B's entry survives A's shootdown"
        );
    }

    #[test]
    fn flush_asid_tears_down_one_tenant() {
        let mut l2 = complex(1, 8);
        l2.access(A, Vpn::new(1), 0); // dedicated walk
        l2.complete_walk(A, Vpn::new(1), Pfn::new(10));
        l2.access(B, Vpn::new(3), 1); // dedicated walk in flight for B
        l2.access(A, Vpn::new(2), 2); // A's in-TLB reservation
        assert_eq!(l2.flush_asid(A), 1);
        assert_eq!(l2.pending_in_tlb(), 0, "A's reservation torn down");
        assert!(!l2.is_walk_in_flight(A, Vpn::new(2)));
        assert!(l2.is_walk_in_flight(B, Vpn::new(3)), "B's walk survives");
        assert!(matches!(
            l2.access(A, Vpn::new(1), 9),
            L2MissOutcome::MissNewWalk
        ));
    }
}
